"""Fig. 3 — speedup of MVP/TVP/GVP over the DSR baseline."""

from conftest import run_once

from repro.harness.experiments import run_fig3


def test_fig3_vp_speedups(benchmark, runner, capsys):
    result = run_once(benchmark, run_fig3, runner)
    with capsys.disabled():
        print()
        result.print()
    gmeans = result.raw["geomeans"]
    for flavor, value in gmeans.items():
        benchmark.extra_info[f"gmean_{flavor}_pct"] = round(value, 2)
    # Paper shape: GVP > TVP >= MVP > 0, with a large GVP-only outlier on
    # the xalancbmk-style workload.
    assert gmeans["gvp"] > gmeans["tvp"] - 0.05
    assert gmeans["gvp"] > gmeans["mvp"]
    assert gmeans["gvp"] > 0.5
    outlier = result.raw["per_workload"]["gvp"]["xml_tree"]
    benchmark.extra_info["xml_tree_gvp_pct"] = round(outlier, 2)
    assert outlier > 5.0, "the xalancbmk-style outlier should be GVP-dominant"
    assert result.raw["per_workload"]["tvp"]["xml_tree"] < outlier / 4
