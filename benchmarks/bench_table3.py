"""Table 3 — geomean speedup vs predictor storage budget."""

from conftest import run_once

from repro.harness.experiments import run_table3


def test_table3_budget_sweep(benchmark, small_runner, capsys):
    result = run_once(benchmark, run_table3, small_runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    budgets = list(raw)
    for budget in budgets:
        for flavor, value in raw[budget].items():
            benchmark.extra_info[f"{flavor}@{budget}"] = round(value, 2)
    # Paper shape: GVP keeps gaining from storage; MVP saturates early
    # (its 4KB point is already near its 55KB point).
    smallest, largest = budgets[0], budgets[-1]
    assert raw[largest]["gvp"] >= raw[smallest]["gvp"] - 0.25
    mvp_span = abs(raw[largest]["mvp"] - raw[smallest]["mvp"])
    assert mvp_span < max(1.0, abs(raw[largest]["gvp"]) + 1.0), \
        "MVP should be storage-insensitive relative to GVP"
