"""Table 2 (VP rows) — predictor storage must match the paper exactly."""

from conftest import run_once

from repro.core.modes import VPFlavor
from repro.core.storage import flavor_config, vtage_storage_kb
from repro.harness.experiments import run_table2


def test_table2_storage_model(benchmark, capsys):
    result = run_once(benchmark, run_table2, None)
    with capsys.disabled():
        print()
        result.print()
    # Bit-exact reproduction (after the paper's one-decimal truncation).
    expected = {"GVP": 55.2, "TVP": 13.9, "MVP": 7.9}
    for flavor_name, truncated in expected.items():
        kb = vtage_storage_kb(flavor_config(VPFlavor[flavor_name]))
        assert int(kb * 10) / 10 == truncated
        benchmark.extra_info[f"{flavor_name}_kb"] = round(kb, 2)
