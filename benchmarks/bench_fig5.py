"""Fig. 5 — MVP/TVP speedups with and without SpSR."""

from conftest import run_once

from repro.harness.experiments import run_fig5


def test_fig5_spsr_speedups(benchmark, runner, capsys):
    result = run_once(benchmark, run_fig5, runner)
    with capsys.disabled():
        print()
        result.print()
    gmeans = result.raw
    for config_name, value in gmeans.items():
        benchmark.extra_info[f"gmean_{config_name}_pct"] = round(value, 2)
    # Paper shape: SpSR moves IPC very little in either direction (its
    # benefit is backend activity, checked by Fig. 6).
    assert abs(gmeans["mvp+spsr"] - gmeans["mvp"]) < 2.0
    assert abs(gmeans["tvp+spsr"] - gmeans["tvp"]) < 2.0
