"""Ablation — predictor capacity pressure (scale-compensated Table 3)."""

from conftest import run_once

from repro.harness.experiments import run_capacity_sweep


def test_capacity_sweep(benchmark, small_runner, capsys):
    result = run_once(benchmark, run_capacity_sweep, small_runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    deltas = sorted(raw)
    for delta in deltas:
        for flavor, payload in raw[delta].items():
            benchmark.extra_info[f"{flavor}@2^{delta}"] = round(
                payload["coverage"], 2)
    # Honest scale note (recorded in EXPERIMENTS.md): our kernels have a
    # few dozen static VP-eligible PCs, so even tens of entries suffice —
    # the paper's Table 3 budget sensitivity is a *working-set* effect
    # that 10^4-instruction synthetic traces cannot express.  What must
    # hold: predictors stay functional at every size, storage ordering is
    # honoured, and coverage never *improves* by starving the tables by
    # more than noise.
    tiny, full = deltas[0], deltas[-1]
    assert raw[full]["gvp"]["coverage"] > 1.0
    assert raw[full]["gvp"]["coverage"] >= raw[tiny]["gvp"]["coverage"] - 2.0
    assert raw[full]["gvp"]["kb"] > raw[tiny]["gvp"]["kb"]
    for delta in deltas:
        assert raw[delta]["gvp"]["gmean"] > -1.0
