"""§3.4.1 ablation — sensitivity to the post-mispredict silencing window."""

from conftest import run_once

from repro.harness.experiments import run_silencing_sweep


def test_silencing_sweep(benchmark, small_runner, capsys):
    result = run_once(benchmark, run_silencing_sweep, small_runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    for silence, flavors in raw.items():
        for flavor, payload in flavors.items():
            benchmark.extra_info[f"{flavor}@sil{silence}"] = round(
                payload["gmean"], 2)
    # Paper shape: performance is flat across 15..1000 silencing cycles
    # (silencing only needs to break the refetch-repredict livelock).
    for flavor in ("mvp", "tvp", "gvp"):
        span = max(raw[s][flavor]["gmean"] for s in raw) - \
            min(raw[s][flavor]["gmean"] for s in raw)
        assert span < 3.0, f"{flavor} unexpectedly silencing-sensitive"
