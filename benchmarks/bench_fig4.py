"""Fig. 4 — fraction of instructions eliminated at rename, by category."""

from conftest import run_once

from repro.harness.experiments import run_fig4


def test_fig4_rename_eliminations(benchmark, runner, capsys):
    result = run_once(benchmark, run_fig4, runner)
    with capsys.disabled():
        print()
        result.print()
    means = result.raw
    for config_name, cats in means.items():
        for cat, value in cats.items():
            benchmark.extra_info[f"{config_name}.{cat}"] = round(value, 2)
    # Paper shape: SpSR adds a real new elimination category on top of the
    # baseline DSR ones, and only TVP has 9-bit-idiom eliminations.
    assert means["mvp+spsr"]["spsr"] > 0.0
    assert means["tvp+spsr"]["spsr"] > 0.0
    assert means["mvp+spsr"]["nine_bit_idiom"] == 0.0
    assert means["tvp+spsr"]["nine_bit_idiom"] >= 0.0
