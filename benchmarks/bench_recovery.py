"""Ablation — flush vs selective replay recovery (§2.2 / §3.4)."""

from conftest import run_once

from repro.harness.experiments import run_recovery_ablation


def test_recovery_ablation(benchmark, small_runner, capsys):
    result = run_once(benchmark, run_recovery_ablation, small_runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    for (flavor, recovery), payload in raw.items():
        benchmark.extra_info[f"{flavor}@{recovery}"] = round(
            payload["gmean"], 2)
    # The paper's asymmetry: replay structurally cannot fire for MVP/TVP.
    assert raw[("mvp", "replay")]["replays"] == 0
    assert raw[("tvp", "replay")]["replays"] == 0
    # And recoveries are rare enough that the scheme choice barely moves
    # the geomean (the paper's reason to keep the simple flush).
    for flavor in ("mvp", "tvp", "gvp"):
        delta = abs(raw[(flavor, "replay")]["gmean"]
                    - raw[(flavor, "flush")]["gmean"])
        assert delta < 1.0
