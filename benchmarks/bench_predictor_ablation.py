"""Ablation — swap-in value prediction algorithms (paper §7)."""

from conftest import run_once

from repro.harness.experiments import run_predictor_ablation


def test_predictor_ablation(benchmark, small_runner, capsys):
    result = run_once(benchmark, run_predictor_ablation, small_runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    for (flavor, algorithm), value in raw.items():
        benchmark.extra_info[f"{flavor}/{algorithm}"] = round(value, 2)
    # Shape: under TVP, history-sensitive VTAGE should not lose to the
    # history-blind LVP by any meaningful margin.
    assert raw[("tvp", "vtage")] >= raw[("tvp", "lvp")] - 0.5
    # Every predictor must at least not wreck the baseline.
    for value in raw.values():
        assert value > -2.0
