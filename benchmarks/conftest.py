"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table/figure of the paper.  The
instruction budget per workload is deliberately small (the cycle simulator
is pure Python); set ``REPRO_BENCH_INSTRUCTIONS`` for a longer, more
faithful run, e.g.::

    REPRO_BENCH_INSTRUCTIONS=30000 pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

from repro.harness.runner import ExperimentRunner

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "5000"))


@pytest.fixture(scope="session")
def runner():
    """One shared runner so traces/baselines are simulated once."""
    return ExperimentRunner(instructions=DEFAULT_INSTRUCTIONS)


@pytest.fixture(scope="session")
def small_runner():
    """A cheaper runner for the sweep-heavy experiments (Table 3 etc.)."""
    return ExperimentRunner(instructions=max(DEFAULT_INSTRUCTIONS // 2, 2000))


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
