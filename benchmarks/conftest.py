"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table/figure of the paper.  The
instruction budget per workload is deliberately small (the cycle simulator
is pure Python); set ``REPRO_BENCH_INSTRUCTIONS`` for a longer, more
faithful run, e.g.::

    REPRO_BENCH_INSTRUCTIONS=30000 pytest benchmarks/ --benchmark-only -s

Sweeps fan out across worker processes (``REPRO_BENCH_JOBS``, default all
cores) and reuse the on-disk simulation cache (disable by setting
``REPRO_BENCH_CACHE=0``).
"""

import os

import pytest

from repro.harness.cache import SimulationCache
from repro.harness.parallel import make_runner

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "5000"))
BENCH_JOBS = (int(os.environ["REPRO_BENCH_JOBS"])
              if "REPRO_BENCH_JOBS" in os.environ else None)
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "1") != "0"


def _make_runner(instructions):
    cache = SimulationCache() if BENCH_CACHE else None
    return make_runner(instructions=instructions, cache=cache,
                       jobs=BENCH_JOBS)


@pytest.fixture(scope="session")
def runner():
    """One shared runner so traces/baselines are simulated once."""
    return _make_runner(DEFAULT_INSTRUCTIONS)


@pytest.fixture(scope="session")
def small_runner():
    """A cheaper runner for the sweep-heavy experiments (Table 3 etc.)."""
    return _make_runner(max(DEFAULT_INSTRUCTIONS // 2, 2000))


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
