"""Ablation — SpSR generalized to full constant folding."""

from conftest import run_once

from repro.harness.experiments import run_spsr_folding_ablation


def test_spsr_constant_folding(benchmark, small_runner, capsys):
    result = run_once(benchmark, run_spsr_folding_ablation, small_runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    for label, payload in raw.items():
        benchmark.extra_info[f"{label}.gmean"] = round(payload["gmean"], 2)
        benchmark.extra_info[f"{label}.spsr"] = round(payload["spsr_amean"], 2)
    # Folding can only widen the set of reduced µops.
    assert raw["tvp+spsr+fold"]["spsr_amean"] >= \
        raw["tvp+spsr"]["spsr_amean"] - 0.01
    # And, like plain SpSR, it should not move IPC much.
    assert abs(raw["tvp+spsr+fold"]["gmean"] - raw["tvp+spsr"]["gmean"]) < 2.0
