"""Ablation — predictor value-field width vs storage vs coverage."""

from conftest import run_once

from repro.harness.experiments import run_value_width_sweep


def test_value_width_sweep(benchmark, small_runner, capsys):
    result = run_once(benchmark, run_value_width_sweep, small_runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    for width, payload in raw.items():
        benchmark.extra_info[f"w{width}_coverage"] = round(
            payload["coverage"], 2)
    # Coverage is (weakly) monotonic in width — wider fields can store a
    # superset of values (FPC randomness adds a little noise per point).
    widths = sorted(raw)
    for narrow, wide in zip(widths, widths[1:]):
        assert raw[wide]["coverage"] >= raw[narrow]["coverage"] - 2.0
    # Storage is exactly linear in the value width at fixed geometry.
    assert raw[64]["kb"] > raw[9]["kb"] > raw[1]["kb"]
    # The paper's design points: 64-bit captures strictly more than 1-bit.
    assert raw[64]["coverage"] >= raw[1]["coverage"]
    assert raw[9]["coverage"] >= raw[1]["coverage"] - 2.0
