"""Fig. 1 — dynamic value distribution of GPR-writing instructions."""

from conftest import run_once

from repro.harness.experiments import run_fig1


def test_fig1_value_distribution(benchmark, runner, capsys):
    result = run_once(benchmark, run_fig1, runner)
    with capsys.disabled():
        print()
        result.print()
    benchmark.extra_info["zero_share_pct"] = round(result.raw["zero_share"], 2)
    benchmark.extra_info["narrow9_pct"] = round(result.raw["narrow9"], 1)
    # Paper shape: 0x0 is the single most produced value; narrow values
    # dominate the distribution.
    top_value, _share = result.raw["series"][0]
    assert top_value == 0
    assert result.raw["narrow9"] > 30.0
