"""§6.2 ablation — SpSR x L1D stride-prefetcher interaction."""

from conftest import run_once

from repro.harness.experiments import run_prefetcher_ablation


def test_prefetcher_ablation(benchmark, small_runner, capsys):
    result = run_once(benchmark, run_prefetcher_ablation, small_runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    for (tag, config_name), value in raw.items():
        benchmark.extra_info[f"{config_name}@{tag}"] = round(value, 2)
    # Paper shape: SpSR's effect on TVP stays small with the prefetcher on
    # or off (the paper's residual slowdowns were prefetcher artifacts).
    for tag in ("pf_on", "pf_off"):
        delta = raw[(tag, "tvp+spsr")] - raw[(tag, "tvp")]
        assert abs(delta) < 2.0
