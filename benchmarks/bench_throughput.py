"""Simulator throughput — raw timing-model speed in kuops/s.

Unlike the ``bench_fig*`` files, which reproduce paper figures, this
benchmark tracks the *simulator itself*: how many µops per second the
cycle model retires.  It is the acceptance gauge for hot-path
optimization work — compare ``kuops_per_s`` in ``--benchmark-json``
output (or the ``__main__`` quick mode) across commits.

Quick mode for CI (no pytest-benchmark machinery)::

    PYTHONPATH=src python benchmarks/bench_throughput.py --quick
"""

import time

from repro.harness.runner import ExperimentRunner
from repro.pipeline.core import CpuModel

# A config mix covering the three major simulator modes: plain OoO,
# value prediction with selective replay, and VP + SpSR folding.
_CONFIGS = ("baseline", "tvp", "gvp+spsr")
_WORKLOADS = ("hash_loop", "sparse_graph", "xml_tree")


def _simulate_suite(instructions):
    """Simulate the mix serially; returns (uops retired, wall seconds).

    Traces are built *before* the clock starts — this measures the
    timing model only, not the functional emulator.
    """
    from repro.workloads import suite

    runner = ExperimentRunner(workloads=suite(_WORKLOADS),
                              instructions=instructions)
    points = [(runner.trace_of(workload), runner.config(name))
              for workload in runner.workloads for name in _CONFIGS]
    uops = 0
    started = time.perf_counter()
    for trace, config in points:
        stats = CpuModel(trace, config).run().stats
        uops += stats.retired_uops
    wall = time.perf_counter() - started
    return uops, wall


def test_simulator_throughput(benchmark):
    from conftest import DEFAULT_INSTRUCTIONS, run_once

    uops, wall = run_once(benchmark, _simulate_suite, DEFAULT_INSTRUCTIONS)
    benchmark.extra_info["kuops_per_s"] = round(uops / wall / 1000.0, 1)
    benchmark.extra_info["uops"] = uops
    assert uops > 0


def main(instructions=3000):
    uops, wall = _simulate_suite(instructions)
    print(f"simulated {uops} uops in {wall:.2f}s "
          f"= {uops / wall / 1000.0:.1f} kuops/s")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="small budget suitable for CI smoke runs")
    parser.add_argument("--instructions", type=int, default=None)
    cli_args = parser.parse_args()
    budget = cli_args.instructions or (2000 if cli_args.quick else 10000)
    raise SystemExit(main(budget))
