"""Simulator throughput — capture and replay speed, in kuops/s.

Unlike the ``bench_fig*`` files, which reproduce paper figures, this
benchmark tracks the *simulator itself*, split along the trace-cache
boundary into the two phases a sweep actually pays:

* **capture** — functional emulation plus columnar packing.  Paid once
  per (workload, budget, code-version): with a warm trace cache this
  phase disappears entirely from sweeps.
* **replay** — the cycle model consuming an already-packed
  :class:`~repro.emulator.trace.ColumnarTrace`.  Paid per (workload,
  config) point on every sweep; this is the acceptance gauge for
  hot-path optimization work.

Compare ``kuops_per_s`` per phase across commits via
``--benchmark-json`` output, or run the quick mode (no pytest-benchmark
machinery), which writes a machine-readable ``BENCH_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --json BENCH_throughput.json --min-replay-kuops 30

``--min-replay-kuops`` turns the gauge into a smoke check: exit status
1 when replay throughput lands below the floor.  ``--baseline FILE``
is the relative form the CI ``perf-smoke`` job uses: it compares this
run's replay kuops/s against the committed ``BENCH_throughput.json``
and fails below ``--min-ratio`` (default 0.8x) — absolute floors rot
as CI hardware changes; a ratio against a same-machine artifact does
not.  ``--engine`` picks the timing-core backend being gauged
(backends are counter-identical, so ``uops`` must match across them).
"""

import json
import time

from repro.emulator.trace import ColumnarTrace, trace_program
from repro.harness.runner import ExperimentRunner
from repro.pipeline.core import CpuModel
from repro.pipeline.engine import resolve_engine

# A config mix covering the three major simulator modes: plain OoO,
# value prediction with selective replay, and VP + SpSR folding.
_CONFIGS = ("baseline", "tvp", "gvp+spsr")
_WORKLOADS = ("hash_loop", "sparse_graph", "xml_tree")


def _capture_suite(instructions, workloads=_WORKLOADS):
    """Phase 1: emulate and pack each workload once.

    Returns ``(traces, uops, wall_seconds)`` — the per-workload cost a
    cold trace cache pays before any replay can start.
    """
    from repro.workloads import suite

    traces = []
    uops = 0
    started = time.perf_counter()
    for workload in suite(list(workloads)):
        raw, _stats = trace_program(workload.program,
                                    max_instructions=instructions)
        traces.append(ColumnarTrace.from_uops(raw, keep_views=True))
        uops += len(raw)
    wall = time.perf_counter() - started
    return traces, uops, wall


def _replay_suite(traces, engine=None):
    """Phase 2: cycle-model replay only; returns (uops retired, wall).

    Traces arrive already packed — this is the per-point cost every
    sweep pays, warm or cold.
    """
    points = [(trace, ExperimentRunner.config(name, engine=engine))
              for trace in traces for name in _CONFIGS]
    uops = 0
    started = time.perf_counter()
    for trace, config in points:
        stats = CpuModel(trace, config).run().stats
        uops += stats.retired_uops
    wall = time.perf_counter() - started
    return uops, wall


def _stage_breakdown(traces, engine=None):
    """Replay once more with per-stage wall-time wrappers installed.

    Runs as a *separate* pass so the headline ``replay`` numbers stay
    unperturbed — the timing wrappers add a call layer per stage per
    cycle, which on this scale inflates wall time noticeably.  Returns
    ``{stage: seconds}`` summed across every (workload, config) point,
    plus ``other`` (loop/bookkeeping time outside the six stages).
    """
    points = [(trace, ExperimentRunner.config(name, engine=engine))
              for trace in traces for name in _CONFIGS]
    totals = {}
    started = time.perf_counter()
    for trace, config in points:
        model = CpuModel(trace, config)
        model.enable_stage_profile(time.perf_counter)
        model.run()
        for stage, seconds in model.stage_profile.items():
            totals[stage] = totals.get(stage, 0.0) + seconds
    wall = time.perf_counter() - started
    totals["other"] = max(0.0, wall - sum(totals.values()))
    return {stage: round(seconds, 3) for stage, seconds in totals.items()}


def gauge(instructions, workloads=_WORKLOADS, engine=None,
          profile_stages=False):
    """Both phases, as the documented ``BENCH_throughput.json`` payload."""
    traces, capture_uops, capture_wall = _capture_suite(instructions,
                                                        workloads)
    replay_uops, replay_wall = _replay_suite(traces, engine=engine)
    stages = (_stage_breakdown(traces, engine=engine)
              if profile_stages else None)
    return {
        "schema": "bench_throughput/2",
        "instructions": instructions,
        "engine": resolve_engine(engine).name,
        "workloads": list(workloads),
        "configs": list(_CONFIGS),
        "capture": {
            "uops": capture_uops,
            "seconds": round(capture_wall, 3),
            "kuops_per_s": round(capture_uops / capture_wall / 1000.0, 1),
        },
        "replay": {
            "uops": replay_uops,
            "seconds": round(replay_wall, 3),
            "kuops_per_s": round(replay_uops / replay_wall / 1000.0, 1),
            # Present only under --profile-stages; measured in a second
            # instrumented pass, so the seconds here exceed the headline
            # replay wall by the wrapper overhead.
            **({"stages": stages} if stages else {}),
        },
    }


def test_capture_throughput(benchmark):
    from conftest import DEFAULT_INSTRUCTIONS, run_once

    _traces, uops, wall = run_once(benchmark, _capture_suite,
                                   DEFAULT_INSTRUCTIONS)
    benchmark.extra_info["kuops_per_s"] = round(uops / wall / 1000.0, 1)
    benchmark.extra_info["uops"] = uops
    assert uops > 0


def test_replay_throughput(benchmark):
    from conftest import DEFAULT_INSTRUCTIONS, run_once

    traces, _uops, _wall = _capture_suite(DEFAULT_INSTRUCTIONS)
    uops, wall = run_once(benchmark, _replay_suite, traces)
    benchmark.extra_info["kuops_per_s"] = round(uops / wall / 1000.0, 1)
    benchmark.extra_info["uops"] = uops
    assert uops > 0


def check_against_baseline(payload, baseline_path, min_ratio):
    """Relative perf-smoke: replay kuops/s vs a committed artifact.

    Returns (ratio, failed).  A baseline gauged at a different budget
    or suite still compares — the metric is a rate — but the printed
    line flags the mismatch so a surprising ratio is explainable.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base = baseline["replay"]["kuops_per_s"]
    now = payload["replay"]["kuops_per_s"]
    ratio = now / base if base else float("inf")
    note = ""
    if (baseline.get("instructions") != payload["instructions"]
            or baseline.get("workloads") != payload["workloads"]):
        note = " [baseline gauged on a different budget/suite]"
    print(f"replay vs baseline {baseline_path}: {now:.1f} / {base:.1f} "
          f"kuops/s = {ratio:.2f}x (floor {min_ratio:.2f}x){note}")
    return ratio, ratio < min_ratio


def main(instructions, json_path=None, min_replay_kuops=None,
         workloads=_WORKLOADS, engine=None, baseline=None, min_ratio=0.8,
         profile_stages=False):
    payload = gauge(instructions, workloads, engine=engine,
                    profile_stages=profile_stages)
    print(f"engine: {payload['engine']}")
    for phase in ("capture", "replay"):
        print(f"{phase}: {payload[phase]['uops']} uops in "
              f"{payload[phase]['seconds']:.2f}s "
              f"= {payload[phase]['kuops_per_s']:.1f} kuops/s")
    stages = payload["replay"].get("stages")
    if stages:
        total = sum(stages.values()) or 1.0
        print("replay stage breakdown (instrumented second pass):")
        for stage, seconds in sorted(stages.items(),
                                     key=lambda kv: -kv[1]):
            print(f"  {stage:>8}: {seconds:6.3f}s "
                  f"({100.0 * seconds / total:4.1f}%)")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"[written to {json_path}]")
    failed = False
    if min_replay_kuops is not None \
            and payload["replay"]["kuops_per_s"] < min_replay_kuops:
        print(f"FAIL: replay {payload['replay']['kuops_per_s']:.1f} "
              f"kuops/s below the {min_replay_kuops:.1f} floor")
        failed = True
    if baseline is not None:
        _ratio, below = check_against_baseline(payload, baseline, min_ratio)
        if below:
            print("FAIL: replay throughput regressed past the ratio floor")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="small budget suitable for CI smoke runs")
    parser.add_argument("--instructions", type=int, default=None)
    parser.add_argument("--json", type=str, default=None, metavar="FILE",
                        help="write the machine-readable payload here")
    parser.add_argument("--min-replay-kuops", type=float, default=None,
                        metavar="K", help="exit 1 if replay throughput "
                        "lands below this floor (CI smoke check)")
    parser.add_argument("--workloads", type=str, default=None,
                        help="comma-separated workload subset "
                             "(default: %s)" % ",".join(_WORKLOADS))
    parser.add_argument("--engine", type=str, default=None,
                        help="timing-core backend to gauge "
                             "(default: $REPRO_ENGINE, then interp)")
    parser.add_argument("--baseline", type=str, default=None,
                        metavar="FILE",
                        help="committed BENCH_throughput.json to compare "
                             "replay kuops/s against")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        metavar="R", help="exit 1 if replay throughput "
                        "falls below R x the --baseline (default 0.8)")
    parser.add_argument("--profile-stages", action="store_true",
                        help="run an extra instrumented replay pass and "
                             "report per-stage wall time")
    cli_args = parser.parse_args()
    budget = cli_args.instructions or (2000 if cli_args.quick else 10000)
    chosen = (tuple(cli_args.workloads.split(","))
              if cli_args.workloads else _WORKLOADS)
    raise SystemExit(main(budget, json_path=cli_args.json,
                          min_replay_kuops=cli_args.min_replay_kuops,
                          workloads=chosen, engine=cli_args.engine,
                          baseline=cli_args.baseline,
                          min_ratio=cli_args.min_ratio,
                          profile_stages=cli_args.profile_stages))
