"""Fig. 2 — µops per architectural instruction and baseline IPC."""

from conftest import run_once

from repro.harness.experiments import run_fig2


def test_fig2_expansion_and_ipc(benchmark, runner, capsys):
    result = run_once(benchmark, run_fig2, runner)
    with capsys.disabled():
        print()
        result.print()
    benchmark.extra_info["expansion_mean"] = round(
        result.raw["expansion_mean"], 3)
    benchmark.extra_info["ipc_hmean"] = round(result.raw["ipc_hmean"], 3)
    # Paper shape: modest µop expansion (pre/post-index cracking only).
    assert 1.0 <= result.raw["expansion_mean"] <= 1.3
    assert result.raw["ipc_hmean"] > 0.0
