"""Fig. 6 — INT PRF read/write and IQ dispatch/issue activity."""

from conftest import run_once

from repro.harness.experiments import run_fig6


def test_fig6_activity(benchmark, runner, capsys):
    result = run_once(benchmark, run_fig6, runner)
    with capsys.disabled():
        print()
        result.print()
    raw = result.raw
    for config_name, metrics in raw.items():
        for metric, value in metrics.items():
            benchmark.extra_info[f"{config_name}.{metric}"] = round(value, 2)
    # Paper shape:
    # 1. MVP and TVP *reduce* INT PRF writes (predictions are names, not
    #    writes); TVP reduces at least as much as MVP.
    assert raw["mvp"]["int_prf_writes"] < 0.5
    assert raw["tvp"]["int_prf_writes"] <= raw["mvp"]["int_prf_writes"] + 0.5
    # 2. GVP increases PRF writes relative to TVP (explicit wide writes).
    assert raw["gvp"]["int_prf_writes"] > raw["tvp"]["int_prf_writes"]
    # 3. SpSR lowers IQ dispatch versus the same flavor without SpSR.
    assert raw["mvp+spsr"]["iq_dispatched"] < raw["mvp"]["iq_dispatched"] + 0.1
    assert raw["tvp+spsr"]["iq_dispatched"] < raw["tvp"]["iq_dispatched"] + 0.1
