"""Watch Speculative Strength Reduction fire, idiom by idiom.

Part 1 drives the SpSR engine combinationally on hand-built µops
(the paper's Table 1 rows).  Part 2 runs a kernel end to end and reports
which rename-time eliminations actually happened.

Run:  python examples/spsr_exploration.py
"""

from repro.core.spsr import SpSREngine
from repro.emulator.trace import trace_program
from repro.isa import assemble
from repro.pipeline import MachineConfig, simulate

TABLE1_DEMO = """
    add  x0, x1, x2          // move-idiom when x1 or x2 == 0x0
    sub  x3, x4, x5          // move-idiom when x5 == 0x0
    and  x6, x7, x8          // zero-idiom when either source == 0x0
    lsl  x9, x10, x11        // zero-idiom when x10 == 0x0
    ands x12, x13, x14       // nop + known NZCV when a source == 0x0
    subs x15, x16, #1        // nop + known NZCV when x16 is known
    cbz  x17, out            // resolved at rename when x17 is known
out:
    csel x18, x19, x20, eq   // move-idiom when NZCV is known
    hlt
"""

KERNEL = """
// Flags loaded from memory are almost always zero: their consumers
// strength-reduce away once MVP/TVP predicts the 0x0.
    mov   x0, #0
    mov   x1, #3000
    adr   x2, flags
loop:
    and   x3, x1, #63
    ldr   x4, [x2, x3, lsl #3]   // ~always 0x0 (predictable)
    add   x5, x0, x4             // SpSR: move-idiom once x4 is known 0
    and   x6, x5, x4             // SpSR: zero-idiom
    add   x0, x5, #1
    subs  x1, x1, #1
    b.ne  loop
    hlt

.data
flags: .zero 512
"""


def demo_engine():
    print("=== Table 1 reductions, combinationally ===")
    engine = SpSREngine()
    trace, _ = trace_program(assemble(TABLE1_DEMO), max_instructions=20)
    cases = [
        (trace[0], (None, 0), None, "x2 predicted 0x0"),
        (trace[1], (None, 0), None, "x5 predicted 0x0"),
        (trace[2], (0, None), None, "x7 predicted 0x0"),
        (trace[3], (0, None), None, "x10 predicted 0x0"),
        (trace[4], (0, None), None, "x13 predicted 0x0"),
        (trace[5], (1,), None, "x16 predicted 0x1"),
        (trace[6], (0,), None, "x17 predicted 0x0"),
        (trace[7], (None, None), 0x4, "NZCV known = Z"),
    ]
    for uop, known, flags, context in cases:
        result = engine.reduce(uop, known, flags)
        print(f"  {uop.text.strip():28s} [{context:20s}] -> {result}")


def demo_pipeline():
    print()
    print("=== End-to-end: TVP+SpSR on a zero-flag kernel ===")
    program = assemble(KERNEL)
    baseline = simulate(program, MachineConfig.baseline())
    spsr = simulate(program, MachineConfig.tvp(spsr=True))
    print(f"  baseline IPC {baseline.stats.ipc:.3f} -> "
          f"TVP+SpSR IPC {spsr.stats.ipc:.3f}")
    fractions = spsr.stats.elimination_fractions()
    for category, value in fractions.items():
        if value:
            print(f"  eliminated via {category:15s}: {value:5.2f}% of µops")
    print(f"  IQ dispatches: {baseline.stats.iq_dispatched} -> "
          f"{spsr.stats.iq_dispatched}")
    print(f"  INT PRF writes: {baseline.stats.int_prf_writes} -> "
          f"{spsr.stats.int_prf_writes}")


if __name__ == "__main__":
    demo_engine()
    demo_pipeline()
