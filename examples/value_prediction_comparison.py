"""Compare MVP / TVP / GVP on suite workloads (a miniature Fig. 3).

Run:  python examples/value_prediction_comparison.py [workload ...]

Defaults to the xalancbmk-style outlier plus two contrasting kernels.
"""

import sys

from repro.core.storage import flavor_config, vtage_storage_kb
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig
from repro.workloads import suite

FLAVORS = ("mvp", "tvp", "gvp")


def main(names):
    workloads = suite(names) if names else suite(
        ["xml_tree", "match_count", "stream_triad"])
    runner = ExperimentRunner(workloads=workloads, instructions=10_000)

    print("predictor storage (Table 2 of the paper):")
    for flavor_name in FLAVORS:
        config = MachineConfig()
        flavor = {"mvp": MachineConfig.mvp, "tvp": MachineConfig.tvp,
                  "gvp": MachineConfig.gvp}[flavor_name]().vp_flavor
        print(f"  {flavor_name.upper()}: "
              f"{vtage_storage_kb(flavor_config(flavor)):.1f} KB")
        del config
    print()

    header = f"{'workload':14s} {'base IPC':>9s}"
    for flavor_name in FLAVORS:
        header += f" {flavor_name.upper():>22s}"
    print(header)
    for workload in workloads:
        base = runner.run(workload, "baseline")
        line = f"{workload.name:14s} {base.ipc:9.3f}"
        for flavor_name in FLAVORS:
            record = runner.run(workload, flavor_name)
            line += (f" {record.speedup_over(base):+7.2f}% "
                     f"cov={record.stats.vp_coverage:6.1%}")
        print(line)
    print()
    print("expected shape (paper Fig. 3): GVP > TVP >= MVP, with the "
          "xml_tree outlier GVP-only")


if __name__ == "__main__":
    main(sys.argv[1:])
