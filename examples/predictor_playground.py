"""Swap-in value predictors on one workload (the paper's §7 pointer).

Run:  python examples/predictor_playground.py [workload]
"""

import sys

from repro.core.lvp import LvpConfig
from repro.core.perceptron import PerceptronVpConfig
from repro.core.stride import StrideVpConfig
from repro.core.storage import flavor_config, vtage_storage_kb
from repro.core.modes import VPFlavor
from repro.emulator.trace import trace_program
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel
from repro.workloads import get_workload


def main(argv):
    workload = get_workload(argv[0] if argv else "match_count")
    trace, _ = trace_program(workload.program, max_instructions=12_000)
    baseline = CpuModel(trace, MachineConfig.baseline()).run()
    print(f"workload: {workload.name}  "
          f"(baseline IPC {baseline.stats.ipc:.3f})\n")

    points = [
        ("TVP / VTAGE", MachineConfig.tvp(),
         vtage_storage_kb(flavor_config(VPFlavor.TVP))),
        ("TVP / LVP", MachineConfig.tvp(vp_algorithm="lvp"),
         LvpConfig(value_bits=9).storage_bits / 8 / 1024),
        ("TVP / stride", MachineConfig.tvp(vp_algorithm="stride"),
         StrideVpConfig(value_bits=9).storage_bits / 8 / 1024),
        ("MVP / VTAGE", MachineConfig.mvp(),
         vtage_storage_kb(flavor_config(VPFlavor.MVP))),
        ("MVP / perceptron", MachineConfig.mvp(vp_algorithm="perceptron"),
         PerceptronVpConfig().storage_bits / 8 / 1024),
    ]
    print(f"{'configuration':18s} {'storage':>8s} {'IPC':>7s} "
          f"{'speedup':>8s} {'coverage':>9s} {'flushes':>8s}")
    for label, config, storage_kb in points:
        stats = CpuModel(trace, config).run().stats
        speedup = 100 * (stats.ipc / baseline.stats.ipc - 1)
        print(f"{label:18s} {storage_kb:6.1f}KB {stats.ipc:7.3f} "
              f"{speedup:+7.2f}% {stats.vp_coverage:9.1%} "
              f"{stats.vp_flushes:8d}")
    print("\npaper §7: any of these can back MVP/TVP; VTAGE is what the "
          "paper evaluates, perceptron is its explicit MVP suggestion.")


if __name__ == "__main__":
    main(sys.argv[1:])
