"""Quickstart: assemble a kernel, simulate it, read the paper's metrics.

Run:  python examples/quickstart.py
"""

from repro.isa import assemble
from repro.pipeline import MachineConfig, simulate

SOURCE = """
// Sum a table and count its odd entries.  The loop produces a stream of
// 0/1 values (the 'and'/'cset' results) - exactly what Minimal Value
// Prediction targets.
    mov   x0, #0            // sum
    mov   x9, #0            // odd count
    mov   x1, #2000         // iterations
    adr   x2, table
loop:
    and   x3, x1, #7
    ldr   x4, [x2, x3, lsl #3]
    add   x0, x0, x4
    and   x5, x4, #1
    add   x9, x9, x5
    subs  x1, x1, #1
    b.ne  loop
    hlt

.data
// A saturated counter array in steady state: every slot holds the cap, so
// the loads (and the derived 0/1 parity bits) are value-predictable.
table: .quad 63, 63, 63, 63, 63, 63, 63, 63
"""


def main():
    program = assemble(SOURCE)

    baseline = simulate(program, MachineConfig.baseline())
    tvp = simulate(program, MachineConfig.tvp(spsr=True))

    print("baseline (move elim + 0/1-idiom elim):")
    print(f"  cycles={baseline.stats.cycles}  IPC={baseline.stats.ipc:.3f}")
    print(f"  branch MPKI={baseline.stats.branch_mpki:.2f}")
    print()
    print("TVP + SpSR (the paper's targeted configuration):")
    print(f"  cycles={tvp.stats.cycles}  IPC={tvp.stats.ipc:.3f}  "
          f"(speedup {100 * (tvp.stats.ipc / baseline.stats.ipc - 1):+.2f}%)")
    print(f"  VP coverage={tvp.stats.vp_coverage:.1%}  "
          f"accuracy={tvp.stats.vp_accuracy:.3%}")
    eliminated = tvp.stats.elimination_fractions()
    print("  eliminated at rename: " +
          ", ".join(f"{k}={v:.2f}%" for k, v in eliminated.items() if v))
    print(f"  INT PRF writes: {baseline.stats.int_prf_writes} -> "
          f"{tvp.stats.int_prf_writes}")
    print(f"  IQ dispatches:  {baseline.stats.iq_dispatched} -> "
          f"{tvp.stats.iq_dispatched}")


if __name__ == "__main__":
    main()
