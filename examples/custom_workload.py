"""Build your own workload and run every layer of the stack on it.

Shows the full API surface: assembler -> functional emulator (+ value
histogram) -> trace -> cycle simulator -> per-figure metrics.

Run:  python examples/custom_workload.py
"""

from collections import Counter

from repro.emulator import Machine, trace_program
from repro.isa import assemble
from repro.pipeline import MachineConfig
from repro.pipeline.core import CpuModel

SOURCE = """
// Fibonacci mod 2^16, with results stored to a ring buffer.
    mov   x0, #0
    mov   x1, #1
    mov   x2, #4000          // steps
    adr   x3, ring
    mov   x4, #0             // ring cursor
step:
    add   x5, x0, x1
    mov   x0, x1
    and   x1, x5, #65535
    and   x6, x4, #127
    str   x1, [x3, x6, lsl #3]
    add   x4, x4, #1
    subs  x2, x2, #1
    b.ne  step
    hlt

.data
ring: .zero 1024
"""


def main():
    program = assemble(SOURCE)

    # 1. Architectural emulation (the golden model).
    machine = Machine(program)
    trace, trace_stats = trace_program(program, max_instructions=50_000,
                                       machine=machine,
                                       collect_value_histogram=True)
    print(f"emulated {trace_stats.arch_instructions} instructions "
          f"({trace_stats.uops} µops, "
          f"expansion {trace_stats.expansion_ratio:.3f})")
    print(f"final x1 (fib mod 2^16): {machine.regs[1]:#x}")
    histogram = Counter(trace_stats.value_histogram)
    print("top produced values:",
          ", ".join(f"{v:#x} x{n}" for v, n in histogram.most_common(5)))

    # 2. Cycle simulation under two configurations.
    for label, config in [("baseline", MachineConfig.baseline()),
                          ("gvp+spsr", MachineConfig.gvp(spsr=True))]:
        model = CpuModel(trace, config)
        result = model.run()
        stats = result.stats
        print(f"{label:9s}: cycles={stats.cycles:6d} IPC={stats.ipc:.3f} "
              f"mpki={stats.branch_mpki:.2f} "
              f"vp_cov={stats.vp_coverage:.1%} "
              f"L1D miss rate={model.memory.l1d.miss_rate:.2%}")


if __name__ == "__main__":
    main()
