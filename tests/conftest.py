"""Shared pytest fixtures (helpers live in tests/helpers.py)."""

import pytest


@pytest.fixture
def tiny_loop():
    """A small, fully-deterministic loop program source."""
    return """
        mov   x0, #0
        mov   x1, #50
    loop:
        add   x0, x0, x1
        subs  x1, x1, #1
        b.ne  loop
        hlt
    """
