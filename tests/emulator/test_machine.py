"""The functional emulator as a reference interpreter."""

import pytest

from tests.helpers import emulate, final_value

from repro.emulator.machine import EmulationError, Machine, STACK_BASE
from repro.isa.assembler import assemble
from repro.isa.registers import Operand


def run_machine(source, max_instructions=10_000):
    machine = Machine(assemble(source))
    for _ in machine.run(max_instructions=max_instructions):
        pass
    return machine


# -- memory ---------------------------------------------------------------------
def test_memory_rw_roundtrip():
    machine = Machine(assemble("nop"))
    machine.write_mem(0x2000, 0x1122334455667788, 8)
    assert machine.read_mem(0x2000, 8) == 0x1122334455667788
    assert machine.read_mem(0x2000, 4) == 0x55667788
    assert machine.read_mem(0x2004, 4) == 0x11223344


def test_memory_crosses_page_boundary():
    machine = Machine(assemble("nop"))
    machine.write_mem(0x2FFE, 0xAABBCCDD, 4)
    assert machine.read_mem(0x2FFE, 4) == 0xAABBCCDD


def test_data_image_loaded():
    machine = run_machine("""
        adr x0, v
        ldr x1, [x0]
        hlt
    .data
    v: .quad 0xDEAD
    """)
    assert machine.regs[1] == 0xDEAD


def test_sp_initialized():
    machine = Machine(assemble("nop"))
    assert machine.read_reg(Operand(32, 64)) == STACK_BASE


# -- register semantics ------------------------------------------------------------
def test_w_write_zero_extends():
    machine = run_machine("""
        mov  x0, #-1
        add  w0, w0, #1
        hlt
    """)
    assert machine.regs[0] == 0  # 0xFFFFFFFF + 1 truncates, upper cleared


def test_xzr_reads_zero_and_discards_writes():
    machine = run_machine("""
        add xzr, xzr, #5
        add x0, xzr, #7
        hlt
    """)
    assert machine.regs[0] == 7


# -- programs ------------------------------------------------------------------------
def test_sum_loop():
    machine = run_machine("""
        mov x0, #0
        mov x1, #100
    loop:
        add x0, x0, x1
        subs x1, x1, #1
        b.ne loop
        hlt
    """)
    assert machine.regs[0] == 5050


def test_fibonacci():
    machine = run_machine("""
        mov x0, #0
        mov x1, #1
        mov x2, #20
    step:
        add x3, x0, x1
        mov x0, x1
        mov x1, x3
        subs x2, x2, #1
        b.ne step
        hlt
    """)
    assert machine.regs[0] == 6765  # fib(20)


def test_call_and_return():
    machine = run_machine("""
        mov  x0, #5
        bl   double
        bl   double
        hlt
    double:
        add  x0, x0, x0
        ret
    """)
    assert machine.regs[0] == 20


def test_indirect_branch_via_table():
    machine = run_machine("""
        adr x1, table
        ldr x2, [x1]
        br  x2
        hlt
    target:
        mov x0, #99
        hlt
    .data
    table: .quad target
    """)
    assert machine.regs[0] == 99


def test_pre_post_index_semantics():
    machine = run_machine("""
        adr  x1, buf
        mov  x2, #7
        str  x2, [x1], #8      // post: store at buf, x1 += 8
        mov  x3, #9
        str  x3, [x1, #8]!     // pre: x1 += 8 then store at buf+16
        adr  x4, buf
        ldr  x5, [x4]
        ldr  x6, [x4, #16]
        hlt
    .data
    buf: .zero 64
    """)
    assert machine.regs[5] == 7
    assert machine.regs[6] == 9


def test_ldp_stp_roundtrip():
    machine = run_machine("""
        adr  x1, buf
        mov  x2, #11
        mov  x3, #22
        stp  x2, x3, [x1]
        ldp  x4, x5, [x1]
        hlt
    .data
    buf: .zero 16
    """)
    assert (machine.regs[4], machine.regs[5]) == (11, 22)


def test_byte_and_half_access():
    machine = run_machine("""
        adr  x1, buf
        mov  x2, #0x1FF
        strb w2, [x1]
        strh w2, [x1, #8]
        ldrb w3, [x1]
        ldrh w4, [x1, #8]
        hlt
    .data
    buf: .zero 16
    """)
    assert machine.regs[3] == 0xFF
    assert machine.regs[4] == 0x1FF


def test_ldrsw_sign_extends():
    machine = run_machine("""
        adr  x1, buf
        ldrsw x2, [x1]
        hlt
    .data
    buf: .word 0x80000000
    """)
    assert machine.regs[2] == 0xFFFF_FFFF_8000_0000


def test_flags_across_instructions():
    machine = run_machine("""
        mov  x0, #3
        cmp  x0, #3
        cset x1, eq
        cmp  x0, #4
        cset x2, lt
        cset x3, ge
        hlt
    """)
    assert machine.regs[1] == 1
    assert machine.regs[2] == 1
    assert machine.regs[3] == 0


def test_csel_family_end_to_end():
    machine = run_machine("""
        mov   x1, #10
        mov   x2, #20
        cmp   x1, x2
        csel  x3, x1, x2, lt
        csinc x4, x1, x2, ge
        csneg x5, x1, x2, ge
        hlt
    """)
    assert machine.regs[3] == 10
    assert machine.regs[4] == 21       # cond false -> x2 + 1
    assert machine.regs[5] == 2**64 - 20  # cond false -> -x2


def test_fp_pipeline_end_to_end():
    machine = run_machine("""
        fmov  d0, #2.0
        fmov  d1, #3.0
        fadd  d2, d0, d1
        fmul  d3, d2, d0
        fcvtzs x0, d3
        scvtf d4, x0
        fcmp  d4, d3
        cset  x1, eq
        hlt
    """)
    assert machine.regs[0] == 10
    assert machine.regs[1] == 1


def test_tbz_tbnz():
    machine = run_machine("""
        mov  x0, #4
        tbz  x0, #2, skip1     // bit 2 is set -> not taken
        mov  x1, #1
    skip1:
        tbnz x0, #0, skip2     // bit 0 is clear -> not taken
        mov  x2, #1
    skip2:
        tbz  x0, #0, skip3     // bit 0 is clear -> taken
        mov  x3, #1
    skip3:
        hlt
    """)
    assert machine.regs[1] == 1
    assert machine.regs[2] == 1
    assert machine.regs[3] == 0


def test_bad_pc_raises():
    machine = Machine(assemble("br x0"))  # x0 = 0 -> invalid code address
    with pytest.raises(EmulationError):
        for _ in machine.run():
            pass


def test_instruction_budget_stops():
    program = assemble("loop: b loop")
    machine = Machine(program)
    count = sum(1 for _ in machine.run(max_instructions=500))
    assert count == 500
