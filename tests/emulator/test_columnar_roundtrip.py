"""Columnar trace engine: lossless round-trips and torn-image rejection.

The ``.rtrc`` serialization must be *exactly* lossless — the cycle model
consumes materialized :class:`DynUop` views, so any drift between the
packed columns and the original objects silently changes simulations.
Round-trip equality is asserted over the differential-fuzz program
generator (the most adversarial µop mix the repo can produce: every op
family, negative immediates, FP moves, multi-µop expansions).
"""

from dataclasses import fields

import pytest

from repro.emulator.trace import (ColumnarTrace, TraceFormatError,
                                  trace_program)
from repro.isa.assembler import assemble

from tests.differential.progen import generate_source

_SEED = 0xC01A4
_PROGRAMS = 8
_MAX_UOPS = 4000


def _fuzz_uops(index):
    program = assemble(generate_source(_SEED, index))
    uops, _stats = trace_program(program, max_instructions=_MAX_UOPS)
    return uops


def _assert_uops_equal(original, loaded):
    assert len(original) == len(loaded)
    for orig, got in zip(original, loaded):
        # Dataclass equality covers every declared field; the derived
        # slots are set outside __init__, so check them explicitly.
        for f in fields(orig):
            assert getattr(got, f.name) == getattr(orig, f.name), \
                f"uop #{orig.seq} field {f.name!r} drifted: " \
                f"{getattr(orig, f.name)!r} != {getattr(got, f.name)!r}"
        assert got.vp_elig == orig.vp_elig
        assert got.is_last_uop == orig.is_last_uop


@pytest.mark.parametrize("index", range(_PROGRAMS))
def test_rtrc_round_trip_over_fuzz_programs(index):
    uops = _fuzz_uops(index)
    packed = ColumnarTrace.from_uops(uops)
    loaded = ColumnarTrace.from_buffer(packed.to_bytes())
    _assert_uops_equal(uops, list(loaded))


def test_round_trip_through_file(tmp_path):
    uops = _fuzz_uops(0)
    packed = ColumnarTrace.from_uops(uops)
    path = tmp_path / "trace.rtrc"
    packed.to_file(path)
    for use_mmap in (True, False):
        loaded = ColumnarTrace.from_file(path, use_mmap=use_mmap)
        _assert_uops_equal(uops, list(loaded))


def test_kept_views_are_the_original_objects():
    uops = _fuzz_uops(1)
    packed = ColumnarTrace.from_uops(uops, keep_views=True)
    assert all(view is uop for view, uop in zip(packed.views, uops))


# -- torn / truncated / corrupted images --------------------------------------------
def _good_blob():
    return ColumnarTrace.from_uops(_fuzz_uops(2)).to_bytes()


def test_truncated_header_is_rejected():
    blob = _good_blob()
    with pytest.raises(TraceFormatError):
        ColumnarTrace.from_buffer(blob[:16])
    with pytest.raises(TraceFormatError):
        ColumnarTrace.from_buffer(b"")


def test_truncated_body_is_rejected():
    blob = _good_blob()
    for cut in (len(blob) - 1, len(blob) // 2, 48):
        with pytest.raises(TraceFormatError):
            ColumnarTrace.from_buffer(blob[:cut])


def test_corrupted_body_fails_the_checksum():
    blob = bytearray(_good_blob())
    blob[len(blob) // 2] ^= 0xFF
    with pytest.raises(TraceFormatError, match="checksum"):
        ColumnarTrace.from_buffer(bytes(blob))


def test_bad_magic_is_rejected():
    blob = bytearray(_good_blob())
    blob[:4] = b"NOPE"
    with pytest.raises(TraceFormatError, match="magic"):
        ColumnarTrace.from_buffer(bytes(blob))


def test_wrong_version_is_rejected():
    blob = bytearray(_good_blob())
    blob[4] ^= 0x7F   # version field follows the 4-byte magic
    with pytest.raises(TraceFormatError):
        ColumnarTrace.from_buffer(bytes(blob))
