"""DynUop trace records and aggregate trace statistics."""

from tests.helpers import emulate, final_value

from repro.isa.opcodes import ExecClass, Op
from repro.isa.registers import FLAGS


def test_seq_numbers_are_dense_and_match_index():
    trace, _ = emulate("""
        mov x0, #1
        ldr x1, [x2], #8
        hlt
    """)
    assert [u.seq for u in trace] == list(range(len(trace)))


def test_uop_index_and_count():
    trace, _ = emulate("""
        ldr x1, [x2], #8
        hlt
    """)
    load, add, hlt = trace
    assert (load.uop_index, load.uop_count) == (0, 2)
    assert (add.uop_index, add.uop_count) == (1, 2)
    assert not load.is_last_uop and add.is_last_uop
    assert hlt.is_last_uop


def test_branch_records():
    trace, stats = emulate("""
        mov x0, #2
    loop:
        subs x0, x0, #1
        b.ne loop
        hlt
    """)
    branches = [u for u in trace if u.is_branch]
    assert len(branches) == 2
    assert branches[0].taken and not branches[1].taken
    assert branches[0].target_pc == branches[0].pc - 4
    assert stats.taken_branches == 1
    assert stats.branches == 2


def test_call_return_records():
    trace, _ = emulate("""
        bl f
        hlt
    f:
        ret
    """)
    call = trace[0]
    ret = trace[1]
    assert call.is_call and call.dst == 30 and call.result == call.pc + 4
    assert ret.is_return and ret.target_pc == call.pc + 4


def test_memory_records():
    trace, stats = emulate("""
        adr x1, buf
        mov x2, #5
        str x2, [x1, #8]
        ldr x3, [x1, #8]
        hlt
    .data
    buf: .zero 16
    """)
    store = next(u for u in trace if u.is_store)
    load = next(u for u in trace if u.is_load)
    assert store.addr == load.addr
    assert store.store_value == 5
    assert load.result == 5
    assert store.size == load.size == 8
    assert stats.loads == 1 and stats.stores == 1


def test_flags_deps_recorded():
    trace, _ = emulate("""
        cmp  x0, #0
        cset x1, eq
        hlt
    """)
    cmp, cset = trace[0], trace[1]
    assert cmp.writes_flags and cmp.flags_out is not None
    assert FLAGS in cset.deps


def test_value_histogram_counts_gpr_writers_only():
    _trace, stats = emulate("""
        mov  x0, #7
        fmov d0, #1.0
        str  x0, [x1]
        hlt
    """, collect_value_histogram=True)
    assert stats.value_histogram == {7: 1}
    assert stats.gpr_writers == 1


def test_expansion_ratio():
    _trace, stats = emulate("""
        ldr x0, [x1], #8
        ldr x2, [x1], #8
        nop
        nop
        hlt
    """)
    # 2 cracked loads (2 µops each) + 3 singles = 7 µops / 5 arch insts.
    assert abs(stats.expansion_ratio - 7 / 5) < 1e-9


def test_exec_classes():
    trace, _ = emulate("""
        mul  x0, x1, x2
        udiv x3, x4, x5
        fadd d0, d1, d2
        fmul d3, d4, d5
        fdiv d6, d7, d8
        b    next
    next:
        hlt
    """)
    classes = [u.cls for u in trace]
    assert classes[:6] == [ExecClass.INT_MUL, ExecClass.INT_DIV,
                           ExecClass.FP_ALU, ExecClass.FP_MUL,
                           ExecClass.FP_DIV, ExecClass.BRANCH]


def test_src_regs_positional():
    trace, _ = emulate("""
        csel x0, x1, x2, eq
        hlt
    """)
    assert trace[0].src_regs == (1, 2)
    assert trace[0].cond is not None


def test_final_value_helper():
    trace, _ = emulate("""
        mov x5, #1
        mov x5, #2
        hlt
    """)
    assert final_value(trace, 5) == 2
