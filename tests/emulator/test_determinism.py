"""Golden determinism: traces are bit-identical across runs.

The whole experiment methodology (trace caching, resumable sweeps,
recorded EXPERIMENTS.md numbers) rests on the emulator being a pure
function of (program, budget) and the simulator a pure function of
(trace, config).
"""

import hashlib

from repro.emulator.trace import trace_program
from repro.workloads import get_workload


def _digest(trace):
    hasher = hashlib.sha256()
    for uop in trace:
        hasher.update(
            f"{uop.seq},{uop.pc},{uop.op.value},{uop.result},"
            f"{uop.addr},{uop.taken},{uop.next_pc};".encode())
    return hasher.hexdigest()


def test_trace_is_deterministic():
    workload = get_workload("event_queue")
    first, _ = trace_program(workload.program, max_instructions=3000)
    second, _ = trace_program(workload.program, max_instructions=3000)
    assert _digest(first) == _digest(second)


def test_trace_prefix_property():
    """A shorter budget yields an exact prefix of a longer run."""
    workload = get_workload("hash_loop")
    short, _ = trace_program(workload.program, max_instructions=1000)
    long, _ = trace_program(workload.program, max_instructions=2000)
    assert _digest(short) == _digest(long[:len(short)])


def test_simulation_is_pure_function_of_trace_and_config():
    from repro.pipeline.config import MachineConfig
    from repro.pipeline.core import CpuModel

    workload = get_workload("match_count")
    trace, _ = trace_program(workload.program, max_instructions=2500)
    runs = [CpuModel(trace, MachineConfig.tvp(spsr=True)).run().stats
            for _ in range(2)]
    for attribute in ("cycles", "vp_flushes", "int_prf_reads",
                      "iq_issued", "elim_spsr", "branch_mispredicts"):
        assert getattr(runs[0], attribute) == getattr(runs[1], attribute)


def test_seed_changes_fpc_randomness_only_slightly():
    """Different seeds may shift FPC acceptances but not correctness."""
    from repro.pipeline.config import MachineConfig
    from repro.pipeline.core import CpuModel

    workload = get_workload("match_count")
    trace, _ = trace_program(workload.program, max_instructions=2500)
    a = CpuModel(trace, MachineConfig.mvp(seed=111)).run().stats
    b = CpuModel(trace, MachineConfig.mvp(seed=222)).run().stats
    assert a.retired_uops == b.retired_uops == len(trace)
    assert a.vp_accuracy >= 0.999 or a.vp_correct_used == 0
    assert b.vp_accuracy >= 0.999 or b.vp_correct_used == 0
