"""Shared test helpers (importable: from tests.helpers import ...)."""

from repro.emulator.trace import trace_program
from repro.isa.assembler import assemble
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel


def emulate(source, max_instructions=10_000, **trace_kwargs):
    """Assemble + run the functional emulator; returns (trace, stats)."""
    return trace_program(assemble(source),
                         max_instructions=max_instructions, **trace_kwargs)


def run_pipeline(source, config=None, max_instructions=5_000):
    """Assemble, emulate and simulate; returns (model, result)."""
    trace, _ = emulate(source, max_instructions)
    model = CpuModel(trace, config or MachineConfig.baseline())
    return model, model.run()


def final_value(trace, reg):
    """Last value written to architectural register *reg* in a trace."""
    value = None
    for uop in trace:
        if uop.dst == reg:
            value = uop.result
    return value


