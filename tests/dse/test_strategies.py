"""Strategy tests: coverage, budgets, determinism of the propose loop.

Strategies are exercised against a fake evaluator (no simulation): a
fixed deterministic objective function over the `sizing` space, fed
back through the same propose→evaluate barrier the real engine uses.
"""

import pytest

from repro.dse.result import PointEval
from repro.dse.space import get_space, hardware_cost_kb
from repro.dse.strategies import (BOTTLENECK_TAGS, make_strategy,
                                  strategy_names)


def _fake_eval(space, index):
    """Deterministic synthetic PointEval (no simulation)."""
    point = space.point(index)
    ipc = 1.0 + ((index * 2654435761) % 1000) / 1000.0
    return PointEval(index=index, point_id=point.point_id,
                     assignment={d: l for d, l in point.labels},
                     fingerprint=point.fingerprint,
                     cost_kb=hardware_cost_kb(point.config),
                     geomean_ipc=round(ipc, 6),
                     ipc={"fake": round(ipc, 6)})


def _drive(strategy, space):
    """Run the propose/evaluate loop to completion; returns the
    evaluation order (list of batches)."""
    evaluated, batches = {}, []
    while True:
        batch = strategy.propose(evaluated)
        if not batch:
            return batches
        assert len(batch) == len(set(batch)), "duplicate proposals"
        assert not (set(batch) & set(evaluated)), "re-proposed a point"
        batches.append(list(batch))
        for index in batch:
            evaluated[index] = _fake_eval(space, index)


def test_strategy_registry():
    assert strategy_names() == ["beam", "grid", "headroom", "random"]
    with pytest.raises(KeyError):
        make_strategy("nope", get_space("smoke"))


@pytest.mark.parametrize("name", strategy_names())
def test_full_budget_reaches_full_coverage(name):
    """With no point cap every strategy eventually evaluates the whole
    space (beam/headroom via multi-start restarts)."""
    space = get_space("sizing")
    strategy = make_strategy(name, space, seed=3)
    batches = _drive(strategy, space)
    covered = sorted(i for batch in batches for i in batch)
    assert covered == list(range(space.size()))


@pytest.mark.parametrize("name", strategy_names())
def test_max_points_budget_is_respected(name):
    space = get_space("sizing")            # 18 points
    strategy = make_strategy(name, space, seed=3, max_points=7)
    batches = _drive(strategy, space)
    assert sum(len(b) for b in batches) == 7


@pytest.mark.parametrize("name", strategy_names())
def test_propose_sequence_is_a_pure_function_of_seed(name):
    space = get_space("sizing")
    runs = [_drive(make_strategy(name, space, seed=11), space)
            for _ in range(2)]
    assert runs[0] == runs[1]
    different = _drive(make_strategy(name, space, seed=12), space)
    if name != "grid":                     # grid ignores the seed
        assert different != runs[0]


def test_grid_enumerates_in_row_major_order():
    space = get_space("smoke")
    strategy = make_strategy("grid", space, seed=1)
    batches = _drive(strategy, space)
    assert [i for b in batches for i in b] == list(range(space.size()))


def test_grid_batch_size_is_fixed_not_jobs_derived():
    space = get_space("full")              # 216 points
    strategy = make_strategy("grid", space, seed=1, max_points=40)
    batches = _drive(strategy, space)
    assert [len(b) for b in batches] == [16, 16, 8]


def test_beam_proposes_neighbors_of_the_frontier():
    """After the random first round, beam proposals are one-dimension
    mutations of surviving parents (or restarts when exhausted)."""
    space = get_space("sizing")
    strategy = make_strategy("beam", space, seed=5)
    evaluated = {}
    first = strategy.propose(evaluated)
    for index in first:
        evaluated[index] = _fake_eval(space, index)
    second = strategy.propose(evaluated)
    parents = {p.index for p in strategy._parents(evaluated)}
    for index in second:
        assignment = space.assignment_at(index)
        diffs = [sum(a != b for a, b in
                     zip(assignment, space.assignment_at(parent)))
                 for parent in parents]
        assert min(diffs) == 1, f"{index} is not a neighbor of any parent"


def test_headroom_strategy_prioritizes_bottleneck_dimensions():
    """With a probe reporting queue pressure, mutations of
    sizing-tagged dimensions come before the rest of the batch."""
    space = get_space("full")
    strategy = make_strategy("headroom", space, seed=5, max_points=24)
    probed = []

    def probe(point_eval):
        probed.append(point_eval.index)
        return "queue_pressure"

    strategy.set_probe(probe)
    evaluated = {}
    first = strategy.propose(evaluated)
    for index in first:
        evaluated[index] = _fake_eval(space, index)
    second = strategy.propose(evaluated)
    assert probed, "the probe never ran"
    hot_tags = set(BOTTLENECK_TAGS["queue_pressure"])
    parents = {p.index for p in strategy._parents(evaluated)}

    def mutated_dimension(index):
        assignment = space.assignment_at(index)
        for parent in parents:
            diff = [d for d, (a, b) in enumerate(
                        zip(assignment, space.assignment_at(parent)))
                    if a != b]
            if len(diff) == 1:
                return space.dimensions[diff[0]]
        return None

    hotness = [bool(hot_tags & set(dim.tags))
               for dim in map(mutated_dimension, second)
               if dim is not None]
    # All hot mutations precede all cold ones.
    assert hotness == sorted(hotness, reverse=True)
    assert any(hotness)


def test_headroom_probe_failure_degrades_to_beam():
    space = get_space("sizing")
    strategy = make_strategy("headroom", space, seed=5)

    def broken_probe(point_eval):
        raise RuntimeError("analyzer unavailable")

    strategy.set_probe(broken_probe)
    batches = _drive(strategy, space)
    covered = sorted(i for batch in batches for i in batch)
    assert covered == list(range(space.size()))
