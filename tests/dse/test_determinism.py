"""Exploration determinism: seed-stable, jobs-independent, byte-exact.

The contract: ``ExploreResult.to_dict()`` is a pure function of
(space, strategy, seed, workloads, instructions).  Worker count, cache
temperature and journal state are implementation details that must not
leak into the serialized result.
"""

import json

import pytest

from repro.dse.explore import Explorer
from repro.harness.cache import SimulationCache

_WORKLOADS = ["hash_loop", "permute"]
_BUDGET = 2_000


def _run(tmp_path, tag, **kw):
    kw.setdefault("space", "sizing")
    kw.setdefault("strategy", "random")
    kw.setdefault("workloads", _WORKLOADS)
    kw.setdefault("instructions", _BUDGET)
    kw.setdefault("seed", 9)
    kw.setdefault("max_points", 6)
    kw.setdefault("cache", SimulationCache(tmp_path / tag))
    kw.setdefault("journal", None)
    return Explorer(**kw).run()


def _blob(result):
    return json.dumps(result.to_dict(), sort_keys=True, indent=2)


@pytest.mark.parametrize("strategy", ["grid", "random", "beam"])
def test_same_seed_is_byte_identical_across_runs(tmp_path, strategy):
    first = _run(tmp_path, "a", strategy=strategy)
    second = _run(tmp_path, "b", strategy=strategy)
    assert _blob(first) == _blob(second)


def test_jobs_1_and_jobs_4_are_byte_identical(tmp_path):
    serial = _run(tmp_path, "serial", jobs=1)
    pooled = _run(tmp_path, "pooled", jobs=4)
    assert _blob(serial) == _blob(pooled)


def test_different_seed_explores_differently(tmp_path):
    # Share one cache: the *trajectory* differs even when points warm.
    cache = SimulationCache(tmp_path / "shared")
    first = _run(tmp_path, "x", cache=cache, seed=9)
    second = _run(tmp_path, "y", cache=cache, seed=10)
    assert [p.index for p in first.points] != \
        [p.index for p in second.points]


def test_warm_and_cold_serialize_identically(tmp_path):
    cache = SimulationCache(tmp_path / "shared")
    cold = Explorer(space="smoke", strategy="grid", workloads=_WORKLOADS,
                    instructions=_BUDGET, seed=1, cache=cache,
                    journal=None)
    warm = Explorer(space="smoke", strategy="grid", workloads=_WORKLOADS,
                    instructions=_BUDGET, seed=1, cache=cache,
                    journal=None)
    first, second = cold.run(), warm.run()
    assert cold.simulated > 0
    assert warm.simulated == 0      # everything from cache / report cache
    assert _blob(first) == _blob(second)
