"""Parameter-space tests: compilation, validation, fingerprints.

The load-bearing property is cache sharing: a space point's compiled
config must fingerprint identically to the equivalent named
configuration, so explorations and ordinary sweeps hit the same
simulation-cache entries from either direction.
"""

import pytest

from repro.dse.space import (Choice, Dimension, ParameterSpace, get_space,
                             hardware_cost_kb, space_names)
from repro.harness.cache import config_fingerprint
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig, VPFlavor


def test_builtin_spaces_compile_every_point():
    for name in space_names():
        space = get_space(name)
        assert space.size() >= 2
        budget = min(space.size(), 24)   # full space for all but "full"
        for index in range(budget):
            point = space.point(index)
            assert point.fingerprint == config_fingerprint(point.config)
            assert point.index == index


def test_assignment_round_trip():
    space = get_space("sizing")
    for index in range(space.size()):
        assignment = space.assignment_at(index)
        assert space.index_of(assignment) == index
    with pytest.raises(IndexError):
        space.assignment_at(space.size())


def test_paper_space_fingerprints_match_named_configs():
    """The 4-point paper space IS the paper's four configs: every point
    hits the cache entries a plain `harness sweep` writes."""
    space = get_space("paper")
    assert space.size() == 4
    by_label = {point.point_id.split("=", 1)[1]: point.fingerprint
                for point in (space.point(i) for i in range(4))}
    for label, named in (("baseline", "baseline"), ("mvp", "mvp"),
                         ("tvp", "tvp"), ("gvp", "gvp")):
        expected = config_fingerprint(ExperimentRunner.config(named))
        assert by_label[label] == expected, label


def test_space_fingerprint_is_content_addressed():
    a, b = get_space("smoke"), get_space("smoke")
    assert a.fingerprint() == b.fingerprint()
    different = ParameterSpace(
        name="smoke",            # same name, different content
        base="tvp+spsr",
        dimensions=(Dimension("silence", tags=("vp",), choices=(
            Choice("49", {"vp_silence_cycles": 49}),
            Choice("251", {"vp_silence_cycles": 251}),
        )),),
    )
    assert different.fingerprint() != a.fingerprint()


def test_unknown_override_key_rejected():
    with pytest.raises(KeyError):
        Dimension("bad", tags=(), choices=(
            Choice("x", {"vp_silence_cycle": 15}),   # typo'd field
        ))


def test_duplicate_choice_labels_rejected():
    with pytest.raises(ValueError):
        Dimension("dup", tags=(), choices=(
            Choice("same", {"rob_entries": 128}),
            Choice("same", {"rob_entries": 192}),
        ))


def test_dimensions_claiming_same_key_rejected():
    dim = Dimension("a", tags=(), choices=(
        Choice("x", {"rob_entries": 128}),))
    clash = Dimension("b", tags=(), choices=(
        Choice("y", {"rob_entries": 192}),))
    with pytest.raises(ValueError):
        ParameterSpace(name="bad", base="baseline",
                       dimensions=(dim, clash))


def test_vtage_overrides_require_a_value_predictor():
    space = ParameterSpace(
        name="bad-vtage", base="baseline",
        dimensions=(Dimension("tag", tags=("vp",), choices=(
            Choice("t12", {"vtage.tag_bits": 12}),)),))
    with pytest.raises(ValueError):
        space.point(0)


def test_vtage_suboverrides_reach_the_geometry():
    space = get_space("vtage")
    for index in range(space.size()):
        config = space.point(index).config
        assert config.vtage_config() is not None
    # Distinct geometry choices produce distinct fingerprints.
    prints = {space.point(i).fingerprint for i in range(space.size())}
    assert len(prints) == space.size()


def test_hardware_cost_is_monotone_in_sizing():
    small = MachineConfig.baseline(rob_entries=128, iq_entries=48)
    large = MachineConfig.baseline(rob_entries=315, iq_entries=92)
    assert hardware_cost_kb(small) < hardware_cost_kb(large)
    # Adding a predictor or SpSR never makes the machine cheaper.
    assert hardware_cost_kb(MachineConfig.tvp()) > \
        hardware_cost_kb(MachineConfig.baseline())
    assert hardware_cost_kb(MachineConfig.tvp(spsr=True)) > \
        hardware_cost_kb(MachineConfig.tvp())


def test_point_id_is_stable_and_readable():
    point = get_space("smoke").point(0)
    assert point.point_id == "silence=50|rob=192"


def test_spsr_space_sets_flavor_and_spsr_together():
    space = get_space("spsr")
    configs = [space.point(i).config for i in range(space.size())]
    assert all(c.vp_flavor == VPFlavor.TVP for c in configs)
    assert [c.enable_spsr for c in configs] == [False, True, True]
    assert configs[2].spsr_constant_folding


def test_get_space_unknown_name():
    with pytest.raises(KeyError):
        get_space("nope")
