"""Property tests for the Pareto core (seeded fuzz, brute-force oracle).

The dominance algebra is the foundation the whole exploration engine
stands on, so it is tested the way the differential harness tests the
pipeline: hundreds of random point sets from a fixed
:class:`~repro.util.rng.XorShift64` stream, each checked against an
O(n²) brute-force reference and against the algebraic laws
(irreflexive, antisymmetric, transitive) that make "frontier" a
well-defined notion.  A failure message carries the (seed, case)
pair that reproduces the exact point set.
"""

import pytest

from repro.dse.pareto import dominates, pareto_frontier, prune_dominated
from repro.util.rng import XorShift64

_SEED = 0xA8E70                              # fixed fuzz stream
_CASES = 200


def _random_vectors(rng, max_points=24, max_dims=4, max_coord=8):
    """A random point set; small coordinate range forces ties and
    duplicates, the hard cases for dominance."""
    count = 1 + rng.next() % max_points
    dims = 1 + rng.next() % max_dims
    return [tuple(int(rng.next() % max_coord) for _ in range(dims))
            for _ in range(count)]


def _brute_force_frontier(vectors):
    """O(n²) reference: a point is on the frontier iff nothing
    dominates it."""
    return [i for i, v in enumerate(vectors)
            if not any(dominates(u, v) for u in vectors)]


def _cases():
    rng = XorShift64(_SEED)
    return [(case, _random_vectors(rng)) for case in range(_CASES)]


def test_frontier_matches_brute_force():
    for case, vectors in _cases():
        assert pareto_frontier(vectors) == _brute_force_frontier(vectors), \
            f"case {case} (seed {_SEED:#x}): {vectors}"


def test_dominance_is_irreflexive():
    for case, vectors in _cases():
        for v in vectors:
            assert not dominates(v, v), f"case {case}: {v}"


def test_dominance_is_antisymmetric():
    for case, vectors in _cases():
        for a in vectors:
            for b in vectors:
                if dominates(a, b):
                    assert not dominates(b, a), f"case {case}: {a} vs {b}"


def test_dominance_is_transitive():
    for case, vectors in _cases():
        for a in vectors:
            for b in vectors:
                if not dominates(a, b):
                    continue
                for c in vectors:
                    if dominates(b, c):
                        assert dominates(a, c), \
                            f"case {case}: {a} > {b} > {c}"


def test_pruning_never_discards_a_frontier_member():
    rng = XorShift64(_SEED ^ 0x51)
    for case in range(_CASES):
        vectors = _random_vectors(rng)
        frontier = set(pareto_frontier(vectors))
        for keep in (0, 1, 3):
            survivors = set(prune_dominated(vectors, keep=keep))
            assert frontier <= survivors, \
                f"case {case}, keep={keep}: dropped " \
                f"{sorted(frontier - survivors)}"
            assert len(survivors) <= len(frontier) + keep


def test_prune_keep_selects_best_dominated_by_key():
    vectors = [(5, 5), (4, 4), (1, 1), (3, 2)]
    # Frontier is just (5,5); keep=1 must add (4,4), the best by sum.
    assert pareto_frontier(vectors) == [0]
    assert prune_dominated(vectors, keep=1) == [0, 1]
    # A custom key flips the preference to the second coordinate.
    assert prune_dominated(vectors, keep=1,
                           key=lambda v: -v[1]) == [0, 2]


def test_duplicate_points_are_all_frontier_members():
    vectors = [(2, 2), (2, 2), (1, 3)]
    assert pareto_frontier(vectors) == [0, 1, 2]


def test_arity_mismatch_raises():
    with pytest.raises(ValueError):
        dominates((1, 2), (1, 2, 3))


def test_empty_and_singleton():
    assert pareto_frontier([]) == []
    assert pareto_frontier([(0, 0)]) == [0]
    assert prune_dominated([], keep=5) == []
