"""Explorer engine tests: frontier correctness, cache ladder, journal.

Small spaces and tiny instruction budgets keep these fast; the
correctness anchor is the acceptance property from the issue: a grid
exploration's frontier must equal brute force over the same points,
and warm re-runs must not simulate anything.
"""

import json
import os

import pytest

from repro import api
from repro.dse.explore import Explorer
from repro.dse.pareto import pareto_frontier
from repro.dse.report import render
from repro.dse.result import ExploreResult
from repro.harness.cache import SimulationCache, simulation_key

_WORKLOADS = ["hash_loop", "permute"]
_BUDGET = 2_000


def _explorer(tmp_path, **kw):
    kw.setdefault("space", "smoke")
    kw.setdefault("strategy", "grid")
    kw.setdefault("workloads", _WORKLOADS)
    kw.setdefault("instructions", _BUDGET)
    kw.setdefault("seed", 1)
    kw.setdefault("cache", SimulationCache(tmp_path / "cache"))
    kw.setdefault("journal", True)
    return Explorer(**kw)


def test_grid_frontier_matches_brute_force(tmp_path):
    explorer = _explorer(tmp_path)
    result = explorer.run()
    assert len(result.points) == result.space_size == 4
    vectors = [p.objectives for p in result.points]
    brute = [result.points[i].index for i in pareto_frontier(vectors)]
    assert list(result.frontier) == brute
    for workload in _WORKLOADS:
        wl_vectors = [(p.ipc[workload], -p.cost_kb) for p in result.points]
        assert list(result.frontier_by_workload[workload]) == \
            [result.points[i].index for i in pareto_frontier(wl_vectors)]


def test_warm_rerun_simulates_nothing(tmp_path):
    cold = _explorer(tmp_path)
    first = cold.run()
    assert cold.simulated == len(first.points) * len(_WORKLOADS)
    warm = _explorer(tmp_path)
    second = warm.run()
    assert warm.simulated == 0
    assert warm.from_report_cache
    assert first.to_dict() == second.to_dict()


def test_journal_replay_without_simulation_cache(tmp_path):
    """A journaled run resumes even with the result cache cleared:
    replay write-throughs stats straight from the journal."""
    journal_path = tmp_path / "explore.jsonl"
    first = _explorer(tmp_path, journal=str(journal_path)).run()
    # New cache directory: only the journal carries the results.
    resumed = _explorer(tmp_path, journal=str(journal_path),
                        cache=SimulationCache(tmp_path / "cache2"))
    second = resumed.run()
    assert resumed.simulated == 0
    assert resumed.from_journal == len(first.points)
    assert first.to_dict() == second.to_dict()
    # ... and the replay write-through populated the new cache.
    workload = resumed.workloads[0]
    key = simulation_key(workload.name, _BUDGET,
                         first.points[0].fingerprint)
    assert resumed.cache.load(key) is not None


def test_exploration_shares_cache_with_named_sweeps(tmp_path):
    """The paper space's points hit cache entries written by an
    ordinary named-config simulation, and vice versa."""
    cache = SimulationCache(tmp_path / "cache")
    api.simulate("hash_loop", config="tvp", instructions=_BUDGET,
                 cache=cache)
    explorer = Explorer(space="paper", strategy="grid",
                        workloads=["hash_loop"], instructions=_BUDGET,
                        cache=cache, journal=None)
    explorer.run()
    assert explorer.from_cache >= 1          # the tvp point was warm
    assert explorer.simulated == 3


def test_no_resume_resets_the_journal(tmp_path):
    journal_path = tmp_path / "explore.jsonl"
    _explorer(tmp_path, journal=str(journal_path)).run()
    assert os.path.exists(journal_path)
    fresh = _explorer(tmp_path, journal=str(journal_path), resume=False,
                      cache=SimulationCache(tmp_path / "cache3"))
    fresh.run()
    assert fresh.from_journal == 0
    assert fresh.simulated == len(_WORKLOADS) * 4


def test_max_points_truncates_the_search(tmp_path):
    explorer = _explorer(tmp_path, max_points=2, journal=None)
    result = explorer.run()
    assert len(result.points) == 2
    assert result.max_points == 2
    assert result.space_size == 4


def test_result_round_trips_through_json(tmp_path):
    result = _explorer(tmp_path, journal=None).run()
    payload = json.loads(json.dumps(result.to_dict()))
    assert ExploreResult.from_dict(payload).to_dict() == result.to_dict()


def test_pool_and_serial_agree(tmp_path):
    serial = _explorer(tmp_path, jobs=1,
                       cache=SimulationCache(tmp_path / "a"),
                       journal=None).run()
    pooled = _explorer(tmp_path, jobs=3,
                       cache=SimulationCache(tmp_path / "b"),
                       journal=None).run()
    assert serial.to_dict() == pooled.to_dict()


def test_reports_render_deterministically(tmp_path):
    result = _explorer(tmp_path, journal=None).run()
    for fmt in ("markdown", "latex", "json"):
        assert render(result, fmt) == render(result, fmt)
    markdown = render(result, "markdown")
    assert "Suite-wide Pareto frontier" in markdown
    for workload in _WORKLOADS:
        assert f"Frontier: `{workload}`" in markdown
    latex = render(result, "latex")
    assert r"\begin{tabular}" in latex
    with pytest.raises(KeyError):
        render(result, "html")


def test_api_explore_facade(tmp_path):
    result = api.explore("smoke", "grid", workloads=_WORKLOADS,
                         instructions=_BUDGET, seed=1,
                         cache=SimulationCache(tmp_path / "cache"))
    assert isinstance(result, ExploreResult)
    assert result.schema == "explore/2"
    assert result.workloads == tuple(_WORKLOADS)
