"""The assembled Table 2 memory system."""

from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import MemoryConfig


def test_default_geometry_matches_table2():
    memory = MemoryHierarchy()
    assert memory.l1d.sets * memory.l1d.ways * 64 == 128 * 1024
    assert memory.l1i.sets * memory.l1i.ways * 64 == 128 * 1024
    assert memory.l2.sets * memory.l2.ways * 64 == 1024 * 1024
    assert memory.l3.sets * memory.l3.ways * 64 == 8 * 1024 * 1024
    assert memory.l1d.latency == 4
    assert memory.l2.latency == 12
    assert memory.l3.latency == 37


def test_load_latency_ladder():
    memory = MemoryHierarchy()
    cold = memory.load(0x100000, 0)
    assert cold >= 4 + 12 + 37 + memory.config.dram_latency
    warm = memory.load(0x100000, cold)
    assert warm == cold + 4


def test_store_allocates():
    memory = MemoryHierarchy()
    done = memory.store(0x200000, 0)
    assert memory.load(0x200000, done) == done + 4


def test_ifetch_uses_l1i():
    memory = MemoryHierarchy()
    memory.ifetch(0x4000, 0)
    assert memory.l1i.stat_misses == 1
    assert memory.l1d.stat_misses == 0


def test_l2_shared_between_sides():
    memory = MemoryHierarchy()
    memory.ifetch(0x8000, 0)
    memory.load(0x8000, 1000)   # L1D miss but L2 hit
    assert memory.l2.stat_hits >= 1


def test_prefetchers_can_be_disabled():
    config = MemoryConfig(enable_stride_prefetcher=False,
                          enable_ampm_prefetcher=False)
    memory = MemoryHierarchy(config)
    assert memory.l1d.prefetcher is None
    assert memory.l2.prefetcher is None
    for i in range(16):
        memory.load(0x100000 + i * 64, i * 300)
    assert memory.l1d.stat_prefetch_issued == 0


def test_stride_prefetcher_fires_on_streaming():
    memory = MemoryHierarchy()
    cycle = 0
    for i in range(16):
        cycle = memory.load(0x100000 + i * 64, cycle, pc=0x4000)
    assert memory.l1d.stat_prefetch_issued > 0


def test_stats_snapshot_keys():
    memory = MemoryHierarchy()
    memory.load(0x1000, 0)
    stats = memory.stats()
    for key in ("L1D.hits", "L1D.misses", "L2.misses", "L3.misses",
                "dram.accesses", "tlb.walks"):
        assert key in stats
