"""Cache timing model: hits, misses, LRU, MSHRs, in-flight fills."""

import pytest

from repro.memory.cache import Cache, MainMemory


def make(size=1024, ways=2, latency=4, mshrs=4, parent_latency=100):
    memory = MainMemory(latency=parent_latency)
    cache = Cache("L1", size, ways, line_size=64, latency=latency,
                  mshrs=mshrs, parent=memory)
    return cache, memory


def test_miss_then_hit_latencies():
    cache, _ = make()
    first = cache.access(0x1000, cycle=10)
    assert first >= 10 + 4 + 100       # through the parent
    second = cache.access(0x1000, cycle=first + 1)
    assert second == first + 1 + 4     # pure hit latency
    assert cache.stat_misses == 1 and cache.stat_hits == 1


def test_same_line_different_offsets_hit():
    cache, _ = make()
    done = cache.access(0x1000, 0)
    assert cache.access(0x1038, done) == done + 4


def test_in_flight_fill_serves_at_arrival():
    """A second access to a line being filled waits for the fill, not a
    fresh memory trip."""
    cache, _ = make()
    first = cache.access(0x1000, 0)
    second = cache.access(0x1008, 1)
    assert second <= first + 1
    assert second > 1 + 4


def test_lru_eviction():
    cache, _ = make(size=256, ways=2)   # 2 sets, 2 ways
    set_stride = 2 * 64
    lines = [0x1000 + i * set_stride for i in range(3)]
    done = 0
    for addr in lines[:2]:
        done = cache.access(addr, done)
    cache.access(lines[0], done)        # refresh lines[0]
    done = cache.access(lines[2], done + 1)  # evicts lines[1]
    hit0 = cache.access(lines[0], done)
    assert hit0 == done + 4             # still resident
    miss1 = cache.access(lines[1], hit0)
    assert miss1 > hit0 + 4             # was evicted


def test_mshr_limit_delays_extra_misses():
    cache, _ = make(mshrs=2)
    t0 = cache.access(0x10000, 0)
    t1 = cache.access(0x20000, 0)
    t2 = cache.access(0x30000, 0)       # third miss: must wait for a slot
    assert t2 > max(t0, t1)
    assert cache.stat_mshr_stalls >= 1


def test_writeback_counted():
    cache, _ = make(size=128, ways=1)   # 2 sets, direct mapped
    done = cache.access(0x1000, 0, is_write=True)
    done = cache.access(0x1000 + 128, done)   # same set, evicts dirty line
    assert cache.stat_writebacks == 1


def test_prefetch_brings_line_without_demand_stats():
    cache, memory = make()
    cache.prefetch_line(0x5000, 0)
    assert cache.stat_prefetch_issued == 1
    assert cache.stat_misses == 0
    # A later demand access is a hit (timed at the fill arrival).
    done = cache.access(0x5000, 200)
    assert done == 200 + 4
    assert cache.stat_hits == 1


def test_early_demand_on_prefetched_line_waits_for_fill():
    cache, _ = make(parent_latency=100)
    cache.prefetch_line(0x5000, 0)
    done = cache.access(0x5000, 2)
    assert done > 100   # cannot beat the fill


def test_prefetch_duplicate_suppressed():
    cache, _ = make()
    cache.prefetch_line(0x5000, 0)
    cache.prefetch_line(0x5000, 1)
    assert cache.stat_prefetch_issued == 1


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache("bad", 1000, 3, parent=MainMemory())


def test_miss_rate():
    cache, _ = make()
    done = cache.access(0x1000, 0)
    cache.access(0x1000, done)
    assert cache.miss_rate == 0.5


def test_invalidate_all():
    cache, _ = make()
    done = cache.access(0x1000, 0)
    cache.invalidate_all()
    assert cache.access(0x1000, done) > done + 4  # miss again
