"""TLB hierarchy."""

import pytest

from repro.memory.tlb import Tlb, TlbHierarchy


def test_l1_hit_after_install():
    tlb = Tlb(entries=16, ways=2)
    assert not tlb.lookup(5)
    tlb.install(5)
    assert tlb.lookup(5)


def test_lru_within_set():
    tlb = Tlb(entries=4, ways=2)   # 2 sets
    tlb.install(0)       # set 0
    tlb.install(2)       # set 0
    tlb.lookup(0)        # refresh
    tlb.install(4)       # set 0: evicts vpn 2
    assert tlb.lookup(0)
    assert not tlb.lookup(2)


def test_geometry_validation():
    with pytest.raises(ValueError):
        Tlb(entries=10, ways=3)


def test_hierarchy_penalties():
    tlbs = TlbHierarchy(l1_entries=4, l1_ways=1, l2_entries=64, l2_ways=8,
                        l2_latency=4, walk_penalty=40)
    addr = 0x1234_5000
    first = tlbs.translate_data(addr)
    assert first == 4 + 40            # full walk
    assert tlbs.stat_walks == 1
    second = tlbs.translate_data(addr)
    assert second == 0                # L1 hit now
    # Evict from the tiny L1 with conflicting pages, keep L2 resident.
    for page in range(1, 6):
        tlbs.translate_data(addr + page * (4 << 12))
    third = tlbs.translate_data(addr)
    assert third in (0, 4)            # at worst an L2 hit, never a walk
    assert tlbs.stat_walks == 6


def test_itlb_and_dtlb_are_separate():
    tlbs = TlbHierarchy(l1_entries=4, l1_ways=1)
    addr = 0x8000
    tlbs.translate_data(addr)
    # The instruction side has not seen this page in its L1 (L2 has).
    penalty = tlbs.translate_inst(addr)
    assert penalty == tlbs.l2.latency
