"""Stride and AMPM prefetchers."""

from repro.memory.prefetch import AmpmPrefetcher, StridePrefetcher


class _RecordingCache:
    def __init__(self):
        self.prefetched = []

    def prefetch_line(self, addr, cycle):
        self.prefetched.append(addr)


def test_stride_detects_and_issues_degree():
    cache = _RecordingCache()
    prefetcher = StridePrefetcher(degree=4, confidence_threshold=2)
    pc = 0x4000
    for i in range(6):
        prefetcher.observe(cache, pc, 0x1000 + i * 64, cycle=i, hit=True)
    assert cache.prefetched, "a steady stride must trigger prefetches"
    # The last batch targets addr + stride * (1..4).
    last = cache.prefetched[-4:]
    base = 0x1000 + 5 * 64
    assert last == [base + 64 * d for d in range(1, 5)]


def test_stride_needs_confidence():
    cache = _RecordingCache()
    prefetcher = StridePrefetcher(degree=4, confidence_threshold=2)
    prefetcher.observe(cache, 0x4000, 0x1000, 0, True)
    prefetcher.observe(cache, 0x4000, 0x1040, 0, True)
    assert cache.prefetched == []   # stride seen once, not yet confident


def test_stride_random_pattern_stays_quiet():
    cache = _RecordingCache()
    prefetcher = StridePrefetcher(degree=4)
    addresses = [0x1000, 0x9040, 0x2300, 0x7000, 0x1240, 0x5480]
    for i, addr in enumerate(addresses):
        prefetcher.observe(cache, 0x4000, addr, i, True)
    assert cache.prefetched == []


def test_stride_negative_strides():
    cache = _RecordingCache()
    prefetcher = StridePrefetcher(degree=2, confidence_threshold=2)
    for i in range(6):
        prefetcher.observe(cache, 0x4000, 0x9000 - i * 64, i, True)
    assert cache.prefetched
    assert cache.prefetched[-1] < 0x9000


def test_stride_is_per_pc():
    cache = _RecordingCache()
    prefetcher = StridePrefetcher(degree=1, confidence_threshold=2)
    # Interleaved streams from two PCs with different strides.
    for i in range(6):
        prefetcher.observe(cache, 0x4000, 0x1000 + i * 64, i, True)
        prefetcher.observe(cache, 0x5000, 0x8000 + i * 128, i, True)
    assert any(a > 0x8000 for a in cache.prefetched)
    assert any(a < 0x8000 for a in cache.prefetched)


def test_stride_table_capacity_eviction():
    cache = _RecordingCache()
    prefetcher = StridePrefetcher(table_size=2, degree=1)
    for pc in (0x4000, 0x5000, 0x6000):
        prefetcher.observe(cache, pc, 0x1000, 0, True)
    assert len(prefetcher._table) == 2


def test_stride_ignores_anonymous_accesses():
    cache = _RecordingCache()
    prefetcher = StridePrefetcher()
    prefetcher.observe(cache, None, 0x1000, 0, True)
    assert prefetcher.stat_trainings == 0


def test_ampm_pattern_match():
    cache = _RecordingCache()
    prefetcher = AmpmPrefetcher(degree=2)
    zone = 0x10000
    # Touch lines 0,1,2 in order: offset 3 has (2,1) history -> prefetch.
    for offset in range(3):
        prefetcher.observe(cache, None, zone + offset * 64, 0, True)
    assert zone + 3 * 64 in cache.prefetched


def test_ampm_respects_zone_boundary():
    cache = _RecordingCache()
    prefetcher = AmpmPrefetcher(degree=8)
    zone = 0x10000
    for offset in range(60, 64):
        prefetcher.observe(cache, None, zone + offset * 64, 0, True)
    assert all(zone <= addr < zone + 4096 for addr in cache.prefetched)


def test_ampm_zone_capacity():
    cache = _RecordingCache()
    prefetcher = AmpmPrefetcher(zones=2)
    for zone_index in range(4):
        prefetcher.observe(cache, None, zone_index * 4096, 0, True)
    assert len(prefetcher._maps) == 2
