"""Rename-stage logic in isolation: DSR, SpSR application, VP install."""

import pytest

from tests.helpers import emulate

from repro.backend.naming import (
    FLAGS_NAME_BASE,
    FP_NAME_BASE,
    HARDWIRED_ONE,
    HARDWIRED_ZERO,
    INLINE_BASE,
    encode_inline,
    known_flags,
    known_value,
)
from repro.backend.prf import PhysicalRegisterFile
from repro.backend.rat import RegisterAliasTable
from repro.backend.rob import RobEntry, UopState
from repro.core.inflight import VPQueue
from repro.core.modes import VPFlavor
from repro.core.spsr import SpSREngine
from repro.core.vtage import Vtage, VtageConfig
from repro.isa.bits import to_unsigned
from repro.isa.registers import FLAGS
from repro.pipeline.config import MachineConfig
from repro.pipeline.stats import PipelineStats
from repro.rename.renamer import Renamer, vp_eligible


def uops_of(source, count=None):
    trace, _ = emulate(f"{source}\nnext: hlt", max_instructions=count or 64)
    return trace


class Rig:
    def __init__(self, config=None):
        self.config = config or MachineConfig()
        self.int_prf = PhysicalRegisterFile(self.config.int_phys_regs)
        self.fp_prf = PhysicalRegisterFile(self.config.fp_phys_regs,
                                           name_base=FP_NAME_BASE)
        self.flags_prf = PhysicalRegisterFile(64, name_base=FLAGS_NAME_BASE)
        self.rat = RegisterAliasTable(self.int_prf, self.fp_prf,
                                      self.flags_prf)
        self.stats = PipelineStats()
        spsr = SpSREngine() if self.config.enable_spsr else None
        vtage = None
        queue = None
        if self.config.vp_flavor is not VPFlavor.NONE:
            vtage = Vtage(self.config.vtage_config())
            queue = VPQueue()
        self.vtage = vtage
        self.queue = queue
        self.renamer = Renamer(self.config, self.rat, self.int_prf,
                               self.fp_prf, self.flags_prf, self.stats,
                               spsr_engine=spsr, vtage=vtage, vp_queue=queue)

    def rename(self, uop, cycle=1):
        entry = RobEntry(uop.seq, uop)
        outcome = self.renamer.rename(entry, cycle)
        return entry, outcome


# -- baseline DSR ---------------------------------------------------------------
def test_zero_idiom_movz():
    rig = Rig()
    uop = uops_of("mov x0, #0")[0]
    entry, outcome = rig.rename(uop)
    assert outcome.eliminated
    assert entry.dest_name == HARDWIRED_ZERO
    assert rig.rat.lookup(0) == HARDWIRED_ZERO
    assert entry.elim_kind == "zero_idiom"


def test_one_idiom_movz():
    rig = Rig()
    entry, outcome = rig.rename(uops_of("mov x3, #1")[0])
    assert outcome.eliminated and entry.dest_name == HARDWIRED_ONE


def test_eor_self_is_zero_idiom():
    rig = Rig()
    entry, outcome = rig.rename(uops_of("eor x2, x5, x5")[0])
    assert outcome.eliminated and entry.dest_name == HARDWIRED_ZERO


def test_and_with_xzr_is_zero_idiom():
    rig = Rig()
    entry, outcome = rig.rename(uops_of("and x2, x5, xzr")[0])
    assert outcome.eliminated and entry.dest_name == HARDWIRED_ZERO


def test_orr_with_xzr_is_move_idiom():
    rig = Rig()
    source_name = rig.rat.lookup(5)
    entry, outcome = rig.rename(uops_of("orr x2, xzr, x5")[0])
    assert outcome.eliminated
    assert entry.dest_name == source_name
    assert entry.elim_kind == "move"


def test_plain_mov_eliminated():
    rig = Rig()
    source_name = rig.rat.lookup(7)
    entry, outcome = rig.rename(uops_of("mov x2, x7")[0])
    assert outcome.eliminated and entry.dest_name == source_name


def test_move_elimination_disabled_by_config():
    rig = Rig(MachineConfig(enable_move_elimination=False))
    entry, outcome = rig.rename(uops_of("mov x2, x7")[0])
    assert not outcome.eliminated
    assert entry.dest_name != rig.rat.lookup(7)


def test_width_rule_blocks_64_to_32_move():
    """A w-view move of a 64-bit-written register cannot be eliminated."""
    rig = Rig()
    # Producer writes x7 as a 64-bit value.
    rig.rename(uops_of("add x7, x8, x9")[0])
    assert rig.int_prf.width_of(rig.rat.lookup(7)) == 64
    entry, outcome = rig.rename(uops_of("mov w2, w7")[0])
    assert not outcome.eliminated
    assert entry.move_width_blocked


def test_width_rule_allows_32_producer():
    rig = Rig()
    rig.rename(uops_of("add w7, w8, w9")[0])
    entry, outcome = rig.rename(uops_of("mov w2, w7")[0])
    assert outcome.eliminated


def test_nine_bit_idiom_requires_tvp():
    baseline = Rig()
    entry, outcome = baseline.rename(uops_of("mov x0, #42")[0])
    assert not outcome.eliminated
    tvp = Rig(MachineConfig.tvp())
    entry, outcome = tvp.rename(uops_of("mov x0, #42")[0])
    assert outcome.eliminated
    assert entry.elim_kind == "nine_bit_idiom"
    assert known_value(entry.dest_name) == 42


def test_nine_bit_idiom_negative_value():
    rig = Rig(MachineConfig.tvp())
    entry, outcome = rig.rename(uops_of("mov x0, #-7")[0])
    assert outcome.eliminated
    assert known_value(entry.dest_name) == to_unsigned(-7, 64)


def test_nine_bit_idiom_rejects_wide_imm():
    rig = Rig(MachineConfig.tvp())
    entry, outcome = rig.rename(uops_of("mov x0, #1000")[0])
    assert not outcome.eliminated


# -- SpSR at rename ---------------------------------------------------------------
def test_spsr_move_from_predicted_zero():
    rig = Rig(MachineConfig.mvp(spsr=True))
    # Make x1 known-zero via idiom elimination, then the add reduces.
    rig.rename(uops_of("mov x1, #0")[0])
    other_name = rig.rat.lookup(2)
    entry, outcome = rig.rename(uops_of("add x0, x1, x2")[0])
    assert outcome.eliminated
    assert entry.elim_kind == "spsr"
    assert entry.dest_name == other_name


def test_spsr_flag_setter_writes_hardwired_nzcv():
    rig = Rig(MachineConfig.mvp(spsr=True))
    rig.rename(uops_of("mov x1, #0")[0])
    entry, outcome = rig.rename(uops_of("ands x0, x1, x2")[0])
    assert outcome.eliminated
    flags = known_flags(rig.rat.lookup(FLAGS))
    assert flags == 0b0100   # Z set


def test_spsr_chain_through_flags_to_csel():
    rig = Rig(MachineConfig.mvp(spsr=True))
    rig.rename(uops_of("mov x1, #0")[0])
    rig.rename(uops_of("ands x0, x1, x2")[0])
    chosen = rig.rat.lookup(3)
    entry, outcome = rig.rename(uops_of("csel x5, x3, x4, eq")[0])
    assert outcome.eliminated
    assert entry.dest_name == chosen


def test_spsr_frontend_nzcv_invalidated_by_real_flag_writer():
    rig = Rig(MachineConfig.mvp(spsr=True))
    rig.rename(uops_of("mov x1, #0")[0])
    rig.rename(uops_of("ands x0, x1, x2")[0])
    assert known_flags(rig.rat.lookup(FLAGS)) is not None
    rig.rename(uops_of("cmp x8, x9")[0])   # unknown operands: executes
    assert known_flags(rig.rat.lookup(FLAGS)) is None
    entry, outcome = rig.rename(uops_of("csel x5, x3, x4, eq")[0])
    assert not outcome.eliminated


def test_spsr_branch_resolution():
    rig = Rig(MachineConfig.mvp(spsr=True))
    rig.rename(uops_of("mov x1, #0")[0])
    entry, outcome = rig.rename(uops_of("cbz x1, next")[0])
    assert outcome.eliminated
    assert outcome.resolved_branch_taken is True


def test_spsr_value_not_encodable_in_mvp_rejected():
    """subs with known 0,1 gives -1: MVP cannot encode it, no reduction."""
    rig = Rig(MachineConfig.mvp(spsr=True))
    rig.rename(uops_of("mov x1, #0")[0])
    rig.rename(uops_of("mov x2, #1")[0])
    entry, outcome = rig.rename(uops_of("subs x0, x1, x2")[0])
    assert not outcome.eliminated


def test_spsr_value_encodable_in_tvp():
    rig = Rig(MachineConfig.tvp(spsr=True))
    rig.rename(uops_of("mov x1, #0")[0])
    rig.rename(uops_of("mov x2, #1")[0])
    entry, outcome = rig.rename(uops_of("subs x0, x1, x2")[0])
    assert outcome.eliminated
    assert known_value(entry.dest_name) == to_unsigned(-1, 64)


def test_spsr_disabled_in_baseline():
    rig = Rig()
    rig.rename(uops_of("mov x1, #0")[0])
    entry, outcome = rig.rename(uops_of("add x0, x1, x2")[0])
    assert not outcome.eliminated


# -- value prediction install -----------------------------------------------------------
def train_confident(rig, pc, value, rounds=400):
    for _ in range(rounds):
        prediction = rig.vtage.predict(pc)
        rig.vtage.train(pc, value, prediction.info)


def test_vp_eligibility_rules():
    uops = uops_of("""
        add x0, x1, x2
        ldr x3, [x4]
        str x5, [x6]
        b.eq next
        fadd d0, d1, d2
        fcvtzs x7, d3
        cmp x8, x9
    """)
    flags = [vp_eligible(u) for u in uops[:7]]
    assert flags == [True, True, False, False, False, False, False]


def test_mvp_installs_hardwired_register():
    rig = Rig(MachineConfig.mvp())
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 0)
    entry, outcome = rig.rename(uop)
    assert outcome.vp_used
    assert entry.dest_name == HARDWIRED_ZERO
    assert entry.vp_predicted == 0


def test_mvp_cannot_install_wide_value():
    rig = Rig(MachineConfig.mvp())
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 1)   # MVP entry learns 0x1
    # Sanity: 1 installs fine.
    entry, outcome = rig.rename(uop)
    assert outcome.vp_used and entry.dest_name == HARDWIRED_ONE


def test_tvp_installs_inline_name():
    rig = Rig(MachineConfig.tvp())
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 42)
    entry, outcome = rig.rename(uop)
    assert outcome.vp_used
    assert entry.dest_name == encode_inline(42)
    assert INLINE_BASE <= entry.dest_name < INLINE_BASE + 512


def test_tvp_rejects_wide_value():
    """A 9-bit entry cannot even *store* a wide value, so it never becomes
    confident and is never installed — storage width and rename
    capability coincide by design (§3.3)."""
    rig = Rig(MachineConfig.tvp())
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 0x10000)
    prediction = rig.vtage.predict(uop.pc)
    assert not prediction.confident
    entry, outcome = rig.rename(uop)
    assert not outcome.vp_used


def test_gvp_wide_value_gets_physical_register():
    rig = Rig(MachineConfig.gvp())
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 0xDEAD0000)
    writes_before = rig.stats.int_prf_writes
    entry, outcome = rig.rename(uop)
    assert outcome.vp_used
    assert rig.int_prf.owns(entry.dest_name)
    assert rig.stats.int_prf_writes == writes_before + 1
    assert rig.stats.vp_phys_reg_predictions == 1
    assert rig.int_prf.ready_at(entry.dest_name) <= 2  # written at rename


def test_gvp_narrow_value_still_inlined():
    rig = Rig(MachineConfig.gvp())
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 5)
    entry, outcome = rig.rename(uop)
    assert outcome.vp_used
    assert not rig.int_prf.owns(entry.dest_name)


def test_silenced_predictions_not_used():
    rig = Rig(MachineConfig.mvp())
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 0)
    rig.queue.silence(0)   # silenced until cycle 250
    entry, outcome = rig.rename(uop, cycle=10)
    assert not outcome.vp_used
    assert rig.queue.stat_silenced_suppressions == 1


def test_unconfident_prediction_tracked_not_used():
    rig = Rig(MachineConfig.mvp())
    uop = uops_of("add x0, x1, x2")[0]
    # Barely trained: present in the base table but unconfident.
    prediction = rig.vtage.predict(uop.pc)
    rig.vtage.train(uop.pc, 0, prediction.info)
    entry, outcome = rig.rename(uop)
    assert not outcome.vp_used
    assert rig.queue.get(uop.seq) is not None   # FIFO tracks it for training


def test_full_fifo_blocks_prediction():
    rig = Rig(MachineConfig.mvp())
    rig.queue.capacity = 0
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 0)
    entry, outcome = rig.rename(uop)
    assert not outcome.vp_used
    assert rig.queue.get(uop.seq) is None


def test_vp_used_uop_still_has_sources_for_validation():
    rig = Rig(MachineConfig.mvp())
    uop = uops_of("add x0, x1, x2")[0]
    train_confident(rig, uop.pc, 0)
    entry, outcome = rig.rename(uop)
    assert outcome.vp_used
    assert len(entry.src_names) == 2   # it still issues and executes


# -- bookkeeping --------------------------------------------------------------------
def test_undo_log_records_all_mappings():
    rig = Rig()
    entry, _ = rig.rename(uops_of("adds x0, x1, x2")[0])
    renamed = {reg for reg, _prev, _new in entry.undo}
    assert renamed == {0, FLAGS}


def test_can_rename_respects_free_lists():
    rig = Rig()
    uop = uops_of("add x0, x1, x2")[0]
    while rig.int_prf.free_count:
        rig.int_prf.alloc()
    assert not rig.renamer.can_rename(uop)
    assert rig.renamer.can_rename(uops_of("cmp x0, x1")[0])
