"""Geometric history series."""

import pytest
from hypothesis import given, strategies as st

from repro.util.series import geometric_history_lengths


def test_paper_branch_series_endpoints():
    lengths = geometric_history_lengths(5, 640, 15)
    assert lengths[0] == 5
    assert lengths[-1] == 640
    assert len(lengths) == 15


def test_paper_value_series():
    lengths = geometric_history_lengths(2, 128, 7)
    assert lengths == [2, 4, 8, 16, 32, 64, 128]


def test_single_table():
    assert geometric_history_lengths(4, 64, 1) == [64]


@given(st.integers(1, 16), st.integers(2, 30))
def test_strictly_increasing(minimum, count):
    maximum = minimum * 64
    lengths = geometric_history_lengths(minimum, maximum, count)
    assert all(b > a for a, b in zip(lengths, lengths[1:]))
    assert lengths[-1] == maximum


@given(st.integers(8, 100), st.integers(2, 8))
def test_bounds_respected(minimum, count):
    maximum = minimum * 10
    lengths = geometric_history_lengths(minimum, maximum, count)
    assert lengths[0] >= minimum
    assert max(lengths) == maximum


def test_overconstrained_rejected():
    with pytest.raises(ValueError):
        geometric_history_lengths(1, 3, 10)
