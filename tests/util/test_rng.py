"""XorShift64 determinism and distribution sanity."""

import pytest

from repro.util.rng import XorShift64


def test_deterministic_for_seed():
    a = XorShift64(seed=42)
    b = XorShift64(seed=42)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_different_seeds_diverge():
    a = XorShift64(seed=1)
    b = XorShift64(seed=2)
    assert [a.next() for _ in range(10)] != [b.next() for _ in range(10)]


def test_zero_seed_rejected():
    with pytest.raises(ValueError):
        XorShift64(seed=0)


def test_values_are_64_bit():
    rng = XorShift64(seed=7)
    for _ in range(1000):
        value = rng.next()
        assert 0 <= value <= 0xFFFF_FFFF_FFFF_FFFF


def test_chance_one_is_always_true():
    rng = XorShift64(seed=3)
    assert all(rng.chance(1) for _ in range(50))


def test_chance_sixteen_rate_is_plausible():
    rng = XorShift64(seed=9)
    hits = sum(rng.chance(16) for _ in range(16_000))
    # Expected ~1000; allow generous slack for a 1000-trial binomial.
    assert 700 < hits < 1300


def test_no_short_cycles():
    rng = XorShift64(seed=5)
    seen = {rng.next() for _ in range(10_000)}
    assert len(seen) == 10_000
