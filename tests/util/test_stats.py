"""geomean / hmean / percent helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import amean, geomean, geomean_speedup_percent, hmean, percent


def test_geomean_basic():
    assert math.isclose(geomean([2, 8]), 4.0)


def test_geomean_empty():
    assert geomean([]) == 0.0


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_geomean_speedup_percent_identity():
    assert math.isclose(geomean_speedup_percent([0.0, 0.0]), 0.0)


def test_geomean_speedup_percent_mixed():
    # 1.10x and ~0.909x cancel geometrically.
    result = geomean_speedup_percent([10.0, -100.0 / 11.0])
    assert abs(result) < 1e-9


def test_hmean_ipc_style():
    assert math.isclose(hmean([1.0, 1.0]), 1.0)
    assert hmean([1.0, 3.0]) < amean([1.0, 3.0])


def test_hmean_empty():
    assert hmean([]) == 0.0


def test_percent_zero_denominator():
    assert percent(5, 0) == 0.0


def test_percent_basic():
    assert percent(1, 4) == 25.0


@given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
def test_mean_inequality(values):
    # Classic HM <= GM <= AM chain.
    assert hmean(values) <= geomean(values) + 1e-9
    assert geomean(values) <= amean(values) + 1e-9
