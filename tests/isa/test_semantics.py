"""Opcode semantics — property-tested against plain Python arithmetic."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.isa.bits import mask, to_signed, to_unsigned
from repro.isa.condition import Cond
from repro.isa.opcodes import Op
from repro.isa.semantics import (
    branch_taken,
    compute_csel,
    compute_fcmp,
    compute_fcvtzs,
    compute_fp,
    compute_int,
    compute_movk,
    compute_scvtf,
    compute_unary,
)

u64 = st.integers(0, 2**64 - 1)
u32 = st.integers(0, 2**32 - 1)


# -- integer ALU ---------------------------------------------------------------
@given(u64, u64)
def test_add_sub_inverse(a, b):
    total, _ = compute_int(Op.ADD, a, b, 64)
    back, _ = compute_int(Op.SUB, total, b, 64)
    assert back == a


@given(u64, u64)
def test_logicals(a, b):
    assert compute_int(Op.AND, a, b, 64)[0] == a & b
    assert compute_int(Op.ORR, a, b, 64)[0] == a | b
    assert compute_int(Op.EOR, a, b, 64)[0] == a ^ b
    assert compute_int(Op.BIC, a, b, 64)[0] == a & ~b & (2**64 - 1)


@given(u64, st.integers(0, 63))
def test_shifts(a, s):
    assert compute_int(Op.LSL, a, s, 64)[0] == mask(a << s, 64)
    assert compute_int(Op.LSR, a, s, 64)[0] == a >> s
    assert compute_int(Op.ASR, a, s, 64)[0] == \
        to_unsigned(to_signed(a, 64) >> s, 64)


@given(u64, u64)
def test_variable_shift_uses_modulo_width(a, b):
    assert compute_int(Op.LSL, a, b, 64)[0] == mask(a << (b % 64), 64)
    assert compute_int(Op.LSR, a, b, 32)[0] == mask(a, 32) >> (b % 32)


@given(u64, u64)
def test_mul(a, b):
    assert compute_int(Op.MUL, a, b, 64)[0] == (a * b) % 2**64


@given(u64, u64)
def test_udiv(a, b):
    expected = 0 if b == 0 else a // b
    assert compute_int(Op.UDIV, a, b, 64)[0] == expected


@given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1))
def test_sdiv_truncates_toward_zero(a, b):
    ua, ub = to_unsigned(a, 64), to_unsigned(b, 64)
    result = compute_int(Op.SDIV, ua, ub, 64)[0]
    expected = 0 if b == 0 else int(a / b)
    assert to_signed(result, 64) == expected


def test_sdiv_corner_cases():
    # Division by zero yields 0; INT_MIN / -1 wraps to INT_MIN (ARM).
    assert compute_int(Op.SDIV, 5, 0, 64)[0] == 0
    int_min = 1 << 63
    minus_one = 2**64 - 1
    assert compute_int(Op.SDIV, int_min, minus_one, 64)[0] == int_min


@given(u64, u64, st.integers(0, 4))
def test_register_shift_operand(a, b, shift):
    shifted, _ = compute_int(Op.ADD, a, b, 64, reg_shift=shift)
    assert shifted == mask(a + mask(b << shift, 64), 64)


@given(u32, u32)
def test_32bit_ops_stay_32bit(a, b):
    for op in (Op.ADD, Op.SUB, Op.MUL, Op.EOR):
        result, _ = compute_int(op, a, b, 32)
        assert result <= 0xFFFF_FFFF


def test_compute_int_rejects_non_alu():
    with pytest.raises(ValueError):
        compute_int(Op.LDR, 0, 0, 64)


# -- unary ---------------------------------------------------------------------
@given(u64)
def test_unary_ops(value):
    assert compute_unary(Op.CLZ, value, 64) == 64 - value.bit_length()
    assert compute_unary(Op.UBFM, value, 64, immr=0, imms=7) == value & 0xFF


# -- conditional selects ---------------------------------------------------------
@given(u64, u64, st.integers(0, 15))
def test_csel_picks_sides(a, b, flags):
    from repro.isa.condition import condition_holds

    result = compute_csel(Op.CSEL, Cond.EQ, flags, a, b, 64)
    assert result == (a if condition_holds(Cond.EQ, flags) else b)


@given(u64, u64)
def test_csinc_csneg_on_false(a, b):
    flags = 0  # EQ does not hold
    assert compute_csel(Op.CSINC, Cond.EQ, flags, a, b, 64) == mask(b + 1, 64)
    assert compute_csel(Op.CSNEG, Cond.EQ, flags, a, b, 64) == \
        to_unsigned(-to_signed(b, 64), 64)


def test_cset():
    assert compute_csel(Op.CSET, Cond.EQ, 0b0100, 0, 0, 64) == 1
    assert compute_csel(Op.CSET, Cond.EQ, 0b0000, 0, 0, 64) == 0


# -- movk -------------------------------------------------------------------------
@given(u64, st.integers(0, 2**16 - 1), st.sampled_from([0, 16, 32, 48]))
def test_movk_inserts_field(dst, imm, shift):
    result = compute_movk(dst, imm, shift, 64)
    assert (result >> shift) & 0xFFFF == imm
    cleared = result & ~(0xFFFF << shift) & (2**64 - 1)
    assert cleared == dst & ~(0xFFFF << shift) & (2**64 - 1)


# -- branches ---------------------------------------------------------------------
@given(u64)
def test_cbz_cbnz(value):
    assert branch_taken(Op.CBZ, None, 0, value, 0) == (value == 0)
    assert branch_taken(Op.CBNZ, None, 0, value, 0) == (value != 0)


@given(u64, st.integers(0, 63))
def test_tbz_tbnz(value, bit):
    expected = bool((value >> bit) & 1)
    assert branch_taken(Op.TBNZ, None, 0, value, bit) == expected
    assert branch_taken(Op.TBZ, None, 0, value, bit) == (not expected)


def test_unconditional_always_taken():
    for op in (Op.B, Op.BL, Op.BR, Op.RET):
        assert branch_taken(op, None, 0, 0, 0)


# -- floating point -----------------------------------------------------------------
def _bits(x):
    return struct.unpack("<Q", struct.pack("<d", x))[0]


finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e100, max_value=1e100)


@given(finite, finite)
def test_fp_add_mul(a, b):
    assert compute_fp(Op.FADD, _bits(a), _bits(b)) == _bits(a + b)
    assert compute_fp(Op.FMUL, _bits(a), _bits(b)) == _bits(a * b)


@given(finite, finite, finite)
def test_fmadd(a, b, c):
    assert compute_fp(Op.FMADD, _bits(a), _bits(b), _bits(c)) == _bits(a * b + c)


def test_fdiv_by_zero():
    inf = struct.unpack("<d", struct.pack("<Q",
                                          compute_fp(Op.FDIV, _bits(1.0), _bits(0.0))))[0]
    assert inf == float("inf")


@given(finite, finite)
def test_fcmp_flag_mapping(a, b):
    flags = compute_fcmp(_bits(a), _bits(b))
    if a == b:
        assert flags == 0b0110   # Z, C
    elif a < b:
        assert flags == 0b1000   # N
    else:
        assert flags == 0b0010   # C


def test_fcmp_nan_unordered():
    nan = _bits(float("nan"))
    assert compute_fcmp(nan, _bits(1.0)) == 0b0011  # C, V


@given(st.floats(-1e18, 1e18, allow_nan=False))
def test_fcvtzs_truncates(value):
    result = compute_fcvtzs(_bits(value), 64)
    assert to_signed(result, 64) == int(value)


def test_fcvtzs_saturates():
    big = _bits(1e30)
    assert to_signed(compute_fcvtzs(big, 64), 64) == 2**63 - 1
    assert to_signed(compute_fcvtzs(_bits(-1e30), 64), 64) == -(2**63)
    assert compute_fcvtzs(_bits(float("nan")), 64) == 0


@given(st.integers(-2**53, 2**53))
def test_scvtf_roundtrip(value):
    bits = compute_scvtf(to_unsigned(value, 64), 64)
    assert struct.unpack("<d", struct.pack("<Q", bits))[0] == float(value)
