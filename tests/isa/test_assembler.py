"""Assembler syntax coverage and error reporting."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import AddrMode
from repro.isa.opcodes import Op
from repro.isa.program import CODE_BASE, DATA_BASE
from repro.isa.registers import FP_BASE, SP, XZR


def one(source):
    program = assemble(source)
    assert len(program.instructions) == 1
    return program.instructions[0]


# -- data processing ----------------------------------------------------------
def test_three_reg_add():
    inst = one("add x0, x1, x2")
    assert inst.op is Op.ADD
    assert [o.reg for o in inst.dsts] == [0]
    assert [o.reg for o in inst.srcs] == [1, 2]


def test_add_immediate():
    inst = one("add x0, x1, #42")
    assert inst.imm == 42
    assert len(inst.srcs) == 1


def test_add_negative_hex_imm():
    assert one("add x0, x1, #-1").imm == -1
    assert one("add x0, x1, #0x1f").imm == 31


def test_shifted_register_operand():
    inst = one("add x0, x1, x2, lsl #3")
    assert inst.imm2 == 3
    assert len(inst.srcs) == 2


def test_shifted_immediate():
    assert one("add x0, x1, #2, lsl #12").imm == 2 << 12


def test_w_width_ops():
    inst = one("sub w3, w4, w5")
    assert inst.width == 32


def test_flag_setters():
    assert one("adds x0, x1, x2").op is Op.ADDS
    assert one("subs x0, x1, #1").op is Op.SUBS
    assert one("ands x0, x1, x2").op is Op.ANDS


def test_compare_forms():
    cmp = one("cmp x0, #7")
    assert cmp.op is Op.CMP and not cmp.dsts and cmp.imm == 7
    tst = one("tst x1, x2")
    assert tst.op is Op.TST and len(tst.srcs) == 2


def test_mov_register_and_immediate():
    assert one("mov x0, x1").op is Op.MOV
    movz = one("mov x0, #5")
    assert movz.op is Op.MOVZ and movz.imm == 5


def test_mov_negative_immediate_masks_to_width():
    assert one("mov x0, #-1").imm == 2**64 - 1
    assert one("mov w0, #-1").imm == 2**32 - 1


def test_movz_with_shift():
    assert one("movz x0, #1, lsl #16").imm == 1 << 16


def test_movn_inverts():
    assert one("movn x0, #0").imm == 2**64 - 1


def test_movk_keeps_dst_as_source():
    inst = one("movk x0, #0xBEEF, lsl #16")
    assert inst.op is Op.MOVK
    assert inst.srcs[0].reg == 0
    assert inst.imm == 0xBEEF and inst.imm2 == 16


def test_bitfield_aliases():
    ubfx = one("ubfx x0, x1, #8, #4")
    assert ubfx.op is Op.UBFM and ubfx.imm == 8 and ubfx.imm2 == 11
    uxtb = one("uxtb x0, x1")
    assert uxtb.imm == 0 and uxtb.imm2 == 7
    sxth = one("sxth x0, x1")
    assert sxth.op is Op.SBFM and sxth.imm2 == 15


def test_csel_family():
    csel = one("csel x0, x1, x2, eq")
    assert csel.op is Op.CSEL and csel.cond.value == "eq"
    cset = one("cset x0, ne")
    assert cset.op is Op.CSET
    assert all(s.reg == XZR for s in cset.srcs)


def test_madd():
    inst = one("madd x0, x1, x2, x3")
    assert [o.reg for o in inst.srcs] == [1, 2, 3]


# -- branches -------------------------------------------------------------------
def test_branch_forms():
    program = assemble("""
    top:
        b.ne top
        cbz x0, top
        tbz x1, #5, top
        b top
        bl top
        ret
        br x9
    """)
    ops = [i.op for i in program.instructions]
    assert ops == [Op.B_COND, Op.CBZ, Op.TBZ, Op.B, Op.BL, Op.RET, Op.BR]
    assert program.instructions[2].imm2 == 5
    assert program.instructions[5].srcs[0].reg == 30  # ret defaults to x30


def test_branch_condition_aliases():
    assert one("b.hs somewhere\nsomewhere:" if False else "b.hs t\nt:").cond.value == "cs"


def test_undefined_branch_target_rejected():
    with pytest.raises(AssemblyError):
        assemble("b nowhere")


# -- memory ----------------------------------------------------------------------
def test_load_offset_forms():
    base = one("ldr x0, [x1]")
    assert base.mem.mode is AddrMode.OFFSET and base.mem.offset_imm == 0
    imm = one("ldr x0, [x1, #8]")
    assert imm.mem.offset_imm == 8
    neg = one("ldr x0, [x1, #-16]")
    assert neg.mem.offset_imm == -16
    reg = one("ldr x0, [x1, x2]")
    assert reg.mem.offset_reg.reg == 2
    shifted = one("ldr x0, [x1, x2, lsl #3]")
    assert shifted.mem.offset_shift == 3


def test_load_writeback_forms():
    pre = one("ldr x0, [x1, #8]!")
    assert pre.mem.mode is AddrMode.PRE_INDEX and pre.mem.offset_imm == 8
    post = one("ldr x0, [x1], #8")
    assert post.mem.mode is AddrMode.POST_INDEX and post.mem.offset_imm == 8


def test_store_sizes():
    assert one("strb w0, [x1]").op is Op.STRB
    assert one("strh w0, [x1]").op is Op.STRH
    assert one("str x0, [sp, #16]").mem.base.reg == SP


def test_pair_forms():
    ldp = one("ldp x0, x1, [x2, #16]")
    assert ldp.op is Op.LDP and len(ldp.dsts) == 2
    stp = one("stp x3, x4, [x5], #32")
    assert stp.op is Op.STP and stp.mem.mode is AddrMode.POST_INDEX


def test_fp_load():
    inst = one("ldr d0, [x1]")
    assert inst.dsts[0].reg == FP_BASE


def test_bad_memory_operand():
    with pytest.raises(AssemblyError):
        assemble("ldr x0, (x1)")


# -- FP --------------------------------------------------------------------------
def test_fp_ops():
    assert one("fadd d0, d1, d2").op is Op.FADD
    assert one("fmadd d0, d1, d2, d3").op is Op.FMADD
    assert one("scvtf d0, x1").op is Op.SCVTF
    assert one("fcvtzs x0, d1").op is Op.FCVTZS


def test_fmov_immediate_stores_ieee_bits():
    import struct

    inst = one("fmov d0, #1.5")
    assert inst.imm == struct.unpack("<Q", struct.pack("<d", 1.5))[0]


# -- labels / data ------------------------------------------------------------------
def test_labels_and_adr():
    program = assemble("""
        adr x0, table
        adr x1, loop
    loop:
        b loop
    .data
    table: .quad 1, 2, 3
    """)
    assert program.instructions[0].imm == DATA_BASE
    assert program.instructions[1].imm == CODE_BASE + 2 * 4


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a:\na:\n nop")


def test_data_directives_layout():
    program = assemble("""
        nop
    .data
    a: .quad 0x1122334455667788
    b: .word 0xAABBCCDD
    c: .half 0x1234
    d: .byte 7
    e: .zero 16
    f: .double 2.0
    """)
    addresses = program.data_labels
    assert addresses["a"] == DATA_BASE
    assert addresses["b"] == DATA_BASE + 8
    assert addresses["c"] == DATA_BASE + 12
    assert addresses["d"] == DATA_BASE + 14
    assert addresses["e"] == DATA_BASE + 15
    assert addresses["f"] == DATA_BASE + 31


def test_align_directive():
    program = assemble("""
        nop
    .data
    a: .byte 1
    .align 8
    b: .quad 2
    """)
    assert program.data_labels["b"] % 8 == 0


def test_data_label_references():
    program = assemble("""
        nop
    .data
    head: .quad next
    next: .quad head
    """)
    image = dict(program.data_image)
    head = program.data_labels["head"]
    stored = int.from_bytes(image[head], "little")
    assert stored == program.data_labels["next"]


def test_quad_of_code_label():
    program = assemble("""
    entry:
        nop
    .data
    table: .quad entry
    """)
    image = dict(program.data_image)
    stored = int.from_bytes(image[program.data_labels["table"]], "little")
    assert stored == CODE_BASE


def test_comments_stripped():
    program = assemble("""
        nop        // a comment
        nop        ; another
    """)
    assert len(program.instructions) == 2


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("nop\nfrobnicate x0")
    assert "frobnicate" in str(excinfo.value)


def test_unknown_directive_rejected():
    with pytest.raises(AssemblyError):
        assemble(".bogus 4")


def test_instruction_in_data_section_rejected():
    with pytest.raises(AssemblyError):
        assemble(".data\nadd x0, x1, x2")
