"""Fixed-width arithmetic helpers — property-tested against Python ints."""

from hypothesis import given, strategies as st

from repro.isa.bits import (
    FLAG_C,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    add_with_flags,
    clz,
    fits_signed,
    logic_flags,
    mask,
    rbit,
    sbfm,
    sub_with_flags,
    to_signed,
    to_unsigned,
    ubfm,
)

u64 = st.integers(0, 2**64 - 1)
u32 = st.integers(0, 2**32 - 1)


# -- masking / sign views -------------------------------------------------------
@given(u64)
def test_mask64_idempotent(value):
    assert mask(mask(value, 64), 64) == mask(value, 64)


@given(st.integers(-2**70, 2**70))
def test_mask_is_mod_2n(value):
    assert mask(value, 64) == value % 2**64
    assert mask(value, 32) == value % 2**32


@given(u64)
def test_to_signed_roundtrip(value):
    assert to_unsigned(to_signed(value, 64), 64) == value


@given(u32)
def test_to_signed_roundtrip_32(value):
    assert to_unsigned(to_signed(value, 32), 32) == value


@given(st.integers(-(2**8), 2**8 - 1))
def test_fits_signed_9_exactly(value):
    assert fits_signed(to_unsigned(value, 64), 9)


@given(st.integers(2**8, 2**62))
def test_fits_signed_9_rejects_large(value):
    assert not fits_signed(value, 9)
    assert not fits_signed(to_unsigned(-value - 1, 64), 9)


def test_fits_signed_boundaries():
    assert fits_signed(255, 9)
    assert fits_signed(to_unsigned(-256, 64), 9)
    assert not fits_signed(256, 9)
    assert not fits_signed(to_unsigned(-257, 64), 9)


# -- flag-producing arithmetic ----------------------------------------------------
@given(u64, u64)
def test_add_matches_python(a, b):
    result, _flags = add_with_flags(a, b, 64)
    assert result == (a + b) % 2**64


@given(u64, u64)
def test_add_flags_nz(a, b):
    result, flags = add_with_flags(a, b, 64)
    assert bool(flags & FLAG_Z) == (result == 0)
    assert bool(flags & FLAG_N) == (result >= 2**63)


@given(u64, u64)
def test_add_carry_is_unsigned_overflow(a, b):
    _result, flags = add_with_flags(a, b, 64)
    assert bool(flags & FLAG_C) == (a + b >= 2**64)


@given(u64, u64)
def test_add_overflow_is_signed_overflow(a, b):
    _result, flags = add_with_flags(a, b, 64)
    signed_sum = to_signed(a, 64) + to_signed(b, 64)
    assert bool(flags & FLAG_V) == not_in_signed_range(signed_sum)


def not_in_signed_range(value):
    return not (-(2**63) <= value <= 2**63 - 1)


@given(u64, u64)
def test_sub_matches_python(a, b):
    result, _flags = sub_with_flags(a, b, 64)
    assert result == (a - b) % 2**64


@given(u64, u64)
def test_sub_carry_means_no_borrow(a, b):
    _result, flags = sub_with_flags(a, b, 64)
    assert bool(flags & FLAG_C) == (a >= b)


@given(u64, u64)
def test_unsigned_compare_via_flags(a, b):
    """The hi/ls conditions fall out of C and Z (ARMv8 semantics)."""
    _result, flags = sub_with_flags(a, b, 64)
    c, z = bool(flags & FLAG_C), bool(flags & FLAG_Z)
    assert (c and not z) == (a > b)
    assert (not c or z) == (a <= b)


@given(u64, u64)
def test_signed_compare_via_flags(a, b):
    _result, flags = sub_with_flags(a, b, 64)
    n, v = bool(flags & FLAG_N), bool(flags & FLAG_V)
    assert (n == v) == (to_signed(a, 64) >= to_signed(b, 64))


@given(u32, u32)
def test_sub_32bit_flags(a, b):
    _result, flags = sub_with_flags(a, b, 32)
    assert bool(flags & FLAG_C) == (a >= b)


@given(u64)
def test_logic_flags_clear_cv(value):
    flags = logic_flags(value, 64)
    assert not flags & FLAG_C
    assert not flags & FLAG_V
    assert bool(flags & FLAG_Z) == (value == 0)


# -- bit manipulation ---------------------------------------------------------------
@given(u64)
def test_rbit_involution(value):
    assert rbit(rbit(value, 64), 64) == value


def test_rbit_known():
    assert rbit(1, 64) == 1 << 63
    assert rbit(0b1011, 8) == 0b11010000


@given(u64)
def test_clz_matches_bit_length(value):
    assert clz(value, 64) == 64 - value.bit_length()


def test_clz_zero():
    assert clz(0, 64) == 64
    assert clz(0, 32) == 32


@given(u64, st.integers(0, 63))
def test_ubfm_lsr_alias(value, shift):
    # lsr #s == ubfm immr=s, imms=63
    assert ubfm(value, shift, 63, 64) == value >> shift


@given(u64, st.integers(1, 63))
def test_ubfm_lsl_alias(value, shift):
    # lsl #s == ubfm immr=64-s, imms=63-s
    assert ubfm(value, 64 - shift, 63 - shift, 64) == mask(value << shift, 64)


@given(u64)
def test_ubfm_uxtb(value):
    assert ubfm(value, 0, 7, 64) == value & 0xFF


@given(u64)
def test_sbfm_sxtb(value):
    expected = to_unsigned(to_signed(value & 0xFF, 8), 64)
    assert sbfm(value, 0, 7, 64) == expected


@given(u64, st.integers(0, 63))
def test_sbfm_asr_alias(value, shift):
    assert sbfm(value, shift, 63, 64) == to_unsigned(to_signed(value, 64) >> shift, 64)
