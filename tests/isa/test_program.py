"""Program container: addresses, labels, data image."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.program import CODE_BASE, DATA_BASE, INST_BYTES


def test_pc_index_roundtrip():
    program = assemble("nop\nnop\nnop")
    for index in range(3):
        pc = program.pc_of(index)
        assert program.index_of(pc) == index
    assert program.entry_pc == CODE_BASE


def test_resolve_code_and_data_labels():
    program = assemble("""
    start:
        nop
    .data
    blob: .zero 8
    """)
    assert program.resolve("start") == CODE_BASE
    assert program.resolve("blob") == DATA_BASE


def test_resolve_unknown_raises():
    program = assemble("nop")
    with pytest.raises(KeyError):
        program.resolve("missing")


def test_len_and_instruction_spacing():
    program = assemble("nop\nnop")
    assert len(program) == 2
    assert program.pc_of(1) - program.pc_of(0) == INST_BYTES


# -- index_of validation ----------------------------------------------------------
def test_index_of_rejects_misaligned_pc():
    program = assemble("nop\nnop")
    with pytest.raises(ValueError, match="misaligned"):
        program.index_of(CODE_BASE + 2)


def test_index_of_rejects_pc_below_code_base():
    program = assemble("nop")
    with pytest.raises(ValueError, match="out of range"):
        program.index_of(CODE_BASE - INST_BYTES)


def test_index_of_rejects_pc_past_code_end():
    program = assemble("nop\nnop")
    with pytest.raises(ValueError, match="out of range"):
        program.index_of(CODE_BASE + 2 * INST_BYTES)


# -- validate ---------------------------------------------------------------------
def test_validate_accepts_assembled_program():
    assemble("nop\nhlt").validate()  # must not raise


def test_validate_rejects_empty_program():
    from repro.isa.program import Program

    with pytest.raises(ValueError, match="no instructions"):
        Program().validate()


def test_validate_rejects_bad_entry():
    program = assemble("nop\nhlt")
    program.entry = 5
    with pytest.raises(ValueError, match="entry"):
        program.validate()


def test_validate_rejects_label_outside_code():
    program = assemble("nop\nhlt")
    program.labels["wild"] = 99
    with pytest.raises(ValueError, match="wild"):
        program.validate()


def test_validate_allows_trailing_end_label():
    program = assemble("b end\nend:")
    assert program.labels["end"] == 1  # one past the last instruction
    program.validate()  # must not raise


def test_validate_rejects_data_overlapping_code():
    program = assemble("nop\nhlt")
    program.data_labels["bad"] = CODE_BASE
    with pytest.raises(ValueError, match="overlaps the code section"):
        program.validate()


def test_validate_rejects_data_image_overlapping_code():
    program = assemble("nop\nhlt")
    program.data_image.append((CODE_BASE - 2, b"\x00" * 8))
    with pytest.raises(ValueError, match="overlaps the code section"):
        program.validate()
