"""Program container: addresses, labels, data image."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.program import CODE_BASE, DATA_BASE, INST_BYTES


def test_pc_index_roundtrip():
    program = assemble("nop\nnop\nnop")
    for index in range(3):
        pc = program.pc_of(index)
        assert program.index_of(pc) == index
    assert program.entry_pc == CODE_BASE


def test_resolve_code_and_data_labels():
    program = assemble("""
    start:
        nop
    .data
    blob: .zero 8
    """)
    assert program.resolve("start") == CODE_BASE
    assert program.resolve("blob") == DATA_BASE


def test_resolve_unknown_raises():
    program = assemble("nop")
    with pytest.raises(KeyError):
        program.resolve("missing")


def test_len_and_instruction_spacing():
    program = assemble("nop\nnop")
    assert len(program) == 2
    assert program.pc_of(1) - program.pc_of(0) == INST_BYTES
