"""Register namespace and operand parsing."""

import pytest

from repro.isa.registers import (
    FLAGS,
    FP_BASE,
    N_ARCH_REGS,
    Operand,
    Reg,
    SP,
    XZR,
    is_fpr,
    is_gpr,
    parse_reg,
    reg_name,
)


def test_layout_is_disjoint():
    assert XZR == 31
    assert SP == 32
    assert FLAGS == 33
    assert FP_BASE == 34
    assert N_ARCH_REGS == 34 + 32


def test_reg_constructors():
    assert Reg.x(0) == 0
    assert Reg.x(30) == 30
    assert Reg.d(0) == FP_BASE
    assert Reg.d(31) == FP_BASE + 31


def test_reg_constructors_range_checked():
    with pytest.raises(ValueError):
        Reg.x(31)
    with pytest.raises(ValueError):
        Reg.d(32)


def test_classification():
    assert is_gpr(0) and is_gpr(XZR)
    assert not is_gpr(SP) and not is_gpr(FLAGS)
    assert is_fpr(FP_BASE) and is_fpr(FP_BASE + 31)
    assert not is_fpr(FP_BASE + 32)


@pytest.mark.parametrize("token,reg,width", [
    ("x0", 0, 64), ("w0", 0, 32), ("x30", 30, 64), ("w12", 12, 32),
    ("xzr", XZR, 64), ("wzr", XZR, 32), ("sp", SP, 64),
    ("d0", FP_BASE, 64), ("d31", FP_BASE + 31, 64), ("X3", 3, 64),
])
def test_parse_reg_accepts(token, reg, width):
    operand = parse_reg(token)
    assert operand == Operand(reg, width)


@pytest.mark.parametrize("token", ["x31", "w31", "d32", "y0", "x", "#5", "q0"])
def test_parse_reg_rejects(token):
    assert parse_reg(token) is None


def test_operand_width_validation():
    with pytest.raises(ValueError):
        Operand(0, 16)


def test_operand_repr_and_names():
    assert repr(Operand(0, 64)) == "x0"
    assert repr(Operand(0, 32)) == "w0"
    assert reg_name(XZR) == "xzr"
    assert reg_name(XZR, 32) == "wzr"
    assert reg_name(SP) == "sp"
    assert reg_name(FLAGS) == "nzcv"
    assert reg_name(FP_BASE + 5) == "d5"


def test_zero_reg_property():
    assert Operand(XZR, 64).is_zero_reg
    assert not Operand(0, 64).is_zero_reg
