"""ARMv8 condition-code evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.bits import sub_with_flags, to_signed
from repro.isa.condition import Cond, condition_holds, invert, parse_cond

ALL_FLAGS = st.integers(0, 15)
u64 = st.integers(0, 2**64 - 1)


def test_parse_aliases():
    assert parse_cond("hs") is Cond.CS
    assert parse_cond("lo") is Cond.CC
    assert parse_cond("EQ") is Cond.EQ


def test_parse_unknown_raises():
    with pytest.raises(ValueError):
        parse_cond("zz")


@given(ALL_FLAGS)
def test_al_always_holds(flags):
    assert condition_holds(Cond.AL, flags)


@given(ALL_FLAGS)
def test_inversion_is_complement(flags):
    for cond in Cond:
        if cond is Cond.AL:
            continue
        assert condition_holds(cond, flags) != \
            condition_holds(invert(cond), flags)


def test_invert_al_raises():
    with pytest.raises(ValueError):
        invert(Cond.AL)


@given(u64, u64)
def test_conditions_match_comparison_semantics(a, b):
    """After cmp a, b every condition must equal the Python comparison."""
    _result, flags = sub_with_flags(a, b, 64)
    sa, sb = to_signed(a, 64), to_signed(b, 64)
    expectations = {
        Cond.EQ: a == b,
        Cond.NE: a != b,
        Cond.CS: a >= b,     # unsigned >=
        Cond.CC: a < b,      # unsigned <
        Cond.HI: a > b,      # unsigned >
        Cond.LS: a <= b,     # unsigned <=
        Cond.GE: sa >= sb,
        Cond.LT: sa < sb,
        Cond.GT: sa > sb,
        Cond.LE: sa <= sb,
    }
    for cond, expected in expectations.items():
        assert condition_holds(cond, flags) == expected, cond


def test_mi_pl_vs_vc():
    assert condition_holds(Cond.MI, 0b1000)
    assert condition_holds(Cond.PL, 0b0000)
    assert condition_holds(Cond.VS, 0b0001)
    assert condition_holds(Cond.VC, 0b0000)
