"""Decode-time µop expansion."""

from repro.isa.assembler import assemble
from repro.isa.instructions import AddrMode
from repro.isa.opcodes import Op
from repro.isa.uops import decode_program, expand


def _expand(source):
    program = assemble(source)
    return expand(program.instructions[0])


def test_simple_ops_stay_single():
    assert len(_expand("add x0, x1, x2")) == 1
    assert len(_expand("ldr x0, [x1, #8]")) == 1
    assert len(_expand("b.eq t\nt:")) == 1


def test_pre_index_load_cracks_to_add_then_load():
    uops = _expand("ldr x0, [x1, #8]!")
    assert len(uops) == 2
    assert uops[0].op is Op.ADD and uops[0].imm == 8
    assert uops[0].dsts[0].reg == 1
    assert uops[1].op is Op.LDR
    assert uops[1].mem.mode is AddrMode.OFFSET
    assert uops[1].mem.offset_imm == 0


def test_post_index_store_cracks_to_store_then_add():
    uops = _expand("str x0, [x1], #16")
    assert len(uops) == 2
    assert uops[0].op is Op.STR
    assert uops[0].mem.offset_imm == 0
    assert uops[1].op is Op.ADD and uops[1].imm == 16


def test_ldp_cracks_to_two_loads():
    uops = _expand("ldp x0, x1, [x2, #16]")
    assert [u.op for u in uops] == [Op.LDR, Op.LDR]
    assert uops[0].mem.offset_imm == 16
    assert uops[1].mem.offset_imm == 24
    assert uops[0].dsts[0].reg == 0
    assert uops[1].dsts[0].reg == 1


def test_ldp_32bit_element_spacing():
    uops = _expand("ldp w0, w1, [x2]")
    assert uops[1].mem.offset_imm == 4


def test_stp_post_index_is_three_uops():
    uops = _expand("stp x0, x1, [x2], #32")
    assert [u.op for u in uops] == [Op.STR, Op.STR, Op.ADD]
    assert uops[2].imm == 32


def test_ldp_pre_index_order():
    uops = _expand("ldp x0, x1, [x2, #16]!")
    assert [u.op for u in uops] == [Op.ADD, Op.LDR, Op.LDR]
    assert uops[0].imm == 16
    assert uops[1].mem.offset_imm == 0


def test_decode_program_indexes_by_instruction():
    program = assemble("""
        add x0, x0, #1
        ldr x1, [x2], #8
        nop
    """)
    decoded = decode_program(program)
    assert [len(u) for u in decoded] == [1, 2, 1]


def test_expansion_preserves_register_offset():
    program = assemble("ldr x0, [x1, x2, lsl #3]")
    uops = expand(program.instructions[0])
    assert len(uops) == 1
    assert uops[0].mem.offset_reg.reg == 2
    assert uops[0].mem.offset_shift == 3
