"""Physical register file: allocation, refcounts, conservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.naming import FP_NAME_BASE, HARDWIRED_ONE, HARDWIRED_ZERO
from repro.backend.prf import FreeListEmpty, PhysicalRegisterFile


def test_alloc_release_cycle():
    prf = PhysicalRegisterFile(8)
    name = prf.alloc()
    assert prf.refcount(name) == 1
    prf.release(name)
    assert prf.refcount(name) == 0
    assert name in [prf.alloc() for _ in range(prf.free_count)]


def test_hardwired_names_never_allocated():
    prf = PhysicalRegisterFile(8)
    names = [prf.alloc() for _ in range(prf.free_count)]
    assert HARDWIRED_ZERO not in names
    assert HARDWIRED_ONE not in names


def test_free_list_exhaustion():
    prf = PhysicalRegisterFile(4)
    for _ in range(2):   # names 2 and 3
        prf.alloc()
    with pytest.raises(FreeListEmpty):
        prf.alloc()


def test_refcount_shared_name():
    prf = PhysicalRegisterFile(8)
    name = prf.alloc()
    prf.add_ref(name)
    prf.add_ref(name)
    prf.release(name)
    prf.release(name)
    assert prf.refcount(name) == 1
    prf.release(name)
    assert prf.free_count == 6  # all but the allocated-and-freed one... back


def test_release_of_inline_names_is_noop():
    prf = PhysicalRegisterFile(8)
    before = prf.free_count
    prf.release(HARDWIRED_ZERO)
    prf.release(1024 + 5)
    prf.add_ref(HARDWIRED_ONE)
    assert prf.free_count == before


def test_underflow_detected():
    prf = PhysicalRegisterFile(8)
    name = prf.alloc()
    prf.release(name)
    with pytest.raises(AssertionError):
        prf.release(name)


def test_ready_tracking():
    prf = PhysicalRegisterFile(8)
    name = prf.alloc()
    assert prf.ready_at(name) > 1 << 50   # unscheduled
    prf.set_ready(name, 17)
    assert prf.ready_at(name) == 17
    assert prf.ready_at(HARDWIRED_ZERO) == 0
    assert prf.ready_at(1024 + 3) == 0     # inline names always ready


def test_alloc_with_ready_cycle():
    prf = PhysicalRegisterFile(8)
    name = prf.alloc(cycle_ready=5)
    assert prf.ready_at(name) == 5


def test_width_metadata():
    prf = PhysicalRegisterFile(8)
    name = prf.alloc()
    assert prf.width_of(name) == 64
    prf.set_width(name, 32)
    assert prf.width_of(name) == 32
    assert prf.width_of(1024 + 1) == 64   # non-owned names report 64


def test_name_base_offsets():
    prf = PhysicalRegisterFile(8, name_base=FP_NAME_BASE)
    name = prf.alloc()
    assert FP_NAME_BASE + 2 <= name < FP_NAME_BASE + 8
    assert prf.owns(name)
    assert not prf.owns(2)               # an INT name
    assert prf.ready_at(2) == 0


def test_conservation_checker_detects_leak():
    prf = PhysicalRegisterFile(8)
    prf.alloc()
    assert prf.check_conservation()      # allocated with refcount 1: fine
    prf._refcount[3] = 1                 # corrupt: free entry with a ref
    with pytest.raises(AssertionError):
        prf.check_conservation()


@settings(max_examples=50)
@given(st.lists(st.sampled_from(["alloc", "addref", "release"]),
                min_size=1, max_size=200))
def test_random_operation_sequences_conserve(ops):
    """Whatever the op order, the file never leaks or double-frees."""
    prf = PhysicalRegisterFile(16)
    live = []
    for op in ops:
        if op == "alloc" and prf.free_count:
            live.append(prf.alloc())
        elif op == "addref" and live:
            name = live[len(live) // 2]
            prf.add_ref(name)
            live.append(name)
        elif op == "release" and live:
            prf.release(live.pop())
        prf.check_conservation()
    assert prf.free_count + len(prf.live_registers()) == 14
