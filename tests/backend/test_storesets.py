"""Store Sets memory dependence predictor."""

from repro.backend.storesets import StoreSets


def test_untrained_predicts_no_dependence():
    sets = StoreSets()
    assert sets.load_dependence(0x4000) is None


def test_violation_creates_dependence():
    sets = StoreSets()
    store_pc, load_pc = 0x4000, 0x4100
    sets.train_violation(store_pc, load_pc)
    sets.store_renamed(store_pc, store_seq=10)
    assert sets.load_dependence(load_pc) == 10


def test_store_done_clears_lfst():
    sets = StoreSets()
    sets.train_violation(0x4000, 0x4100)
    sets.store_renamed(0x4000, 10)
    sets.store_done(0x4000, 10)
    assert sets.load_dependence(0x4100) is None


def test_store_done_ignores_stale_seq():
    sets = StoreSets()
    sets.train_violation(0x4000, 0x4100)
    sets.store_renamed(0x4000, 10)
    sets.store_renamed(0x4000, 20)   # newer instance
    sets.store_done(0x4000, 10)      # old one completing must not clear
    assert sets.load_dependence(0x4100) == 20


def test_lfst_tracks_most_recent_store():
    sets = StoreSets()
    sets.train_violation(0x4000, 0x4100)
    sets.store_renamed(0x4000, 10)
    sets.store_renamed(0x4000, 30)
    assert sets.load_dependence(0x4100) == 30


def test_merging_two_sets():
    sets = StoreSets()
    sets.train_violation(0x4000, 0x4100)   # set A = {st 0x4000, ld 0x4100}
    sets.train_violation(0x5000, 0x5100)   # set B = {st 0x5000, ld 0x5100}
    sets.train_violation(0x4000, 0x5100)   # violating pair merges into A
    sets.store_renamed(0x4000, 42)
    # Both loads now depend on the merged store.
    assert sets.load_dependence(0x4100) == 42
    assert sets.load_dependence(0x5100) == 42


def test_join_existing_set():
    sets = StoreSets()
    sets.train_violation(0x4000, 0x4100)
    sets.train_violation(0x4000, 0x4200)   # second load joins the set
    sets.store_renamed(0x4000, 5)
    assert sets.load_dependence(0x4100) == 5
    assert sets.load_dependence(0x4200) == 5


def test_stats():
    sets = StoreSets()
    sets.train_violation(0x4000, 0x4100)
    sets.store_renamed(0x4000, 1)
    sets.load_dependence(0x4100)
    assert sets.stat_trainings == 1
    assert sets.stat_load_waits == 1
