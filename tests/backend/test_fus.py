"""Functional unit port pool (Table 2 issue plan)."""

from repro.backend.fus import FunctionalUnits
from repro.isa.opcodes import ExecClass, Op
from repro.pipeline.config import MachineConfig


def make():
    fus = FunctionalUnits(MachineConfig())
    fus.new_cycle(10)
    return fus


def test_port_totals_match_table2():
    fus = make()
    assert len(fus.ports) == 15  # 4+2 ALU, 1 div, 3+1 FP, 2 ld, 2 st


def test_alu_capacity_is_six():
    fus = make()
    grants = sum(fus.try_issue(ExecClass.INT_ALU, 10) for _ in range(10))
    assert grants == 6


def test_mul_shares_alu_ports():
    fus = make()
    assert fus.try_issue(ExecClass.INT_MUL, 10)
    assert fus.try_issue(ExecClass.INT_MUL, 10)
    assert not fus.try_issue(ExecClass.INT_MUL, 10)
    # The two shared ports are taken: only 4 pure ALU slots remain.
    grants = sum(fus.try_issue(ExecClass.INT_ALU, 10) for _ in range(10))
    assert grants == 4


def test_alu_prefers_pure_ports():
    fus = make()
    for _ in range(4):
        assert fus.try_issue(ExecClass.INT_ALU, 10)
    # Pure ports exhausted; muls still fit on the shared ones.
    assert fus.try_issue(ExecClass.INT_MUL, 10)
    assert fus.try_issue(ExecClass.INT_MUL, 10)


def test_branch_uses_alu_port():
    fus = make()
    for _ in range(6):
        assert fus.try_issue(ExecClass.BRANCH, 10)
    assert not fus.try_issue(ExecClass.BRANCH, 10)


def test_load_store_ports():
    fus = make()
    assert sum(fus.try_issue(ExecClass.LOAD, 10) for _ in range(4)) == 2
    assert sum(fus.try_issue(ExecClass.STORE, 10) for _ in range(4)) == 2


def test_unpipelined_divider_blocks():
    fus = make()
    assert fus.try_issue(ExecClass.INT_DIV, 10)
    fus.new_cycle(11)
    assert not fus.try_issue(ExecClass.INT_DIV, 11)   # busy 20 cycles
    fus.new_cycle(10 + fus.latency_of(ExecClass.INT_DIV))
    assert fus.try_issue(ExecClass.INT_DIV, 10 + fus.latency_of(ExecClass.INT_DIV))


def test_fp_div_shares_one_port():
    fus = make()
    assert fus.try_issue(ExecClass.FP_DIV, 10)
    assert not fus.try_issue(ExecClass.FP_DIV, 10)
    # The other three FP ports still take fp-alu work.
    grants = sum(fus.try_issue(ExecClass.FP_ALU, 10) for _ in range(5))
    assert grants == 3


def test_issue_width_cap():
    config = MachineConfig(issue_width=3)
    fus = FunctionalUnits(config)
    fus.new_cycle(0)
    grants = sum(fus.try_issue(ExecClass.INT_ALU, 0) for _ in range(6))
    assert grants == 3


def test_latencies_match_table2():
    fus = make()
    assert fus.latency_of(ExecClass.INT_ALU) == 1
    assert fus.latency_of(ExecClass.INT_MUL) == 3
    assert fus.latency_of(ExecClass.INT_DIV) == 20
    assert fus.latency_of(ExecClass.FP_ALU) == 3
    assert fus.latency_of(ExecClass.FP_MUL) == 4
    assert fus.latency_of(ExecClass.FP_MUL, Op.FMADD) == 5
    assert fus.latency_of(ExecClass.FP_DIV) == 12
