"""Load/store queues: overlap logic, forwarding predicates, violations."""

from repro.backend.lsq import LoadStoreQueues, LsqEntry


def entry(seq, addr, size=8):
    return LsqEntry(seq, addr, size, rob_entry=None)


def test_overlap_and_containment():
    store = entry(1, 0x100, 8)
    assert store.overlaps(entry(2, 0x100, 8))
    assert store.overlaps(entry(2, 0x104, 8))   # partial
    assert store.overlaps(entry(2, 0xFC, 8))
    assert not store.overlaps(entry(2, 0x108, 8))
    assert not store.overlaps(entry(2, 0xF8, 8))
    assert store.contains(entry(2, 0x100, 8))
    assert store.contains(entry(2, 0x104, 4))
    assert not store.contains(entry(2, 0x104, 8))


def test_capacity_flags():
    queues = LoadStoreQueues(lq_capacity=1, sq_capacity=1)
    assert not queues.lq_full and not queues.sq_full
    queues.add_load(entry(1, 0x100))
    queues.add_store(entry(2, 0x200))
    assert queues.lq_full and queues.sq_full


def test_youngest_older_store_conflict():
    queues = LoadStoreQueues(8, 8)
    queues.add_store(entry(1, 0x100))
    queues.add_store(entry(3, 0x100))
    queues.add_store(entry(5, 0x200))   # different address
    queues.add_store(entry(7, 0x100))   # younger than the load
    load = entry(6, 0x100)
    conflict = queues.youngest_older_store_conflict(load)
    assert conflict.seq == 3


def test_no_conflict_when_disjoint():
    queues = LoadStoreQueues(8, 8)
    queues.add_store(entry(1, 0x300))
    assert queues.youngest_older_store_conflict(entry(2, 0x100)) is None


def test_violating_loads_are_younger_and_executed():
    queues = LoadStoreQueues(8, 8)
    executed = entry(5, 0x100)
    executed.executed_cycle = 10
    pending = entry(7, 0x100)            # younger but not yet executed
    older = entry(1, 0x100)
    older.executed_cycle = 3             # older than the store: no violation
    for load in (executed, pending, older):
        queues.add_load(load)
    store = entry(2, 0x100)
    victims = queues.violating_loads(store)
    assert victims == [executed]


def test_remove_committed():
    queues = LoadStoreQueues(8, 8)
    queues.add_load(entry(1, 0x100))
    queues.add_store(entry(2, 0x200))
    queues.remove_committed(1)
    queues.remove_committed(2)
    assert not queues.loads and not queues.stores


def test_squash_from():
    queues = LoadStoreQueues(8, 8)
    for seq in (1, 3, 5):
        queues.add_load(entry(seq, 0x100))
        queues.add_store(entry(seq + 1, 0x200))
    queues.squash_from(4)
    assert [e.seq for e in queues.loads] == [1, 3]
    assert [e.seq for e in queues.stores] == [2]
