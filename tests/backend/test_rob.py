"""Reorder buffer: capacity, ordering, squash-with-undo."""

import pytest

from repro.backend.naming import FLAGS_NAME_BASE, FP_NAME_BASE
from repro.backend.prf import PhysicalRegisterFile
from repro.backend.rat import RegisterAliasTable
from repro.backend.rob import ReorderBuffer, RobEntry, UopState


class _FakeUop:
    def __init__(self, seq):
        self.seq = seq
        self.text = f"uop{seq}"
        self.is_store = False


def make_rat():
    int_prf = PhysicalRegisterFile(64)
    fp_prf = PhysicalRegisterFile(64, name_base=FP_NAME_BASE)
    flags_prf = PhysicalRegisterFile(16, name_base=FLAGS_NAME_BASE)
    return RegisterAliasTable(int_prf, fp_prf, flags_prf), int_prf


def entry(seq):
    return RobEntry(seq, _FakeUop(seq))


def test_fifo_order_and_capacity():
    rob = ReorderBuffer(capacity=3)
    for seq in range(3):
        rob.push(entry(seq))
    assert rob.full
    assert rob.head().seq == 0
    with pytest.raises(AssertionError):
        rob.push(entry(3))
    assert rob.pop_head().seq == 0
    assert len(rob) == 2


def test_squash_from_removes_young_inclusive():
    rob = ReorderBuffer(capacity=8)
    rat, _ = make_rat()
    for seq in range(5):
        rob.push(entry(seq))
    squashed = rob.squash_from(2, rat)
    assert sorted(e.seq for e in squashed) == [2, 3, 4]
    assert [e.seq for e in rob.entries] == [0, 1]


def test_squash_undoes_rat_in_reverse_order():
    rob = ReorderBuffer(capacity=8)
    rat, int_prf = make_rat()
    original = rat.lookup(3)
    # Two successive renames of x3 by seq 0 and seq 1.
    names = []
    for seq in range(2):
        e = entry(seq)
        name = int_prf.alloc()
        prev = rat.write(3, name)
        e.undo.append((3, prev, name))
        names.append(name)
        rob.push(e)
    assert rat.lookup(3) == names[1]
    rob.squash_from(0, rat)
    assert rat.lookup(3) == original
    int_prf.check_conservation()


def test_partial_squash_keeps_older_mapping():
    rob = ReorderBuffer(capacity=8)
    rat, int_prf = make_rat()
    names = []
    for seq in range(3):
        e = entry(seq)
        name = int_prf.alloc()
        prev = rat.write(3, name)
        e.undo.append((3, prev, name))
        names.append(name)
        rob.push(e)
    rob.squash_from(1, rat)
    assert rat.lookup(3) == names[0]
    assert len(rob) == 1


def test_multi_dest_entry_undo():
    """An entry with a GPR dest and a flags dest rolls back both."""
    from repro.isa.registers import FLAGS

    rob = ReorderBuffer(capacity=4)
    rat, int_prf = make_rat()
    old_reg = rat.lookup(5)
    old_flags = rat.lookup(FLAGS)
    e = entry(0)
    name = int_prf.alloc()
    e.undo.append((5, rat.write(5, name), name))
    flags_prf = rat._prf_of(FLAGS)
    fname = flags_prf.alloc()
    e.undo.append((FLAGS, rat.write(FLAGS, fname), fname))
    rob.push(e)
    rob.squash_from(0, rat)
    assert rat.lookup(5) == old_reg
    assert rat.lookup(FLAGS) == old_flags


def test_entry_initial_state():
    e = entry(7)
    assert e.state is UopState.WAITING
    assert e.undo == []
    assert not e.vp_used and not e.move_width_blocked
