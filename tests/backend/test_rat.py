"""RAT protocols: rename, undo, commit, value-name reclamation rules."""

import pytest

from repro.backend.naming import (
    FLAGS_NAME_BASE,
    FP_NAME_BASE,
    HARDWIRED_ONE,
    HARDWIRED_ZERO,
    INLINE_BASE,
)
from repro.backend.prf import PhysicalRegisterFile
from repro.backend.rat import RegisterAliasTable
from repro.isa.registers import FLAGS, FP_BASE, XZR


@pytest.fixture
def rig():
    int_prf = PhysicalRegisterFile(40)
    fp_prf = PhysicalRegisterFile(40, name_base=FP_NAME_BASE)
    flags_prf = PhysicalRegisterFile(16, name_base=FLAGS_NAME_BASE)
    rat = RegisterAliasTable(int_prf, fp_prf, flags_prf)
    return rat, int_prf, fp_prf, flags_prf


def test_initial_state_consistent(rig):
    rat, int_prf, _, _ = rig
    assert rat.check_consistent_with_committed()
    assert rat.lookup(XZR) == HARDWIRED_ZERO
    int_prf.check_conservation()


def test_xzr_is_immutable(rig):
    rat, _, _, _ = rig
    assert rat.write(XZR, 7) == HARDWIRED_ZERO
    assert rat.lookup(XZR) == HARDWIRED_ZERO


def test_rename_then_commit_frees_old(rig):
    rat, int_prf, _, _ = rig
    old = rat.lookup(3)
    new = int_prf.alloc()           # ROB reference
    prev = rat.write(3, new)
    assert prev == old
    assert rat.lookup(3) == new
    free_before = int_prf.free_count
    rat.commit(3, new)
    rat.drop_rob_ref(3, new)
    assert int_prf.free_count == free_before + 1   # old name reclaimed
    assert rat.check_consistent_with_committed()


def test_rename_then_undo_restores(rig):
    rat, int_prf, _, _ = rig
    old = rat.lookup(3)
    new = int_prf.alloc()
    prev = rat.write(3, new)
    rat.undo(3, prev, new)
    rat.drop_rob_ref(3, new)
    assert rat.lookup(3) == old
    assert rat.check_consistent_with_committed()
    int_prf.check_conservation()


def test_value_name_in_rat_acts_as_register_file(rig):
    """§3.2.1: the RAT stores the prediction as a name; nothing to free."""
    rat, int_prf, _, _ = rig
    value_name = INLINE_BASE + 0x42
    int_prf.add_ref(value_name)     # ROB ref (no-op)
    prev = rat.write(5, value_name)
    free_before = int_prf.free_count
    rat.commit(5, value_name)
    rat.drop_rob_ref(5, value_name)
    assert int_prf.free_count == free_before + 1   # prev real name freed
    # Overwrite the value name: nothing goes on the free list for it.
    new = int_prf.alloc()
    rat.write(5, new)
    rat.commit(5, new)
    rat.drop_rob_ref(5, new)
    assert rat.check_consistent_with_committed()
    int_prf.check_conservation()
    del prev


def test_hardwired_names_never_reclaimed(rig):
    rat, int_prf, _, _ = rig
    int_prf.add_ref(HARDWIRED_ONE)
    rat.write(7, HARDWIRED_ONE)
    rat.commit(7, HARDWIRED_ONE)
    rat.drop_rob_ref(7, HARDWIRED_ONE)
    assert rat.lookup(7) == HARDWIRED_ONE
    int_prf.check_conservation()


def test_move_elimination_shares_names(rig):
    """Two arch regs mapped to one name; reclamation waits for both."""
    rat, int_prf, _, _ = rig
    producer = int_prf.alloc()
    rat.write(1, producer)
    rat.commit(1, producer)
    rat.drop_rob_ref(1, producer)
    # Move-eliminate: x2 takes x1's name.
    int_prf.add_ref(producer)       # ROB ref of the move
    rat.write(2, producer)
    rat.commit(2, producer)
    rat.drop_rob_ref(2, producer)
    assert rat.lookup(1) == rat.lookup(2) == producer
    # Overwrite x1: producer must stay (x2 still references it).
    other = int_prf.alloc()
    rat.write(1, other)
    rat.commit(1, other)
    rat.drop_rob_ref(1, other)
    assert int_prf.refcount(producer) > 0
    # Overwrite x2 as well: now the producer is reclaimed.
    third = int_prf.alloc()
    rat.write(2, third)
    rat.commit(2, third)
    rat.drop_rob_ref(2, third)
    assert int_prf.refcount(producer) == 0
    int_prf.check_conservation()


def test_fp_and_flags_use_their_own_files(rig):
    rat, int_prf, fp_prf, flags_prf = rig
    fp_new = fp_prf.alloc()
    rat.write(FP_BASE + 3, fp_new)
    flags_new = flags_prf.alloc()
    rat.write(FLAGS, flags_new)
    assert rat.lookup(FP_BASE + 3) == fp_new
    assert rat.lookup(FLAGS) == flags_new
    int_prf.check_conservation()
    fp_prf.check_conservation()


def test_inconsistency_detected(rig):
    rat, int_prf, _, _ = rig
    new = int_prf.alloc()
    rat.write(4, new)   # spec != committed until commit
    with pytest.raises(AssertionError):
        rat.check_consistent_with_committed()
