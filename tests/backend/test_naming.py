"""Overloaded physical register names."""

from hypothesis import given, strategies as st

from repro.backend.naming import (
    FLAG_INLINE_BASE,
    HARDWIRED_ONE,
    HARDWIRED_ZERO,
    INLINE_BASE,
    encode_flag_inline,
    encode_inline,
    inline_flags_value,
    is_inline_name,
    is_real_register,
    known_flags,
    known_value,
)
from repro.isa.bits import to_unsigned


def test_hardwired_values():
    assert known_value(HARDWIRED_ZERO) == 0
    assert known_value(HARDWIRED_ONE) == 1


def test_zero_one_prefer_hardwired_names():
    assert encode_inline(0) == HARDWIRED_ZERO
    assert encode_inline(1) == HARDWIRED_ONE


@given(st.integers(-256, 255))
def test_inline_roundtrip(value):
    unsigned = to_unsigned(value, 64)
    name = encode_inline(unsigned)
    assert known_value(name) == unsigned


def test_inline_rejects_wide_values():
    import pytest

    with pytest.raises(ValueError):
        encode_inline(256)
    with pytest.raises(ValueError):
        encode_inline(to_unsigned(-257, 64))


def test_negative_inline_is_sign_extended():
    name = encode_inline(to_unsigned(-1, 64))
    assert known_value(name) == 0xFFFF_FFFF_FFFF_FFFF


def test_real_register_range():
    assert not is_real_register(HARDWIRED_ZERO)
    assert not is_real_register(HARDWIRED_ONE)
    assert is_real_register(2)
    assert is_real_register(291)
    assert not is_real_register(INLINE_BASE)
    assert not is_real_register(INLINE_BASE + 511)


def test_real_registers_have_no_known_value():
    assert known_value(5) is None
    assert known_value(291) is None


@given(st.integers(0, 15))
def test_flag_inline_roundtrip(flags):
    name = encode_flag_inline(flags)
    assert known_flags(name) == flags
    assert inline_flags_value(name) == flags


def test_flag_names_disjoint_from_value_names():
    assert not is_inline_name(FLAG_INLINE_BASE)
    assert known_value(FLAG_INLINE_BASE) is None
    assert known_flags(INLINE_BASE) is None
    assert known_flags(2) is None
