"""Parallel fan-out: determinism versus the serial runner."""

from dataclasses import asdict

from repro.harness.orchestrator import OrchestratorConfig
from repro.harness.parallel import ParallelRunner, make_runner
from repro.harness.runner import ExperimentRunner
from repro.workloads import suite

_WORKLOADS = ["hash_loop", "permute"]
_CONFIGS = ("baseline", "mvp", "tvp", "gvp", "mvp+spsr", "tvp+spsr",
            "gvp+spsr")
_BUDGET = 1200


def _stats_of(results):
    return {(config, workload): asdict(record.stats)
            for config, by_workload in results.items()
            for workload, record in by_workload.items()}


def test_parallel_matches_serial_for_every_config():
    serial = ExperimentRunner(workloads=suite(_WORKLOADS),
                              instructions=_BUDGET)
    parallel = ParallelRunner(
        workloads=suite(_WORKLOADS), instructions=_BUDGET, jobs=2,
        orchestration=OrchestratorConfig(oversubscribe=True))
    serial_results = serial.run_all(_CONFIGS)
    parallel_results = parallel.run_all(_CONFIGS)
    assert _stats_of(parallel_results) == _stats_of(serial_results)


def test_jobs_one_is_pure_serial():
    runner = ParallelRunner(workloads=suite(_WORKLOADS),
                            instructions=_BUDGET, jobs=1)
    reference = ExperimentRunner(workloads=suite(_WORKLOADS),
                                 instructions=_BUDGET)
    assert (_stats_of(runner.run_all(("baseline", "tvp")))
            == _stats_of(reference.run_all(("baseline", "tvp"))))


def test_parallel_results_are_memoized():
    runner = ParallelRunner(
        workloads=suite(_WORKLOADS), instructions=_BUDGET, jobs=2,
        orchestration=OrchestratorConfig(oversubscribe=True))
    first = runner.run_all(("baseline",))
    record = first["baseline"]["hash_loop"]
    again = runner.run(runner.workloads[0], "baseline")
    assert again is record


def test_make_runner_selects_class():
    assert isinstance(make_runner(workloads=suite(_WORKLOADS), jobs=2),
                      ParallelRunner)
    serial = make_runner(workloads=suite(_WORKLOADS), jobs=1)
    assert isinstance(serial, ExperimentRunner)
    assert not isinstance(serial, ParallelRunner)
