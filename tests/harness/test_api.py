"""Tests for the stable ``repro.api`` facade."""

import json
from dataclasses import asdict

from repro import api
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig
from repro.workloads import get_workload, suite

_BUDGET = 1200


def test_simulate_matches_direct_runner():
    result = api.simulate("hash_loop", "tvp", instructions=_BUDGET)
    runner = ExperimentRunner(workloads=suite(["hash_loop"]),
                              instructions=_BUDGET)
    record = runner.run(get_workload("hash_loop"), "tvp")
    assert result.workload == "hash_loop"
    assert result.config == "tvp"
    assert result.instructions == _BUDGET
    assert result.ipc == record.ipc
    assert result.stats == asdict(record.stats)
    assert result.fingerprint == runner.fingerprint_of("tvp")


def test_simulate_accepts_workload_object_and_machine_config():
    config = MachineConfig.tvp(spsr=True)
    result = api.simulate(get_workload("permute"), config,
                          instructions=_BUDGET)
    assert result.config == "custom"
    runner = ExperimentRunner(workloads=suite(["permute"]),
                              instructions=_BUDGET)
    record = runner.run(get_workload("permute"), "custom", config=config)
    assert result.ipc == record.ipc
    assert result.stats == asdict(record.stats)


def test_sim_result_json_round_trip():
    result = api.simulate("hash_loop", "baseline", instructions=_BUDGET)
    payload = json.loads(json.dumps(result.to_dict()))
    assert api.SimResult.from_dict(payload) == result


def test_speedup_over_matches_run_record():
    base = api.simulate("hash_loop", "baseline", instructions=_BUDGET)
    tvp = api.simulate("hash_loop", "tvp", instructions=_BUDGET)
    runner = ExperimentRunner(workloads=suite(["hash_loop"]),
                              instructions=_BUDGET)
    base_record = runner.run(get_workload("hash_loop"), "baseline")
    tvp_record = runner.run(get_workload("hash_loop"), "tvp")
    assert (tvp.speedup_over(base)
            == tvp_record.speedup_over(base_record))


def test_sweep_matches_direct_run_all():
    swept = api.sweep(["hash_loop", "permute"], configs=("baseline", "tvp"),
                      instructions=_BUDGET, jobs=2)
    runner = ExperimentRunner(workloads=suite(["hash_loop", "permute"]),
                              instructions=_BUDGET)
    direct = runner.run_all(("baseline", "tvp"))
    assert swept.configs == ("baseline", "tvp")
    assert swept.workloads == ("hash_loop", "permute")
    for config in ("baseline", "tvp"):
        for workload in ("hash_loop", "permute"):
            point = swept.get(config, workload)
            record = direct[config][workload]
            assert point.ipc == record.ipc
            assert point.stats == asdict(record.stats)
    assert swept.fault_report is not None
    assert swept.fault_report["healthy"] is True
    assert swept.fault_report["points_total"] == 4


def test_sweep_result_json_round_trip():
    swept = api.sweep(["hash_loop"], configs=("baseline",),
                      instructions=_BUDGET, jobs=1)
    payload = json.loads(json.dumps(swept.to_dict()))
    # The default envelope body is deterministic: the fault report (wall
    # time, provenance counters) stays off it and out of the round trip.
    assert payload["schema"] == api.SWEEP_SCHEMA
    assert "fault_report" not in payload
    rebuilt = api.SweepResult.from_dict(payload)
    assert rebuilt.configs == swept.configs
    assert rebuilt.workloads == swept.workloads
    assert rebuilt.instructions == swept.instructions
    assert rebuilt.fingerprint == swept.fingerprint
    assert rebuilt.get("baseline", "hash_loop") == swept.get("baseline",
                                                             "hash_loop")
    assert rebuilt == swept               # fault_report excluded from eq
    # Provenance mode carries the fault report explicitly.
    provenance = json.loads(json.dumps(swept.to_dict(provenance=True)))
    assert provenance["fault_report"] == swept.fault_report
    assert (api.SweepResult.from_dict(provenance).fault_report
            == swept.fault_report)


def test_sweep_serial_path_has_fault_report():
    swept = api.sweep(["hash_loop"], configs=("baseline", "tvp"),
                      instructions=_BUDGET, jobs=1)
    assert swept.fault_report is not None
    assert swept.fault_report["completed_serial"] == 2


def test_run_record_to_dict_is_json_ready():
    runner = ExperimentRunner(workloads=suite(["hash_loop"]),
                              instructions=_BUDGET)
    record = runner.run(get_workload("hash_loop"), "baseline")
    payload = record.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["workload"] == "hash_loop"
    assert payload["config"] == "baseline"
    assert payload["ipc"] == record.ipc
    assert payload["stats"] == asdict(record.stats)
