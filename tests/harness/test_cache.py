"""Persistent simulation cache: warm == cold, and key hygiene."""

from dataclasses import asdict, replace

from repro.harness.cache import (SimulationCache, code_version_hash,
                                 config_fingerprint, simulation_key)
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig
from repro.workloads import suite

_WORKLOADS = ["hash_loop"]
_BUDGET = 1200


def _runner(cache):
    return ExperimentRunner(workloads=suite(_WORKLOADS),
                            instructions=_BUDGET, cache=cache)


def test_warm_cache_replays_cold_run_exactly(tmp_path):
    cache = SimulationCache(tmp_path)
    cold = _runner(cache).run_all(("baseline", "tvp"))
    assert cache.stores == 2 and cache.hits == 0

    warm_cache = SimulationCache(tmp_path)
    warm = _runner(warm_cache).run_all(("baseline", "tvp"))
    assert warm_cache.hits == 2 and warm_cache.stores == 0
    assert ({k: asdict(r.stats) for k, v in warm.items()
             for k, r in v.items()}
            == {k: asdict(r.stats) for k, v in cold.items()
                for k, r in v.items()})


def test_uncached_runner_unaffected():
    runner = _runner(cache=None)
    record = runner.run(runner.workloads[0], "baseline")
    assert record.stats.retired_uops > 0


def test_same_name_different_config_does_not_collide():
    # Regression: results used to be memoized by (workload, config_name)
    # alone, so two different configs passed under the same label
    # silently returned the first one's stats.
    runner = _runner(cache=None)
    workload = runner.workloads[0]
    narrow = replace(MachineConfig.baseline(), rob_entries=16)
    wide = MachineConfig.baseline()
    first = runner.run(workload, "baseline", config=narrow)
    second = runner.run(workload, "baseline", config=wide)
    assert first is not second
    assert first.stats.cycles != second.stats.cycles


def test_fingerprint_sensitivity():
    base = MachineConfig.baseline()
    assert config_fingerprint(base) == config_fingerprint(
        MachineConfig.baseline())
    assert (config_fingerprint(base)
            != config_fingerprint(replace(base, rob_entries=base.rob_entries + 1)))
    assert config_fingerprint(base) != config_fingerprint(
        MachineConfig.tvp())


def test_simulation_key_dimensions():
    fp = config_fingerprint(MachineConfig.baseline())
    assert simulation_key("a", 1000, fp) != simulation_key("b", 1000, fp)
    assert simulation_key("a", 1000, fp) != simulation_key("a", 2000, fp)
    assert code_version_hash() == code_version_hash()


def test_trace_config_does_not_fragment_cache_keys(tmp_path):
    # Regression: the observability knobs describe how a run is *watched*,
    # not what the machine computes, so enabling tracing must neither
    # change the fingerprint nor miss cache entries written untraced.
    from repro.observability.config import TraceConfig

    untraced = MachineConfig.tvp(spsr=True)
    traced = untraced.with_(trace=TraceConfig(sample_interval=100))
    assert config_fingerprint(traced) == config_fingerprint(untraced)

    cache = SimulationCache(tmp_path)
    runner = _runner(cache)
    cold = runner.run(runner.workloads[0], "tvp+spsr", config=untraced)
    assert cache.stores == 1

    warm_cache = SimulationCache(tmp_path)
    warm_runner = _runner(warm_cache)
    warm = warm_runner.run(warm_runner.workloads[0], "tvp+spsr",
                           config=traced)
    assert warm_cache.hits == 1 and warm_cache.stores == 0
    assert asdict(warm.stats) == asdict(cold.stats)


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = SimulationCache(tmp_path)
    runner = _runner(cache)
    runner.run(runner.workloads[0], "baseline")
    (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
    entry.write_text("{ torn")
    rerun_cache = SimulationCache(tmp_path)
    record = _runner(rerun_cache).run(suite(_WORKLOADS)[0], "baseline")
    assert rerun_cache.misses == 1 and rerun_cache.stores == 1
    assert record.stats.retired_uops > 0
