"""Command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.experiments == ["fig3"]
    assert args.instructions is None
    assert args.workloads is None


def test_unknown_experiment_rejected(capsys):
    assert main(["not_an_experiment"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_table2_runs(capsys):
    assert main(["run", "table2"]) == 0
    out = capsys.readouterr().out
    assert "55.2" in out


def test_workload_subset_and_budget(capsys):
    code = main(["run", "fig2", "--workloads", "hash_loop",
                 "--instructions", "1200"])
    assert code == 0
    out = capsys.readouterr().out
    assert "hash_loop" in out
