"""The persistent trace cache: keying, invalidation and torn files.

The contract under test: the functional emulator runs at most once per
(workload, budget, trace-code-version) across every process sharing a
cache directory — and *must* re-run when an emulator-side source
changes, while timing-model edits leave cached traces valid.
"""

import json
import os

from repro.harness import cache as cache_mod
from repro.harness.cache import TraceCache, trace_key
from repro.harness.runner import ExperimentRunner
from repro.workloads import suite

_BUDGET = 300


def _runner(tmp_path):
    return ExperimentRunner(workloads=suite(["hash_loop"]),
                            instructions=_BUDGET,
                            trace_cache=TraceCache(tmp_path))


def test_emulator_runs_once_per_key_across_runners(tmp_path):
    first = _runner(tmp_path)
    first.trace_of(first.workloads[0])
    assert first.trace_emulations == 1

    second = _runner(tmp_path)
    trace = second.trace_of(second.workloads[0])
    assert second.trace_emulations == 0       # served from disk
    assert second.trace_cache.hits == 1
    assert len(trace) == len(first.trace_of(first.workloads[0]))


def test_cached_trace_replays_identically(tmp_path):
    from dataclasses import asdict

    fresh = ExperimentRunner(workloads=suite(["hash_loop"]),
                             instructions=_BUDGET)
    warm = _runner(tmp_path)
    warm.trace_of(warm.workloads[0])          # populate the disk cache
    reload = _runner(tmp_path)
    for config in ("baseline", "tvp+spsr"):
        assert (asdict(reload.run(reload.workloads[0], config).stats)
                == asdict(fresh.run(fresh.workloads[0], config).stats))
    assert reload.trace_emulations == 0


def test_trace_code_version_change_orphans_the_entry(tmp_path,
                                                     monkeypatch):
    warm = _runner(tmp_path)
    warm.trace_of(warm.workloads[0])
    old_key = trace_key("hash_loop", _BUDGET)

    # An emulator-side source edit shows up as a new trace-code hash
    # (the memo is per-process, so patching it is equivalent).
    monkeypatch.setattr(cache_mod, "_trace_code_version_memo",
                        "f00dfeedf00dfeed")
    assert trace_key("hash_loop", _BUDGET) != old_key
    stale = _runner(tmp_path)
    stale.trace_of(stale.workloads[0])
    assert stale.trace_emulations == 1        # cache miss -> re-emulated


def test_timing_model_edits_leave_traces_valid(monkeypatch):
    # trace_key hashes only the emulator-side sources: faking a change
    # to the *full* code-version hash (what a pipeline/harness edit
    # does) must not move the key.
    old_key = trace_key("hash_loop", _BUDGET)
    monkeypatch.setattr(cache_mod, "_code_version_memo",
                        "f00dfeedf00dfeed")
    assert trace_key("hash_loop", _BUDGET) == old_key


def test_torn_trace_file_is_rejected_and_cleaned(tmp_path):
    warm = _runner(tmp_path)
    warm.trace_of(warm.workloads[0])
    key = trace_key("hash_loop", _BUDGET)
    path = warm.trace_cache._path_of(key)

    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[:len(blob) // 2])   # torn write

    fresh_cache = TraceCache(tmp_path)
    assert fresh_cache.load(key) is None
    assert fresh_cache.misses == 1
    assert not os.path.exists(path)           # torn file deleted

    # The slot rewrites cleanly on the next emulation.
    again = _runner(tmp_path)
    again.trace_of(again.workloads[0])
    assert again.trace_emulations == 1
    assert TraceCache(tmp_path).load(key) is not None


def test_load_bytes_rejects_torn_images(tmp_path):
    warm = _runner(tmp_path)
    warm.trace_of(warm.workloads[0])
    key = trace_key("hash_loop", _BUDGET)
    path = warm.trace_cache._path_of(key)
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF              # flipped bit -> bad crc
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    cache = TraceCache(tmp_path)
    assert cache.load_bytes(key) is None      # validated before sharing


def test_prune_evicts_least_recently_used(tmp_path):
    cache = TraceCache(tmp_path)
    runner = ExperimentRunner(workloads=suite(["hash_loop", "permute"]),
                              instructions=_BUDGET, trace_cache=cache)
    for workload in runner.workloads:
        runner.trace_of(workload)
    files, total = cache.usage()
    assert files == 2 and total > 0
    removed = cache.prune(0)
    assert removed == 2
    assert cache.usage() == (0, 0)


def test_cache_usage_reports_traces(tmp_path):
    runner = _runner(tmp_path)
    runner.trace_of(runner.workloads[0])
    usage = cache_mod.cache_usage(tmp_path)
    assert usage["traces"]["files"] == 1
    assert usage["traces"]["bytes"] > 0
    payload = json.dumps(usage)               # documented JSON shape
    assert json.loads(payload) == usage
