"""Workload characterization."""

import pytest

from repro.harness.inspect import characterize, run_characterize
from repro.harness.runner import ExperimentRunner
from repro.workloads import get_workload, suite


def test_characterize_basic_fields():
    profile = characterize(get_workload("hash_loop"), instructions=2000)
    assert profile.arch_instructions == 2000
    assert profile.uops >= 2000
    assert 1.0 <= profile.expansion <= 1.5
    assert abs(sum(profile.mix.values()) - 100.0) < 0.5


def test_characterize_fp_kernel():
    profile = characterize(get_workload("stream_triad"), instructions=2000)
    assert profile.fp_share > 10.0
    assert profile.vp_eligible_share < 40.0


def test_characterize_branchy_kernel():
    profile = characterize(get_workload("match_count"), instructions=2000)
    assert profile.branch_share > 15.0
    assert 0.0 < profile.taken_share < 100.0


def test_characterize_value_shares():
    profile = characterize(get_workload("board_eval"), instructions=2000)
    assert profile.zero_share + profile.one_share > 5.0
    assert profile.narrow9_share >= profile.zero_share


def test_characterize_static_pc_counts():
    profile = characterize(get_workload("permute"), instructions=2000)
    assert 0 < profile.static_eligible_pcs <= profile.static_pcs
    assert profile.static_pcs <= len(get_workload("permute").program) + 8


def test_run_characterize_experiment():
    runner = ExperimentRunner(workloads=suite(["hash_loop", "stream_triad"]),
                              instructions=1500)
    result = run_characterize(runner)
    assert result.experiment_id == "characterize"
    assert len(result.rows) == 2
    assert set(result.raw) == {"hash_loop", "stream_triad"}
    text = result.format()
    assert "hash_loop" in text


def test_characterize_registered_in_cli():
    from repro.harness.experiments import EXPERIMENTS

    assert "characterize" in EXPERIMENTS
