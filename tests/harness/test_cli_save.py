"""CLI --save JSON output (the ``harness-run/1`` envelope)."""

import json

from repro.harness.cli import main


def test_save_writes_json(tmp_path, capsys):
    out = tmp_path / "results.json"
    code = main(["run", "table2", "--save", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "harness-run/1"
    assert len(payload["code_version"]) == 16
    assert len(payload["fingerprint"]) == 16
    assert payload["command"] == "run"
    table = payload["experiments"]["table2"]
    assert table["headers"] == ["flavor", "measured", "paper", "verdict"]
    assert any("55.2" in " ".join(map(str, row)) for row in table["rows"])
    capsys.readouterr()


def test_save_handles_non_jsonable_raw(tmp_path, capsys):
    # characterize's raw payload holds dataclasses: must stringify cleanly.
    out = tmp_path / "char.json"
    code = main(["run", "characterize", "--workloads", "hash_loop",
                 "--instructions", "1000", "--save", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert "characterize" in payload["experiments"]
    capsys.readouterr()
