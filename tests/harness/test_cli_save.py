"""CLI --save JSON output."""

import json

from repro.harness.cli import main


def test_save_writes_json(tmp_path, capsys):
    out = tmp_path / "results.json"
    code = main(["table2", "--save", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert "table2" in payload
    assert payload["table2"]["headers"] == ["flavor", "measured", "paper",
                                            "verdict"]
    assert any("55.2" in " ".join(map(str, row))
               for row in payload["table2"]["rows"])
    capsys.readouterr()


def test_save_handles_non_jsonable_raw(tmp_path, capsys):
    # characterize's raw payload holds dataclasses: must stringify cleanly.
    out = tmp_path / "char.json"
    code = main(["characterize", "--workloads", "hash_loop",
                 "--instructions", "1000", "--save", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert "characterize" in payload
    capsys.readouterr()
