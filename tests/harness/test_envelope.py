"""The unified result envelope (:mod:`repro.envelope`)."""

import string

import pytest

from repro.envelope import (canonical_json, check_schema, header,
                            request_fingerprint)
from repro.harness.cache import code_version_hash


def _is_hex16(value):
    return (isinstance(value, str) and len(value) == 16
            and set(value) <= set(string.hexdigits.lower()))


def test_header_fields():
    payload = header("sweep/2", "0123456789abcdef")
    assert list(payload) == ["schema", "code_version", "fingerprint"]
    assert payload["schema"] == "sweep/2"
    assert payload["code_version"] == code_version_hash()
    assert _is_hex16(payload["code_version"])
    assert payload["fingerprint"] == "0123456789abcdef"


def test_check_schema_accepts_family_and_returns_schema():
    assert check_schema({"schema": "sweep/2"}, "sweep") == "sweep/2"
    assert check_schema({"schema": "sweep/3"}, "sweep") == "sweep/3"


@pytest.mark.parametrize("payload", [
    {"schema": "explore/2"},        # different family
    {"schema": "sweeper/1"},        # family prefix is not a match
    {},                             # no schema at all
    {"schema": 2},                  # non-string schema
    None,                           # not even a dict
    "sweep/2",
])
def test_check_schema_rejects_foreign_documents(payload):
    with pytest.raises(ValueError):
        check_schema(payload, "sweep")


def test_request_fingerprint_ignores_kwarg_order():
    a = request_fingerprint("sweep", workloads=["a"], configs=["b"])
    b = request_fingerprint("sweep", configs=["b"], workloads=["a"])
    assert a == b
    assert _is_hex16(a)


def test_request_fingerprint_is_list_order_sensitive():
    a = request_fingerprint("sweep", workloads=["a", "b"])
    b = request_fingerprint("sweep", workloads=["b", "a"])
    assert a != b


def test_request_fingerprint_separates_kinds():
    assert (request_fingerprint("sweep", workloads=["a"])
            != request_fingerprint("explore", workloads=["a"]))


def test_canonical_json_is_insertion_order_free():
    assert (canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]})
            == canonical_json({"a": [2, {"c": 4, "d": 3}], "b": 1})
            == '{"a":[2,{"c":4,"d":3}],"b":1}')
