"""ASCII report formatting."""

from repro.harness.report import ExperimentResult, format_table, pct


def test_format_table_alignment():
    text = format_table("Title", ["name", "value"],
                        [["alpha", 1.5], ["beta", 22.25]],
                        notes=["a note"])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "name" in lines[2] and "value" in lines[2]
    assert "alpha" in lines[4]
    assert lines[-1] == "  * a note"


def test_numeric_cells_right_aligned():
    text = format_table("T", ["a"], [["5.00"], ["123.00"]])
    rows = text.splitlines()[4:6]
    assert rows[0].endswith("5.00")
    assert rows[1].endswith("123.00")


def test_pct_formatting():
    assert pct(1.234) == "+1.23%"
    assert pct(-0.5) == "-0.50%"
    assert pct(3.0, signed=False) == "3.00%"


def test_experiment_result_roundtrip(capsys):
    result = ExperimentResult("x", "A Title", ["h"], [["v"]], ["note"])
    result.print()
    out = capsys.readouterr().out
    assert "A Title" in out and "note" in out
