"""Internal consistency of the transcribed paper numbers."""

from repro.harness import paper_data


def test_table3_budgets_match_deltas():
    assert set(paper_data.TABLE3) == set(paper_data.TABLE3_LOG2_DELTAS)


def test_table3_paper_shape():
    """The published grid itself: GVP scales, MVP nearly flat."""
    budgets = list(paper_data.TABLE3)
    gvp = [paper_data.TABLE3[b]["gvp"] for b in budgets]
    assert gvp == sorted(gvp)
    mvp = [paper_data.TABLE3[b]["mvp"] for b in budgets]
    assert max(mvp) - min(mvp) < 0.2


def test_fig3_ordering():
    data = paper_data.FIG3_GEOMEAN_SPEEDUP
    assert data["gvp"] > data["tvp"] > data["mvp"] > 0


def test_fig3_coverage_ordering():
    cov = paper_data.FIG3_COVERAGE
    assert cov["gvp"] > cov["tvp"] > cov["mvp"]


def test_xalancbmk_outlier_is_gvp_only():
    data = paper_data.FIG3_XALANCBMK
    assert data["gvp"] > 50
    assert data["mvp"] < 1 and data["tvp"] < 1


def test_fig4_categories_complete():
    assert set(paper_data.FIG4_MVP) == {"zero_idiom", "one_idiom", "move",
                                        "spsr", "non_me_move"}
    assert "nine_bit_idiom" in paper_data.FIG4_TVP


def test_fig5_spsr_is_ipc_neutral():
    data = paper_data.FIG5_GEOMEAN
    assert abs(data["mvp+spsr"] - data["mvp"]) < 0.2
    assert abs(data["tvp+spsr"] - data["tvp"]) < 0.2


def test_fig6_signs():
    assert paper_data.FIG6["mvp"]["int_prf_writes"] < 0
    assert paper_data.FIG6["tvp"]["int_prf_writes"] < \
        paper_data.FIG6["mvp"]["int_prf_writes"]
    assert paper_data.FIG6_GVP_WRITES_INCREASE


def test_storage_matches_model():
    from repro.core.modes import VPFlavor
    from repro.core.storage import flavor_config, vtage_storage_kb

    for name, kb in paper_data.TABLE2_STORAGE_KB.items():
        measured = vtage_storage_kb(flavor_config(VPFlavor[name.upper()]))
        assert int(measured * 10) / 10 == kb
