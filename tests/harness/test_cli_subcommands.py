"""The restructured CLI: `run` / `sweep` subcommands plus the
retirement of the historical bare spelling."""

import json
import os

import pytest

from repro.harness.cli import build_sweep_parser, main


def test_run_subcommand(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["run", "fig2", "--workloads", "hash_loop",
                 "--instructions", "1200", "--jobs", "1"])
    assert code == 0
    captured = capsys.readouterr()
    assert "hash_loop" in captured.out
    assert "deprecated" not in captured.err


def test_bare_spelling_is_retired(capsys, tmp_path, monkeypatch):
    # The pre-PR-4 spelling warned for one release; it now fails fast
    # with a pointer to the `run` subcommand (README "Deprecation
    # policy").
    monkeypatch.chdir(tmp_path)
    code = main(["fig2", "--workloads", "hash_loop",
                 "--instructions", "1200", "--jobs", "1"])
    assert code == 2
    captured = capsys.readouterr()
    assert captured.out == ""            # nothing ran
    assert "harness run fig2" in captured.err


def test_run_subcommand_rejects_unknown_experiment(capsys, tmp_path,
                                                   monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "not_an_experiment"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_sweep_subcommand_saves_structured_results(capsys, tmp_path,
                                                   monkeypatch):
    monkeypatch.chdir(tmp_path)
    save = tmp_path / "sweep.json"
    code = main(["sweep", "--workloads", "hash_loop,permute",
                 "--configs", "baseline,tvp", "--instructions", "1200",
                 "--jobs", "2", "--save", str(save)])
    assert code == 0
    out = capsys.readouterr().out
    assert "hash_loop" in out and "permute" in out
    payload = json.loads(save.read_text())
    # The saved document is the sweep/2 envelope plus the fault report
    # as an explicit provenance field.
    assert set(payload) == {"schema", "code_version", "fingerprint",
                            "configs", "workloads", "instructions",
                            "results", "fault_report"}
    assert payload["schema"] == "sweep/2"
    assert payload["configs"] == ["baseline", "tvp"]
    assert payload["workloads"] == ["hash_loop", "permute"]
    point = payload["results"]["tvp"]["hash_loop"]
    # SimResult.to_dict() shape, not ad-hoc stringification.
    assert point["schema"] == "sim/2"
    assert isinstance(point["ipc"], float)
    assert isinstance(point["stats"]["cycles"], int)
    assert payload["fault_report"]["points_total"] == 4


def test_sweep_rejects_unknown_config(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit):
        main(["sweep", "--configs", "not_a_config"])


def test_sweep_journal_created_by_default(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["sweep", "--workloads", "hash_loop",
                 "--configs", "baseline", "--instructions", "1200",
                 "--jobs", "1"])
    assert code == 0
    journals = os.listdir(tmp_path / ".repro-cache" / "journals")
    assert len(journals) == 1 and journals[0].endswith(".jsonl")


def test_sweep_no_journal_flag(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["sweep", "--workloads", "hash_loop",
                 "--configs", "baseline", "--instructions", "1200",
                 "--jobs", "1", "--no-journal", "--no-cache"])
    assert code == 0
    assert not (tmp_path / ".repro-cache").exists()


def test_sweep_parser_defaults():
    args = build_sweep_parser().parse_args([])
    assert args.resume is True
    assert args.jobs is None
    assert "baseline" in args.configs


def test_jobs_must_be_positive(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit):
        main(["sweep", "--configs", "baseline", "--jobs", "0"])
