"""The restructured CLI: `run` / `sweep` subcommands plus the
deprecation shim for the historical bare spelling."""

import json
import os

import pytest

from repro.harness.cli import build_sweep_parser, main


def test_run_subcommand(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["run", "fig2", "--workloads", "hash_loop",
                 "--instructions", "1200", "--jobs", "1"])
    assert code == 0
    captured = capsys.readouterr()
    assert "hash_loop" in captured.out
    assert "deprecated" not in captured.err


def test_bare_spelling_warns_exactly_once(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["fig2", "--workloads", "hash_loop",
                 "--instructions", "1200", "--jobs", "1"])
    assert code == 0
    captured = capsys.readouterr()
    assert "hash_loop" in captured.out
    assert captured.err.count("deprecated") == 1
    assert "harness run" in captured.err


def test_run_subcommand_rejects_unknown_experiment(capsys, tmp_path,
                                                   monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "not_an_experiment"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_sweep_subcommand_saves_structured_results(capsys, tmp_path,
                                                   monkeypatch):
    monkeypatch.chdir(tmp_path)
    save = tmp_path / "sweep.json"
    code = main(["sweep", "--workloads", "hash_loop,permute",
                 "--configs", "baseline,tvp", "--instructions", "1200",
                 "--jobs", "2", "--save", str(save)])
    assert code == 0
    out = capsys.readouterr().out
    assert "hash_loop" in out and "permute" in out
    payload = json.loads(save.read_text())
    assert set(payload) == {"meta", "results", "_fault_report"}
    assert payload["meta"]["configs"] == ["baseline", "tvp"]
    assert payload["meta"]["workloads"] == ["hash_loop", "permute"]
    point = payload["results"]["tvp"]["hash_loop"]
    # RunRecord.to_dict() shape, not ad-hoc stringification.
    assert set(point) == {"workload", "config", "ipc", "stats"}
    assert isinstance(point["ipc"], float)
    assert isinstance(point["stats"]["cycles"], int)
    assert payload["_fault_report"]["points_total"] == 4


def test_sweep_rejects_unknown_config(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit):
        main(["sweep", "--configs", "not_a_config"])


def test_sweep_journal_created_by_default(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["sweep", "--workloads", "hash_loop",
                 "--configs", "baseline", "--instructions", "1200",
                 "--jobs", "1"])
    assert code == 0
    journals = os.listdir(tmp_path / ".repro-cache" / "journals")
    assert len(journals) == 1 and journals[0].endswith(".jsonl")


def test_sweep_no_journal_flag(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["sweep", "--workloads", "hash_loop",
                 "--configs", "baseline", "--instructions", "1200",
                 "--jobs", "1", "--no-journal", "--no-cache"])
    assert code == 0
    assert not (tmp_path / ".repro-cache").exists()


def test_sweep_parser_defaults():
    args = build_sweep_parser().parse_args([])
    assert args.resume is True
    assert args.jobs is None
    assert "baseline" in args.configs


def test_jobs_must_be_positive(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit):
        main(["sweep", "--configs", "baseline", "--jobs", "0"])
