"""Experiment functions produce well-formed, shape-correct results."""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    run_fig1,
    run_fig2,
    run_fig3,
    run_table2,
)
from repro.harness.runner import ExperimentRunner
from repro.workloads import suite


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        workloads=suite(["hash_loop", "xml_tree", "match_count"]),
        instructions=2500)


def test_experiment_registry_covers_all_figures():
    assert set(EXPERIMENTS) >= {"fig1", "fig2", "fig3", "fig4", "fig5",
                                "fig6", "table2", "table3", "silencing",
                                "prefetcher"}


def test_fig1_structure(runner):
    result = run_fig1(runner)
    assert result.experiment_id == "fig1"
    assert result.headers == ["value", "share"]
    assert result.rows
    assert result.raw["series"][0][0] == 0


def test_fig2_structure(runner):
    result = run_fig2(runner)
    names = [row[0] for row in result.rows]
    assert "hash_loop" in names and "mean/hmean" in names
    assert result.raw["expansion_mean"] >= 1.0


def test_fig3_structure_and_outlier(runner):
    result = run_fig3(runner)
    assert [h for h in result.headers] == ["workload", "MVP", "TVP", "GVP"]
    assert "geomeans" in result.raw
    outlier = result.raw["per_workload"]["gvp"]["xml_tree"]
    assert outlier > 2.0


def test_table2_is_exact(runner):
    result = run_table2(runner)
    verdicts = [row[3] for row in result.rows]
    assert verdicts == ["match", "match", "match"]


def test_result_format_renders(runner):
    text = run_table2(runner).format()
    assert "55.2" in text and "=" in text


def test_experiments_share_runner_cache(runner):
    """fig3 after fig2 must reuse the baseline runs (same records)."""
    run_fig2(runner)
    cached = dict(runner._results)
    run_fig3(runner)
    for key, record in cached.items():
        assert runner._results[key] is record
