"""Experiment runner: caching and config dispatch."""

import pytest

from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig
from repro.workloads import suite


def small_runner():
    return ExperimentRunner(workloads=suite(["hash_loop", "permute"]),
                            instructions=1500)


def test_results_are_memoized():
    runner = small_runner()
    workload = runner.workloads[0]
    first = runner.run(workload, "baseline")
    second = runner.run(workload, "baseline")
    assert first is second


def test_traces_shared_across_configs():
    runner = small_runner()
    workload = runner.workloads[0]
    trace = runner.trace_of(workload)
    assert runner.trace_of(workload) is trace


def test_config_names():
    for name in ("baseline", "mvp", "tvp", "gvp", "mvp+spsr", "tvp+spsr",
                 "gvp+spsr"):
        config = ExperimentRunner.config(name)
        assert isinstance(config, MachineConfig)
    assert ExperimentRunner.config("tvp+spsr").enable_spsr


def test_run_all_shape():
    runner = small_runner()
    results = runner.run_all(("baseline", "mvp"))
    assert set(results) == {"baseline", "mvp"}
    assert set(results["mvp"]) == {"hash_loop", "permute"}


def test_speedup_over():
    runner = small_runner()
    workload = runner.workloads[0]
    base = runner.run(workload, "baseline")
    assert abs(base.speedup_over(base)) < 1e-12


def test_budget_for_prefers_explicit():
    runner = ExperimentRunner(workloads=suite(["hash_loop"]),
                              instructions=777)
    assert runner.budget_for(runner.workloads[0]) == 777
    default_runner = ExperimentRunner(workloads=suite(["hash_loop"]))
    assert default_runner.budget_for(default_runner.workloads[0]) == \
        default_runner.workloads[0].default_instructions


def test_config_unknown_name_raises_with_valid_names():
    with pytest.raises(KeyError) as excinfo:
        ExperimentRunner.config("tvpp")
    message = str(excinfo.value)
    assert "tvpp" in message
    assert "baseline" in message and "tvp+spsr" in message


def test_config_unknown_override_raises_with_valid_fields():
    with pytest.raises(TypeError) as excinfo:
        ExperimentRunner.config("tvp", not_a_knob=3)
    assert "not_a_knob" in str(excinfo.value)


def test_config_valid_override_applies():
    config = ExperimentRunner.config("tvp", rob_entries=96)
    assert config.rob_entries == 96
