"""Crash-resume acceptance test: ``kill -9`` a sweep mid-flight, resume
it against its journal, and require zero recomputation plus
byte-identical merged results versus an uninterrupted run."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro

_SRC = os.path.dirname(os.path.dirname(repro.__file__))
_POINTS = 6      # 2 workloads x 3 configs


def _cmd(save, journal):
    return [sys.executable, "-m", "repro.harness", "sweep",
            "--workloads", "hash_loop,permute",
            "--configs", "baseline,tvp,mvp",
            "--instructions", "20000", "--jobs", "2", "--no-cache",
            "--journal", str(journal), "--save", str(save)]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    # Keep the subprocess sweeps hermetic.
    for knob in list(env):
        if knob.startswith("REPRO_FAULT"):
            del env[knob]
    return env


def _journal_lines(path):
    try:
        with open(path) as handle:
            return [line for line in handle if line.endswith("\n")]
    except OSError:
        return []


@pytest.mark.slow
def test_kill9_then_resume_is_byte_identical(tmp_path):
    env = _env()
    clean_save = tmp_path / "clean.json"
    resumed_save = tmp_path / "resumed.json"
    journal = tmp_path / "journal.jsonl"

    # Reference: the same sweep, uninterrupted.
    subprocess.run(_cmd(clean_save, tmp_path / "clean.jsonl"), env=env,
                   cwd=tmp_path, check=True, capture_output=True, timeout=600)

    # Start the sweep, then kill -9 the whole process as soon as the
    # journal shows at least one durably completed point.
    victim = subprocess.Popen(_cmd(tmp_path / "unused.json", journal),
                              env=env, cwd=tmp_path,
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 300
        while time.time() < deadline:
            if victim.poll() is not None or _journal_lines(journal):
                break
            time.sleep(0.02)
        assert victim.poll() is None, "sweep finished before it was killed"
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=60)
    completed_before = len(_journal_lines(journal))
    assert 1 <= completed_before < _POINTS

    # Resume against the journal (default --resume).
    done = subprocess.run(_cmd(resumed_save, journal), env=env, cwd=tmp_path,
                          check=True, capture_output=True, text=True,
                          timeout=600)
    assert f"{completed_before} journal" in done.stdout

    clean = json.loads(clean_save.read_text())
    resumed = json.loads(resumed_save.read_text())
    # Byte-identical merged payloads — including the envelope headers
    # (the fingerprint is a pure function of the request, and the fault
    # report rides outside the result body as a provenance field).
    assert (json.dumps(clean["results"], sort_keys=True)
            == json.dumps(resumed["results"], sort_keys=True))
    assert clean["fingerprint"] == resumed["fingerprint"]
    # Zero recomputation of journaled points.
    report = resumed["fault_report"]
    assert report["from_journal"] == completed_before
    assert (report["completed_pool"] + report["completed_serial"]
            == _POINTS - completed_before)
    assert report["points_total"] == _POINTS
