"""Zero-copy trace distribution: shared-memory and per-worker parity.

Workers attach the parent's packed traces through
``multiprocessing.shared_memory`` instead of re-emulating (or even
re-reading the disk cache) per process.  Whatever the distribution path
— shm-attached, disk-cache loaded, or emulated in-process — the merged
sweep payload must be byte-identical.
"""

import json
from dataclasses import asdict

from repro.harness.orchestrator import OrchestratedRunner, OrchestratorConfig
from repro.harness.runner import ExperimentRunner
from repro.workloads import suite

_WORKLOADS = ["hash_loop", "permute"]
_CONFIGS = ("baseline", "tvp+spsr")
_BUDGET = 900


def _payload_of(results):
    """The canonical JSON bytes of a sweep result (stable ordering)."""
    return json.dumps(
        {f"{config}/{workload}": asdict(record.stats)
         for config, by_workload in sorted(results.items())
         for workload, record in sorted(by_workload.items())},
        sort_keys=True).encode()


def _orchestrated(**kwargs):
    return OrchestratedRunner(
        workloads=suite(_WORKLOADS), instructions=_BUDGET, jobs=2,
        orchestration=OrchestratorConfig(heartbeat_interval=0.05,
                                         poll_interval=0.02,
                                         oversubscribe=True),
        **kwargs)


def test_shared_traces_match_per_worker_emulation():
    # Pool run with shm distribution enabled (the default path).
    shared = _orchestrated()
    shared_payload = _payload_of(shared.run_all(_CONFIGS))
    report = shared.last_fault_report
    assert report.completed_pool == len(_WORKLOADS) * len(_CONFIGS)
    assert report.traces_shared == len(_WORKLOADS)

    # Reference: plain serial runner, emulating in-process.
    serial = ExperimentRunner(workloads=suite(_WORKLOADS),
                              instructions=_BUDGET)
    assert shared_payload == _payload_of(serial.run_all(_CONFIGS))


def test_shared_traces_match_disk_cache_path(tmp_path):
    from repro.harness.cache import SimulationCache, clear_cache

    # First sweep emulates and persists the packed traces...
    first = _orchestrated(cache=SimulationCache(tmp_path))
    first.run_all(_CONFIGS)
    assert first.last_fault_report.trace_emulations == len(_WORKLOADS)

    # ...then a fresh process-equivalent sweep replays purely from the
    # disk trace cache (results cleared so every point recomputes); the
    # shm segments are filled from validated cached bytes.
    clear_cache(tmp_path, categories=("results",))
    warm = _orchestrated(cache=SimulationCache(tmp_path))
    warm_payload = _payload_of(warm.run_all(_CONFIGS))
    report = warm.last_fault_report
    assert report.trace_cache_hits == len(_WORKLOADS)
    assert report.trace_emulations == 0
    assert report.traces_shared == len(_WORKLOADS)

    cold = ExperimentRunner(workloads=suite(_WORKLOADS),
                            instructions=_BUDGET)
    assert warm_payload == _payload_of(cold.run_all(_CONFIGS))
