"""Durability tests for the on-disk sweep journal."""

from dataclasses import asdict

from repro.harness.cache import SimulationCache, simulation_key
from repro.harness.orchestrator import (OrchestratedRunner, SweepJournal,
                                        default_journal_path)
from repro.pipeline.stats import PipelineStats
from repro.workloads import suite

_BUDGET = 900


def _stats(cycles=100):
    return PipelineStats(cycles=cycles)


def test_record_replay_round_trip(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.record("hash_loop", "tvp", "f" * 16, _BUDGET, _stats(123))
    journal.record("permute", "baseline", "a" * 16, _BUDGET, _stats(456))
    journal.close()

    replayed = SweepJournal(path).replay()
    assert [(r["workload"], r["config_name"], r["fingerprint"],
             r["instructions"]) for r, _ in replayed] == [
        ("hash_loop", "tvp", "f" * 16, _BUDGET),
        ("permute", "baseline", "a" * 16, _BUDGET),
    ]
    assert asdict(replayed[0][1]) == asdict(_stats(123))
    assert asdict(replayed[1][1]) == asdict(_stats(456))


def test_torn_tail_and_garbage_lines_are_skipped(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.record("hash_loop", "tvp", "f" * 16, _BUDGET, _stats())
    journal.close()
    with open(path, "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"format": 1, "workload": "perm')   # torn by kill -9

    replayed = SweepJournal(path).replay()
    assert len(replayed) == 1
    assert replayed[0][0]["workload"] == "hash_loop"


def test_other_code_version_records_are_stale(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.record("hash_loop", "tvp", "f" * 16, _BUDGET, _stats())
    journal.close()
    text = path.read_text()
    with open(path, "a") as handle:
        handle.write(text.replace('"workload": "hash_loop"',
                                  '"workload": "permute"')
                     .replace('"code_version": "',
                              '"code_version": "stale'))
    replayed = SweepJournal(path).replay()
    assert [r["workload"] for r, _ in replayed] == ["hash_loop"]


def test_compaction_rewrites_dominated_journal(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.record("hash_loop", "tvp", "f" * 16, _BUDGET, _stats())
    journal.close()
    with open(path, "a") as handle:
        for index in range(40):
            handle.write(f"garbage line {index}\n")
    assert len(path.read_text().splitlines()) == 41

    replayed = SweepJournal(path).replay()
    assert len(replayed) == 1
    # Stale lines dominated, so the file was compacted in place.
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert SweepJournal(path).replay()[0][0]["workload"] == "hash_loop"


def test_reset_discards_the_journal(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.record("hash_loop", "tvp", "f" * 16, _BUDGET, _stats())
    journal.reset()
    assert not path.exists()
    journal.reset()     # idempotent on a missing file


def test_default_journal_path_is_stable_and_spec_keyed(tmp_path):
    one = default_journal_path(tmp_path, ["a", "b"], 1000, "sweep:x")
    same = default_journal_path(tmp_path, ["b", "a"], 1000, "sweep:x")
    other = default_journal_path(tmp_path, ["a", "b"], 2000, "sweep:x")
    assert one == same                    # order-insensitive
    assert one != other                   # budget-keyed
    assert str(tmp_path) in one and one.endswith(".jsonl")
    assert "journals" in one


def test_runner_journals_and_resumes_without_recompute(tmp_path, monkeypatch):
    path = tmp_path / "journal.jsonl"
    first = OrchestratedRunner(workloads=suite(["hash_loop", "permute"]),
                               instructions=_BUDGET, jobs=1, journal=str(path))
    results = first.run_all(("baseline", "tvp"))
    first.journal.close()
    assert len(path.read_text().splitlines()) == 4

    # A fresh runner must answer entirely from the journal: break the
    # simulator to prove nothing is recomputed.
    import repro.harness.runner as runner_mod

    class _Exploding:
        def __init__(self, *args, **kwargs):
            raise AssertionError("resume must not re-simulate")

    monkeypatch.setattr(runner_mod, "CpuModel", _Exploding)
    second = OrchestratedRunner(workloads=suite(["hash_loop", "permute"]),
                                instructions=_BUDGET, jobs=1,
                                journal=str(path))
    resumed = second.run_all(("baseline", "tvp"))
    for config in ("baseline", "tvp"):
        for workload in ("hash_loop", "permute"):
            assert (asdict(resumed[config][workload].stats)
                    == asdict(results[config][workload].stats))
    report = second.last_fault_report
    assert report.from_journal == 4
    assert report.completed_pool == 0 and report.completed_serial == 0
    # Replaying must not duplicate journal records.
    second.journal.close()
    assert len(path.read_text().splitlines()) == 4


def test_resume_ignores_other_budget_records(tmp_path, monkeypatch):
    path = tmp_path / "journal.jsonl"
    first = OrchestratedRunner(workloads=suite(["hash_loop"]),
                               instructions=_BUDGET, jobs=1, journal=str(path))
    first.run_all(("baseline",))
    first.journal.close()

    second = OrchestratedRunner(workloads=suite(["hash_loop"]),
                                instructions=_BUDGET * 2, jobs=1,
                                journal=str(path))
    second._ensure_journal()
    assert second._journal_admitted == set()


def test_no_resume_starts_fresh(tmp_path):
    path = tmp_path / "journal.jsonl"
    first = OrchestratedRunner(workloads=suite(["hash_loop"]),
                               instructions=_BUDGET, jobs=1, journal=str(path))
    first.run_all(("baseline", "tvp"))
    first.journal.close()
    assert len(path.read_text().splitlines()) == 2

    second = OrchestratedRunner(workloads=suite(["hash_loop"]),
                                instructions=_BUDGET, jobs=1,
                                journal=str(path), resume=False)
    second.run_all(("baseline",))
    second.journal.close()
    # Old journal discarded; only the fresh run's single point remains.
    assert len(path.read_text().splitlines()) == 1
    assert second.last_fault_report.from_journal == 0


def test_journal_replay_write_throughs_into_cache(tmp_path):
    path = tmp_path / "journal.jsonl"
    first = OrchestratedRunner(workloads=suite(["hash_loop"]),
                               instructions=_BUDGET, jobs=1, journal=str(path))
    first.run_all(("baseline",))
    first.journal.close()

    cache = SimulationCache(tmp_path / "cache")
    second = OrchestratedRunner(workloads=suite(["hash_loop"]),
                                instructions=_BUDGET, jobs=1,
                                journal=str(path), cache=cache)
    second._ensure_journal()
    fingerprint = second.fingerprint_of("baseline")
    key = simulation_key("hash_loop", _BUDGET, fingerprint)
    assert cache.load(key) is not None
