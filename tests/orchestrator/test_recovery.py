"""End-to-end recovery tests: every fault class the engine must survive.

Faults are injected deterministically through the ``REPRO_FAULT_*`` env
knobs (inherited by forked workers); each test then checks both the
recovery behaviour (fault report, tracer events) and that the merged
results are identical to an untouched serial run.
"""

from dataclasses import asdict

import pytest

from repro.harness import faults
from repro.harness.orchestrator import OrchestratedRunner, OrchestratorConfig
from repro.harness.runner import ExperimentRunner
from repro.observability import SweepEventLog
from repro.workloads import suite

_WORKLOADS = ["hash_loop", "permute"]
_BUDGET = 900


def _stats_of(results):
    return {(config, workload): asdict(record.stats)
            for config, by_workload in results.items()
            for workload, record in by_workload.items()}


def _reference(configs):
    runner = ExperimentRunner(workloads=suite(_WORKLOADS),
                              instructions=_BUDGET)
    return _stats_of(runner.run_all(configs))


def _runner(tracer=None, **overrides):
    knobs = dict(backoff_base=0.02, backoff_cap=0.2,
                 heartbeat_interval=0.05, poll_interval=0.02,
                 oversubscribe=True)   # the pool itself is under test
    knobs.update(overrides)
    return OrchestratedRunner(workloads=suite(_WORKLOADS),
                              instructions=_BUDGET, jobs=2, tracer=tracer,
                              orchestration=OrchestratorConfig(**knobs))


def test_healthy_sweep_matches_serial_and_heartbeats():
    log = SweepEventLog()
    runner = _runner(tracer=log, heartbeat_interval=0.01)
    results = runner.run_all(("baseline", "tvp"))
    assert _stats_of(results) == _reference(("baseline", "tvp"))
    report = runner.last_fault_report
    assert not report.faults_seen
    assert report.completed_pool == 4 and report.points_total == 4
    assert report.wall_seconds > 0
    kinds = log.kinds()
    assert {"sweep_begin", "worker_spawn", "point_start", "point_done",
            "sweep_end"} <= kinds
    assert "heartbeat" in kinds


def test_worker_kill_is_detected_and_respawned(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_KILL", "hash_loop/tvp:1")
    log = SweepEventLog()
    runner = _runner(tracer=log)
    results = runner.run_all(("baseline", "tvp"))
    assert _stats_of(results) == _reference(("baseline", "tvp"))
    report = runner.last_fault_report
    assert report.worker_crashes >= 1
    assert report.worker_respawns >= 1
    assert report.retries >= 1
    assert not report.quarantined and not report.degraded_to_serial
    assert {"worker_crash", "point_retry"} <= log.kinds()


def test_hang_hits_point_timeout(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_HANG", "permute/baseline:1")
    monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "120")
    runner = _runner(point_timeout=1.0)
    results = runner.run_all(("baseline", "tvp"))
    assert _stats_of(results) == _reference(("baseline", "tvp"))
    report = runner.last_fault_report
    assert report.timeouts >= 1
    assert report.retries >= 1
    assert not report.quarantined


def test_corrupt_payloads_are_rejected_and_retried(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_CORRUPT", "*/tvp:1")
    log = SweepEventLog()
    runner = _runner(tracer=log)
    results = runner.run_all(("baseline", "tvp"))
    assert _stats_of(results) == _reference(("baseline", "tvp"))
    report = runner.last_fault_report
    assert report.corrupt_payloads == 2      # both workloads under tvp
    assert report.retries >= 2
    assert "payload_corrupt" in log.kinds()


def test_in_worker_errors_back_off_exponentially(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_ERROR", "hash_loop/baseline:2")
    log = SweepEventLog()
    runner = _runner(tracer=log, max_attempts=4)
    results = runner.run_all(("baseline", "tvp"))
    assert _stats_of(results) == _reference(("baseline", "tvp"))
    report = runner.last_fault_report
    assert report.worker_errors == 2
    assert report.retries == 2
    backoffs = [payload["backoff"]
                for _, _, payload in log.events_of("point_retry")]
    assert backoffs == sorted(backoffs)
    assert len(backoffs) == 2 and backoffs[1] == backoffs[0] * 2


def test_quarantined_point_falls_back_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_ERROR", "hash_loop/tvp:99")
    log = SweepEventLog()
    runner = _runner(tracer=log, max_attempts=2)
    results = runner.run_all(("baseline", "tvp"))
    # Worker-scoped injection: the serial in-parent fallback still
    # completes the point, so the merged results stay correct.
    assert _stats_of(results) == _reference(("baseline", "tvp"))
    report = runner.last_fault_report
    assert len(report.quarantined) == 1
    assert report.quarantined[0]["workload"] == "hash_loop"
    assert report.quarantined[0]["config"] == "tvp"
    assert report.quarantined[0]["attempts"] == 2
    assert report.completed_serial == 1
    assert "point_quarantined" in log.kinds()


def test_unhealthy_pool_degrades_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_KILL", "*/*:99")
    log = SweepEventLog()
    runner = _runner(tracer=log, max_respawns=1)
    results = runner.run_all(("baseline", "tvp"))
    assert _stats_of(results) == _reference(("baseline", "tvp"))
    report = runner.last_fault_report
    assert report.degraded_to_serial
    assert report.worker_crashes >= 2
    assert report.completed_serial == 4
    assert report.completed_pool == 0
    assert "sweep_degraded" in log.kinds()


def test_truly_poisoned_point_fails_the_sweep(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_ERROR", "hash_loop/baseline:99")
    monkeypatch.setenv("REPRO_FAULT_SCOPE", "all")
    runner = _runner(max_attempts=2)
    with pytest.raises(faults.FaultInjected):
        runner.run_all(("baseline",))
    report = runner.last_fault_report
    assert report.quarantined or report.worker_errors


def test_fault_report_merge_and_round_trip():
    from repro.harness.orchestrator import FaultReport

    one = FaultReport(points_total=4, completed_pool=4, retries=1,
                      wall_seconds=1.5)
    two = FaultReport(points_total=2, completed_serial=2,
                      degraded_to_serial=True, wall_seconds=0.5,
                      quarantined=[{"workload": "w", "config": "c"}])
    merged = FaultReport.merged([one, two])
    assert merged.points_total == 6
    assert merged.completed_pool == 4 and merged.completed_serial == 2
    assert merged.degraded_to_serial
    assert merged.wall_seconds == 2.0
    assert len(merged.quarantined) == 1
    payload = merged.to_dict()
    assert payload["healthy"] is False
    assert FaultReport(**{k: v for k, v in payload.items()
                          if k != "healthy"}).faults_seen
