"""Unit tests for the env-gated fault-injection plan."""

from dataclasses import asdict

import pytest

from repro.harness import faults
from repro.harness.cache import stats_from_payload
from repro.pipeline.stats import PipelineStats


def _plan(env):
    return faults.FaultPlan.from_env(env)


def test_spec_parsing_defaults_and_counts():
    specs = faults._parse_specs("hash_loop/tvp, */baseline:3 ,,permute/*")
    assert specs == (
        faults.FaultSpec("hash_loop/tvp", 1),
        faults.FaultSpec("*/baseline", 3),
        faults.FaultSpec("permute/*", 1),
    )


def test_spec_matches_attempt_window():
    spec = faults.FaultSpec("hash_loop/tvp", 2)
    assert spec.matches("hash_loop", "tvp", 1)
    assert spec.matches("hash_loop", "tvp", 2)
    assert not spec.matches("hash_loop", "tvp", 3)
    assert not spec.matches("permute", "tvp", 1)


def test_glob_patterns_match_point_labels():
    spec = faults.FaultSpec("*/tvp*", 1)
    assert spec.matches("hash_loop", "tvp", 1)
    assert spec.matches("permute", "tvp+spsr", 1)
    assert not spec.matches("permute", "baseline", 1)


def test_plan_inactive_without_knobs():
    plan = _plan({})
    assert not plan.active
    # A no-op even when asked directly.
    plan.maybe_error("hash_loop", "tvp", 1)


def test_worker_scope_gates_injection(monkeypatch):
    plan = _plan({"REPRO_FAULT_ERROR": "hash_loop/tvp"})
    assert plan.active
    # Not in a worker, scope=worker: disarmed.
    monkeypatch.setattr(faults, "_IN_WORKER", False)
    plan.maybe_error("hash_loop", "tvp", 1)
    # Marked as a worker: armed.
    monkeypatch.setattr(faults, "_IN_WORKER", True)
    with pytest.raises(faults.FaultInjected):
        plan.maybe_error("hash_loop", "tvp", 1)


def test_scope_all_arms_parent(monkeypatch):
    monkeypatch.setattr(faults, "_IN_WORKER", False)
    plan = _plan({"REPRO_FAULT_ERROR": "hash_loop/tvp",
                  "REPRO_FAULT_SCOPE": "all"})
    with pytest.raises(faults.FaultInjected):
        plan.maybe_error("hash_loop", "tvp", 1)


def test_corrupt_payload_fails_admission(monkeypatch):
    monkeypatch.setattr(faults, "_IN_WORKER", True)
    plan = _plan({"REPRO_FAULT_CORRUPT": "hash_loop/tvp"})
    payload = asdict(PipelineStats())
    assert stats_from_payload(payload) is not None
    corrupted = plan.maybe_corrupt(payload, "hash_loop", "tvp", 1)
    assert corrupted is not payload
    assert stats_from_payload(corrupted) is None
    # Non-matching points pass through untouched.
    same = plan.maybe_corrupt(payload, "permute", "tvp", 1)
    assert same is payload


def test_stats_payload_validation_rejects_garbage():
    good = asdict(PipelineStats())
    assert stats_from_payload(good) is not None
    assert stats_from_payload(None) is None
    assert stats_from_payload({}) is None
    assert stats_from_payload("nope") is None
    assert stats_from_payload({**good, "not_a_field": 1}) is None
    assert stats_from_payload({**good, "cycles": "12"}) is None
    assert stats_from_payload({**good, "cycles": True}) is None
    assert stats_from_payload({**good, "cycles": float("nan")}) is None
    assert stats_from_payload({**good, "memory": "oops"}) is None
