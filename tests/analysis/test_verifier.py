"""Static program verifier: each rule fires on a corrupted program and
stays silent on every shipped kernel."""

import pytest

from repro.analysis.findings import ERROR, WARNING, has_errors
from repro.analysis.verifier import verify_program
from repro.isa.assembler import assemble
from repro.workloads import suite


def rules_of(findings):
    return {f.rule for f in findings}


def errors_of(findings):
    return [f for f in findings if f.severity == ERROR]


# -- clean programs ---------------------------------------------------------------
def test_trivial_program_is_clean():
    program = assemble("mov x0, #1\nadd x1, x0, #2\nhlt")
    assert verify_program(program) == []


@pytest.mark.parametrize("workload", suite(), ids=lambda w: w.name)
def test_every_shipped_kernel_verifies(workload):
    findings = verify_program(workload.program, name=workload.name)
    assert errors_of(findings) == []


# -- V002: dangling branch target --------------------------------------------------
def test_dangling_branch_target_rejected():
    program = assemble("start: b start\nhlt")
    del program.labels["start"]  # simulate a corrupted/unresolved label
    findings = verify_program(program)
    assert "V002" in rules_of(findings)
    assert has_errors(findings)


# -- V003: control runs past the end -----------------------------------------------
def test_fall_off_end_rejected():
    findings = verify_program(assemble("add x0, xzr, xzr"))
    assert "V003" in rules_of(findings)


def test_branch_to_trailing_label_rejected():
    findings = verify_program(assemble("b end\nend:"))
    assert "V003" in rules_of(findings)


# -- V004: use before def -----------------------------------------------------------
def test_use_before_def_rejected():
    findings = verify_program(assemble("add x0, x1, x2\nhlt"))
    v004 = [f for f in findings if f.rule == "V004"]
    assert len(v004) == 2  # x1 and x2
    assert all(f.severity == ERROR for f in v004)
    assert "x1" in v004[0].message


def test_def_on_only_one_path_rejected():
    # x1 is written on the taken path only: the join reads a maybe-undef.
    source = """
    mov x0, #1
    cbz x0, skip
    mov x1, #7
skip:
    add x2, x1, #1
    hlt
"""
    findings = verify_program(assemble(source))
    assert "V004" in rules_of(findings)


def test_def_on_all_paths_accepted():
    source = """
    mov x0, #1
    cbz x0, other
    mov x1, #7
    b join
other:
    mov x1, #9
join:
    add x2, x1, #1
    hlt
"""
    assert verify_program(assemble(source)) == []


def test_loop_carried_def_accepted():
    # The loop body reads x1 defined before entry and redefines it: fine.
    source = """
    mov x1, #8
loop:
    sub x1, x1, #1
    cbnz x1, loop
    hlt
"""
    assert verify_program(assemble(source)) == []


def test_predefined_registers_accepted():
    # xzr and sp are architecturally defined before the first instruction.
    assert verify_program(assemble("add x0, sp, #16\nhlt")) == []


# -- V005: flag consumer without a setter -------------------------------------------
def test_flag_consumer_without_setter_rejected():
    findings = verify_program(assemble("start: b.eq start\nhlt"))
    assert "V005" in rules_of(findings)
    assert has_errors(findings)


def test_csel_without_flag_setter_rejected():
    source = "mov x1, #1\nmov x2, #2\ncsel x0, x1, x2, eq\nhlt"
    findings = verify_program(assemble(source))
    assert "V005" in rules_of(findings)


def test_dominated_flag_consumer_accepted():
    source = "mov x1, #3\ncmp x1, #0\nb.eq out\nout: hlt"
    assert verify_program(assemble(source)) == []


def test_flag_setter_on_one_path_only_rejected():
    source = """
    mov x0, #1
    cbz x0, use
    cmp x0, #2
use:
    b.eq use2
use2:
    hlt
"""
    findings = verify_program(assemble(source))
    assert "V005" in rules_of(findings)


# -- V006: constant-address sanity ---------------------------------------------------
def test_load_overlapping_code_section_rejected():
    findings = verify_program(assemble("movz x1, #0x4000\nldr x0, [x1]\nhlt"))
    v006 = [f for f in findings if f.rule == "V006"]
    assert v006 and v006[0].severity == ERROR
    assert "overlaps the code section" in v006[0].message


def test_load_outside_data_image_warns():
    source = """
    adr x1, tbl
    ldr x0, [x1, #4096]
    hlt
.data
tbl: .quad 1
"""
    findings = verify_program(assemble(source))
    v006 = [f for f in findings if f.rule == "V006"]
    assert v006 and v006[0].severity == WARNING
    assert not has_errors(findings)


def test_load_inside_data_image_accepted():
    source = "adr x1, tbl\nldr x0, [x1]\nhlt\n.data\ntbl: .quad 1"
    assert verify_program(assemble(source)) == []


# -- V007: unreachable code ---------------------------------------------------------
def test_unreachable_code_warns():
    findings = verify_program(assemble("hlt\nmov x0, #1\nhlt"))
    v007 = [f for f in findings if f.rule == "V007"]
    assert v007 and v007[0].severity == WARNING


# -- finding metadata ---------------------------------------------------------------
def test_findings_carry_location_and_name():
    findings = verify_program(assemble("add x0, x9, #1\nhlt"), name="bad")
    finding = findings[0]
    assert finding.where == "bad"
    assert finding.location.startswith("#0 pc=0x4000")
    assert "add" in finding.location
    assert finding.to_dict()["rule"] == "V004"
