"""`harness audit` / `harness lint` command-line behaviour."""

import json

import pytest

from repro.analysis import cli as analysis_cli
from repro.harness.cli import main as harness_main


def run_json(capsys, argv):
    code = analysis_cli.main(argv)
    payload = json.loads(capsys.readouterr().out)
    return code, payload


def test_audit_one_kernel_json(capsys):
    code, payload = run_json(
        capsys, ["audit", "hash_loop", "--instructions", "500", "--json"])
    assert code == 0
    assert payload["ok"] is True
    assert payload["schema"] == "audit/2"
    assert payload["suppressed_warnings"] == 0
    assert payload["findings"] == []
    kernel = payload["kernels"]["hash_loop"]
    assert set(kernel) == {"static", "dynamic_bounds", "eliminated"}
    for kind, count in kernel["eliminated"].items():
        assert count <= kernel["dynamic_bounds"][kind], kind


def test_audit_text_output(capsys):
    assert analysis_cli.main(["audit", "stream_triad",
                              "--instructions", "500"]) == 0
    out = capsys.readouterr().out
    assert "audit ok" in out


def test_lint_json(capsys):
    code, payload = run_json(capsys, ["lint", "--json"])
    assert code == 0
    assert payload == {"schema": "lint/2", "command": "lint",
                       "findings": [], "ok": True,
                       "suppressed_warnings": 0}


def test_exit_codes_consistent_empty_vs_suppressed(capsys, monkeypatch):
    """Empty findings and suppressed warnings both exit 0 (ok true);
    --strict promotes the warning to a failure — for both commands."""
    from repro.analysis import cli as mod
    from repro.analysis.findings import WARNING, Finding

    warning = Finding(rule="DET999", severity=WARNING, where="x",
                      location="line 1", message="seeded warning")
    monkeypatch.setattr(mod, "lint_paths", lambda root: [warning])
    monkeypatch.setattr(mod, "lint_stats_coverage", lambda: [])

    code, payload = run_json(capsys, ["lint", "--json"])
    assert code == 0 and payload["ok"] is True
    assert payload["suppressed_warnings"] == 1

    code, payload = run_json(capsys, ["lint", "--json", "--strict"])
    assert code == 1 and payload["ok"] is False
    assert payload["suppressed_warnings"] == 0


def test_lint_flags_seeded_violation(tmp_path, capsys):
    root = tmp_path / "repro" / "pipeline"
    root.mkdir(parents=True)
    (root / "bad.py").write_text("import random\nseen = set()\n"
                                 "for x in seen:\n    pass\n")
    code, payload = run_json(
        capsys, ["lint", str(tmp_path / "repro"), "--json"])
    assert code == 1
    assert payload["ok"] is False
    rules = [f["rule"] for f in payload["findings"]]
    assert rules == ["DET001", "DET002"]
    assert payload["findings"][0]["where"].endswith("repro/pipeline/bad.py")
    assert payload["findings"][0]["location"] == "line 1"


def test_unknown_command_rejected(capsys):
    assert analysis_cli.main(["frobnicate"]) == 2


def test_harness_dispatches_audit(capsys):
    code = harness_main(["audit", "fir_filter", "--instructions", "500"])
    assert code == 0
    assert "audit ok" in capsys.readouterr().out


def test_harness_dispatches_lint(capsys):
    code = harness_main(["lint", "--json"])
    assert code == 0
    assert json.loads(capsys.readouterr().out)["ok"] is True


def test_audit_unknown_workload_rejected():
    with pytest.raises(KeyError):
        analysis_cli.main(["audit", "no_such_kernel"])
