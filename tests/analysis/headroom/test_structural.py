"""Structural machine-limit bound: widths, ports, capacity windows."""

from tests.helpers import emulate

from repro.analysis.headroom.structural import _ceil_div, structural_bound
from repro.analysis.opportunity import StaticOpportunities
from repro.emulator.trace import trace_program
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig
from repro.workloads import get_workload


def test_width_bounds_exact():
    trace, _ = emulate("mov x1, #1\n" + "add x2, x1, x1\n" * 30 + "hlt")
    config = MachineConfig.baseline()
    result = structural_bound(trace, config)
    n = len(trace)
    comps = result.components
    assert comps["fetch_width"] == _ceil_div(n, config.fetch_width)
    assert comps["decode_width"] == _ceil_div(n, config.decode_width)
    assert comps["rename_width"] == _ceil_div(n, config.rename_width)
    assert comps["commit_width"] == _ceil_div(n, config.commit_width)
    assert comps["issue_width"] == _ceil_div(n, config.issue_width)
    assert result.bound == max(comps.values())
    assert comps[result.binding] == result.bound


def test_empty_trace_is_zero():
    result = structural_bound([], MachineConfig.baseline())
    assert result.bound == 0
    assert result.binding == "empty"


def test_port_component_counts_alu_work():
    trace, _ = emulate("mov x1, #1\n" + "add x2, x1, x1\n" * 30 + "hlt")
    config = MachineConfig.baseline()
    comps = structural_bound(trace, config).components
    port_keys = [k for k in comps if k.startswith("ports:")]
    assert port_keys, "ALU-only program must produce an ALU port bound"
    assert any("INT_ALU" in k for k in port_keys)


def test_smaller_rob_never_loosens_the_window():
    workload = get_workload("stream_triad")
    trace, _ = trace_program(workload.program, max_instructions=800)
    config = MachineConfig.baseline()
    wide = structural_bound(trace, config).components["window"]
    narrow = structural_bound(
        trace, config.with_(rob_entries=8)).components["window"]
    assert narrow >= wide
    assert narrow > wide, "an 8-entry ROB must visibly tighten the window"


def test_elimination_discounts_issue_pressure():
    """Under TVP+SpSR, statically eliminable µops never issue, so the
    sites-aware issue bound can only be at or below the sites-blind one."""
    workload = get_workload("hash_loop")
    trace, _ = trace_program(workload.program, max_instructions=800)
    config = ExperimentRunner.config("tvp+spsr")
    opps = StaticOpportunities.analyze(
        workload.program, name=workload.name,
        constant_folding=bool(config.spsr_constant_folding))
    blind = structural_bound(trace, config).components["issue_width"]
    aware = structural_bound(
        trace, config, sites=opps.sites).components["issue_width"]
    assert aware <= blind
