"""``harness headroom`` command-line behaviour and the report cache."""

import json
import os

import pytest

from repro.analysis.headroom.cli import SWEEP_SCHEMA
from repro.analysis.headroom.cli import main as headroom_main
from repro.analysis.headroom.report import HEADROOM_SCHEMA
from repro.harness.cli import main as harness_main

_FAST = ["--instructions", "600", "--sample-interval", "200"]


def run_json(capsys, argv):
    code = headroom_main(argv)
    captured = capsys.readouterr()
    return code, json.loads(captured.out), captured.err


def test_single_workload_json_schema(capsys):
    code, payload, _ = run_json(
        capsys, ["hash_loop", "--config", "tvp", "--json",
                 "--no-cache"] + _FAST)
    assert code == 0
    assert payload["schema"] == SWEEP_SCHEMA
    assert payload["command"] == "headroom"
    assert payload["ok"] is True
    assert payload["workloads"] == ["hash_loop"]
    assert payload["configs"] == ["tvp"]
    assert len(payload["code_version"]) == 16
    assert len(payload["fingerprint"]) == 16
    (report,) = payload["reports"]
    assert report["schema"] == HEADROOM_SCHEMA
    assert report["code_version"] == payload["code_version"]
    assert report["sound"] is True
    assert report["bound"] == max(report["dep_lb"], report["structural_lb"])
    assert report["bound"] <= report["actual_cycles"]
    assert report["binding"] in ("dependence", "structural")
    assert set(report["attribution"]["buckets"]) == {
        "queue_pressure", "flush_storms", "vp_miss_silencing", "other"}


def test_detailed_text_report(capsys):
    code = headroom_main(["hash_loop", "--config", "baseline", "--top", "3",
                          "--no-cache"] + _FAST)
    out = capsys.readouterr().out
    assert code == 0
    assert "hash_loop / baseline" in out
    assert "dependence LB" in out
    assert "critical path (top 3" in out
    assert "SOUNDNESS VIOLATION" not in out


def test_all_markdown_table(capsys):
    code = headroom_main(["--all", "--workloads", "hash_loop,stream_triad",
                          "--configs", "baseline,tvp",
                          "--no-cache"] + _FAST)
    out = capsys.readouterr().out
    assert code == 0
    assert "| workload | baseline | tvp |" in out
    assert "| hash_loop |" in out
    assert "| stream_triad |" in out
    assert "UNSOUND" not in out


def test_harness_dispatches_headroom(capsys):
    code = harness_main(["headroom", "stream_triad", "--config", "baseline",
                         "--json", "--no-cache"] + _FAST)
    assert code == 0
    assert json.loads(capsys.readouterr().out)["ok"] is True


def test_report_cache_round_trip(tmp_path, capsys):
    argv = ["hash_loop", "--config", "tvp", "--json",
            "--cache-dir", str(tmp_path)] + _FAST
    assert headroom_main(argv) == 0
    cold = capsys.readouterr()
    stored = list((tmp_path / "reports").glob("*.json"))
    assert len(stored) == 1
    assert headroom_main(argv) == 0
    warm = capsys.readouterr()
    assert json.loads(cold.out)["reports"] == json.loads(warm.out)["reports"]
    assert "hit" in warm.err      # cache summary goes to stderr in json mode


def test_engine_flag_validated_and_exported(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "interp")
    code, payload, _ = run_json(
        capsys, ["hash_loop", "--config", "tvp", "--engine", "batch",
                 "--json", "--no-cache"] + _FAST)
    assert code == 0 and payload["ok"] is True
    assert os.environ["REPRO_ENGINE"] == "batch"
    with pytest.raises(SystemExit):
        headroom_main(["hash_loop", "--engine", "warp-drive"])


def test_engines_produce_identical_reports(capsys, monkeypatch):
    payloads = {}
    for engine in ("interp", "batch"):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        _, payloads[engine], _ = run_json(
            capsys, ["stream_triad", "--config", "tvp+spsr", "--json",
                     "--no-cache"] + _FAST)
    assert payloads["interp"]["reports"] == payloads["batch"]["reports"]


def test_argument_validation():
    with pytest.raises(SystemExit):
        headroom_main([])                       # no workloads, no --all
    with pytest.raises(SystemExit):
        headroom_main(["hash_loop", "--all"])   # mutually exclusive
    with pytest.raises(SystemExit):
        headroom_main(["hash_loop", "--config", "no_such_config"])
    with pytest.raises(SystemExit):
        headroom_main(["hash_loop", "--sample-interval", "0"])
