"""Cross-check: the audit's dynamic elimination upper bounds dominate the
headroom analyzer's breakable-edge census on every shipped workload.

Both passes classify sites with the same
:class:`~repro.analysis.opportunity.StaticOpportunities` map, so every
µop the dependence bound counts as VP- or SpSR-breakable must be counted
by :meth:`dynamic_bounds` too — the analyzer can never claim more
breakable work than the runtime audit would allow the machine to
eliminate.
"""

import pytest

from repro.analysis.headroom.graph import dependence_bound
from repro.analysis.opportunity import StaticOpportunities
from repro.emulator.trace import trace_program
from repro.harness.runner import ExperimentRunner
from repro.workloads import suite

_BUDGET = 1000


@pytest.mark.parametrize("workload", suite(), ids=lambda w: w.name)
def test_dynamic_bounds_dominate_breakable_census(workload):
    config = ExperimentRunner.config("tvp+spsr")
    trace, _ = trace_program(workload.program, max_instructions=_BUDGET)
    opps = StaticOpportunities.analyze(
        workload.program, name=workload.name,
        constant_folding=bool(config.spsr_constant_folding))
    dep = dependence_bound(trace, config, sites=opps.sites)
    bounds = opps.dynamic_bounds(trace)
    assert dep.breakable["vp_uops"] <= bounds["vp_eligible"], workload.name
    assert dep.breakable["spsr_uops"] <= bounds["spsr"], workload.name
    # Edge counts are per-edge, µop counts per-µop; both censuses must be
    # internally consistent: breakable edges require breakable µops.
    if dep.breakable["vp_edges"]:
        assert dep.breakable["vp_uops"] > 0
    if dep.breakable["spsr_uops"]:
        assert bounds["spsr"] > 0
