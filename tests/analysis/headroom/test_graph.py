"""Dependence-graph lower bound: edges, break semantics, monotonicity."""

from tests.helpers import emulate

from repro.analysis.headroom.graph import (
    dependence_bound,
    enabled_elimination_kinds,
    min_uop_latency,
)
from repro.analysis.opportunity import StaticOpportunities
from repro.emulator.trace import dep_edge_counts, iter_dep_edges, trace_program
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig
from repro.workloads import get_workload


def test_edge_kinds_reg_flags_mem():
    trace, _ = emulate("""
    adr x9, buf
    mov x1, #5
    add x2, x1, x1
    cmp x2, #3
    csel x4, x1, x2, eq
    str x4, [x9]
    ldr x5, [x9]
    hlt
.data
buf: .quad 0
""")
    counts = dep_edge_counts(trace)
    assert counts["reg"] >= 3      # mov->add->cmp/csel chains
    assert counts["flags"] >= 1    # cmp -> csel (cmp is not a reg producer)
    assert counts["mem"] >= 1      # str -> ldr through the resolved address
    kinds = {(p, c): k for p, c, k in iter_dep_edges(trace)}
    store = next(i for i, u in enumerate(trace) if u.is_store)
    load = next(i for i, u in enumerate(trace) if u.is_load)
    assert kinds[(store, load)] == "mem"


def test_serial_chain_longer_than_parallel():
    serial = "mov x1, #1\nmov x2, #2\n" \
        + "add x1, x1, x2\n" * 40 + "hlt"
    parallel = "mov x20, #1\nmov x21, #2\n" \
        + "".join(f"add x{i % 8}, x20, x21\n" for i in range(40)) + "hlt"
    config = MachineConfig.baseline()
    serial_trace, _ = emulate(serial)
    parallel_trace, _ = emulate(parallel)
    serial_bound = dependence_bound(serial_trace, config)
    parallel_bound = dependence_bound(parallel_trace, config)
    assert serial_bound.bound >= 40      # 40 chained 1-cycle adds at least
    assert serial_bound.bound > parallel_bound.bound


def test_broken_never_exceeds_unbroken():
    workload = get_workload("hash_loop")
    trace, _ = trace_program(workload.program, max_instructions=1000)
    for name in ("baseline", "mvp", "tvp", "tvp+spsr", "gvp+spsr"):
        config = ExperimentRunner.config(name)
        opps = StaticOpportunities.analyze(
            workload.program, name=workload.name,
            constant_folding=bool(config.spsr_constant_folding))
        result = dependence_bound(trace, config, sites=opps.sites)
        assert result.bound <= result.bound_unbroken, name
        assert result.bound >= 0


def test_vp_and_spsr_breaks_shrink_the_bound():
    """hash_loop's serial hash recurrence is VP-breakable: the config-aware
    bound under TVP+SpSR must drop strictly below the baseline bound."""
    workload = get_workload("hash_loop")
    trace, _ = trace_program(workload.program, max_instructions=1000)

    def bound_under(name):
        config = ExperimentRunner.config(name)
        opps = StaticOpportunities.analyze(
            workload.program, name=workload.name,
            constant_folding=bool(config.spsr_constant_folding))
        return dependence_bound(trace, config, sites=opps.sites).bound

    assert bound_under("tvp+spsr") < bound_under("baseline")


def test_critical_path_has_source_provenance():
    workload = get_workload("stream_triad")
    config = ExperimentRunner.config("baseline")
    trace, _ = trace_program(workload.program, max_instructions=800)
    opps = StaticOpportunities.analyze(workload.program, name=workload.name)
    result = dependence_bound(trace, config, sites=opps.sites,
                              max_path_sites=8)
    assert result.critical_path, "baseline run must have a critical path"
    assert len(result.critical_path) <= 8
    cycles = [entry["cycles"] for entry in result.critical_path]
    assert cycles == sorted(cycles, reverse=True)
    for entry in result.critical_path:
        assert entry["pc"].startswith("0x")
        assert entry["count"] >= 1
        assert entry["text"]


def test_enabled_kinds_follow_config():
    # The baseline already ships classic DSR (move elim + zero/one idioms).
    base = enabled_elimination_kinds(MachineConfig.baseline())
    assert base == frozenset({"move", "zero_idiom", "one_idiom"})
    bare = enabled_elimination_kinds(MachineConfig.baseline(
        enable_move_elimination=False, enable_zero_one_idiom=False))
    assert bare == frozenset()
    tvp = enabled_elimination_kinds(MachineConfig.tvp(spsr=True))
    assert {"zero_idiom", "one_idiom", "nine_bit_idiom", "spsr"} <= tvp


def test_min_latency_uses_memory_minimum():
    config = MachineConfig.baseline()
    trace, _ = emulate("adr x9, buf\nldr x1, [x9]\nhlt\n.data\nbuf: .quad 7")
    load = next(u for u in trace if u.is_load)
    assert min_uop_latency(load, config) == min(
        config.memory.l1d_latency, config.store_forward_latency)
