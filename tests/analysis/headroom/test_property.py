"""Soundness property: ``max(dep_lb, structural_lb) <= actual_cycles``
over differential-fuzz programs, for both timing-core engines.

The fuzz generator produces structured random programs (loops, flag
chains, scratch-buffer memory traffic) far uglier than the shipped
kernels; if the lower bounds survive these under the full TVP+SpSR
break set AND under the break-free baseline, on both engines, the
analytic machinery is sound where it matters.
"""

import pytest

from repro.analysis.headroom.graph import dependence_bound
from repro.analysis.headroom.structural import structural_bound
from repro.analysis.opportunity import StaticOpportunities
from repro.emulator.trace import trace_program
from repro.isa.assembler import assemble
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel

from tests.differential.progen import generate_source

_SEED = 0x5EADBEEF
_PROGRAMS = 4
_MAX_UOPS = 2500

_CONFIGS = (
    ("baseline", MachineConfig.baseline),
    ("tvp+spsr", lambda: MachineConfig.tvp(spsr=True)),
)
_ENGINES = ("interp", "batch")

_POINTS = [(index, config_name, engine)
           for index in range(_PROGRAMS)
           for config_name, _ in _CONFIGS
           for engine in _ENGINES]


def _build(index):
    program = assemble(generate_source(_SEED, index))
    trace, _ = trace_program(program, max_instructions=_MAX_UOPS)
    return program, trace


@pytest.mark.parametrize(
    "index,config_name,engine", _POINTS,
    ids=[f"p{i}-{c}-{e}" for i, c, e in _POINTS])
def test_bounds_never_exceed_actual_cycles(index, config_name, engine):
    program, trace = _build(index)
    config = dict(_CONFIGS)[config_name]().with_(engine=engine)
    opps = StaticOpportunities.analyze(
        program, name=f"fuzz-{index}",
        constant_folding=bool(config.spsr_constant_folding))
    stats = CpuModel(trace, config).run().stats
    dep = dependence_bound(trace, config, sites=opps.sites)
    struct = structural_bound(trace, config, sites=opps.sites)
    bound = max(dep.bound, struct.bound)
    assert bound <= stats.cycles, (
        f"UNSOUND: bound {bound} (dep {dep.bound}, structural "
        f"{struct.bound}) > actual {stats.cycles} for fuzz program "
        f"(seed {_SEED:#x}, index {index}) under {config_name}/{engine}")
    assert dep.bound <= dep.bound_unbroken


def test_engines_agree_on_actual_cycles():
    """The bound is engine-independent by construction; the actual cycle
    count must be too (counter-identical engines), so one soundness
    verdict covers both."""
    program, trace = _build(0)
    config = MachineConfig.tvp(spsr=True)
    cycles = {engine: CpuModel(trace, config.with_(engine=engine))
              .run().stats.cycles for engine in _ENGINES}
    assert cycles["interp"] == cycles["batch"]
