"""Determinism lint: seeded violations of each rule are flagged with
file:line; the repository at HEAD is clean."""

import textwrap
from pathlib import Path

from repro.analysis.lint import lint_paths, lint_source


def lint(source, relpath="repro/pipeline/fake.py"):
    return lint_source(textwrap.dedent(source), relpath)


def test_repo_is_clean_at_head():
    import repro
    assert lint_paths(Path(repro.__file__).parent) == []


# -- DET001: nondeterminism imports -------------------------------------------------
def test_det001_random_import_flagged():
    findings = lint("import random\n")
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].location == "line 1"
    assert findings[0].where == "repro/pipeline/fake.py"


def test_det001_from_import_flagged():
    findings = lint("x = 1\nfrom time import monotonic\n")
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].location == "line 2"


def test_det001_allowed_in_rng_and_harness():
    assert lint("import random\n", "repro/util/rng.py") == []
    assert lint("import time\n", "repro/harness/cli.py") == []


def test_det001_datetime_flagged_outside_model_packages_too():
    # DET001 covers all of src/repro, not just the model packages.
    findings = lint("import datetime\n", "repro/isa/assembler.py")
    assert [f.rule for f in findings] == ["DET001"]


# -- DET002: set iteration ----------------------------------------------------------
def test_det002_for_over_set_flagged():
    findings = lint("""
        pending = set()
        for item in pending:
            print(item)
    """)
    assert [f.rule for f in findings] == ["DET002"]
    assert findings[0].location == "line 3"


def test_det002_self_attribute_set_flagged():
    findings = lint("""
        class Core:
            def __init__(self):
                self.seen = set()
            def drain(self):
                return [s for s in self.seen]
    """)
    assert [f.rule for f in findings] == ["DET002"]
    assert findings[0].location == "line 6"


def test_det002_set_literal_iteration_flagged():
    findings = lint("out = [x for x in {1, 2, 3}]\n")
    assert [f.rule for f in findings] == ["DET002"]


def test_det002_sorted_iteration_accepted():
    assert lint("""
        pending = set()
        for item in sorted(pending):
            print(item)
    """) == []


def test_det002_membership_accepted():
    assert lint("""
        pending = set()
        def look(x):
            return x in pending
    """) == []


def test_det002_outside_model_packages_accepted():
    source = "pending = set()\nfor item in pending:\n    print(item)\n"
    assert lint(source, "repro/harness/cli.py") == []


def test_det002_rebound_to_list_accepted():
    assert lint("""
        pending = set()
        pending = sorted(pending)
        for item in pending:
            print(item)
    """) == []


# -- DET003: config mutation after start --------------------------------------------
def test_det003_config_field_mutation_flagged():
    findings = lint("""
        class Core:
            def __init__(self, config):
                self.config = config
            def tick(self):
                self.config.rob_entries = 1
    """)
    assert [f.rule for f in findings] == ["DET003"]
    assert findings[0].location == "line 6"


def test_det003_config_rebind_flagged():
    findings = lint("""
        class Core:
            def tick(self, other):
                self.config = other
    """)
    assert [f.rule for f in findings] == ["DET003"]


def test_det003_init_assignment_accepted():
    assert lint("""
        class Core:
            def __init__(self, config):
                self.config = config
                self.config.seed = 7
    """) == []


# -- DET004: undeclared stats counters ----------------------------------------------
def test_det004_undeclared_counter_flagged():
    findings = lint("""
        class Core:
            def tick(self):
                self.stats.retired_uops += 1
                self.stats.made_up_counter += 1
    """)
    assert [f.rule for f in findings] == ["DET004"]
    assert findings[0].location == "line 5"
    assert "made_up_counter" in findings[0].message


def test_det004_local_stats_alias_flagged():
    findings = lint("""
        def tick(stats):
            stats.typo_counter += 1
    """)
    assert [f.rule for f in findings] == ["DET004"]


def test_det004_declared_counters_accepted():
    assert lint("""
        def tick(stats):
            stats.cycles += 1
            stats.elim_spsr += 1
            stats.vp_eligible += 1
    """) == []


# -- reporting ----------------------------------------------------------------------
def test_syntax_error_reported_not_raised():
    findings = lint_source("def broken(:\n", "repro/pipeline/bad.py")
    assert [f.rule for f in findings] == ["DET000"]


def test_findings_sorted_by_line():
    findings = lint("""
        import random
        s = set()
        for x in s:
            pass
    """)
    assert [f.rule for f in findings] == ["DET001", "DET002"]


# -- DET005: stats counter / interval schema coverage -------------------------------
def test_det005_clean_at_head():
    from repro.analysis.lint import lint_stats_coverage
    assert lint_stats_coverage() == []


def test_det005_uncovered_counter_flagged():
    from repro.analysis.lint import lint_stats_coverage
    findings = lint_stats_coverage(
        delta=("cycles",), exempt=(), declared=("cycles", "new_counter"))
    assert [f.rule for f in findings] == ["DET005"]
    assert "new_counter" in findings[0].message
    assert findings[0].where == "repro/observability/interval.py"


def test_det005_double_listing_flagged():
    from repro.analysis.lint import lint_stats_coverage
    findings = lint_stats_coverage(
        delta=("cycles",), exempt=("cycles",), declared=("cycles",))
    assert [f.rule for f in findings] == ["DET005"]
    assert "both" in findings[0].message


def test_det005_stale_entry_flagged():
    from repro.analysis.lint import lint_stats_coverage
    findings = lint_stats_coverage(
        delta=("cycles", "removed_counter"), exempt=(), declared=("cycles",))
    assert [f.rule for f in findings] == ["DET005"]
    assert "stale" in findings[0].message
