"""Static opportunity analysis + the runtime elimination cross-check."""

import pytest

from tests.helpers import emulate

from repro.analysis.opportunity import (
    EliminationAudit,
    EliminationAuditError,
    Site,
    StaticOpportunities,
)
from repro.isa.assembler import assemble
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel
from repro.workloads import suite


def analyze(source, **kwargs):
    return StaticOpportunities.analyze(assemble(source), **kwargs)


# -- static classification -----------------------------------------------------------
def test_movz_idiom_classification():
    opps = analyze("mov x0, #0\nmov x1, #1\nmov x2, #37\nmov x3, #900\nhlt")
    counts = opps.static_counts()
    assert counts["zero_idiom"] == 1
    assert counts["one_idiom"] == 1
    assert counts["nine_bit_idiom"] == 3   # 0, 1 and 37 fit int9; 900 not


def test_move_and_zero_register_idioms():
    opps = analyze("mov x9, #5\nmov x0, x9\neor x1, x9, x9\n"
                   "and x2, x9, xzr\nadd x3, x9, xzr\nhlt")
    counts = opps.static_counts()
    assert counts["move"] == 2        # mov x0,x9 and add x3,x9,xzr
    assert counts["zero_idiom"] == 2  # eor-same and and-with-xzr


def test_spsr_superset_of_table1():
    opps = analyze("mov x1, #3\ncmp x1, #0\nb.eq out\n"
                   "add x0, x1, x1\nout: hlt")
    by_text = {site.text: site for site in opps.sites.values()}
    assert "spsr" in by_text["cmp x1, #0"].kinds
    assert "spsr" in by_text["b.eq out"].kinds
    assert "spsr" in by_text["add x0, x1, x1"].kinds
    assert "spsr" not in by_text["hlt"].kinds


def test_constant_folding_widens_eligibility():
    source = "mov x1, #3\nmul x0, x1, x1\nhlt"
    assert analyze(source).static_counts()["spsr"] == 0
    assert analyze(source, constant_folding=True).static_counts()["spsr"] == 1


def test_vp_eligibility_matches_trace_flags():
    source = "mov x1, #3\nadd x0, x1, #1\nldr x2, [sp]\ncbnz x0, out\nout: hlt"
    opps = analyze(source)
    trace, _ = emulate(source, max_instructions=10)
    for uop in trace:
        assert opps.sites[(uop.pc, uop.uop_index)].vp_eligible == uop.vp_elig


def test_expanded_uops_get_distinct_sites():
    # Pre-indexed load expands to a writeback add + a load: two sites.
    opps = analyze("mov x1, #5\nstr x1, [sp, #-16]!\nhlt")
    uop_indices = {key[1] for key in opps.sites}
    assert 1 in uop_indices


# -- dynamic bounds -----------------------------------------------------------------
def test_dynamic_bounds_count_trace_occurrences():
    source = """
    mov x1, #4
loop:
    sub x1, x1, #1
    cbnz x1, loop
    hlt
"""
    opps = analyze(source)
    trace, _ = emulate(source, max_instructions=100)
    bounds = opps.dynamic_bounds(trace)
    assert bounds["nine_bit_idiom"] == 1   # the single mov executes once
    assert bounds["spsr"] == 8             # 4x sub + 4x cbnz


def test_check_bounds_flags_inflated_counters():
    source = "mov x1, #4\nadd x0, x1, #1\nhlt"
    opps = analyze(source, name="toy")
    trace, _ = emulate(source, max_instructions=10)
    model = CpuModel(trace, MachineConfig.tvp(spsr=True))
    stats = model.run().stats
    assert opps.check_bounds(trace, stats) == []
    stats.elim_spsr = 10_000  # corrupt the counter past any real bound
    violations = opps.check_bounds(trace, stats)
    assert violations and "spsr" in violations[0] and "toy" in violations[0]


# -- the runtime cross-check ---------------------------------------------------------
def _run_audited(source, config, opps=None):
    opps = opps or StaticOpportunities.analyze(assemble(source))
    trace, _ = emulate(source, max_instructions=2_000)
    audit = EliminationAudit(opps)
    model = CpuModel(trace, config, elim_audit=audit)
    model.run()
    return audit, model.stats


def test_audit_accepts_real_eliminations():
    source = """
    mov x0, #0
    mov x1, #1
    mov x9, #5
    mov x2, x9
    eor x3, x9, x9
    mov x4, #100
loop:
    sub x4, x4, #1
    cbnz x4, loop
    hlt
"""
    audit, stats = _run_audited(source, MachineConfig.tvp(spsr=True))
    eliminated = (stats.elim_zero_idiom + stats.elim_one_idiom +
                  stats.elim_move + stats.elim_nine_bit_idiom +
                  stats.elim_spsr)
    assert eliminated > 0
    assert audit.checked == eliminated


def test_audit_rejects_elimination_at_ineligible_site():
    # Strip every site's eligibility: the first real elimination the
    # renamer performs must now trip the cross-check.
    source = "mov x0, #0\nmov x1, #1\nhlt"
    opps = StaticOpportunities.analyze(assemble(source), name="stripped")
    for key, site in opps.sites.items():
        opps.sites[key] = Site(pc=site.pc, uop_index=site.uop_index,
                               text=site.text, kinds=frozenset(),
                               vp_eligible=site.vp_eligible)
    with pytest.raises(EliminationAuditError, match="ineligible site"):
        _run_audited(source, MachineConfig.tvp(spsr=True), opps=opps)


def test_audit_rejects_unknown_site():
    source = "mov x0, #0\nhlt"
    opps = StaticOpportunities.analyze(assemble(source), name="empty")
    opps.sites.clear()
    with pytest.raises(EliminationAuditError, match="unknown"):
        _run_audited(source, MachineConfig.tvp(spsr=True), opps=opps)


def test_audit_direct_check_mocked_kind():
    # A load µop is never spsr-eliminable: a mocked dynamic elimination
    # claiming so must be rejected.
    source = "ldr x0, [sp]\nhlt"
    opps = StaticOpportunities.analyze(assemble(source), name="mock")
    trace, _ = emulate(source, max_instructions=5)
    audit = EliminationAudit(opps)
    with pytest.raises(EliminationAuditError, match="spsr"):
        audit.check(trace[0], "spsr")


@pytest.mark.parametrize("workload", suite(), ids=lambda w: w.name)
def test_suite_runs_clean_under_audit(workload):
    """Every kernel simulates under the cross-check without violations."""
    opps = StaticOpportunities.analyze(workload.program, name=workload.name)
    trace, _ = emulate(workload.source, max_instructions=2_000)
    model = CpuModel(trace, MachineConfig.tvp(spsr=True),
                     elim_audit=EliminationAudit(opps))
    stats = model.run().stats
    assert opps.check_bounds(trace, stats) == []
