"""Golden-stats snapshot definition and regeneration.

The snapshot pins the **full** ``PipelineStats`` counter vector for a
small matrix of kernels and configurations.  Any model change that moves
any counter anywhere in the matrix fails the golden test with a
counter-level diff — the reviewer then either fixes the regression or
deliberately re-pins:

    PYTHONPATH=src python -m tests.golden.regen

Keep the matrix small (3 kernels x 4 configs at a 2000-instruction
budget) so a full regeneration stays under half a minute.
"""

import json
import os

from repro.emulator.trace import trace_program
from repro.harness.runner import ExperimentRunner
from repro.pipeline.core import CpuModel
from repro.pipeline.stats import PipelineStats
from repro.workloads import get_workload

KERNELS = ("hash_loop", "stream_triad", "xml_tree")
CONFIGS = ("baseline", "mvp", "tvp", "gvp")
BUDGET = 2000

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "snapshots.json")


def counter_vector(workload_name, config_name):
    """The pinned counters for one (kernel, config) simulation point."""
    workload = get_workload(workload_name)
    trace, _ = trace_program(workload.program, max_instructions=BUDGET)
    stats = CpuModel(trace, ExperimentRunner.config(config_name)).run().stats
    return {name: getattr(stats, name)
            for name in PipelineStats.counter_names()}


def current_matrix():
    return {workload: {config: counter_vector(workload, config)
                       for config in CONFIGS}
            for workload in KERNELS}


def load_snapshot():
    with open(SNAPSHOT_PATH) as handle:
        return json.load(handle)


def regenerate():
    matrix = {"budget": BUDGET, "stats": current_matrix()}
    with open(SNAPSHOT_PATH, "w") as handle:
        json.dump(matrix, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return matrix


if __name__ == "__main__":
    regenerated = regenerate()
    points = sum(len(configs) for configs in regenerated["stats"].values())
    print(f"pinned {points} (kernel, config) points to {SNAPSHOT_PATH}")
