"""Golden exploration report: one fixed small search, fully pinned.

A failure means the exploration's output moved — the search trajectory
(strategy/RNG change), the cost model, or the simulated timing under
any evaluated point.  If the movement is intentional, re-pin with
``PYTHONPATH=src python -m tests.golden.regen_explore``.
"""

import pytest

from repro.dse.result import EXPLORE_SCHEMA

from tests.golden.regen_explore import (BUDGET, KERNELS, SEED, SPACE,
                                        STRATEGY, current_result,
                                        load_snapshot)

_SNAPSHOT = load_snapshot()


def test_snapshot_matches_definition():
    assert _SNAPSHOT["schema"] == EXPLORE_SCHEMA
    assert _SNAPSHOT["space"] == SPACE
    assert _SNAPSHOT["strategy"] == STRATEGY
    assert _SNAPSHOT["seed"] == SEED
    assert _SNAPSHOT["instructions"] == BUDGET
    assert tuple(_SNAPSHOT["workloads"]) == KERNELS


def test_exploration_matches_snapshot():
    current = current_result()
    if current == _SNAPSHOT:
        return
    diff_lines = []
    for name, value in current.items():
        pinned = _SNAPSHOT.get(name)
        if name == "points":
            by_index = {p["index"]: p for p in (pinned or [])}
            for point in value:
                old = by_index.get(point["index"])
                if point == old:
                    continue
                for field, new in point.items():
                    if old is None or new != old.get(field):
                        diff_lines.append(
                            f"point {point['index']} "
                            f"({point['point_id']}) {field}: pinned "
                            f"{None if old is None else old.get(field)!r}"
                            f" != current {new!r}")
        elif value != pinned:
            diff_lines.append(f"{name}: pinned {pinned!r} != "
                              f"current {value!r}")
    pytest.fail(
        f"golden exploration report moved "
        f"({len(diff_lines)} field(s)):\n  " + "\n  ".join(diff_lines)
        + "\nif intentional: "
          "PYTHONPATH=src python -m tests.golden.regen_explore",
        pytrace=False)
