"""Golden headroom reports: full report documents, two kernels, two
configurations.  A failure means the analyzer's output moved — either
the bounds themselves or the timing they are compared against.  If the
movement is intentional, re-pin with
``PYTHONPATH=src python -m tests.golden.regen_headroom``.
"""

import pytest

from repro.analysis.headroom.report import HEADROOM_SCHEMA

from tests.golden.regen_headroom import (BUDGET, CONFIGS, KERNELS,
                                         SAMPLE_INTERVAL, load_snapshot,
                                         report_for)

_SNAPSHOT = load_snapshot()

_POINTS = [(kernel, config) for kernel in KERNELS for config in CONFIGS]


def test_snapshot_matches_matrix_and_schema():
    assert _SNAPSHOT["budget"] == BUDGET
    assert _SNAPSHOT["sample_interval"] == SAMPLE_INTERVAL
    assert set(_SNAPSHOT["reports"]) == set(KERNELS)
    for kernel, configs in _SNAPSHOT["reports"].items():
        assert set(configs) == set(CONFIGS), kernel
        for config, report in configs.items():
            assert report["schema"] == HEADROOM_SCHEMA, (kernel, config)
            assert report["sound"] is True, (kernel, config)


@pytest.mark.parametrize("kernel,config", _POINTS,
                         ids=[f"{k}-{c}" for k, c in _POINTS])
def test_report_matches_snapshot(kernel, config):
    pinned = _SNAPSHOT["reports"][kernel][config]
    current = report_for(kernel, config)
    if current == pinned:
        return
    diff_lines = [f"{name}: pinned {pinned.get(name)!r} != "
                  f"current {value!r}"
                  for name, value in current.items()
                  if value != pinned.get(name)]
    pytest.fail(
        f"golden headroom report moved for {kernel} / {config} "
        f"({len(diff_lines)} field(s)):\n  "
        + "\n  ".join(diff_lines)
        + "\nif intentional: "
          "PYTHONPATH=src python -m tests.golden.regen_headroom",
        pytrace=False)
