"""Golden headroom-report snapshot definition and regeneration.

Pins the **full** ``headroom/2`` report document — bounds, binding,
critical path, attribution — for two kernels under base and TVP, so any
change to the analyzer (or to the simulator timing it measures) fails
with a field-level diff.  The envelope's ``code_version`` header is
stripped before pinning (it changes on every source edit by design).
Deliberate changes re-pin with:

    PYTHONPATH=src python -m tests.golden.regen_headroom
"""

import json
import os

from repro.analysis.headroom.report import analyze_headroom
from repro.workloads import get_workload

KERNELS = ("hash_loop", "stream_triad")
CONFIGS = ("baseline", "tvp")
BUDGET = 2000
SAMPLE_INTERVAL = 200

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "headroom.json")


def report_for(workload_name, config_name):
    """The pinned headroom report for one (kernel, config) point."""
    report = analyze_headroom(get_workload(workload_name), config_name,
                              instructions=BUDGET,
                              sample_interval=SAMPLE_INTERVAL)
    report.pop("code_version", None)      # changes on every source edit
    return report


def current_matrix():
    return {workload: {config: report_for(workload, config)
                       for config in CONFIGS}
            for workload in KERNELS}


def load_snapshot():
    with open(SNAPSHOT_PATH) as handle:
        return json.load(handle)


def regenerate():
    matrix = {"budget": BUDGET, "sample_interval": SAMPLE_INTERVAL,
              "reports": current_matrix()}
    with open(SNAPSHOT_PATH, "w") as handle:
        json.dump(matrix, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return matrix


if __name__ == "__main__":
    regenerated = regenerate()
    points = sum(len(configs) for configs in regenerated["reports"].values())
    print(f"pinned {points} (kernel, config) reports to {SNAPSHOT_PATH}")
