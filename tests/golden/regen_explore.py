"""Golden exploration-report snapshot definition and regeneration.

Pins the **full** ``explore/2`` result document — every evaluated
point's per-workload IPC, cost, and both frontier sets — for a fixed
(space, strategy, seed, workloads, budget) tuple, so any change to the
search, the cost model, or the simulator timing underneath fails with a
point-level diff.  The envelope's ``code_version`` header (a hash of
every source file) is stripped before pinning: it changes on every
edit by design and would make the snapshot unpinnable.  Deliberate
changes re-pin with:

    PYTHONPATH=src python -m tests.golden.regen_explore
"""

import json
import os

from repro.dse.explore import Explorer

SPACE = "smoke"
STRATEGY = "grid"
SEED = 1
KERNELS = ("hash_loop", "stream_triad")
BUDGET = 2000

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "explore.json")


def current_result():
    """The pinned exploration, run hermetically (no cache, no journal)."""
    explorer = Explorer(space=SPACE, strategy=STRATEGY,
                        workloads=list(KERNELS), instructions=BUDGET,
                        seed=SEED, cache=None, journal=None)
    payload = explorer.run().to_dict()
    payload.pop("code_version", None)     # changes on every source edit
    return payload


def load_snapshot():
    with open(SNAPSHOT_PATH) as handle:
        return json.load(handle)


def regenerate():
    result = current_result()
    with open(SNAPSHOT_PATH, "w") as handle:
        json.dump(result, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return result


if __name__ == "__main__":
    regenerated = regenerate()
    print(f"pinned {len(regenerated['points'])}-point exploration "
          f"({SPACE}/{STRATEGY}, seed {SEED}) to {SNAPSHOT_PATH}")
