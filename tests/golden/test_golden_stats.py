"""Golden stats: every counter, three kernels, four configurations.

A failure means the simulator's behavior moved.  If the movement is
intentional, re-pin with ``PYTHONPATH=src python -m tests.golden.regen``
and commit the updated ``snapshots.json`` alongside the model change.
"""

import pytest

from repro.pipeline.stats import PipelineStats

from tests.golden.regen import (BUDGET, CONFIGS, KERNELS, counter_vector,
                                load_snapshot)

_SNAPSHOT = load_snapshot()

_POINTS = [(kernel, config) for kernel in KERNELS for config in CONFIGS]


def test_snapshot_matches_current_schema_and_matrix():
    assert _SNAPSHOT["budget"] == BUDGET
    assert set(_SNAPSHOT["stats"]) == set(KERNELS)
    names = set(PipelineStats.counter_names())
    for kernel, configs in _SNAPSHOT["stats"].items():
        assert set(configs) == set(CONFIGS), kernel
        for config, counters in configs.items():
            assert set(counters) == names, (kernel, config)


@pytest.mark.parametrize("kernel,config", _POINTS,
                         ids=[f"{k}-{c}" for k, c in _POINTS])
def test_counters_match_snapshot(kernel, config):
    pinned = _SNAPSHOT["stats"][kernel][config]
    current = counter_vector(kernel, config)
    if current == pinned:
        return
    diff_lines = [f"{name}: pinned {pinned[name]} != current {value:}"
                  for name, value in current.items()
                  if value != pinned.get(name)]
    pytest.fail(
        f"golden stats moved for {kernel} / {config} "
        f"({len(diff_lines)} counter(s)):\n  "
        + "\n  ".join(diff_lines)
        + "\nif intentional: PYTHONPATH=src python -m tests.golden.regen",
        pytrace=False)
