"""Stress interactions: VP flushes x branch mispredicts x memory ordering.

These programs are built to fire several recovery mechanisms at once; the
assertions are the global invariants that must survive any interleaving.
"""

import pytest

from tests.helpers import run_pipeline

from repro.pipeline.config import MachineConfig

# A value that changes every 64 iterations (periodic VP traps), a
# data-dependent branch, and an aliasing store/load pair.
STORM = """
    adr   x1, cell
    adr   x2, flag
    mov   x9, #1
    mov   x8, #3000
loop:
    ldr   x3, [x1]          // VP target; rewritten periodically below
    add   x0, x0, x3
    and   x4, x8, #63
    cbnz  x4, nostore
    add   x5, x3, #1
    str   x5, [x1]          // value changes: confident predictions break
nostore:
    lsl   x6, x9, #13       // xorshift for an unpredictable branch
    eor   x9, x9, x6
    lsr   x6, x9, #7
    eor   x9, x9, x6
    tbz   x9, #4, skip
    str   x9, [x2]
    ldr   x7, [x2]          // aliasing pair: ordering machinery engaged
    add   x0, x0, x7
skip:
    subs  x8, x8, #1
    b.ne  loop
    hlt
.data
cell: .quad 0
flag: .quad 0
"""

CONFIGS = [
    ("baseline", MachineConfig.baseline()),
    ("mvp", MachineConfig.mvp()),
    ("tvp+spsr", MachineConfig.tvp(spsr=True)),
    ("gvp+spsr", MachineConfig.gvp(spsr=True)),
]


@pytest.mark.parametrize("name,config", CONFIGS)
def test_storm_retires_fully(name, config):
    model, result = run_pipeline(STORM, config=config,
                                 max_instructions=20_000)
    assert result.stats.retired_uops == result.trace_uops


@pytest.mark.parametrize("name,config", CONFIGS)
def test_storm_leaves_consistent_state(name, config):
    model, _ = run_pipeline(STORM, config=config, max_instructions=20_000)
    assert model.rat.check_consistent_with_committed()
    model.int_prf.check_conservation()
    model.fp_prf.check_conservation()
    model.flags_prf.check_conservation()
    assert len(model.rob) == 0
    assert not model.iq
    assert not model.lsq.loads and not model.lsq.stores


def test_storm_actually_fires_vp_flushes():
    _, result = run_pipeline(STORM, config=MachineConfig.gvp(),
                             max_instructions=20_000)
    assert result.stats.vp_flushes >= 1
    assert result.stats.branch_mispredicts > 50


def test_storm_determinism_across_reruns():
    results = [run_pipeline(STORM, config=MachineConfig.tvp(spsr=True),
                            max_instructions=12_000)[1]
               for _ in range(2)]
    assert results[0].stats.cycles == results[1].stats.cycles
    assert results[0].stats.vp_flushes == results[1].stats.vp_flushes


def test_storm_elimination_counts_do_not_exceed_retired():
    _, result = run_pipeline(STORM, config=MachineConfig.tvp(spsr=True),
                             max_instructions=20_000)
    stats = result.stats
    eliminated = (stats.elim_zero_idiom + stats.elim_one_idiom
                  + stats.elim_move + stats.elim_nine_bit_idiom
                  + stats.elim_spsr)
    assert eliminated <= stats.retired_uops
    assert stats.iq_dispatched + eliminated >= stats.retired_uops - \
        stats.branches  # NOPs/HLT and eliminated µops skip the IQ


def test_vp_counters_consistent():
    _, result = run_pipeline(STORM, config=MachineConfig.gvp(),
                             max_instructions=20_000)
    stats = result.stats
    assert stats.vp_correct_used + stats.vp_incorrect_used <= stats.vp_eligible \
        + stats.vp_flushes  # refetched offenders are eligible twice
    assert stats.vp_incorrect_used == stats.vp_flushes


def test_tiny_window_storm():
    """Shrunken structures force every stall path simultaneously."""
    config = MachineConfig.tvp(spsr=True, rob_entries=24, iq_entries=8,
                               lq_entries=4, sq_entries=4,
                               int_phys_regs=48)
    model, result = run_pipeline(STORM, config=config,
                                 max_instructions=10_000)
    assert result.stats.retired_uops == result.trace_uops
    assert model.rat.check_consistent_with_committed()
    stats = result.stats
    assert stats.stall_rob_full + stats.stall_iq_full + \
        stats.stall_lq_full + stats.stall_sq_full + \
        stats.stall_no_phys_reg > 0
