"""Property test: randomly generated programs keep every invariant.

Hypothesis builds random loop bodies from a safe instruction vocabulary;
whatever it produces, the pipeline must fully retire the trace and leave
the rename state consistent, under every configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.emulator.trace import trace_program
from repro.isa.assembler import assemble
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel

_REGS = [f"x{i}" for i in range(8)]
_WREGS = [f"w{i}" for i in range(8)]

_reg = st.sampled_from(_REGS)
_imm = st.integers(0, 255)


def _alu(op):
    return st.tuples(st.just(op), _reg, _reg, _reg).map(
        lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}")


def _alu_imm(op):
    return st.tuples(st.just(op), _reg, _reg, _imm).map(
        lambda t: f"{t[0]} {t[1]}, {t[2]}, #{t[3]}")


_instruction = st.one_of(
    _alu("add"), _alu("sub"), _alu("and"), _alu("orr"), _alu("eor"),
    _alu("mul"), _alu_imm("add"), _alu_imm("and"), _alu_imm("eor"),
    _alu_imm("lsr"),
    st.tuples(_reg, _imm).map(lambda t: f"mov {t[0]}, #{t[1]}"),
    st.tuples(_reg, _reg).map(lambda t: f"mov {t[0]}, {t[1]}"),
    st.sampled_from(_WREGS).map(lambda r: f"mov {r}, {r}"),
    st.tuples(_reg, _reg).map(lambda t: f"cmp {t[0]}, {t[1]}"),
    st.tuples(_reg, _reg, _reg).map(
        lambda t: f"csel {t[0]}, {t[1]}, {t[2]}, eq"),
    _reg.map(lambda r: f"cset {r}, ne"),
    st.tuples(_reg, st.integers(0, 6)).map(
        lambda t: f"ldr {t[0]}, [x28, #{t[1] * 8}]"),
    st.tuples(_reg, st.integers(0, 6)).map(
        lambda t: f"str {t[0]}, [x28, #{t[1] * 8}]"),
)

_body = st.lists(_instruction, min_size=1, max_size=14)


def _program_of(body):
    lines = "\n    ".join(body)
    return assemble(f"""
        adr  x28, scratch
        mov  x27, #40
    loop:
        {lines}
        subs x27, x27, #1
        b.ne loop
        hlt
    .data
    scratch: .zero 64
    """)


@settings(max_examples=25, deadline=None)
@given(_body)
def test_random_programs_fully_retire_baseline(body):
    trace, _ = trace_program(_program_of(body), max_instructions=2000)
    model = CpuModel(trace, MachineConfig.baseline())
    result = model.run()
    assert result.stats.retired_uops == len(trace)
    assert model.rat.check_consistent_with_committed()
    model.int_prf.check_conservation()


@settings(max_examples=20, deadline=None)
@given(_body)
def test_random_programs_fully_retire_tvp_spsr(body):
    trace, _ = trace_program(_program_of(body), max_instructions=2000)
    model = CpuModel(trace, MachineConfig.tvp(spsr=True))
    result = model.run()
    assert result.stats.retired_uops == len(trace)
    assert model.rat.check_consistent_with_committed()
    model.int_prf.check_conservation()
    model.flags_prf.check_conservation()


@settings(max_examples=12, deadline=None)
@given(_body)
def test_random_programs_gvp_vs_baseline_same_retirement(body):
    trace, _ = trace_program(_program_of(body), max_instructions=1500)
    base = CpuModel(trace, MachineConfig.baseline()).run()
    gvp = CpuModel(trace, MachineConfig.gvp(spsr=True)).run()
    assert base.stats.retired_uops == gvp.stats.retired_uops == len(trace)
    assert base.stats.retired_arch_insts == gvp.stats.retired_arch_insts
