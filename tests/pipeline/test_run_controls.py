"""Run-loop controls: the watchdog, max_cycles, and the simulate() API."""

import pytest

from tests.helpers import emulate

from repro.isa.assembler import assemble
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel, SimulationDeadlock, simulate


def small_trace():
    trace, _ = emulate("""
        mov x0, #0
        mov x1, #200
    loop:
        add x0, x0, #1
        subs x1, x1, #1
        b.ne loop
        hlt
    """, max_instructions=2000)
    return trace


def test_simulate_accepts_program():
    program = assemble("mov x0, #1\nmov x1, #2\nhlt")
    result = simulate(program, MachineConfig.baseline())
    assert result.stats.retired_arch_insts == 3


def test_simulate_accepts_trace():
    result = simulate(small_trace(), MachineConfig.baseline())
    assert result.stats.retired_uops == result.trace_uops


def test_max_cycles_stops_early():
    trace = small_trace()
    full = CpuModel(trace, MachineConfig.baseline()).run()
    partial = CpuModel(trace, MachineConfig.baseline()).run(max_cycles=20)
    # The idle-cycle skipper may overshoot the cap by one event window,
    # but the run must stop far short of the full simulation.
    assert partial.stats.cycles < full.stats.cycles
    assert partial.stats.retired_uops < partial.trace_uops


def test_watchdog_reports_stuck_pipeline():
    """If a stage stops making progress, the deadlock report names the
    stuck state instead of spinning forever."""
    model = CpuModel(small_trace(), MachineConfig.baseline())
    model._fetch = lambda: None   # simulate a wedged frontend
    with pytest.raises(SimulationDeadlock) as excinfo:
        model.run(progress_window=50)
    message = str(excinfo.value)
    assert "retired=" in message and "fetch_index" in message


def test_empty_trace_returns_immediately():
    result = CpuModel([], MachineConfig.baseline()).run()
    assert result.stats.cycles == 0
    assert result.stats.retired_uops == 0
