"""No-NumPy fallback equivalence for the packed per-trace precomputes.

The batch engine's precomputes (`_fetch_chunk_ends`, `_vp_next`,
`_rename_gates`, `_dep_adjacency`) each carry two implementations: a
vectorized NumPy build and a pure-Python fallback for environments
without the optional ``fast`` extra.  The fallback is not a
lower-fidelity approximation — it must produce *byte-identical* packed
arrays, because the arrays feed the scheduler and any drift would break
the engine identity contract only on NumPy-less boxes.  These tests pin
that equivalence across differential-fuzz programs and real workloads by
building each structure twice (``_np`` patched to None the second time)
on fresh traces and comparing raw bytes.

When NumPy is absent the suite still runs: the builds then exercise the
pure-Python path twice and the comparison is trivially true, while the
rest of the file (the no-NumPy engine run) is the part doing the work.
"""

import pytest

import repro.pipeline.engine as engine_mod
from repro.emulator.trace import ColumnarTrace, trace_program
from repro.harness.runner import ExperimentRunner
from repro.isa.assembler import assemble
from repro.pipeline.core import CpuModel
from repro.workloads import get_workload

from tests.differential.progen import generate_source

_SEED = 0xFA11BACC
_CONFIGS = ("baseline", "tvp", "gvp+spsr")


def _fuzz_uops(index, budget=1200):
    program = assemble(generate_source(_SEED, index))
    uops, _stats = trace_program(program, max_instructions=budget)
    return uops


def _workload_uops(name, budget=1500):
    uops, _stats = trace_program(get_workload(name).program,
                                 max_instructions=budget)
    return uops


def _build_precomputes(uops, config_name, use_numpy, monkeypatch):
    """Build every packed precompute on a fresh trace; returns raw bytes.

    A fresh ``ColumnarTrace`` per build keeps the ``trace.derived``
    memoization from leaking one implementation's arrays into the other
    build.
    """
    real_np = engine_mod._np
    trace = ColumnarTrace.from_uops(uops, keep_views=True)
    config = ExperimentRunner.config(config_name)
    renamer = CpuModel(trace, config).renamer
    monkeypatch.setattr(engine_mod, "_np",
                        real_np if use_numpy else None)
    try:
        ends = engine_mod._fetch_chunk_ends(trace)
        vp_next = engine_mod._vp_next(trace)
        gates = engine_mod._rename_gates(trace, config, renamer)
        off, consumers, covered = engine_mod._dep_adjacency(
            trace, config, renamer)
    finally:
        monkeypatch.setattr(engine_mod, "_np", real_np)
    return {
        "fetch_chunk_ends": ends.tobytes(),
        "vp_next": vp_next.tobytes(),
        "rename_gates": bytes(gates),
        "dep_adjacency.off": off.tobytes(),
        "dep_adjacency.consumers": consumers.tobytes(),
        "dep_adjacency.covered": bytes(covered),
    }


@pytest.mark.parametrize("config_name", _CONFIGS)
@pytest.mark.parametrize("source_index", range(4))
def test_fuzz_traces_fallback_byte_equal(source_index, config_name,
                                         monkeypatch):
    uops = _fuzz_uops(source_index)
    with_np = _build_precomputes(uops, config_name, True, monkeypatch)
    without = _build_precomputes(uops, config_name, False, monkeypatch)
    for name in with_np:
        assert with_np[name] == without[name], \
            f"{name} differs between NumPy and pure-Python builds"


@pytest.mark.parametrize("workload", ("hash_loop", "sparse_graph",
                                      "xml_tree"))
def test_workload_traces_fallback_byte_equal(workload, monkeypatch):
    uops = _workload_uops(workload)
    for config_name in _CONFIGS:
        with_np = _build_precomputes(uops, config_name, True, monkeypatch)
        without = _build_precomputes(uops, config_name, False, monkeypatch)
        for name in with_np:
            assert with_np[name] == without[name], \
                f"{workload}/{config_name}: {name} differs"


def test_batch_engine_counters_identical_without_numpy(monkeypatch):
    """End-to-end: a batch run with ``_np=None`` matches the normal one."""
    from dataclasses import asdict

    uops = _workload_uops("hash_loop")
    results = {}
    for label, use_numpy in (("numpy", True), ("fallback", False)):
        trace = ColumnarTrace.from_uops(uops, keep_views=True)
        config = ExperimentRunner.config("gvp+spsr", engine="batch")
        monkeypatch.setattr(engine_mod, "_np",
                            engine_mod._np if use_numpy else None)
        results[label] = asdict(CpuModel(trace, config).run().stats)
    assert results["numpy"] == results["fallback"]
