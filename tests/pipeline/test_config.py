"""Machine configuration factory and derived properties."""

from repro.core.modes import VPFlavor
from repro.pipeline.config import MachineConfig, MemoryConfig


def test_baseline_defaults_match_table2():
    config = MachineConfig.baseline()
    assert config.rob_entries == 315
    assert config.iq_entries == 92
    assert config.lq_entries == 74
    assert config.sq_entries == 53
    assert config.int_phys_regs == 292
    assert config.fp_phys_regs == 292
    assert config.fetch_width == 16
    assert config.rename_width == 8
    assert config.issue_width == 15
    assert config.vp_flavor is VPFlavor.NONE
    assert not config.enable_spsr
    assert config.enable_move_elimination
    assert config.enable_zero_one_idiom


def test_flavor_factories():
    assert MachineConfig.mvp().vp_flavor is VPFlavor.MVP
    assert MachineConfig.tvp(spsr=True).enable_spsr
    assert MachineConfig.gvp().vp_flavor is VPFlavor.GVP


def test_nine_bit_idiom_derived_from_flavor():
    assert not MachineConfig.baseline().enable_nine_bit_idiom
    assert not MachineConfig.mvp().enable_nine_bit_idiom
    assert MachineConfig.tvp().enable_nine_bit_idiom
    assert MachineConfig.gvp().enable_nine_bit_idiom


def test_vtage_config_widths():
    assert MachineConfig.baseline().vtage_config() is None
    assert MachineConfig.mvp().vtage_config().value_bits == 1
    assert MachineConfig.tvp().vtage_config().value_bits == 9
    assert MachineConfig.gvp().vtage_config().value_bits == 64


def test_vtage_override():
    from repro.core.vtage import VtageConfig

    custom = VtageConfig(value_bits=9, base_log2=8)
    config = MachineConfig.tvp(vtage=custom)
    assert config.vtage_config() is custom


def test_with_override():
    config = MachineConfig.baseline().with_(rob_entries=64)
    assert config.rob_entries == 64
    assert MachineConfig.baseline().rob_entries == 315


def test_memory_defaults():
    memory = MemoryConfig()
    assert memory.l1d_size == 128 * 1024
    assert memory.l2_size == 1024 * 1024
    assert memory.l3_size == 8 * 1024 * 1024
    assert memory.enable_stride_prefetcher
    assert memory.enable_ampm_prefetcher


def test_silencing_default_matches_paper():
    assert MachineConfig.baseline().vp_silence_cycles == 250
