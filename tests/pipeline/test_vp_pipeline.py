"""Value prediction and SpSR behaviour through the full pipeline."""

import pytest

from tests.helpers import run_pipeline

from repro.pipeline.config import MachineConfig

PREDICTABLE_LOAD = """
    mov   x0, #0
    mov   x1, #3000
    adr   x2, slot
loop:
    ldr   x3, [x2]          // always 0x0: MVP-predictable
    add   x4, x3, x0        // consumer chain
    add   x0, x4, #1
    subs  x1, x1, #1
    b.ne  loop
    hlt
.data
slot: .quad 0
"""

CHANGING_VALUE = """
    mov   x0, #0
    mov   x1, #4000
    adr   x2, slot
    mov   x7, #2000
loop:
    ldr   x3, [x2]
    add   x0, x0, x3
    subs  x7, x7, #1
    b.ne  keep
    mov   x8, #9
    str   x8, [x2]          // flips the loaded value mid-run
keep:
    subs  x1, x1, #1
    b.ne  loop
    hlt
.data
slot: .quad 0
"""


def test_mvp_covers_zero_loads():
    model, result = run_pipeline(PREDICTABLE_LOAD,
                                 config=MachineConfig.mvp(),
                                 max_instructions=18_000)
    stats = result.stats
    assert stats.vp_correct_used > 500
    assert stats.vp_incorrect_used == 0
    assert stats.vp_coverage > 0.10


def test_vp_accuracy_above_paper_floor():
    for config in (MachineConfig.mvp(), MachineConfig.tvp(),
                   MachineConfig.gvp()):
        _, result = run_pipeline(CHANGING_VALUE, config=config,
                                 max_instructions=25_000)
        if result.stats.vp_correct_used + result.stats.vp_incorrect_used:
            assert result.stats.vp_accuracy > 0.999


def test_value_mispredict_flushes_and_recovers():
    model, result = run_pipeline(CHANGING_VALUE,
                                 config=MachineConfig.gvp(),
                                 max_instructions=25_000)
    stats = result.stats
    assert stats.vp_flushes >= 1
    assert stats.retired_uops == result.trace_uops
    assert model.rat.check_consistent_with_committed()
    model.int_prf.check_conservation()


def test_silencing_prevents_livelock():
    """Even with a 0-cycle window the refetched instance trains before it
    is re-predicted (the flush trained the predictor), so the pipeline
    must always make progress."""
    config = MachineConfig.gvp(vp_silence_cycles=0)
    model, result = run_pipeline(CHANGING_VALUE, config=config,
                                 max_instructions=25_000)
    assert result.stats.retired_uops == result.trace_uops


def test_vp_flush_includes_offender():
    """§3.4: the mispredicted µop itself must be refetched — visible as
    fetched_uops exceeding the trace length when flushes happened."""
    model, result = run_pipeline(CHANGING_VALUE,
                                 config=MachineConfig.gvp(),
                                 max_instructions=25_000)
    if result.stats.vp_flushes:
        assert result.stats.fetched_uops > result.trace_uops


def test_baseline_has_no_vp_state():
    model, result = run_pipeline(PREDICTABLE_LOAD,
                                 config=MachineConfig.baseline(),
                                 max_instructions=6_000)
    assert model.vtage is None
    assert result.stats.vp_eligible == 0


def test_vp_reduces_prf_writes():
    _, base = run_pipeline(PREDICTABLE_LOAD,
                           config=MachineConfig.baseline(),
                           max_instructions=18_000)
    _, mvp = run_pipeline(PREDICTABLE_LOAD, config=MachineConfig.mvp(),
                          max_instructions=18_000)
    assert mvp.stats.int_prf_writes < base.stats.int_prf_writes


def test_spsr_reduces_iq_dispatch():
    _, mvp = run_pipeline(PREDICTABLE_LOAD, config=MachineConfig.mvp(),
                          max_instructions=18_000)
    _, spsr = run_pipeline(PREDICTABLE_LOAD,
                           config=MachineConfig.mvp(spsr=True),
                           max_instructions=18_000)
    assert spsr.stats.elim_spsr > 0
    assert spsr.stats.iq_dispatched < mvp.stats.iq_dispatched
    assert spsr.stats.retired_uops == mvp.stats.retired_uops


def test_spsr_preserves_correct_retirement():
    model, result = run_pipeline(CHANGING_VALUE,
                                 config=MachineConfig.tvp(spsr=True),
                                 max_instructions=25_000)
    assert result.stats.retired_uops == result.trace_uops
    assert model.rat.check_consistent_with_committed()


def test_gvp_wide_predictions_increase_writes():
    pointer_chase = """
        mov   x0, #0
        mov   x1, #2500
    loop:
        adr   x2, head
        ldr   x3, [x2]       // stable pointer: wide GVP prediction
        ldr   x4, [x3]
        add   x0, x0, x4
        subs  x1, x1, #1
        b.ne  loop
        hlt
    .data
    head: .quad cell
    cell: .quad 7
    """
    _, base = run_pipeline(pointer_chase, config=MachineConfig.baseline(),
                           max_instructions=15_000)
    _, gvp = run_pipeline(pointer_chase, config=MachineConfig.gvp(),
                          max_instructions=15_000)
    assert gvp.stats.vp_phys_reg_predictions > 0
    assert gvp.stats.int_prf_writes > base.stats.int_prf_writes


def test_vp_flavors_preserve_cycle_determinism():
    for config in (MachineConfig.mvp(), MachineConfig.tvp(spsr=True)):
        _, a = run_pipeline(PREDICTABLE_LOAD, config=config,
                            max_instructions=8000)
        _, b = run_pipeline(PREDICTABLE_LOAD, config=config,
                            max_instructions=8000)
        assert a.stats.cycles == b.stats.cycles


def test_vp_loads_marked_acquire():
    """§3.6: every used prediction on a load is marked load-acquire."""
    _, result = run_pipeline(PREDICTABLE_LOAD, config=MachineConfig.mvp(),
                             max_instructions=18_000)
    stats = result.stats
    assert stats.vp_loads_marked_acquire > 0
    used = stats.vp_correct_used + stats.vp_incorrect_used
    assert stats.vp_loads_marked_acquire <= used + stats.vp_flushes
