"""The engine contract: every timing-core backend is counter-identical.

The ``batch`` engine restructures hot loops (span queues, packed rename
gates, event-driven select, branch-chunked fetch) but must reproduce the
reference ``interp`` engine byte for byte — same counters, same final
cycle, on every workload and configuration.  These tests pin that
contract from four directions:

* direct interp-vs-batch identity over a (workload x config) matrix;
* the golden-stats snapshot replayed under ``engine="batch"``;
* the ``REPRO_NO_EVENT_SKIP=1`` per-cycle reference loop against the
  event clock, across random differential-fuzz programs;
* the result-cache fingerprint, which must not see the engine at all
  (a batch run must hit a cache entry an interp run produced).
"""

import time
from dataclasses import asdict

import pytest

from repro.emulator.trace import ColumnarTrace, trace_program
from repro.harness.cache import (SimulationCache, config_fingerprint,
                                 simulation_key)
from repro.harness.runner import ExperimentRunner
from repro.isa.assembler import assemble
from repro.pipeline.core import CpuModel, SimulationDeadlock
from repro.pipeline.engine import engine_names, resolve_engine
from repro.workloads import get_workload

from tests.differential.progen import generate_source

_BUDGET = 1500
_WORKLOADS = ("hash_loop", "sparse_graph", "xml_tree")
_CONFIGS = ("baseline", "mvp", "tvp+spsr", "gvp+spsr")


def _columnar_trace(workload_name, budget=_BUDGET):
    uops, _stats = trace_program(get_workload(workload_name).program,
                                 max_instructions=budget)
    return ColumnarTrace.from_uops(uops, keep_views=True)


def _counters(trace, config):
    result = CpuModel(trace, config).run()
    payload = asdict(result.stats)
    payload["_final_cycle"] = result.stats.cycles
    return payload


# -- engine selection ---------------------------------------------------------------
def test_resolve_engine_rejects_unknown():
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("vectorized-but-wrong")


def test_engine_registry_names():
    assert engine_names() == ["batch", "interp"]
    for name in engine_names():
        assert resolve_engine(name).name == name


def test_engine_selection_precedence(monkeypatch):
    # config.engine > $REPRO_ENGINE > interp
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert resolve_engine(None).name == "interp"
    monkeypatch.setenv("REPRO_ENGINE", "batch")
    assert resolve_engine(None).name == "batch"
    assert resolve_engine("interp").name == "interp"


# -- interp vs batch identity -------------------------------------------------------
@pytest.mark.parametrize("workload", _WORKLOADS)
def test_interp_batch_identity(workload, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    trace = _columnar_trace(workload)
    for name in _CONFIGS:
        interp = _counters(trace, ExperimentRunner.config(
            name, engine="interp"))
        batch = _counters(trace, ExperimentRunner.config(
            name, engine="batch"))
        assert batch == interp, (workload, name)


def test_golden_matrix_under_batch_engine(monkeypatch):
    """The pinned golden snapshot holds verbatim on the batch engine."""
    from tests.golden.regen import CONFIGS, KERNELS, load_snapshot
    from repro.pipeline.stats import PipelineStats

    monkeypatch.setenv("REPRO_ENGINE", "batch")
    snapshot = load_snapshot()
    for kernel in KERNELS:
        trace = _columnar_trace(kernel, budget=snapshot["budget"])
        for config in CONFIGS:
            stats = CpuModel(trace, ExperimentRunner.config(
                config)).run().stats
            current = {name: getattr(stats, name)
                       for name in PipelineStats.counter_names()}
            assert current == snapshot["stats"][kernel][config], \
                (kernel, config)


# -- event clock vs per-cycle reference ---------------------------------------------
@pytest.mark.parametrize("index", range(6))
def test_event_skip_identity_on_random_programs(index, monkeypatch):
    """REPRO_NO_EVENT_SKIP=1 (pure per-cycle loop) is byte-identical to
    the event clock — stats and final cycle — on both engines."""
    program = assemble(generate_source(0x5EED0E5C, index))
    uops, _stats = trace_program(program, max_instructions=_BUDGET)
    trace = ColumnarTrace.from_uops(uops, keep_views=True)
    config = ExperimentRunner.config(
        _CONFIGS[index % len(_CONFIGS)])
    for engine in engine_names():
        monkeypatch.setenv("REPRO_ENGINE", engine)
        monkeypatch.delenv("REPRO_NO_EVENT_SKIP", raising=False)
        skipping = _counters(trace, config)
        monkeypatch.setenv("REPRO_NO_EVENT_SKIP", "1")
        reference = _counters(trace, config)
        assert skipping == reference, (index, engine)


# -- deadlock watchdog --------------------------------------------------------------
@pytest.mark.parametrize("engine", ("interp", "batch"))
def test_watchdog_catches_far_future_stall(engine, monkeypatch):
    """A bogus far-future fetch stall must trip the watchdog promptly.

    The event clock compresses the whole stall window into a handful of
    loop iterations, so an iteration-counting watchdog would sail past
    it; the cycle-distance watchdog must still fire.
    """
    monkeypatch.delenv("REPRO_NO_EVENT_SKIP", raising=False)
    trace = _columnar_trace("hash_loop", budget=200)
    model = CpuModel(trace, ExperimentRunner.config(
        "baseline", engine=engine))
    model.fetch_stall_until = 10 ** 7
    with pytest.raises(SimulationDeadlock, match="no commit for"):
        model.run(progress_window=5_000)


# -- cache fingerprint excludes the engine ------------------------------------------
def test_engine_never_reaches_fingerprint():
    prints = {config_fingerprint(ExperimentRunner.config("tvp",
                                                         engine=engine))
              for engine in (None, "interp", "batch")}
    assert len(prints) == 1


def test_batch_run_hits_interp_cache_entry(tmp_path, monkeypatch):
    """A result simulated on interp must be served from the cache to a
    batch-engine run of the same point (and vice versa)."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    cache = SimulationCache(tmp_path)
    workload = get_workload("hash_loop")

    runner = ExperimentRunner(workloads=[workload], instructions=_BUDGET,
                              cache=cache)
    interp_cfg = ExperimentRunner.config("tvp", engine="interp")
    record = runner.run(workload, "tvp", interp_cfg)
    assert cache.stores == 1

    batch_cfg = ExperimentRunner.config("tvp", engine="batch")
    key = simulation_key(workload.name, _BUDGET,
                         config_fingerprint(batch_cfg))
    assert cache.has(key)

    rerun = ExperimentRunner(workloads=[workload], instructions=_BUDGET,
                             cache=cache)
    served = rerun.run(workload, "tvp", batch_cfg)
    assert cache.hits == 1 and cache.stores == 1
    assert asdict(served.stats) == asdict(record.stats)


# -- stage profiling is observational -----------------------------------------------
def test_profile_stages_changes_no_counter(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "batch")
    trace = _columnar_trace("hash_loop")
    config = ExperimentRunner.config("gvp+spsr")
    plain = _counters(trace, config)

    model = CpuModel(trace, config)
    model.enable_stage_profile(time.perf_counter)
    result = model.run()
    profiled = asdict(result.stats)
    profiled["_final_cycle"] = result.stats.cycles

    assert profiled == plain
    assert sorted(model.stage_profile) == [
        "commit", "complete", "decode", "fetch", "issue", "rename"]
    assert all(seconds >= 0.0 for seconds in model.stage_profile.values())
    assert sum(model.stage_profile.values()) > 0.0
