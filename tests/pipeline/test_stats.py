"""Derived statistics."""

from repro.pipeline.stats import PipelineStats


def test_ipc_and_upc():
    stats = PipelineStats(cycles=100, retired_arch_insts=250,
                          retired_uops=300)
    assert stats.ipc == 2.5
    assert stats.upc == 3.0
    assert abs(stats.expansion_ratio - 1.2) < 1e-12


def test_zero_cycle_guards():
    stats = PipelineStats()
    assert stats.ipc == 0.0
    assert stats.upc == 0.0
    assert stats.expansion_ratio == 0.0
    assert stats.vp_coverage == 0.0
    assert stats.vp_accuracy == 0.0
    assert stats.branch_mpki == 0.0


def test_vp_metrics():
    stats = PipelineStats(vp_eligible=200, vp_correct_used=50,
                          vp_incorrect_used=1)
    assert stats.vp_coverage == 0.25
    assert abs(stats.vp_accuracy - 50 / 51) < 1e-12


def test_branch_mpki():
    stats = PipelineStats(retired_arch_insts=10_000, branch_mispredicts=42)
    assert stats.branch_mpki == 4.2


def test_elimination_fractions_sum_structure():
    stats = PipelineStats(retired_uops=1000, elim_zero_idiom=10,
                          elim_one_idiom=5, elim_move=40,
                          elim_nine_bit_idiom=5, elim_spsr=17,
                          elim_move_width_blocked=4)
    fractions = stats.elimination_fractions()
    assert fractions["zero_idiom"] == 1.0
    assert fractions["spsr"] == 1.7
    assert fractions["non_me_move"] == 0.4
    assert set(fractions) == {"zero_idiom", "one_idiom", "move",
                              "nine_bit_idiom", "spsr", "non_me_move"}


def test_activity_snapshot():
    stats = PipelineStats(int_prf_reads=7, int_prf_writes=8,
                          iq_dispatched=9, iq_issued=10)
    assert stats.activity() == {"int_prf_reads": 7, "int_prf_writes": 8,
                                "iq_dispatched": 9, "iq_issued": 10}
