"""Hand-computable timing checks: the model's latencies must be visible.

Each test builds a microbenchmark whose steady-state cycles-per-iteration
is derivable from Table 2 parameters by hand, and checks the simulator
lands in a tight window around it.
"""

from tests.helpers import run_pipeline

from repro.pipeline.config import MachineConfig


def cycles_per_iteration(source, iterations, max_instructions=None,
                         config=None):
    insts = max_instructions or iterations * 40
    _, result = run_pipeline(source, config=config,
                             max_instructions=insts)
    return result.stats.cycles / (result.stats.retired_arch_insts /
                                  _loop_len(source))


def _loop_len(source):
    lines = [l.split("//")[0].strip() for l in source.splitlines()]
    body = []
    in_loop = False
    for line in lines:
        if line.startswith("loop:"):
            in_loop = True
            continue
        if in_loop:
            body.append(line)
            if line.startswith("b.") or line == "b loop":
                break
    return len([l for l in body if l and not l.endswith(":")])


def test_serial_add_chain_is_one_cycle_per_add():
    """8 chained adds -> >= 8 cycles/iteration (1c ALU, full bypass)."""
    source = """
        mov x9, #2000
    loop:
        add x0, x0, #1
        add x0, x0, #1
        add x0, x0, #1
        add x0, x0, #1
        add x0, x0, #1
        add x0, x0, #1
        add x0, x0, #1
        add x0, x0, #1
        subs x9, x9, #1
        b.ne loop
        hlt
    """
    cpi = cycles_per_iteration(source, 2000, max_instructions=12_000)
    assert 8.0 <= cpi <= 11.0


def test_load_to_use_latency_visible():
    """Chained L1-hit loads -> ~4 cycles each (Table 2 load-to-use)."""
    source = """
        adr  x1, cell
        str  x1, [x1]          // self-pointer: serial ldr chain
        mov  x9, #1500
    loop:
        ldr  x1, [x1]
        ldr  x1, [x1]
        ldr  x1, [x1]
        ldr  x1, [x1]
        subs x9, x9, #1
        b.ne loop
        hlt
    .data
    cell: .quad 0
    """
    cpi = cycles_per_iteration(source, 1500, max_instructions=10_000)
    assert 16.0 <= cpi <= 20.0


def test_int_mul_latency_visible():
    """Chained multiplies -> ~3 cycles each."""
    source = """
        mov  x0, #1
        mov  x9, #1500
    loop:
        mul  x0, x0, x0
        mul  x0, x0, x0
        mul  x0, x0, x0
        mul  x0, x0, x0
        subs x9, x9, #1
        b.ne loop
        hlt
    """
    cpi = cycles_per_iteration(source, 1500, max_instructions=10_000)
    assert 12.0 <= cpi <= 15.0


def test_fp_mac_chain_latency():
    """Chained fmadd -> ~5 cycles each (Table 2 MAC latency)."""
    source = """
        fmov d0, #1.0
        fmov d1, #0.5
        mov  x9, #1200
    loop:
        fmadd d0, d0, d1, d0
        fmadd d0, d0, d1, d0
        subs x9, x9, #1
        b.ne loop
        hlt
    """
    cpi = cycles_per_iteration(source, 1200, max_instructions=6_000)
    assert 10.0 <= cpi <= 13.0


def test_value_prediction_collapses_load_chain():
    """With GVP, the serial self-pointer chain above becomes ~free."""
    source = """
        adr  x1, cell
        str  x1, [x1]
        mov  x9, #1500
    loop:
        ldr  x1, [x1]
        ldr  x1, [x1]
        ldr  x1, [x1]
        ldr  x1, [x1]
        subs x9, x9, #1
        b.ne loop
        hlt
    .data
    cell: .quad 0
    """
    base_cpi = cycles_per_iteration(source, 1500, max_instructions=10_000)
    gvp_cpi = cycles_per_iteration(source, 1500, max_instructions=10_000,
                                   config=MachineConfig.gvp())
    # Predicting the (constant) pointer breaks the 16-cycle chain down to
    # the loop-control limit.
    assert gvp_cpi < base_cpi * 0.45


def test_taken_branch_throughput_limit():
    """An empty-body loop is fetch-limited by the taken-branch penalty:
    one iteration per (1 + taken_penalty) cycles at best."""
    source = """
        mov x9, #4000
    loop:
        subs x9, x9, #1
        b.ne loop
        hlt
    """
    _, result = run_pipeline(source, max_instructions=9_000)
    iterations = result.stats.retired_arch_insts / 2
    cycles_per_iter = result.stats.cycles / iterations
    assert cycles_per_iter >= 1.9   # 1 fetch cycle + 1 bubble


def test_commit_width_bounds_ipc():
    config = MachineConfig.baseline(commit_width=2)
    source = """
        mov x9, #3000
    loop:
        add x0, x0, #1
        add x1, x1, #1
        add x2, x2, #1
        add x3, x3, #1
        add x4, x4, #1
        subs x9, x9, #1
        b.ne loop
        hlt
    """
    _, result = run_pipeline(source, config=config, max_instructions=9_000)
    assert result.stats.ipc <= 2.001
