"""End-to-end pipeline behaviour on small programs."""

import pytest

from tests.helpers import emulate, run_pipeline

from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel


# -- basic sanity ------------------------------------------------------------------
def test_every_uop_retires(tiny_loop):
    model, result = run_pipeline(tiny_loop)
    assert result.stats.retired_uops == result.trace_uops
    assert result.stats.retired_arch_insts > 0


def test_deterministic_given_config(tiny_loop):
    _, first = run_pipeline(tiny_loop)
    _, second = run_pipeline(tiny_loop)
    assert first.stats.cycles == second.stats.cycles
    assert first.stats.int_prf_reads == second.stats.int_prf_reads


def test_ipc_bounded_by_machine_width(tiny_loop):
    _, result = run_pipeline(tiny_loop)
    assert 0 < result.stats.ipc <= 8.0   # commit width


def test_serial_chain_limits_ipc():
    """A pure dependency chain cannot exceed 1 µop/cycle + overheads."""
    source = """
        mov x0, #0
        mov x1, #2000
    loop:
        add x0, x0, #1
        add x0, x0, #1
        add x0, x0, #1
        add x0, x0, #1
        subs x1, x1, #1
        b.ne loop
        hlt
    """
    _, result = run_pipeline(source, max_instructions=8000)
    # 4 chained adds + ~parallel loop control per iteration: ~1.5 IPC cap.
    assert result.stats.ipc < 1.8


def test_independent_work_reaches_high_ipc():
    source = """
        mov x9, #4000
    loop:
        add x0, x0, #1
        add x1, x1, #1
        add x2, x2, #1
        add x3, x3, #1
        add x4, x4, #1
        add x5, x5, #1
        subs x9, x9, #1
        b.ne loop
        hlt
    """
    _, result = run_pipeline(source, max_instructions=12000)
    assert result.stats.ipc > 3.0


def test_rat_and_prf_consistent_after_run(tiny_loop):
    model, _ = run_pipeline(tiny_loop)
    assert model.rat.check_consistent_with_committed()
    model.int_prf.check_conservation()
    model.fp_prf.check_conservation()
    model.flags_prf.check_conservation()


# -- branch handling ----------------------------------------------------------------
def test_predictable_loop_has_few_mispredicts(tiny_loop):
    _, result = run_pipeline(tiny_loop)
    assert result.stats.branch_mispredicts <= 3


def test_random_branches_mispredict_and_cost_cycles():
    source = """
        mov x9, #1
        mov x8, #1000
    loop:
        lsl x2, x9, #13
        eor x9, x9, x2
        lsr x2, x9, #7
        eor x9, x9, x2
        tbz x9, #3, skip
        add x0, x0, #1
    skip:
        subs x8, x8, #1
        b.ne loop
        hlt
    """
    model, result = run_pipeline(source, max_instructions=10_000)
    assert result.stats.branch_mpki > 20
    # Mispredict penalty visible: IPC well below the predictable variant.
    assert result.stats.ipc < 2.0


def test_call_return_pairs_predicted():
    source = """
        mov x9, #500
    loop:
        bl callee
        subs x9, x9, #1
        b.ne loop
        hlt
    callee:
        add x0, x0, #1
        ret
    """
    _, result = run_pipeline(source, max_instructions=5000)
    # The RAS makes returns essentially free after warmup (the few
    # mispredicts left are TAGE warmup on the loop branch).
    assert result.stats.branch_mispredicts <= 12


def test_indirect_branch_learned():
    source = """
        adr x1, tbl
        mov x9, #500
    loop:
        ldr x2, [x1]
        blr x2
        subs x9, x9, #1
        b.ne loop
        hlt
    f:
        ret
    .data
    tbl: .quad f
    """
    _, result = run_pipeline(source, max_instructions=6000)
    assert result.stats.branch_mispredicts <= 15


# -- memory behaviour -----------------------------------------------------------------
def test_store_load_forwarding():
    source = """
        adr x1, slot
        mov x9, #1000
    loop:
        str x9, [x1]
        ldr x2, [x1]
        add x0, x0, x2
        subs x9, x9, #1
        b.ne loop
        hlt
    .data
    slot: .quad 0
    """
    model, result = run_pipeline(source, max_instructions=8000)
    assert result.stats.store_forwards > 100
    assert result.stats.retired_uops == result.trace_uops


def test_memory_order_violation_detected_and_recovered():
    """Aliasing store->load with enough distance for the load to issue
    early: the first occurrence flushes, Store Sets then serialize it."""
    source = """
        adr x1, slot
        mov x9, #400
    loop:
        mul x3, x9, x9      // slow producer for the store data
        mul x3, x3, x3
        str x3, [x1]
        ldr x2, [x1]
        add x0, x0, x2
        subs x9, x9, #1
        b.ne loop
        hlt
    .data
    slot: .quad 0
    """
    model, result = run_pipeline(source, max_instructions=6000)
    assert result.stats.retired_uops == result.trace_uops
    assert model.rat.check_consistent_with_committed()
    # Violations may or may not fire depending on timing; if they did,
    # store sets must have been trained.
    if result.stats.memory_order_flushes:
        assert model.store_sets.stat_trainings > 0


def test_cache_miss_costs_cycles():
    hot = """
        adr x1, buf
        mov x9, #500
    loop:
        ldr x2, [x1]
        add x0, x0, x2
        subs x9, x9, #1
        b.ne loop
        hlt
    .data
    buf: .zero 64
    """
    # Serial (dependent) misses: a randomized pointer chase the prefetcher
    # cannot cover and out-of-order execution cannot overlap.
    nodes = 256
    stride = 4096
    next_of = [0] * nodes
    order = [(i * 97) % nodes for i in range(nodes)]
    for position in range(nodes):
        next_of[order[position]] = order[(position + 1) % nodes] * stride
    quads = "\n".join(
        f"    .quad {next_of[i]}\n    .zero {stride - 8}"
        for i in range(nodes))
    cold = f"""
        adr x1, buf
        mov x3, #0
    loop:
        add x4, x1, x3
        ldr x3, [x4]
        add x0, x0, #1
        b loop
    .data
    buf:
{quads}
    """
    _, hot_result = run_pipeline(hot, max_instructions=3000)
    _, cold_result = run_pipeline(cold, max_instructions=3000)
    assert cold_result.stats.ipc < hot_result.stats.ipc / 2


# -- structural stalls -----------------------------------------------------------------
def test_small_rob_stalls():
    source = """
        adr x1, buf
        mov x9, #300
    loop:
        ldr x2, [x1, x3]
        add x3, x3, #131072
        and x3, x3, #2097151
        add x0, x0, x2
        subs x9, x9, #1
        b.ne loop
        hlt
    .data
    buf: .zero 2097152
    """
    config = MachineConfig.baseline(rob_entries=16)
    model, result = run_pipeline(source, config=config,
                                 max_instructions=3000)
    assert result.stats.stall_rob_full > 0


def test_uop_classes_all_execute():
    source = """
        mov  x1, #7
        mov  x2, #3
        mul  x3, x1, x2
        udiv x4, x3, x2
        scvtf d0, x4
        fadd d1, d0, d0
        fmul d2, d1, d0
        fdiv d3, d2, d1
        fmadd d4, d2, d1, d0
        fcvtzs x5, d4
        hlt
    """
    _, result = run_pipeline(source)
    assert result.stats.retired_uops == result.trace_uops


def test_div_port_serializes():
    source = """
        mov x9, #300
        mov x1, #100
    loop:
        udiv x2, x1, x9
        udiv x3, x1, x9
        subs x9, x9, #1
        b.ne loop
        hlt
    """
    _, result = run_pipeline(source, max_instructions=3000)
    # Two unpipelined 20-cycle divides per iteration: ~40 cycles/iter.
    cycles_per_iter = result.stats.cycles / 300
    assert cycles_per_iter > 30
