"""Selective-replay recovery (the §2.2 alternative the paper declines).

Replay is only possible for wide GVP predictions (they live in a real
physical register that can be corrected); MVP/TVP predictions always
flush — the paper's §3.4 recovery asymmetry, asserted here.
"""

import pytest

from tests.helpers import run_pipeline

from repro.pipeline.config import MachineConfig

# A wide pointer that changes once mid-run: one confident-wrong wide
# prediction, with a consumer chain behind it.
WIDE_TRAP = """
    adr   x1, slotp
    adr   x2, target_a
    adr   x3, target_b
    str   x2, [x1]
    mov   x9, #4000
    mov   x7, #2000
loop:
    ldr   x4, [x1]          // wide pointer: GVP predicts it
    ldr   x5, [x4]          // consumer chain
    add   x0, x0, x5
    eor   x6, x5, x0
    subs  x7, x7, #1
    b.ne  keep
    str   x3, [x1]          // the pointer changes once
keep:
    subs  x9, x9, #1
    b.ne  loop
    hlt
.data
slotp:    .quad 0
target_a: .quad 17
target_b: .quad 23
"""


def run(config):
    return run_pipeline(WIDE_TRAP, config=config, max_instructions=30_000)


def test_replay_fires_for_wide_gvp():
    model, result = run(MachineConfig.gvp(vp_recovery="replay"))
    stats = result.stats
    assert stats.vp_replays >= 1
    assert stats.replayed_uops >= 1
    assert stats.retired_uops == result.trace_uops
    assert model.rat.check_consistent_with_committed()
    model.int_prf.check_conservation()


def test_replay_avoids_the_flush():
    _, flush_result = run(MachineConfig.gvp())
    _, replay_result = run(MachineConfig.gvp(vp_recovery="replay"))
    assert flush_result.stats.vp_flushes >= 1
    assert replay_result.stats.vp_flushes < flush_result.stats.vp_flushes \
        or replay_result.stats.vp_replays >= 1


def test_mvp_tvp_always_flush():
    """Inline predictions have no storage to correct: replay never fires."""
    for config in (MachineConfig.mvp(vp_recovery="replay"),
                   MachineConfig.tvp(vp_recovery="replay")):
        _, result = run(config)
        assert result.stats.vp_replays == 0
        assert result.stats.retired_uops == result.trace_uops


def test_replay_with_spsr_falls_back_to_flush_when_needed():
    """If a consumer was SpSR-eliminated off the wrong value, its rename
    decision is wrong and the recovery must flush."""
    source = """
        adr   x1, slotp
        mov   x9, #4000
        mov   x7, #2000
    loop:
        ldr   x4, [x1]       // 0x0 for a while, then 0x300 (wide)
        add   x5, x4, x6     // SpSR move-idiom while x4 is predicted 0
        add   x0, x0, x5
        subs  x7, x7, #1
        b.ne  keep
        mov   x8, #0x300
        str   x8, [x1]
    keep:
        subs  x9, x9, #1
        b.ne  loop
        hlt
    .data
    slotp: .quad 0
    """
    model, result = run_pipeline(
        source, config=MachineConfig.gvp(spsr=True, vp_recovery="replay"),
        max_instructions=30_000)
    assert result.stats.retired_uops == result.trace_uops
    assert model.rat.check_consistent_with_committed()


def test_replay_keeps_determinism():
    results = [run(MachineConfig.gvp(vp_recovery="replay"))[1]
               for _ in range(2)]
    assert results[0].stats.cycles == results[1].stats.cycles
    assert results[0].stats.vp_replays == results[1].stats.vp_replays


def test_replay_cheaper_than_flush_on_this_trap():
    _, flush_result = run(MachineConfig.gvp())
    _, replay_result = run(MachineConfig.gvp(vp_recovery="replay"))
    # One mispredict out of 30k instructions: the difference is small but
    # replay must never be slower here (it redoes strictly less work).
    assert replay_result.stats.cycles <= flush_result.stats.cycles + 10
