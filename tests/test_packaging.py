"""Package surface: public API importability and entry points."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.isa",
    "repro.emulator",
    "repro.frontend",
    "repro.core",
    "repro.backend",
    "repro.rename",
    "repro.memory",
    "repro.pipeline",
    "repro.workloads",
    "repro.harness",
    "repro.util",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


def test_top_level_api():
    import repro

    assert hasattr(repro, "__version__")
    from repro import MachineConfig, assemble, simulate  # noqa: F401


def test_all_exports_resolve():
    for name in PUBLIC_MODULES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_public_classes_have_docstrings():
    from repro.core.spsr import SpSREngine
    from repro.core.vtage import Vtage
    from repro.pipeline.core import CpuModel
    from repro.rename.renamer import Renamer

    for cls in (SpSREngine, Vtage, CpuModel, Renamer):
        assert cls.__doc__
        public = [m for m in vars(cls)
                  if not m.startswith("_") and callable(getattr(cls, m))]
        for method_name in public:
            assert getattr(cls, method_name).__doc__, \
                f"{cls.__name__}.{method_name} lacks a docstring"
