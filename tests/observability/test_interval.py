"""Interval metrics time series: coverage, conservation, derived rates."""

import pytest

from repro.emulator.trace import trace_program
from repro.observability.config import TraceConfig
from repro.observability.interval import (IntervalSample, MetricsTimeSeries,
                                          _DELTA_COUNTERS)
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel
from repro.pipeline.stats import PipelineStats
from repro.workloads import get_workload


def _sampled_run(workload_name="hash_loop", interval=250, budget=2500,
                 config=None):
    workload = get_workload(workload_name)
    trace, _ = trace_program(workload.program, max_instructions=budget)
    config = config or MachineConfig.tvp(spsr=True)
    model = CpuModel(
        trace, config.with_(trace=TraceConfig(sample_interval=interval)))
    result = model.run()
    return model, result


def test_delta_counters_are_declared_stats():
    declared = set(PipelineStats.counter_names())
    assert set(_DELTA_COUNTERS) <= declared


def test_interval_deltas_sum_to_final_totals():
    model, result = _sampled_run()
    samples = model.tracer.series.samples
    assert len(samples) >= 2
    for name in _DELTA_COUNTERS:
        total = sum(getattr(sample, name) for sample in samples)
        assert total == getattr(result.stats, name), name


def test_interval_widths_tile_the_run():
    model, result = _sampled_run()
    samples = model.tracer.series.samples
    assert sum(sample.cycles for sample in samples) == samples[-1].cycle
    assert samples[-1].cycle == result.stats.cycles
    cycles = [sample.cycle for sample in samples]
    assert cycles == sorted(cycles) and len(set(cycles)) == len(cycles)
    for previous, sample in zip(samples, samples[1:]):
        assert sample.cycles == sample.cycle - previous.cycle


def test_derived_rates():
    sample = IntervalSample(cycle=1000, cycles=500, retired_arch_insts=1000,
                            retired_uops=1500, vp_correct_used=30,
                            vp_incorrect_used=10, elim_move=5,
                            elim_zero_idiom=5)
    assert sample.ipc == pytest.approx(2.0)
    assert sample.upc == pytest.approx(3.0)
    assert sample.vp_accuracy == pytest.approx(0.75)
    assert sample.eliminations == 10
    assert sample.elim_per_kilocycle == pytest.approx(20.0)
    empty = IntervalSample(cycle=0, cycles=0)
    assert empty.ipc == 0.0 and empty.vp_accuracy == 0.0
    row = sample.as_dict()
    assert row["ipc"] == pytest.approx(2.0)
    assert row["rob_occupancy"] == 0


def test_occupancies_are_bounded_by_structure_sizes():
    model, _ = _sampled_run("event_queue")
    config = model.config
    for sample in model.tracer.series.samples:
        assert 0 <= sample.rob_occupancy <= config.rob_entries
        assert 0 <= sample.iq_occupancy <= config.iq_entries
        assert 0 <= sample.lq_occupancy <= config.lq_entries
        assert 0 <= sample.sq_occupancy <= config.sq_entries
        assert 0 <= sample.ras_depth <= config.ras_entries
        assert 0 <= sample.btb_fill <= config.btb_entries


def test_flush_records_partial_tail_once():
    model, result = _sampled_run(interval=10_000)   # > total cycles
    samples = model.tracer.series.samples
    assert len(samples) == 1                        # only the finish() flush
    assert samples[0].cycle == result.stats.cycles
    assert samples[0].retired_uops == result.stats.retired_uops


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        MetricsTimeSeries(model=None, interval=0)
