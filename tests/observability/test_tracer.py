"""Tracer invariants: observational purity, lifecycle order, event sums.

Three properties pin the tracing subsystem:

1. **Purity** — enabling tracing changes no statistic: traced and
   untraced runs produce byte-identical ``PipelineStats``.
2. **Lifecycle order** — every recorded lifetime's stage timestamps are
   monotone (fetch <= decode <= rename <= dispatch <= issue <= writeback
   <= commit) and a lifetime is committed XOR squashed XOR in-flight.
3. **Event sums** — aggregating lifetimes/events reproduces the
   pipeline's own counters exactly, so the trace is a lossless
   decomposition of the aggregate stats.
"""

from dataclasses import asdict

import pytest

from repro.emulator.trace import trace_program
from repro.observability.config import TraceConfig
from repro.observability.tracer import NULL_TRACER, PipelineTracer
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel
from repro.workloads import get_workload

_BUDGET = 2500

_CONFIGS = {
    "baseline": lambda: MachineConfig.baseline(),
    "mvp": lambda: MachineConfig.mvp(),
    "tvp+spsr": lambda: MachineConfig.tvp(spsr=True),
    "gvp+spsr": lambda: MachineConfig.gvp(spsr=True),
    "gvp+replay": lambda: MachineConfig.gvp(vp_recovery="replay"),
}
_WORKLOADS = ("hash_loop", "xml_tree")

_STAGE_ORDER = ("fetch", "decode", "rename", "dispatch", "issue",
                "writeback", "commit")


def _trace_of(workload_name):
    workload = get_workload(workload_name)
    trace, _ = trace_program(workload.program, max_instructions=_BUDGET)
    return trace


def _traced_model(trace, config):
    model = CpuModel(trace, config.with_(trace=TraceConfig()))
    model.run()
    return model


@pytest.mark.parametrize("config_name", sorted(_CONFIGS))
@pytest.mark.parametrize("workload_name", _WORKLOADS)
def test_tracing_never_changes_stats(workload_name, config_name):
    trace = _trace_of(workload_name)
    config = _CONFIGS[config_name]()
    untraced = CpuModel(trace, config).run().stats
    traced = CpuModel(
        trace, config.with_(trace=TraceConfig(sample_interval=500))
    ).run().stats
    assert asdict(traced) == asdict(untraced)


def test_null_tracer_is_the_default():
    trace = _trace_of("hash_loop")
    assert CpuModel(trace, MachineConfig.baseline()).tracer is NULL_TRACER
    disabled = MachineConfig.baseline().with_(
        trace=TraceConfig(enabled=False))
    assert CpuModel(trace, disabled).tracer is NULL_TRACER


@pytest.mark.parametrize("config_name", sorted(_CONFIGS))
def test_stage_timestamps_are_monotone(config_name):
    model = _traced_model(_trace_of("hash_loop"), _CONFIGS[config_name]())
    checked = 0
    for lifetime in model.tracer.lifetimes:
        stamps = [getattr(lifetime, stage) for stage in _STAGE_ORDER]
        present = [stamp for stamp in stamps if stamp is not None]
        assert present == sorted(present), \
            f"stage cycles regress for {lifetime!r}: {lifetime.stage_cycles()}"
        checked += 1
    assert checked > 0


@pytest.mark.parametrize("config_name", sorted(_CONFIGS))
def test_squashed_uops_never_commit(config_name):
    model = _traced_model(_trace_of("event_queue"), _CONFIGS[config_name]())
    for lifetime in model.tracer.lifetimes:
        assert not (lifetime.committed and lifetime.squashed), repr(lifetime)
        if lifetime.squashed:
            assert lifetime.squash_reason in (
                "branch_mispredict", "vp_mispredict", "memory_order")
    # The run retired the whole trace, so nothing may still be in flight.
    open_lifetimes = [lt for lt in model.tracer.lifetimes
                      if not lt.committed and not lt.squashed]
    assert open_lifetimes == []


def test_refetched_uops_get_fresh_incarnations():
    model = _traced_model(_trace_of("event_queue"),
                          MachineConfig.tvp(spsr=True))
    lifetimes = model.tracer.lifetimes
    assert any(lt.incarnation > 0 for lt in lifetimes), \
        "expected at least one refetch in a flush-heavy workload"
    by_seq = {}
    for lifetime in lifetimes:
        by_seq.setdefault(lifetime.seq, []).append(lifetime)
    for seq, incarnations in by_seq.items():
        assert [lt.incarnation for lt in incarnations] == \
            list(range(len(incarnations)))
        committed = [lt for lt in incarnations if lt.committed]
        assert len(committed) == 1, f"seq {seq} committed {len(committed)}x"
        assert committed[0] is incarnations[-1]


@pytest.mark.parametrize("config_name", sorted(_CONFIGS))
@pytest.mark.parametrize("workload_name", _WORKLOADS)
def test_event_sums_reproduce_stats(workload_name, config_name):
    model = _traced_model(_trace_of(workload_name), _CONFIGS[config_name]())
    stats = model.stats
    tracer = model.tracer
    lifetimes = tracer.lifetimes
    committed = tracer.committed_lifetimes()

    def events(kind):
        return len(tracer.events_of(kind))

    def committed_with(predicate):
        return sum(1 for lt in committed if predicate(lt))

    expected = {
        "fetched_uops": len(lifetimes),
        "retired_uops": len(committed),
        "retired_arch_insts": committed_with(lambda lt: lt.is_last),
        "branches": committed_with(lambda lt: lt.is_branch),
        "iq_dispatched": sum(lt.dispatch_count for lt in lifetimes),
        "iq_issued": sum(lt.issue_count for lt in lifetimes),
        "branch_mispredicts": events("branch_mispredict"),
        "btb_mistargets": events("btb_mistarget"),
        "spsr_resolved_branches": events("spsr_branch_resolved"),
        "vp_correct_used": events("vp_commit_correct"),
        "vp_incorrect_used": events("vp_mispredict"),
        "vp_flushes": events("vp_flush"),
        "vp_replays": events("vp_replay"),
        "memory_order_flushes": events("mem_order_flush"),
        "elim_zero_idiom":
            committed_with(lambda lt: lt.elim_kind == "zero_idiom"),
        "elim_one_idiom":
            committed_with(lambda lt: lt.elim_kind == "one_idiom"),
        "elim_move": committed_with(lambda lt: lt.elim_kind == "move"),
        "elim_nine_bit_idiom":
            committed_with(lambda lt: lt.elim_kind == "nine_bit_idiom"),
        "elim_spsr": committed_with(lambda lt: lt.elim_kind == "spsr"),
        "elim_move_width_blocked":
            committed_with(lambda lt: lt.move_width_blocked),
    }
    actual = {name: getattr(stats, name) for name in expected}
    assert actual == expected


def test_vp_used_predictions_appear_as_events():
    model = _traced_model(_trace_of("hash_loop"),
                          MachineConfig.tvp(spsr=True))
    stats = model.stats
    tracer = model.tracer
    assert stats.vp_predicted_used == len(tracer.events_of("vp_used"))
    assert stats.vp_predicted_used > 0, \
        "hash_loop under TVP should use some predictions"
    # Correct + incorrect outcomes partition the *used* predictions that
    # reached commit (some may still be in flight at trace end — here the
    # run drains fully, so the partition is exact).
    assert (stats.vp_correct_used + stats.vp_incorrect_used
            <= stats.vp_predicted_used)


def test_max_lifetimes_caps_recording_without_changing_stats():
    trace = _trace_of("hash_loop")
    config = MachineConfig.tvp(spsr=True)
    full = CpuModel(trace, config.with_(trace=TraceConfig())).run().stats
    capped_model = CpuModel(
        trace, config.with_(trace=TraceConfig(max_lifetimes=100)))
    capped = capped_model.run().stats
    tracer = capped_model.tracer
    assert asdict(capped) == asdict(full)
    assert len(tracer.lifetimes) == 100
    assert tracer.lifetimes_dropped == full.fetched_uops - 100


def test_trace_config_validation():
    with pytest.raises(ValueError):
        TraceConfig(sample_interval=-1)
    with pytest.raises(ValueError):
        TraceConfig(max_lifetimes=-1)


def test_explicit_tracer_overrides_config():
    trace = _trace_of("hash_loop")
    tracer = PipelineTracer()
    model = CpuModel(trace, MachineConfig.baseline(), tracer=tracer)
    model.run()
    assert model.tracer is tracer
    assert len(tracer.committed_lifetimes()) == model.stats.retired_uops
