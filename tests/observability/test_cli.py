"""The ``harness trace`` subcommand: files written, errors reported."""

import json
import os

from repro.harness.cli import main as harness_main
from repro.observability.cli import main as trace_main


def test_trace_writes_both_exports(tmp_path, capsys):
    code = trace_main(["hash_loop", "--instructions", "800",
                       "--sample-interval", "100",
                       "--out-dir", str(tmp_path)])
    assert code == 0
    pipeview = tmp_path / "hash_loop.tvp+spsr.pipeview"
    jsonl = tmp_path / "hash_loop.tvp+spsr.trace.jsonl"
    assert pipeview.read_text().startswith("O3PipeView:fetch:")
    rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert rows[0]["type"] == "meta" and rows[-1]["type"] == "summary"
    out = capsys.readouterr().out
    assert "traced hash_loop / tvp+spsr" in out
    assert "interval samples" in out


def test_trace_dispatches_through_harness_cli(tmp_path, capsys):
    code = harness_main(["trace", "hash_loop", "--instructions", "500",
                         "--config", "gvp", "--format", "jsonl",
                         "--out-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "hash_loop.gvp.trace.jsonl").exists()
    assert not (tmp_path / "hash_loop.gvp.pipeview").exists()


def test_trace_format_konata_only(tmp_path):
    code = trace_main(["hash_loop", "--instructions", "500",
                       "--format", "konata", "--out-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "hash_loop.tvp+spsr.pipeview").exists()
    assert not (tmp_path / "hash_loop.tvp+spsr.trace.jsonl").exists()


def test_trace_max_lifetimes_cap(tmp_path, capsys):
    code = trace_main(["hash_loop", "--instructions", "1000",
                       "--max-lifetimes", "50", "--format", "jsonl",
                       "--out-dir", str(tmp_path)])
    assert code == 0
    rows = [json.loads(line) for line in
            (tmp_path / "hash_loop.tvp+spsr.trace.jsonl")
            .read_text().splitlines()]
    meta = rows[0]
    assert meta["lifetimes"] == 50
    assert meta["lifetimes_dropped"] > 0
    assert "dropped by --max-lifetimes" in capsys.readouterr().out


def test_trace_rejects_unknown_workload(tmp_path, capsys):
    code = trace_main(["no_such_kernel", "--out-dir", str(tmp_path)])
    assert code == 2
    assert "unknown workload" in capsys.readouterr().err
    assert os.listdir(tmp_path) == []


def test_trace_rejects_bad_budgets(capsys):
    assert trace_main(["hash_loop", "--instructions", "0"]) == 2
    assert trace_main(["hash_loop", "--sample-interval", "-5"]) == 2
