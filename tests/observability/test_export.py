"""Exporters: gem5 O3PipeView text format and the JSONL event stream."""

import json

from repro.emulator.trace import trace_program
from repro.observability.config import TraceConfig
from repro.observability.export import (JSONL_SCHEMA_VERSION, write_jsonl,
                                        write_o3_pipeview)
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel
from repro.workloads import get_workload

_BUDGET = 1500


def _traced_run(workload_name="hash_loop", sample_interval=300,
                config=None, trace_config=None):
    workload = get_workload(workload_name)
    trace, _ = trace_program(workload.program, max_instructions=_BUDGET)
    config = config or MachineConfig.tvp(spsr=True)
    trace_config = trace_config or TraceConfig(
        sample_interval=sample_interval)
    model = CpuModel(trace, config.with_(trace=trace_config))
    result = model.run()
    return model, result


def test_o3_pipeview_format(tmp_path):
    model, _ = _traced_run()
    out = tmp_path / "trace.pipeview"
    records = write_o3_pipeview(model.tracer.lifetimes, out)
    assert records == len(model.tracer.lifetimes) > 0

    lines = out.read_text().splitlines()
    # 7 lines per record: fetch/decode/rename/dispatch/issue/complete/retire.
    assert len(lines) == 7 * records
    stages = ("fetch", "decode", "rename", "dispatch", "issue",
              "complete", "retire")
    for index, line in enumerate(lines):
        fields = line.split(":")
        assert fields[0] == "O3PipeView"
        assert fields[1] == stages[index % 7]
        assert fields[2].isdigit()          # tick (0 = never reached)
    # The fetch line carries pc / seq / disassembly.
    first = lines[0].split(":")
    assert first[3].startswith("0x") and int(first[3], 16) > 0
    assert first[5].isdigit()
    assert first[6].strip()                 # non-empty disassembly
    # Retire lines carry the store tick field.
    assert lines[6].split(":")[3] == "store"


def test_o3_pipeview_squashed_stages_are_zero_ticks(tmp_path):
    model, _ = _traced_run("event_queue", sample_interval=0)
    squashed = model.tracer.squashed_lifetimes()
    assert squashed, "event_queue should squash some uops"
    out = tmp_path / "sq.pipeview"
    write_o3_pipeview(squashed, out)
    for line in out.read_text().splitlines():
        fields = line.split(":")
        if fields[1] == "retire":
            assert fields[2] == "0"         # squashed: never retired


def test_jsonl_stream_schema(tmp_path):
    model, result = _traced_run()
    out = tmp_path / "trace.jsonl"
    lines = write_jsonl(model.tracer, out, stats=result.stats,
                        workload="hash_loop", config_name="tvp+spsr")
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    assert len(rows) == lines

    meta = rows[0]
    assert meta["type"] == "meta"
    assert meta["version"] == JSONL_SCHEMA_VERSION
    assert meta["workload"] == "hash_loop"
    assert meta["config"] == "tvp+spsr"
    assert meta["lifetimes"] == len(model.tracer.lifetimes)

    by_type = {}
    for row in rows:
        by_type.setdefault(row["type"], []).append(row)
    assert len(by_type["uop"]) == len(model.tracer.lifetimes)
    assert len(by_type["event"]) == len(model.tracer.events)
    assert len(by_type["sample"]) == len(model.tracer.series.samples)
    assert len(by_type["summary"]) == 1

    uop = by_type["uop"][0]
    for key in ("seq", "inc", "pc", "text", "fetch", "commit", "squash",
                "elim_kind", "vp_used", "dispatch_count"):
        assert key in uop

    sample = by_type["sample"][0]
    for key in ("cycle", "cycles", "ipc", "rob_occupancy", "vp_accuracy",
                "elim_per_kilocycle"):
        assert key in sample

    summary = by_type["summary"][0]
    assert summary["cycles"] == result.stats.cycles
    assert summary["counters"]["retired_uops"] == result.stats.retired_uops
    # Every declared counter is present in the summary.
    assert set(summary["counters"]) == set(
        type(result.stats).counter_names())


def test_jsonl_accepts_open_file_and_no_series(tmp_path):
    import io

    model, _ = _traced_run(sample_interval=0)
    buffer = io.StringIO()
    lines = write_jsonl(model.tracer, buffer)
    rows = [json.loads(line) for line in
            buffer.getvalue().splitlines()]
    assert len(rows) == lines
    assert all(row["type"] != "sample" for row in rows)
    assert all(row["type"] != "summary" for row in rows)


def test_trace_config_output_paths_write_on_finish(tmp_path):
    konata = tmp_path / "auto.pipeview"
    jsonl = tmp_path / "auto.jsonl"
    _traced_run(trace_config=TraceConfig(konata_out=str(konata),
                                         jsonl_out=str(jsonl)))
    assert konata.read_text().startswith("O3PipeView:fetch:")
    rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert rows[0]["type"] == "meta"
    assert rows[-1]["type"] == "summary"
