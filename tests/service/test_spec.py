"""Job specs: validation, normalization and content hashing."""

import pytest

from repro import api
from repro.dse.space import get_space
from repro.envelope import request_fingerprint
from repro.service import JobSpec, ServiceError
from repro.workloads import suite

_BUDGET = 1200


def test_sweep_defaults_resolve_to_the_whole_suite():
    spec = JobSpec.sweep()
    assert spec.kind == "sweep"
    assert spec.workloads == tuple(w.name for w in suite())
    assert spec.configs == ("baseline", "mvp", "tvp", "gvp")
    assert spec.instructions is None


def test_two_spellings_of_one_request_hash_identically():
    # Comma-string and list spellings normalize to the same spec, so
    # concurrent submissions of either coalesce into one job.
    a = JobSpec.sweep(workloads="hash_loop,permute",
                      configs="baseline,tvp", instructions=_BUDGET)
    b = JobSpec.sweep(workloads=["hash_loop", "permute"],
                      configs=("baseline", "tvp"), instructions=_BUDGET)
    assert a == b
    assert a.fingerprint() == b.fingerprint()
    assert a.job_key() == b.job_key()


def test_sweep_fingerprint_matches_the_api_facade():
    spec = JobSpec.sweep(workloads=["hash_loop"], configs=["baseline"],
                         instructions=_BUDGET)
    assert spec.fingerprint() == api.sweep_fingerprint(
        ("hash_loop",), ("baseline",), _BUDGET)


def test_explore_fingerprint_matches_the_result_document():
    spec = JobSpec.explore(space="smoke", strategy="grid", seed=1,
                           workloads=["hash_loop"], instructions=_BUDGET)
    # max_points=0 normalizes to the space size, exactly as the
    # Explorer does — the stored payload must wear the spec's hash.
    assert spec.max_points == get_space("smoke").size()
    assert spec.fingerprint() == request_fingerprint(
        "explore", space=get_space("smoke").fingerprint(),
        strategy="grid", seed=1, max_points=spec.max_points,
        workloads=["hash_loop"], instructions=_BUDGET)


def test_explore_max_points_clamps_to_the_space():
    assert JobSpec.explore(max_points=2).max_points == 2
    huge = JobSpec.explore(max_points=10_000)
    assert huge.max_points == get_space("smoke").size()


def test_job_key_distinguishes_requests():
    base = JobSpec.sweep(workloads=["hash_loop"], configs=["baseline"],
                         instructions=_BUDGET)
    other = JobSpec.sweep(workloads=["hash_loop"], configs=["tvp"],
                          instructions=_BUDGET)
    assert base.job_key() != other.job_key()
    assert base.job_key().startswith("sweep-")
    assert JobSpec.explore().job_key().startswith("explore-")


def test_job_key_folds_in_the_code_version(monkeypatch):
    spec = JobSpec.sweep(workloads=["hash_loop"], configs=["baseline"],
                         instructions=_BUDGET)
    before = spec.job_key()
    monkeypatch.setattr("repro.service.core.code_version_hash",
                        lambda: "f" * 16)
    assert spec.job_key() != before          # edited sources, fresh key
    assert spec.fingerprint() == spec.fingerprint()


def test_round_trip_through_wire_payload():
    for spec in (JobSpec.sweep(workloads=["hash_loop"],
                               configs=["baseline", "tvp"],
                               instructions=_BUDGET),
                 JobSpec.explore(space="smoke", strategy="random", seed=7,
                                 max_points=2, workloads=["permute"])):
        assert JobSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("build", [
    lambda: JobSpec.sweep(configs=[]),
    lambda: JobSpec.sweep(configs=["not_a_config"]),
    lambda: JobSpec.sweep(workloads=["not_a_workload"]),
    lambda: JobSpec.sweep(workloads=[]),
    lambda: JobSpec.sweep(instructions=0),
    lambda: JobSpec.sweep(workloads=42),
    lambda: JobSpec.explore(space="not_a_space"),
    lambda: JobSpec.explore(strategy="not_a_strategy"),
    lambda: JobSpec.from_dict({"kind": "teleport"}),
    lambda: JobSpec.from_dict("not an object"),
])
def test_bad_requests_raise_service_errors(build):
    with pytest.raises(ServiceError):
        build()
