"""The HTTP surface: dedupe across real sockets, byte identity,
long-poll feeds and error mapping."""

import json
import threading
import urllib.request

import pytest

from repro import api
from repro.envelope import canonical_json
from repro.service import JobManager
from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.http import make_server

_BUDGET = 1200
_SPEC = {"kind": "sweep", "workloads": ["hash_loop", "permute"],
         "configs": ["baseline", "tvp"], "instructions": _BUDGET}


@pytest.fixture
def service(tmp_path):
    manager = JobManager(cache_dir=tmp_path, jobs=1)
    server = make_server(manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), manager
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_concurrent_clients_coalesce_onto_one_job(service):
    client, manager = service
    receipts = []

    def submit():
        receipts.append(client.submit(_SPEC))

    threads = [threading.Thread(target=submit) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    keys = {receipt["job"] for receipt in receipts}
    assert len(keys) == 1
    body = client.wait(keys.pop(), poll=30)
    health = client.healthz()
    assert health["ok"] is True
    assert health["executions"] == 1
    assert health["deduped"] + health["served_warm"] == 2
    # The byte-identity contract, across a real socket.
    direct = api.sweep(["hash_loop", "permute"], ("baseline", "tvp"),
                       instructions=_BUDGET, jobs=1)
    assert body == canonical_json(direct.to_dict()).encode()
    assert json.loads(body)["schema"] == "sweep/2"


def test_status_result_and_listing(service):
    client, _manager = service
    receipt = client.submit(_SPEC)
    key = receipt["job"]
    assert receipt["kind"] == "sweep"
    body = client.wait(key, poll=30)
    status = client.status(key)
    assert status["state"] == "done"
    assert status["fault_report"]["points_total"] == 4
    assert client.result(key) == json.loads(body)
    assert [job["job"] for job in client.jobs()] == [key]


def test_events_long_poll_and_stream(service):
    client, _manager = service
    key = client.submit(_SPEC)["job"]
    after, kinds, done = 0, [], False
    while not done:
        events, after, done = client.events(key, after=after, timeout=30)
        kinds.extend(event["kind"] for event in events)
    assert kinds[0] == "job_queued"
    assert kinds[-1] == "job_done"
    assert kinds.count("point_done") == 4
    # The stream endpoint replays the same feed as JSONL and closes.
    with urllib.request.urlopen(client.base_url
                                + f"/v1/jobs/{key}/stream",
                                timeout=120) as reply:
        streamed = [json.loads(line) for line in reply if line.strip()]
    assert [event["kind"] for event in streamed] == kinds


def test_unknown_job_is_404(service):
    client, _manager = service
    with pytest.raises(ServiceHTTPError) as excinfo:
        client.status("sweep-0000000000000000dead")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceHTTPError) as excinfo:
        client.events("sweep-0000000000000000dead")
    assert excinfo.value.status == 404


def test_bad_spec_is_400(service):
    client, _manager = service
    for bad in ({"kind": "sweep", "configs": ["not_a_config"]},
                {"kind": "teleport"},
                {"kind": "explore", "space": "not_a_space"}):
        with pytest.raises(ServiceHTTPError) as excinfo:
            client.submit(bad)
        assert excinfo.value.status == 400
        assert "error" in excinfo.value.payload


def test_unknown_routes_are_404(service):
    client, _manager = service
    for path in ("/v2/jobs", "/v1/nope"):
        with pytest.raises(ServiceHTTPError) as excinfo:
            client._json(path)
        assert excinfo.value.status == 404
    key = client.submit(_SPEC)["job"]
    client.wait(key, poll=30)
    with pytest.raises(ServiceHTTPError) as excinfo:
        client._json(f"/v1/jobs/{key}/teleport")
    assert excinfo.value.status == 404


def test_explore_jobs_ride_the_same_surface(service):
    client, _manager = service
    receipt = client.submit({"kind": "explore", "space": "smoke",
                             "strategy": "grid", "seed": 1,
                             "workloads": ["hash_loop"],
                             "instructions": _BUDGET})
    payload = json.loads(client.wait(receipt["job"], poll=30))
    assert payload["schema"] == "explore/2"
    assert payload["fingerprint"] == receipt["fingerprint"]
    assert len(payload["points"]) == 4
