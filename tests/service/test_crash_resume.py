"""Crash-safety acceptance: ``kill -9`` the service mid-sweep, restart
it on the same cache dir, and require journal-resumed, byte-identical
results — fetched through the ``harness submit``/``poll`` CLI."""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro import api
from repro.envelope import canonical_json
from repro.service import JobSpec

_SRC = os.path.dirname(os.path.dirname(repro.__file__))
_WORKLOADS = ["hash_loop", "permute"]
_CONFIGS = ["baseline", "tvp", "mvp"]
_BUDGET = 20000
_POINTS = len(_WORKLOADS) * len(_CONFIGS)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    for knob in list(env):
        if knob.startswith("REPRO_FAULT") or knob == "REPRO_CACHE_DIR":
            del env[knob]
    return env


def _start_server(cache_dir, env):
    """Launch ``harness serve``; returns (process, base_url, banner)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.harness", "serve", "--port", "0",
         "--cache-dir", str(cache_dir), "--jobs", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True)
    banner = process.stdout.readline()
    match = re.search(r"serving on (http://[\d.]+:\d+)", banner)
    assert match, f"no service banner, got {banner!r}"
    return process, match.group(1), banner


def _journal_lines(path):
    try:
        with open(path) as handle:
            return [line for line in handle if line.endswith("\n")]
    except OSError:
        return []


@pytest.mark.slow
def test_kill9_service_resumes_byte_identical(tmp_path):
    env = _env()
    cache_dir = tmp_path / "cache"
    spec = JobSpec.sweep(workloads=_WORKLOADS, configs=_CONFIGS,
                         instructions=_BUDGET)
    journal = spec.journal_path(str(cache_dir))

    from repro.service.client import ServiceClient

    victim, url, _ = _start_server(cache_dir, env)
    try:
        receipt = ServiceClient(url).submit(spec.to_dict())
        assert receipt["job"] == spec.job_key()
        # Kill -9 the whole service as soon as the journal shows at
        # least one durably completed point.
        deadline = time.time() + 300
        while time.time() < deadline and not _journal_lines(journal):
            if victim.poll() is not None:
                pytest.fail("service died before it was killed")
            time.sleep(0.02)
        assert victim.poll() is None, "service exited prematurely"
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        if victim.poll() is None:
            victim.kill()
        victim.wait(timeout=60)
        victim.stdout.close()
    completed_before = len(_journal_lines(journal))
    assert 1 <= completed_before < _POINTS

    # Restart on the same cache dir: the registry resubmits the job and
    # the journal carries its completed points.
    revived, url, banner = _start_server(cache_dir, env)
    try:
        assert "1 jobs recovered" in banner
        # Fetch through the client CLI; a resubmission dedupes into the
        # recovered in-flight job and --save writes the canonical bytes.
        save = tmp_path / "resumed.json"
        fetched = subprocess.run(
            [sys.executable, "-m", "repro.harness", "submit", "--url", url,
             "--workloads", ",".join(_WORKLOADS),
             "--configs", ",".join(_CONFIGS),
             "--instructions", str(_BUDGET), "--wait", "--save", str(save)],
            env=env, capture_output=True, text=True, timeout=600)
        assert fetched.returncode == 0, fetched.stderr
        assert json.loads(fetched.stdout.splitlines()[0])["job"] \
            == spec.job_key()

        # Byte-identical to a direct, cache-free api.sweep() in-process.
        direct = api.sweep(_WORKLOADS, _CONFIGS, instructions=_BUDGET,
                           jobs=1)
        assert save.read_bytes() == canonical_json(direct.to_dict()).encode()

        # `harness poll` sees a finished job whose fault report proves
        # zero recomputation of the journaled points.
        polled = subprocess.run(
            [sys.executable, "-m", "repro.harness", "poll", spec.job_key(),
             "--url", url],
            env=env, capture_output=True, text=True, timeout=60)
        assert polled.returncode == 0, polled.stderr
        status = json.loads(polled.stdout)
        assert status["state"] == "done"
        report = status["fault_report"]
        assert report["from_journal"] == completed_before
        assert report["points_total"] == _POINTS
    finally:
        revived.kill()
        revived.wait(timeout=60)
        revived.stdout.close()
