"""The in-process job engine: dedupe, warm serving, byte identity,
failure handling and crash recovery."""

import json
import threading

import pytest

from repro import api
from repro.envelope import canonical_json
from repro.service import JobManager, JobRegistry, JobSpec
from repro.service.core import JobFailed, JobNotFound

_BUDGET = 1200
_WORKLOADS = ("hash_loop", "permute")
_CONFIGS = ("baseline", "tvp")


def _spec():
    return JobSpec.sweep(workloads=list(_WORKLOADS),
                         configs=list(_CONFIGS), instructions=_BUDGET)


def _direct_bytes():
    """What a cache-free direct ``api.sweep()`` of the matrix serializes
    to — the reference side of the byte-identity contract."""
    swept = api.sweep(list(_WORKLOADS), _CONFIGS, instructions=_BUDGET,
                      jobs=1)
    return canonical_json(swept.to_dict()).encode()


def test_concurrent_identical_submissions_run_once(tmp_path):
    manager = JobManager(cache_dir=tmp_path, jobs=1)
    jobs = []

    def submit():
        jobs.append(manager.submit(_spec()))

    threads = [threading.Thread(target=submit) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    keys = {job.key for job in jobs}
    assert len(keys) == 1
    body = manager.result_bytes(keys.pop(), timeout=300)
    assert manager.counters()["executions"] == 1
    assert (manager.counters()["deduped"]
            + manager.counters()["served_warm"]) == 3
    assert body == _direct_bytes()


def test_warm_resubmission_serves_from_cache(tmp_path):
    cold = JobManager(cache_dir=tmp_path, jobs=1)
    key = cold.submit(_spec()).key
    cold_bytes = cold.result_bytes(key, timeout=300)

    # A fresh manager on the same cache dir: no execution at all.
    warm = JobManager(cache_dir=tmp_path, jobs=1)
    job = warm.submit(_spec())
    assert job.state == "done"
    assert warm.counters() == {"executions": 0, "deduped": 0,
                               "served_warm": 1, "active": 0}
    assert [e["kind"] for e in job.events] == ["job_cached"]
    assert warm.result_bytes(job.key, timeout=10) == cold_bytes


def test_event_feed_carries_orchestrator_progress(tmp_path):
    manager = JobManager(cache_dir=tmp_path, jobs=1)
    job = manager.submit(_spec())
    manager.result(job.key, timeout=300)
    kinds = [event["kind"] for event in job.events]
    assert kinds[0] == "job_queued"
    assert "job_started" in kinds
    assert kinds[-1] == "job_done"
    points = [event for event in job.events
              if event["kind"] == "point_done"]
    assert len(points) == len(_WORKLOADS) * len(_CONFIGS)
    assert {p["data"]["source"] for p in points} <= {
        "serial", "pool", "memo", "journal", "cache"}


def test_events_after_long_polls_to_completion(tmp_path):
    manager = JobManager(cache_dir=tmp_path, jobs=1)
    job = manager.submit(JobSpec.sweep(workloads=["hash_loop"],
                                       configs=["baseline"],
                                       instructions=_BUDGET))
    after, seen = 0, []
    for _ in range(100):
        events, after, done = manager.events_after(job.key, after=after,
                                                   timeout=60)
        seen.extend(events)
        if done and len(seen) >= len(job.events):
            break
    assert [e["kind"] for e in seen] == [e["kind"] for e in job.events]


def test_status_surfaces_the_fault_report(tmp_path):
    manager = JobManager(cache_dir=tmp_path, jobs=1)
    job = manager.submit(_spec())
    manager.result(job.key, timeout=300)
    status = manager.status(job.key)
    assert status["state"] == "done"
    assert status["fault_report"]["healthy"] is True
    assert status["fault_report"]["points_total"] == 4
    assert status["journal"].endswith(".jsonl")
    # ... while the result payload itself stays provenance-free.
    payload = json.loads(manager.result_bytes(job.key, timeout=10))
    assert "fault_report" not in payload


def test_failed_jobs_report_and_retry(tmp_path, monkeypatch):
    manager = JobManager(cache_dir=tmp_path, jobs=1)

    def boom(*args, **kwargs):
        raise RuntimeError("simulator exploded")

    monkeypatch.setattr(api, "sweep", boom)
    spec = _spec()
    job = manager.submit(spec)
    with pytest.raises(JobFailed, match="simulator exploded"):
        manager.result(job.key, timeout=60)
    assert manager.status(job.key)["state"] == "failed"
    assert "simulator exploded" in manager.status(job.key)["error"]

    # Resubmitting a failed job retries it under the same key.
    monkeypatch.undo()
    retried = manager.submit(spec)
    assert retried.key == job.key
    assert manager.result_bytes(retried.key, timeout=300) == _direct_bytes()
    assert manager.counters()["executions"] == 2


def test_unknown_job_raises(tmp_path):
    manager = JobManager(cache_dir=tmp_path)
    with pytest.raises(JobNotFound):
        manager.status("sweep-0000000000000000dead")


def test_recover_resubmits_unfinished_registry_records(tmp_path):
    spec = _spec()
    registry = JobRegistry(tmp_path)
    registry.save({"key": spec.job_key(), "kind": spec.kind,
                   "state": "running", "fingerprint": spec.fingerprint(),
                   "spec": spec.to_dict(), "error": None,
                   "submissions": 1})
    # A stale record whose key no longer matches its spec (the sources
    # changed since the crash) is dropped, not resurrected.
    registry.save({"key": "sweep-0000000000000000dead", "kind": "sweep",
                   "state": "queued", "fingerprint": "0" * 16,
                   "spec": spec.to_dict(), "error": None,
                   "submissions": 1})

    manager = JobManager(cache_dir=tmp_path, jobs=1)
    recovered = manager.recover()
    assert {job.key for job in recovered} == {spec.job_key()}
    assert registry.load("sweep-0000000000000000dead") is None
    assert manager.result_bytes(spec.job_key(),
                                timeout=300) == _direct_bytes()
    # The registry record reflects the finished state.
    assert registry.load(spec.job_key())["state"] == "done"


def test_resume_false_never_reads_caches(tmp_path):
    cold = JobManager(cache_dir=tmp_path, jobs=1)
    key = cold.submit(_spec()).key
    cold.result(key, timeout=300)

    frozen = JobManager(cache_dir=tmp_path, jobs=1, resume=False)
    assert frozen.recover() == []
    job = frozen.submit(_spec())
    frozen.result(job.key, timeout=300)
    assert frozen.counters()["executions"] == 1
    assert frozen.counters()["served_warm"] == 0


def test_registry_round_trip_and_schema_guard(tmp_path):
    registry = JobRegistry(tmp_path)
    registry.save({"key": "sweep-abc", "state": "queued", "kind": "sweep"})
    record = registry.load("sweep-abc")
    assert record["schema"] == "job/1"
    assert record["state"] == "queued"
    assert registry.unfinished() == [record]
    # Foreign documents are ignored, not half-parsed.
    path = registry._path_of("sweep-bad")
    with open(path, "w") as handle:
        json.dump({"schema": "not-a-job/9", "key": "sweep-bad"}, handle)
    assert registry.load("sweep-bad") is None
    registry.delete("sweep-abc")
    assert registry.records() == []
