"""Differential fuzzing: the cycle model must agree with the emulator.

The emulator (``repro.emulator.machine``) is the golden functional model;
the pipeline replays its µop trace.  For every random program we assert
the pipeline's *committed* stream is exactly the emulated one — each µop
retired once, in program order, stores included — and that the final
architectural register state reconstructed from committed results matches
the machine.  This is what catches squash/replay bugs: a double-commit
after a value-misprediction flush, a dropped µop after selective replay,
a store retired out of order.

Scale knobs (all environment variables, so CI can turn them up):

* ``REPRO_FUZZ_PROGRAMS`` — programs in the sweep (default 200).  Each
  program runs under one of the four configurations, round-robin, so the
  sweep covers all VP flavors without a 4x cost multiplier; a smaller
  cross-product smoke runs the first few programs under *every* config.
* ``REPRO_FUZZ_BUDGET`` — soft wall-clock budget in seconds (default 60).
  The sweep stops early once exceeded (minimum 20 programs always run);
  program *i* is identical regardless of where the budget cuts off.
* ``REPRO_FUZZ_SEED`` — stream seed (default fixed).  A failure message
  prints (seed, index, config, assembly), which reproduces the program
  exactly via :func:`tests.differential.progen.generate_source`.
"""

import os
import time

import pytest

from repro.emulator.machine import Machine
from repro.emulator.trace import trace_program
from repro.isa.assembler import assemble
from repro.observability.config import TraceConfig
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel

from tests.differential.progen import generate_source

_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0xD1FF5EED"), 0)
_PROGRAMS = int(os.environ.get("REPRO_FUZZ_PROGRAMS", "200"))
_BUDGET_SECONDS = float(os.environ.get("REPRO_FUZZ_BUDGET", "60"))
_MIN_PROGRAMS = 20
_MAX_UOPS = 12_000

CONFIGS = (
    ("baseline", lambda: MachineConfig.baseline()),
    ("mvp", lambda: MachineConfig.mvp()),
    ("tvp+spsr", lambda: MachineConfig.tvp(spsr=True)),
    ("gvp+spsr+replay",
     lambda: MachineConfig.gvp(spsr=True, vp_recovery="replay")),
)


def _check_one(source, config):
    """Run one program through emulator and pipeline; return error strings."""
    program = assemble(source)            # runs Program.validate()
    machine = Machine(program)
    trace, trace_stats = trace_program(program, max_instructions=_MAX_UOPS,
                                       machine=machine)
    if len(trace) >= _MAX_UOPS:
        return ["emulation hit the µop budget (generator bug, not a "
                "model divergence)"]
    model = CpuModel(trace, config.with_(trace=TraceConfig()))
    stats = model.run().stats
    tracer = model.tracer
    errors = []

    committed = sorted(tracer.committed_lifetimes(), key=lambda lt: lt.seq)
    seqs = [lt.seq for lt in committed]
    if seqs != list(range(len(trace))):
        missing = sorted(set(range(len(trace))) - set(seqs))[:5]
        dupes = sorted({s for s in seqs if seqs.count(s) > 1})[:5]
        errors.append(f"commit stream != emulated stream: "
                      f"{len(seqs)} committed of {len(trace)} emulated, "
                      f"missing seqs {missing}, duplicated {dupes}")

    commit_cycles = [lt.commit for lt in committed]
    out_of_order = [lt.seq for before, after, lt
                    in zip(commit_cycles, commit_cycles[1:], committed[1:])
                    if after < before]
    if out_of_order:
        errors.append(f"out-of-order commit at seqs {out_of_order[:5]}")

    if stats.retired_uops != len(trace):
        errors.append(f"retired_uops {stats.retired_uops} != "
                      f"emulated µops {len(trace)}")
    if stats.retired_arch_insts != trace_stats.arch_instructions:
        errors.append(f"retired_arch_insts {stats.retired_arch_insts} != "
                      f"emulated instructions {trace_stats.arch_instructions}")

    committed_stores = [lt.seq for lt in committed if lt.is_store]
    emulated_stores = [uop.seq for uop in trace if uop.is_store]
    if committed_stores != emulated_stores:
        errors.append(f"store streams diverge: pipeline committed "
                      f"{len(committed_stores)} stores, emulator produced "
                      f"{len(emulated_stores)}")

    # Final architectural register state, reconstructed from the committed
    # µops' results (trace order == commit order, verified above).
    final = {}
    for uop in trace:
        if uop.dst is not None and uop.result is not None:
            final[uop.dst] = uop.result
    for reg, value in sorted(final.items()):
        if machine.regs[reg] != value:
            errors.append(f"final reg x{reg}: committed last-writer value "
                          f"{value:#x} != machine state "
                          f"{machine.regs[reg]:#x}")
    return errors


def _fail(errors, seed, index, config_name, source):
    lines = [f"differential mismatch (seed={seed:#x}, program={index}, "
             f"config={config_name}):"]
    lines += [f"  - {error}" for error in errors]
    lines.append("reproduce with "
                 f"tests.differential.progen.generate_source({seed:#x}, "
                 f"{index}); program follows:")
    lines.append(source)
    pytest.fail("\n".join(lines), pytrace=False)


def test_fuzz_sweep_round_robin():
    """The main sweep: N random programs, configs assigned round-robin."""
    deadline = time.monotonic() + _BUDGET_SECONDS
    ran = 0
    for index in range(_PROGRAMS):
        if index >= _MIN_PROGRAMS and time.monotonic() > deadline:
            break
        config_name, make_config = CONFIGS[index % len(CONFIGS)]
        source = generate_source(_SEED, index)
        errors = _check_one(source, make_config())
        if errors:
            _fail(errors, _SEED, index, config_name, source)
        ran += 1
    assert ran >= _MIN_PROGRAMS


@pytest.mark.parametrize("config_name,make_config", CONFIGS,
                         ids=[name for name, _ in CONFIGS])
def test_fuzz_cross_product_smoke(config_name, make_config):
    """First few programs under *every* config (catches config-specific
    divergence the round-robin assignment might rotate past)."""
    for index in range(4):
        source = generate_source(_SEED, index)
        errors = _check_one(source, make_config())
        if errors:
            _fail(errors, _SEED, index, config_name, source)
