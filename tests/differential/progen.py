"""Historical import location for the random-program generator.

The generator moved to :mod:`repro.workloads.progen` when its fixed
seeds became first-class named workloads
(:mod:`repro.workloads.generated`); this module re-exports the public
surface so existing reproduction recipes —
``tests.differential.progen.generate_source(seed, index)`` — keep
working verbatim.
"""

from repro.workloads.progen import BUF_BYTES, generate_source

__all__ = ["BUF_BYTES", "generate_source"]
