"""Differential pins for the named generated (progen) workloads.

Each of the six first-class generated kernels is run through the
functional emulator and the cycle model under a budget cut (they loop
forever by contract) and the committed stream must match the emulated
one exactly — the same invariants as the fuzz sweep, pinned to the
fixed seeds users can name on the command line.  A drift in the
generator, the looping rendering, or the registry silently changes
real workloads; these tests make it loud.
"""

import pytest

from repro.emulator.machine import Machine
from repro.emulator.trace import trace_program
from repro.observability.config import TraceConfig
from repro.pipeline.config import MachineConfig
from repro.workloads import get_workload, suite
from repro.workloads.generated import (GENERATED, GENERATED_COUNT,
                                       GENERATED_SEED)
from repro.workloads.progen import generate_source

_BUDGET = 3_000

_CONFIGS = (
    lambda: MachineConfig.baseline(),
    lambda: MachineConfig.mvp(),
    lambda: MachineConfig.tvp(spsr=True),
    lambda: MachineConfig.gvp(spsr=True, vp_recovery="replay"),
)


def _pin_one(workload, config):
    """Emulator-vs-pipeline agreement under a budget cut."""
    from repro.pipeline.core import CpuModel

    program = workload.program
    machine = Machine(program)
    trace, trace_stats = trace_program(program, max_instructions=_BUDGET,
                                       machine=machine)
    assert len(trace) > 0
    model = CpuModel(trace, config.with_(trace=TraceConfig()))
    stats = model.run().stats
    tracer = model.tracer
    errors = []

    committed = sorted(tracer.committed_lifetimes(), key=lambda lt: lt.seq)
    seqs = [lt.seq for lt in committed]
    if seqs != list(range(len(trace))):
        errors.append(f"commit stream != emulated stream "
                      f"({len(seqs)} committed of {len(trace)})")
    if stats.retired_uops != len(trace):
        errors.append(f"retired_uops {stats.retired_uops} != {len(trace)}")
    if stats.retired_arch_insts != trace_stats.arch_instructions:
        errors.append(f"retired_arch_insts {stats.retired_arch_insts} != "
                      f"{trace_stats.arch_instructions}")

    committed_stores = [lt.seq for lt in committed if lt.is_store]
    emulated_stores = [uop.seq for uop in trace if uop.is_store]
    if committed_stores != emulated_stores:
        errors.append("store streams diverge")

    final = {}
    for uop in trace:
        if uop.dst is not None and uop.result is not None:
            final[uop.dst] = uop.result
    for reg, value in sorted(final.items()):
        if machine.regs[reg] != value:
            errors.append(f"final reg x{reg}: {value:#x} != "
                          f"{machine.regs[reg]:#x}")
    return errors


@pytest.mark.parametrize("workload", GENERATED, ids=[w.name
                                                     for w in GENERATED])
def test_generated_workload_matches_emulator(workload):
    config = _CONFIGS[GENERATED.index(workload) % len(_CONFIGS)]()
    errors = _pin_one(workload, config)
    assert not errors, f"{workload.name}: " + "; ".join(errors)


def test_generated_kernels_loop_forever():
    """The budget, not the program, must terminate each kernel."""
    for workload in GENERATED:
        assert "hlt" not in workload.source
        assert "b forever" in workload.source
        trace, _ = trace_program(workload.program, max_instructions=_BUDGET)
        assert len(trace) >= _BUDGET  # still running at the cut


def test_looping_form_shares_body_with_fuzz_program():
    """Same seed => same instruction body in both renderings, so a
    fuzz-failure reproduction applies verbatim to the named kernel."""
    for index in range(GENERATED_COUNT):
        halting = generate_source(GENERATED_SEED, index)
        looping = generate_source(GENERATED_SEED, index, loop_forever=True)
        stripped = [line for line in looping.splitlines()
                    if line not in ("forever:", "    b forever")]
        assert stripped == [line for line in halting.splitlines()
                            if line != "    hlt"]


def test_generated_kernels_are_named_but_not_in_default_suite():
    assert len(suite()) == 14
    for index in range(GENERATED_COUNT):
        workload = get_workload(f"progen{index}")
        assert workload.name == f"progen{index}"
    names = [w.name for w in suite(["progen1", "hash_loop"])]
    assert sorted(names) == ["hash_loop", "progen1"]
