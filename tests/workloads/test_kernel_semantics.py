"""Semantic checks: each kernel computes what its docstring claims.

These run the functional emulator and verify kernel-specific invariants —
the workloads are measurement instruments, so their behaviour must be
what the experiment design assumes.
"""

from repro.emulator.machine import Machine
from repro.emulator.trace import trace_program
from repro.workloads import get_workload


def run_machine(name, instructions):
    workload = get_workload(name)
    machine = Machine(workload.program)
    trace = list(machine.run(max_instructions=instructions))
    return machine, trace


def test_hash_loop_counts_digits_plausibly():
    machine, _ = run_machine("hash_loop", 7000)  # one full 512-char scan+
    digits = machine.regs[10]
    # Random printable text: roughly 10/96 of characters are digits.
    assert 20 < digits < 120
    assert machine.regs[0] <= 0xFFFF or machine.regs[0] < 2**64  # hash live


def test_compiler_cfg_dispatch_reaches_all_handlers():
    _, trace = run_machine("compiler_cfg", 4000)
    targets = {u.target_pc for u in trace if u.is_indirect and u.taken}
    assert len(targets) == 4  # all four opcode handlers exercised


def test_sparse_graph_visits_distinct_nodes():
    _, trace = run_machine("sparse_graph", 3000)
    addresses = {u.addr for u in trace if u.is_load and u.size == 8
                 and u.imm is None or u.is_load}
    addresses = {u.addr for u in trace if u.is_load}
    # A permutation ring never revisits within a lap.
    assert len(addresses) > 400


def test_event_queue_preserves_heap_property():
    machine, _ = run_machine("event_queue", 6000)
    heap_base = machine.program.resolve("heap")
    keys = [machine.read_mem(heap_base + i * 8, 8) for i in range(256)]
    violations = 0
    for parent in range(1, 128):
        for child in (2 * parent, 2 * parent + 1):
            if child <= 255 and keys[parent] > keys[child]:
                violations += 1
    # Only the path the in-flight sift is currently fixing may violate.
    assert violations <= 16


def test_xml_tree_indirection_chain_is_stable():
    _, trace = run_machine("xml_tree", 4000)
    first_loads = [u for u in trace if u.is_load and u.size == 8]
    by_pc = {}
    for uop in first_loads:
        by_pc.setdefault(uop.pc, set()).add(uop.result)
    # Every 8-byte (pointer) load returns one stable value.
    assert by_pc and all(len(values) == 1 for values in by_pc.values())


def test_motion_sad_identical_blocks_give_zero():
    _, trace = run_machine("motion_sad", 12000)
    # The csneg abs-diff results on even (identical) blocks are all zero;
    # overall, a large share of csneg outputs must be 0.
    diffs = [u.result for u in trace if u.op.value == "csneg"]
    assert diffs
    zero_share = diffs.count(0) / len(diffs)
    assert zero_share > 0.4


def test_board_eval_scores_are_bounded():
    machine, _ = run_machine("board_eval", 8000)
    # Score of a 12-bit zone with weights < 32 and pair masks < 256.
    assert machine.regs[0] < 12 * 32 + 256 * 129


def test_match_count_lengths_bounded():
    _, trace = run_machine("match_count", 8000)
    lengths = [u.src_values[1] for u in trace
               if u.text.startswith("add   x0, x0, x3")]
    lengths = [u.result for u in trace if u.dst == 3 and u.op.value == "add"]
    assert lengths and max(lengths) <= 64


def test_permute_digits_stay_in_range():
    machine, _ = run_machine("permute", 6000)
    board = machine.program.resolve("board")
    values = [machine.read_mem(board + i * 8, 8) for i in range(16)]
    assert all(v <= 18 for v in values)   # digit sums kept reduced


def test_climate_mix_mask_saturates():
    _, trace = run_machine("climate_mix", 8000)
    masks = [u.result for u in trace if u.op.value == "cset"]
    assert masks and all(m == 1 for m in masks[50:])


def test_wave_field_writes_next_field_only():
    machine, trace = run_machine("wave_field", 6000)
    next_base = machine.program.resolve("field_next")
    cur_base = machine.program.resolve("field_cur")
    stores = [u.addr for u in trace if u.is_store]
    assert stores
    assert all(addr >= next_base for addr in stores)
    assert cur_base < next_base


def test_stream_triad_output_matches_formula():
    machine, trace = run_machine("stream_triad", 6000)
    # All-zero inputs with s=3.5: every store writes 0.0.
    stores = [u.store_value for u in trace if u.is_store]
    assert stores and all(v == 0 for v in stores)


def test_fir_filter_walks_the_signal():
    _, trace = run_machine("fir_filter", 6000)
    loads = [u.addr for u in trace if u.is_load]
    assert max(loads) - min(loads) > 1000  # sweeps the sample window
