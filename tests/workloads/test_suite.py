"""Workload suite integrity."""

import pytest

from repro.emulator.trace import trace_program
from repro.workloads import SUITE, get_workload, suite
from repro.workloads.profile import narrow_fraction, top_values, value_profile


def test_suite_has_fourteen_kernels():
    assert len(SUITE) == 14
    assert len({w.name for w in SUITE}) == 14


def test_every_kernel_names_its_spec_analog():
    for workload in SUITE:
        assert workload.spec_analog
        assert workload.description


@pytest.mark.parametrize("workload", SUITE, ids=lambda w: w.name)
def test_kernel_assembles_and_emulates(workload):
    trace, stats = trace_program(workload.program, max_instructions=2000)
    assert stats.arch_instructions == 2000
    assert 1.0 <= stats.expansion_ratio <= 1.5


@pytest.mark.parametrize("workload", SUITE, ids=lambda w: w.name)
def test_kernel_runs_longer_than_any_budget(workload):
    """Kernels loop indefinitely; the budget is the only terminator."""
    trace, stats = trace_program(workload.program, max_instructions=4000)
    assert stats.arch_instructions == 4000


def test_get_workload_and_subset():
    workload = get_workload("xml_tree")
    assert workload.name == "xml_tree"
    subset = suite(["hash_loop", "permute"])
    assert [w.name for w in subset] == ["hash_loop", "permute"]
    with pytest.raises(KeyError):
        suite(["nonexistent"])


def test_program_is_cached():
    workload = get_workload("hash_loop")
    assert workload.program is workload.program


def test_value_profile_matches_fig1_shape():
    counter, total = value_profile(suite(), instructions_each=2500)
    series = top_values(counter, total, 5)
    assert series[0][0] == 0              # 0x0 on top
    assert series[0][1] > 3.0             # with a solid share
    top5 = [value for value, _share in series]
    assert 1 in top5                      # 0x1 among the leaders
    assert narrow_fraction(counter, total, 9) > 30.0


def test_branchy_kernels_have_branches():
    for name in ("hash_loop", "event_queue", "match_count"):
        _trace, stats = trace_program(get_workload(name).program,
                                      max_instructions=2000)
        assert stats.branches > 100


def test_fp_kernels_have_fp_work():
    from repro.isa.opcodes import FP_OPS

    for name in ("stream_triad", "stencil5", "fir_filter"):
        trace, _ = trace_program(get_workload(name).program,
                                 max_instructions=2000)
        assert sum(1 for u in trace if u.op in FP_OPS) > 200


def test_sparse_graph_misses():
    from repro.pipeline import MachineConfig
    from repro.pipeline.core import CpuModel

    trace, _ = trace_program(get_workload("sparse_graph").program,
                             max_instructions=2500)
    model = CpuModel(trace, MachineConfig.baseline())
    result = model.run()
    assert result.stats.memory["L1D.misses"] > 200
    assert result.stats.ipc < 0.3


def test_xml_tree_is_gvp_outlier():
    from repro.pipeline import MachineConfig
    from repro.pipeline.core import CpuModel

    trace, _ = trace_program(get_workload("xml_tree").program,
                             max_instructions=6000)
    ipcs = {}
    for name, config in [("base", MachineConfig.baseline()),
                         ("tvp", MachineConfig.tvp()),
                         ("gvp", MachineConfig.gvp())]:
        ipcs[name] = CpuModel(trace, config).run().stats.ipc
    assert ipcs["gvp"] > ipcs["base"] * 1.05
    assert abs(ipcs["tvp"] - ipcs["base"]) / ipcs["base"] < 0.02
