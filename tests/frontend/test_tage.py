"""TAGE learning behaviour on canonical branch patterns."""

from repro.frontend.history import GlobalHistory
from repro.frontend.tage import Tage, TageConfig


def drive(tage, pc, outcomes):
    """Predict+update a stream; returns mispredict count."""
    mispredicts = 0
    for taken in outcomes:
        predicted, info = tage.predict(pc)
        if predicted != taken:
            mispredicts += 1
        tage.update(pc, taken, info)
    return mispredicts


def small_tage():
    config = TageConfig(n_tables=6, min_history=2, max_history=64,
                        base_log2=9, tagged_log2=[7] * 6,
                        tag_bits=[8, 9, 10, 11, 12, 13])
    return Tage(config, history=GlobalHistory())


def test_always_taken_learned_immediately():
    tage = small_tage()
    assert drive(tage, 0x4000, [True] * 200) < 5


def test_always_not_taken():
    tage = small_tage()
    assert drive(tage, 0x4000, [False] * 200) < 5


def test_alternating_pattern_learned():
    tage = small_tage()
    pattern = [True, False] * 300
    late = drive(tage, 0x4000, pattern[:200])  # warmup
    del late
    assert drive(tage, 0x4000, pattern[200:]) < 40


def test_loop_exit_pattern_learned():
    """T T T T N repeating — needs ~4 bits of history."""
    tage = small_tage()
    pattern = ([True] * 4 + [False]) * 200
    drive(tage, 0x4000, pattern[:500])
    assert drive(tage, 0x4000, pattern[500:]) < 60


def test_correlated_branches():
    """Branch B follows branch A's direction: global history catches it."""
    tage = small_tage()
    import itertools

    mispredicts_b = 0
    directions = [bool(i % 3 == 0) for i in range(600)]
    for index, direction in enumerate(directions):
        for pc in (0x4000, 0x4100):
            predicted, info = tage.predict(pc)
            if pc == 0x4100 and index > 300 and predicted != direction:
                mispredicts_b += 1
            tage.update(pc, direction, info)
    del itertools
    assert mispredicts_b < 40


def test_storage_accounting():
    config = TageConfig()
    bits = config.storage_bits
    # Paper: ~32KB conditional predictor.
    assert 28 * 1024 * 8 <= bits <= 36 * 1024 * 8


def test_history_lengths_match_table2():
    config = TageConfig()
    lengths = config.history_lengths
    assert lengths[0] == 5 and lengths[-1] == 640 and len(lengths) == 15


def test_mispredict_rate_property():
    tage = small_tage()
    drive(tage, 0x4000, [True] * 100)
    assert 0.0 <= tage.mispredict_rate <= 1.0


def test_config_validation():
    import pytest

    with pytest.raises(ValueError):
        TageConfig(n_tables=3, tagged_log2=[8, 8], tag_bits=[8, 8, 8])
