"""Folded global history: the incremental CSRs must equal a naive fold."""

from hypothesis import given, strategies as st

from repro.frontend.history import FoldedHistory, GlobalHistory


@given(st.lists(st.booleans(), max_size=300), st.integers(2, 20),
       st.integers(4, 12))
def test_folds_match_replay(outcomes, length, width):
    history = GlobalHistory()
    fold = history.fold(length, width)
    replay = FoldedHistory(length, width)
    window = []
    for taken in outcomes:
        old_bit = window[-length] if len(window) >= length else 0
        replay.update(1 if taken else 0, old_bit)
        history.push(taken)
        window.append(1 if taken else 0)
        assert fold.value == replay.value


def test_fold_reuse_returns_same_object():
    history = GlobalHistory()
    a = history.fold(10, 8)
    b = history.fold(10, 8)
    c = history.fold(11, 8)
    assert a is b and a is not c


def test_fold_depends_on_last_n_bits_only():
    """Two different prefixes followed by the same *length* suffix must
    fold to the same value."""
    length, width = 8, 5
    suffix = [1, 0, 1, 1, 0, 0, 1, 0]

    def run(prefix):
        history = GlobalHistory()
        fold = history.fold(length, width)
        for bit in prefix + suffix:
            history.push(bool(bit))
        return fold.value

    assert run([1, 1, 1, 0, 0, 1]) == run([0] * 20)


def test_recent_bits():
    history = GlobalHistory()
    history.fold(4, 4)
    for taken in (True, False, True, True):
        history.push(taken)
    # LSB = most recent: T,T,F,T -> 0b1011
    assert history.recent_bits(4) == 0b1011


def test_too_long_history_rejected():
    import pytest

    history = GlobalHistory()
    with pytest.raises(ValueError):
        history.fold(5000, 10)


def test_distinct_histories_give_distinct_folds():
    """A width-w fold of w fresh bits is injective on those bits."""
    import itertools

    values = set()
    for pattern in itertools.product([0, 1], repeat=8):
        h = GlobalHistory()
        f = h.fold(8, 8)
        for bit in pattern:
            h.push(bool(bit))
        values.add(f.value)
    assert len(values) == 256
