"""BTB, return address stack, indirect target cache."""

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.indirect import IndirectTargetCache
from repro.frontend.ras import ReturnAddressStack


# -- BTB --------------------------------------------------------------------------
def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(entries=64, ways=4)
    assert btb.lookup(0x4000) is None
    btb.install(0x4000, 0x5000)
    assert btb.lookup(0x4000) == 0x5000


def test_btb_update_existing():
    btb = BranchTargetBuffer(entries=64, ways=4)
    btb.install(0x4000, 0x5000)
    btb.install(0x4000, 0x6000)
    assert btb.lookup(0x4000) == 0x6000


def test_btb_lru_eviction():
    btb = BranchTargetBuffer(entries=8, ways=2)  # 4 sets
    set_stride = 4 * 4  # pcs mapping to the same set differ by sets*4
    pcs = [0x4000 + i * set_stride for i in range(3)]
    btb.install(pcs[0], 1)
    btb.install(pcs[1], 2)
    btb.lookup(pcs[0])          # refresh pcs[0] to MRU
    btb.install(pcs[2], 3)      # evicts pcs[1]
    assert btb.lookup(pcs[0]) == 1
    assert btb.lookup(pcs[1]) is None
    assert btb.lookup(pcs[2]) == 3


def test_btb_stats():
    btb = BranchTargetBuffer(entries=64, ways=4)
    btb.lookup(0x4000)
    btb.install(0x4000, 1)
    btb.lookup(0x4000)
    assert btb.stat_misses == 1 and btb.stat_hits == 1


def test_btb_rejects_bad_geometry():
    import pytest

    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=10, ways=4)


# -- RAS --------------------------------------------------------------------------
def test_ras_lifo():
    ras = ReturnAddressStack(depth=8)
    for pc in (1, 2, 3):
        ras.push(pc)
    assert [ras.pop(), ras.pop(), ras.pop()] == [3, 2, 1]


def test_ras_underflow_returns_none():
    ras = ReturnAddressStack(depth=4)
    assert ras.pop() is None
    assert ras.stat_underflows == 1


def test_ras_overflow_wraps_losing_oldest():
    ras = ReturnAddressStack(depth=2)
    ras.push(1)
    ras.push(2)
    ras.push(3)   # overwrites 1
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_ras_push_pop_interleave():
    ras = ReturnAddressStack(depth=4)
    ras.push(10)
    assert ras.pop() == 10
    ras.push(20)
    ras.push(30)
    assert ras.pop() == 30
    assert ras.pop() == 20


# -- indirect target cache -----------------------------------------------------------
def test_indirect_learns_target():
    cache = IndirectTargetCache(entries=64)
    assert cache.lookup(0x4000) is None
    cache.install(0x4000, 0x7000)
    assert cache.lookup(0x4000) == 0x7000


def test_indirect_path_history_discriminates():
    cache = IndirectTargetCache(entries=256)
    cache.install(0x4000, 0x7000)
    cache.push_path(0x9000)   # different path -> different index/tag likely
    after = cache.lookup(0x4000)
    # With the path folded in, the old entry is usually not visible.
    cache2 = IndirectTargetCache(entries=256)
    cache2.install(0x4000, 0x7000)
    assert cache2.lookup(0x4000) == 0x7000
    assert after is None or after == 0x7000  # depends on hash; just no crash


def test_indirect_per_path_targets():
    """Same branch pc, two paths, two targets — both learnable."""
    cache = IndirectTargetCache(entries=256)
    outcomes = []
    for trial in range(40):
        path_target = 0x9000 if trial % 2 == 0 else 0xA000
        cache.push_path(path_target)
        predicted = cache.lookup(0x4000)
        actual = 0x7000 if trial % 2 == 0 else 0x8000
        outcomes.append(predicted == actual)
        cache.install(0x4000, actual)
    assert sum(outcomes[-20:]) >= 16  # learned both contexts
