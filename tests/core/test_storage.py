"""Bit-exact Table 2 storage reproduction — the model's calibration check."""

from repro.core.modes import VPFlavor
from repro.core.storage import flavor_config, vtage_storage_bits, vtage_storage_kb
from repro.core.vtage import VtageConfig


def truncate1(value):
    """The paper truncates to one decimal."""
    return int(value * 10) / 10


def test_gvp_is_55_2_kb():
    assert truncate1(vtage_storage_kb(VtageConfig(value_bits=64))) == 55.2


def test_tvp_is_13_9_kb():
    assert truncate1(vtage_storage_kb(VtageConfig(value_bits=9))) == 13.9


def test_mvp_is_7_9_kb():
    assert truncate1(vtage_storage_kb(VtageConfig(value_bits=1))) == 7.9


def test_exact_bit_counts():
    # Derived by hand from Table 2's geometry (see storage.py docstring).
    assert vtage_storage_bits(VtageConfig(value_bits=64)) == 452224
    assert vtage_storage_bits(VtageConfig(value_bits=9)) == 114304
    assert vtage_storage_bits(VtageConfig(value_bits=1)) == 65152


def test_storage_monotonic_in_value_bits():
    sizes = [vtage_storage_bits(VtageConfig(value_bits=w))
             for w in (1, 9, 16, 32, 64)]
    assert sizes == sorted(sizes)


def test_paper_ratios():
    """Paper: TVP uses 25.1% of GVP storage, MVP 14.4%."""
    gvp = vtage_storage_kb(VtageConfig(value_bits=64))
    tvp = vtage_storage_kb(VtageConfig(value_bits=9))
    mvp = vtage_storage_kb(VtageConfig(value_bits=1))
    assert abs(tvp / gvp - 0.251) < 0.005
    assert abs(mvp / gvp - 0.144) < 0.005


def test_scaled_config_halves_and_doubles():
    base = VtageConfig(value_bits=9)
    assert abs(vtage_storage_bits(base.scaled(-1)) / vtage_storage_bits(base)
               - 0.5) < 0.01
    assert abs(vtage_storage_bits(base.scaled(1)) / vtage_storage_bits(base)
               - 2.0) < 0.01


def test_scaled_preserves_histories_and_tags():
    base = VtageConfig(value_bits=9)
    scaled = base.scaled(2)
    assert scaled.history_lengths == base.history_lengths
    assert scaled.tag_bits == base.tag_bits
    assert scaled.value_bits == base.value_bits


def test_flavor_config_budget_points():
    """Table 3's four budgets, per flavor."""
    mvp_half = vtage_storage_kb(flavor_config(VPFlavor.MVP, log2_delta=-1))
    assert 3.5 < mvp_half < 4.5      # "~4KB"
    gvp_big = vtage_storage_kb(flavor_config(VPFlavor.GVP))
    assert 54 < gvp_big < 56         # "~55KB"
