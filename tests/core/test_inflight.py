"""The VP-tracking FIFO and its silencing window."""

from repro.core.inflight import VPQueue


def test_push_validate_pop_lifecycle():
    queue = VPQueue(capacity=4)
    assert queue.push(seq=10, pc=0x4000, predicted=7, info=(0, 1), used=True)
    entry = queue.validate(10, actual=7)
    assert entry.correct is True
    popped = queue.pop(10)
    assert popped is entry
    assert len(queue) == 0


def test_validate_mismatch():
    queue = VPQueue(capacity=4)
    queue.push(1, 0x4000, 5, (), used=True)
    assert queue.validate(1, actual=6).correct is False


def test_capacity_rejection():
    queue = VPQueue(capacity=2)
    assert queue.push(1, 0, 0, (), used=False)
    assert queue.push(2, 0, 0, (), used=False)
    assert not queue.push(3, 0, 0, (), used=False)
    assert queue.stat_full_rejections == 1


def test_squash_younger_inclusive():
    queue = VPQueue(capacity=8)
    for seq in (1, 2, 3, 4):
        queue.push(seq, 0, 0, (), used=False)
    dropped = queue.squash_younger(3)
    assert sorted(e.seq for e in dropped) == [3, 4]
    assert queue.get(2) is not None
    assert queue.get(3) is None and queue.get(4) is None


def test_silencing_window():
    queue = VPQueue(capacity=4, silence_cycles=100)
    assert not queue.is_silenced(0)
    queue.silence(50)
    assert queue.is_silenced(51)
    assert queue.is_silenced(149)
    assert not queue.is_silenced(150)


def test_silencing_extends_not_shrinks():
    queue = VPQueue(capacity=4, silence_cycles=100)
    queue.silence(100)   # until 200
    queue.silence(50)    # until 150 — must not shrink
    assert queue.is_silenced(199)


def test_pop_missing_returns_none():
    queue = VPQueue(capacity=4)
    assert queue.pop(99) is None
    assert queue.validate(99, 0) is None
