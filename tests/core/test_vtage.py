"""VTAGE predictor behaviour."""

from repro.core.vtage import Vtage, VtageConfig
from repro.frontend.history import GlobalHistory


def make(value_bits=9, seed=7):
    history = GlobalHistory()
    return Vtage(VtageConfig(value_bits=value_bits), history=history,
                 seed=seed), history


def drive_constant(vtage, pc, value, rounds):
    used_correct = 0
    for _ in range(rounds):
        prediction = vtage.predict(pc)
        if prediction.confident and prediction.value == value:
            used_correct += 1
        vtage.train(pc, value, prediction.info)
    return used_correct


def test_constant_value_becomes_confident():
    vtage, _ = make()
    assert drive_constant(vtage, 0x4000, 42, 500) > 200


def test_unpredictable_value_never_confident():
    vtage, _ = make()
    confident = 0
    for i in range(500):
        prediction = vtage.predict(0x4000)
        if prediction.confident:
            confident += 1
        vtage.train(0x4000, (i * 2654435761) & 0x1FF, prediction.info)
    assert confident < 5


def test_value_change_drops_confidence():
    vtage, _ = make()
    drive_constant(vtage, 0x4000, 7, 400)
    prediction = vtage.predict(0x4000)
    assert prediction.confident
    vtage.train(0x4000, 9, prediction.info)   # one wrong outcome
    after = vtage.predict(0x4000)
    assert not after.confident


def test_distinct_pcs_do_not_interfere():
    vtage, _ = make()
    a = drive_constant(vtage, 0x4000, 1, 400)
    b = drive_constant(vtage, 0x8000, 2, 400)
    assert a > 100 and b > 100


def test_narrow_field_cannot_learn_wide_values():
    """A 1-bit MVP entry trains wrong forever on the value 5."""
    vtage, _ = make(value_bits=1)
    assert drive_constant(vtage, 0x4000, 5, 500) == 0


def test_wide_field_learns_pointers():
    vtage, _ = make(value_bits=64)
    assert drive_constant(vtage, 0x4000, 0x7FFF_8000_1234, 500) > 200


def test_history_correlated_values():
    """Value alternates with a branch outcome: tagged tables catch it."""
    vtage, history = make(value_bits=9)
    correct_late = 0
    for i in range(2000):
        taken = i % 2 == 0
        history.push(taken)
        value = 11 if taken else 22
        prediction = vtage.predict(0x4000)
        if i > 1500 and prediction.confident and prediction.value == value:
            correct_late += 1
        vtage.train(0x4000, value, prediction.info)
    assert correct_late > 100


def test_info_is_self_contained_across_other_trainings():
    """Training uses FIFO-carried indices, not a re-hash."""
    vtage, history = make()
    prediction = vtage.predict(0x4000)
    # History shifts between predict and train (as in a real pipeline).
    for _ in range(50):
        history.push(True)
        other = vtage.predict(0x9000)
        vtage.train(0x9000, 3, other.info)
    vtage.train(0x4000, 5, prediction.info)   # must not raise / corrupt
    assert vtage.stat_lookups > 0


def test_statistics_counters():
    vtage, _ = make()
    drive_constant(vtage, 0x4000, 9, 100)
    assert vtage.stat_lookups == 100
    assert vtage.stat_correct_trained > 0


def test_train_returns_confident_mispredict_flag():
    vtage, _ = make()
    drive_constant(vtage, 0x4000, 7, 400)
    prediction = vtage.predict(0x4000)
    assert prediction.confident
    assert vtage.train(0x4000, 8, prediction.info) is True
    prediction = vtage.predict(0x4000)
    assert vtage.train(0x4000, 7, prediction.info) is False


def test_config_mismatch_rejected():
    import pytest

    with pytest.raises(ValueError):
        VtageConfig(tagged_log2=(9, 9), tag_bits=(9,))
