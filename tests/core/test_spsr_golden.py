"""Golden agreement tests: every SpSR reduction matches the ISA semantics.

For exhaustive small operand values (and all 16 NZCV states), whatever
:meth:`SpSREngine.reduce` claims must agree with what the architectural
semantics (`compute_int` / `compute_csel` / `branch_taken`) actually
produce:

* a VALUE reduction's value equals the architecturally computed result,
* a deposited NZCV equals the flags `compute_int` computes,
* a MOVE reduction's source holds exactly the architectural result,
* a BRANCH resolution matches `branch_taken` / `condition_holds`.

This pins the ReductionKind rows of core/spsr.py to isa/semantics.py so
the two can never drift apart silently.
"""

import pytest

from tests.helpers import emulate

from repro.core.spsr import ReductionKind, SpSREngine
from repro.isa.bits import mask, to_unsigned
from repro.isa.condition import condition_holds
from repro.isa.opcodes import Op
from repro.isa.semantics import branch_taken, compute_csel, compute_int

# Small signed values exercising zero, one, sign boundaries and carries.
SMALL = [to_unsigned(v, 64) for v in (-2, -1, 0, 1, 2, 3)]
SMALL_W = [to_unsigned(v, 32) for v in (-2, -1, 0, 1, 2, 3)]
ALL_FLAGS = list(range(16))  # every NZCV combination


def uop(line):
    trace, _ = emulate(f"{line}\nnext: hlt", max_instructions=1)
    return trace[0]


def _check_data_processing(engine, u, known, width):
    """reduce() on a two-source data-processing µop must agree with
    compute_int for every claim it makes."""
    result = engine.reduce(u, known, None)
    if result is None:
        return
    golden, golden_flags = compute_int(u.op, known[0], known[1], width)
    if result.kind is ReductionKind.VALUE:
        if result.value is not None:
            assert result.value == golden, (u.text, known)
        if result.flags is not None:
            assert result.flags == golden_flags, (u.text, known)
    elif result.kind is ReductionKind.MOVE:
        assert mask(known[result.move_src], width) == golden, (u.text, known)
    else:  # pragma: no cover - data processing never resolves branches
        pytest.fail(f"unexpected kind {result.kind} for {u.text}")


@pytest.mark.parametrize("mnemonic,op", [
    ("add", Op.ADD), ("sub", Op.SUB), ("and", Op.AND), ("orr", Op.ORR),
    ("eor", Op.EOR), ("bic", Op.BIC), ("lsl", Op.LSL), ("lsr", Op.LSR),
    ("asr", Op.ASR),
])
@pytest.mark.parametrize("folding", [False, True])
def test_data_processing_rows_agree_with_semantics(mnemonic, op, folding):
    engine = SpSREngine(constant_folding=folding)
    u = uop(f"{mnemonic} x0, x1, x2")
    assert u.op is op
    shifts = [0, 1, 3]
    for a in SMALL:
        bs = shifts if op in (Op.LSL, Op.LSR, Op.ASR) else SMALL
        for b in bs:
            _check_data_processing(engine, u, (a, b), 64)


@pytest.mark.parametrize("mnemonic,op", [
    ("add", Op.ADD), ("sub", Op.SUB), ("and", Op.AND), ("orr", Op.ORR),
    ("eor", Op.EOR),
])
def test_data_processing_rows_agree_32bit(mnemonic, op):
    engine = SpSREngine(constant_folding=True)
    u = uop(f"{mnemonic} w0, w1, w2")
    for a in SMALL_W:
        for b in SMALL_W:
            _check_data_processing(engine, u, (a, b), 32)


@pytest.mark.parametrize("line,width", [
    ("adds x0, x1, x2", 64), ("subs x0, x1, x2", 64),
    ("ands x0, x1, x2", 64), ("cmp x1, x2", 64), ("cmn x1, x2", 64),
    ("tst x1, x2", 64),
    ("adds w0, w1, w2", 32), ("subs w0, w1, w2", 32), ("cmp w1, w2", 32),
])
def test_flag_setter_nzcv_deposits_agree(line, width):
    """The nop+NZCV rows: deposited flags must be architecturally exact."""
    engine = SpSREngine()
    u = uop(line)
    values = SMALL if width == 64 else SMALL_W
    for a in values:
        for b in values:
            result = engine.reduce(u, (a, b), None)
            golden, golden_flags = compute_int(u.op, a, b, width)
            assert result is not None and result.kind is ReductionKind.VALUE
            assert result.flags == golden_flags, (line, a, b)
            if result.value is not None:
                assert result.value == golden, (line, a, b)


@pytest.mark.parametrize("line,imm2", [
    ("cbz x1, next", 0), ("cbnz x1, next", 0),
    ("tbz x1, #0, next", 0), ("tbz x1, #1, next", 1),
    ("tbnz x1, #0, next", 0),
])
def test_compare_branch_resolution_agrees(line, imm2):
    engine = SpSREngine()
    u = uop(line)
    for value in SMALL:
        result = engine.reduce(u, (value,), None)
        assert result is not None and result.kind is ReductionKind.BRANCH
        golden = branch_taken(u.op, None, 0, value, u.imm2 or 0)
        assert result.taken == golden, (line, value)


@pytest.mark.parametrize("cond", [
    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
    "hi", "ls", "ge", "lt", "gt", "le",
])
def test_conditional_branch_resolution_agrees(cond):
    engine = SpSREngine()
    u = uop(f"b.{cond} next")
    for flags in ALL_FLAGS:
        result = engine.reduce(u, (), flags)
        assert result is not None and result.kind is ReductionKind.BRANCH
        assert result.taken == condition_holds(u.cond, flags), (cond, flags)


@pytest.mark.parametrize("line", [
    "csel x0, x1, x2, eq", "csel x0, x1, x2, lt",
    "csinc x0, x1, x2, ne", "csneg x0, x1, x2, gt",
    "cset x0, eq", "cset x0, hi",
])
@pytest.mark.parametrize("folding", [False, True])
def test_conditional_select_rows_agree(line, folding):
    engine = SpSREngine(constant_folding=folding)
    u = uop(line)
    for flags in ALL_FLAGS:
        for a in SMALL:
            for b in SMALL:
                known = (a, b) if len(u.src_regs) == 2 else ()
                result = engine.reduce(u, known, flags)
                if result is None:
                    continue
                golden = compute_csel(u.op, u.cond, flags, a, b, 64)
                if result.kind is ReductionKind.VALUE:
                    assert result.value == golden, (line, flags, a, b)
                else:
                    assert result.kind is ReductionKind.MOVE
                    assert mask(known[result.move_src], 64) == golden, \
                        (line, flags, a, b)


@pytest.mark.parametrize("line", [
    "add x0, x1, #1", "sub x0, x1, #1", "orr x0, x1, #1", "eor x0, x1, #1",
    "and x0, x1, #3", "lsl x0, x1, #2", "lsr x0, x1, #1",
])
@pytest.mark.parametrize("folding", [False, True])
def test_immediate_rows_agree_with_semantics(line, folding):
    engine = SpSREngine(constant_folding=folding)
    u = uop(line)
    for a in SMALL:
        result = engine.reduce(u, (a,), None)
        if result is None:
            continue
        golden, _ = compute_int(u.op, a, u.imm, 64)
        if result.kind is ReductionKind.VALUE:
            assert result.value == golden, (line, a)
        else:
            assert result.kind is ReductionKind.MOVE
            assert mask(a, 64) == golden, (line, a)
