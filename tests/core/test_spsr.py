"""The full Table 1 idiom matrix for Speculative Strength Reduction."""

import pytest

from tests.helpers import emulate

from repro.core.spsr import ReductionKind, SpSREngine, SpSRResult
from repro.isa.bits import nzcv, to_unsigned


def uop(line):
    """The first µop of a one-line program (with a `next` label)."""
    trace, _ = emulate(f"{line}\nnext: hlt", max_instructions=1)
    return trace[0]


@pytest.fixture
def engine():
    return SpSREngine()


def assert_value(result, value, flags=None):
    assert result is not None and result.kind is ReductionKind.VALUE
    assert result.value == value
    if flags is not None:
        assert result.flags == flags


def assert_move(result, src_index):
    assert result is not None and result.kind is ReductionKind.MOVE
    assert result.move_src == src_index


# -- sub rows ---------------------------------------------------------------------
def test_sub_imm1_with_src_one_is_zero_idiom(engine):
    assert_value(engine.reduce(uop("sub x0, x1, #1"), (1,), None), 0)


def test_sub_imm1_with_src_zero_not_reduced(engine):
    assert engine.reduce(uop("sub x0, x1, #1"), (0,), None) is None


def test_sub_reg_src1_zero_is_move(engine):
    assert_move(engine.reduce(uop("sub x0, x1, x2"), (None, 0), None), 0)


def test_sub_reg_both_one_is_zero_idiom(engine):
    assert_value(engine.reduce(uop("sub x0, x1, x2"), (1, 1), None), 0)


# -- add/orr/eor rows ------------------------------------------------------------------
@pytest.mark.parametrize("mnemonic", ["add", "orr", "eor"])
def test_addlike_imm1_with_zero_src_is_one_idiom(engine, mnemonic):
    assert_value(engine.reduce(uop(f"{mnemonic} x0, x1, #1"), (0,), None), 1)


@pytest.mark.parametrize("mnemonic", ["add", "orr", "eor"])
def test_addlike_src0_zero_is_move_of_src1(engine, mnemonic):
    assert_move(engine.reduce(uop(f"{mnemonic} x0, x1, x2"), (0, None), None), 1)


@pytest.mark.parametrize("mnemonic", ["add", "orr", "eor"])
def test_addlike_src1_zero_is_move_of_src0(engine, mnemonic):
    assert_move(engine.reduce(uop(f"{mnemonic} x0, x1, x2"), (None, 0), None), 0)


def test_add_shifted_source_blocks_plain_move(engine):
    # add x0, x1, x2, lsl #3 with x1 == 0: dst = x2 << 3, not a plain move.
    result = engine.reduce(uop("add x0, x1, x2, lsl #3"), (0, None), None)
    assert result is None or result.kind is not ReductionKind.MOVE


def test_add_shifted_known_source_folds_to_value(engine):
    result = engine.reduce(uop("add x0, x1, x2, lsl #3"), (0, 2), None)
    assert_value(result, 16)


# -- and rows -----------------------------------------------------------------------
def test_and_imm1_src_zero(engine):
    assert_value(engine.reduce(uop("and x0, x1, #1"), (0,), None), 0)


def test_and_imm1_src_one(engine):
    assert_value(engine.reduce(uop("and x0, x1, #1"), (1,), None), 1)


def test_and_reg_either_zero(engine):
    assert_value(engine.reduce(uop("and x0, x1, x2"), (0, None), None), 0)
    assert_value(engine.reduce(uop("and x0, x1, x2"), (None, 0), None), 0)


def test_and_imm_zero(engine):
    assert_value(engine.reduce(uop("and x0, x1, #0"), (None,), None), 0)


# -- shift rows ------------------------------------------------------------------------
@pytest.mark.parametrize("mnemonic", ["lsl", "lsr", "asr"])
def test_shift_of_zero_is_zero_idiom(engine, mnemonic):
    assert_value(engine.reduce(uop(f"{mnemonic} x0, x1, #5"), (0,), None), 0)
    assert_value(engine.reduce(uop(f"{mnemonic} x0, x1, x2"), (0, None), None), 0)


@pytest.mark.parametrize("mnemonic", ["lsl", "lsr"])
def test_shift_by_zero_reg_is_move(engine, mnemonic):
    assert_move(engine.reduce(uop(f"{mnemonic} x0, x1, x2"), (None, 0), None), 0)


# -- ubfm / bic / rbit rows ----------------------------------------------------------------
def test_ubfm_of_zero(engine):
    assert_value(engine.reduce(uop("ubfx x0, x1, #4, #8"), (0,), None), 0)


def test_rbit_of_zero(engine):
    assert_value(engine.reduce(uop("rbit x0, x1"), (0,), None), 0)


def test_bic_src0_zero(engine):
    assert_value(engine.reduce(uop("bic x0, x1, x2"), (0, None), None), 0)


def test_bic_src1_zero_is_move(engine):
    assert_move(engine.reduce(uop("bic x0, x1, x2"), (None, 0), None), 0)


# -- flag setters (nop + NZCV rows) -----------------------------------------------------------
def test_ands_either_source_zero_gives_known_flags(engine):
    expected_flags = nzcv(False, True, False, False)
    result = engine.reduce(uop("ands x0, x1, x2"), (0, None), None)
    assert_value(result, 0, expected_flags)
    result = engine.reduce(uop("ands x0, x1, x2"), (None, 0), None)
    assert_value(result, 0, expected_flags)


def test_ands_both_one(engine):
    result = engine.reduce(uop("ands x0, x1, x2"), (1, 1), None)
    assert_value(result, 1, nzcv(False, False, False, False))


def test_ands_imm_with_zero_source(engine):
    result = engine.reduce(uop("ands x0, x1, #12"), (0,), None)
    assert_value(result, 0)


def test_subs_both_known(engine):
    # 0 - 1 = -1 with N set, no carry (borrow).
    result = engine.reduce(uop("subs x0, x1, x2"), (0, 1), None)
    assert_value(result, to_unsigned(-1, 64), nzcv(True, False, False, False))


def test_subs_unknown_operand_not_reduced(engine):
    assert engine.reduce(uop("subs x0, x1, x2"), (0, None), None) is None


def test_adds_both_known(engine):
    result = engine.reduce(uop("adds x0, x1, x2"), (1, 1), None)
    assert_value(result, 2, nzcv(False, False, False, False))


def test_cmp_both_known_is_flags_only(engine):
    result = engine.reduce(uop("cmp x1, #1"), (1,), None)
    assert result.kind is ReductionKind.VALUE
    assert result.value is None
    assert result.flags == nzcv(False, True, True, False)  # equal: Z, C


def test_tst_with_zero(engine):
    result = engine.reduce(uop("tst x1, x2"), (0, None), None)
    assert result.flags == nzcv(False, True, False, False)


# -- branches ----------------------------------------------------------------------------------
def test_cbz_known_zero_resolves_taken(engine):
    result = engine.reduce(uop("cbz x1, next"), (0,), None)
    assert result.kind is ReductionKind.BRANCH and result.taken is True


def test_cbnz_known_zero_resolves_not_taken(engine):
    result = engine.reduce(uop("cbnz x1, next"), (0,), None)
    assert result.taken is False


def test_tbz_known_value(engine):
    result = engine.reduce(uop("tbz x1, #1, next"), (2,), None)
    assert result.taken is False   # bit 1 of 2 is set
    result = engine.reduce(uop("tbz x1, #1, next"), (1,), None)
    assert result.taken is True


def test_cbz_unknown_not_resolved(engine):
    assert engine.reduce(uop("cbz x1, next"), (None,), None) is None


def test_bcond_with_known_flags(engine):
    flags = nzcv(False, True, False, False)   # Z
    result = engine.reduce(uop("b.eq next"), (), flags)
    assert result.taken is True
    result = engine.reduce(uop("b.ne next"), (), flags)
    assert result.taken is False


def test_bcond_without_flags(engine):
    assert engine.reduce(uop("b.eq next"), (), None) is None


# -- conditional selects -----------------------------------------------------------------------
def test_csel_with_known_flags(engine):
    z_flags = nzcv(False, True, False, False)
    result = engine.reduce(uop("csel x0, x1, x2, eq"), (None, None), z_flags)
    assert_move(result, 0)
    result = engine.reduce(uop("csel x0, x1, x2, ne"), (None, None), z_flags)
    assert_move(result, 1)


def test_csinc_only_when_condition_true(engine):
    z_flags = nzcv(False, True, False, False)
    assert_move(engine.reduce(uop("csinc x0, x1, x2, eq"),
                              (None, None), z_flags), 0)
    # Condition false: csinc computes x2+1 — not a move (paper's rule).
    assert engine.reduce(uop("csinc x0, x1, x2, ne"),
                         (None, None), z_flags) is None


def test_cset_with_known_flags(engine):
    z_flags = nzcv(False, True, False, False)
    assert_value(engine.reduce(uop("cset x0, eq"), (0, 0), z_flags), 1)
    assert_value(engine.reduce(uop("cset x0, ne"), (0, 0), z_flags), 0)


def test_csel_without_flags(engine):
    assert engine.reduce(uop("csel x0, x1, x2, eq"), (None, None), None) is None


# -- non-candidates -------------------------------------------------------------------------------
def test_loads_never_reduced(engine):
    assert engine.reduce(uop("ldr x0, [x1]"), (), None) is None


def test_mul_not_in_table1(engine):
    assert engine.reduce(uop("mul x0, x1, x2"), (0, None), None) is None


def test_unknown_operands_not_reduced(engine):
    assert engine.reduce(uop("add x0, x1, x2"), (None, None), None) is None
    assert engine.reduce(uop("and x0, x1, x2"), (5, None), None) is None


# -- constant-folding extension ---------------------------------------------------------------------
def test_folding_extension_computes_alu_results():
    engine = SpSREngine(constant_folding=True)
    assert_value(engine.reduce(uop("add x0, x1, x2"), (3, 4), None), 7)
    assert_value(engine.reduce(uop("eor x0, x1, x2"), (5, 3), None), 6)
    assert_value(engine.reduce(uop("mul x0, x1, x2"), (0, None), None), 0)
    assert_move(engine.reduce(uop("mul x0, x1, x2"), (1, None), None), 1)


def test_folding_extension_csinc_false_with_known_src():
    engine = SpSREngine(constant_folding=True)
    flags = nzcv(False, False, False, False)  # EQ false
    result = engine.reduce(uop("csinc x0, x1, x2, eq"), (None, 9), flags)
    assert_value(result, 10)


def test_folding_off_by_default(engine):
    assert engine.reduce(uop("add x0, x1, x2"), (3, 4), None) is None
