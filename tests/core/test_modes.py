"""VP flavor semantics and value-field encode/decode."""

from hypothesis import given, strategies as st

from repro.core.modes import (
    VPFlavor,
    decode_value_field,
    encode_value_field,
    value_roundtrips,
)
from repro.isa.bits import to_unsigned

u64 = st.integers(0, 2**64 - 1)


def test_value_bits_per_flavor():
    assert VPFlavor.MVP.value_bits == 1
    assert VPFlavor.TVP.value_bits == 9
    assert VPFlavor.GVP.value_bits == 64
    assert VPFlavor.NONE.value_bits == 0


def test_inlining_capability():
    assert not VPFlavor.MVP.enables_inlining
    assert VPFlavor.TVP.enables_inlining
    assert VPFlavor.GVP.enables_inlining
    assert VPFlavor.TVP.enables_nine_bit_idiom


def test_mvp_representable_exactly_zero_one():
    assert VPFlavor.MVP.representable(0)
    assert VPFlavor.MVP.representable(1)
    assert not VPFlavor.MVP.representable(2)
    assert not VPFlavor.MVP.representable(to_unsigned(-1, 64))


def test_tvp_representable_int9():
    assert VPFlavor.TVP.representable(255)
    assert VPFlavor.TVP.representable(to_unsigned(-256, 64))
    assert not VPFlavor.TVP.representable(256)
    assert not VPFlavor.TVP.representable(0xDEADBEEF)


@given(u64)
def test_gvp_represents_everything(value):
    assert VPFlavor.GVP.representable(value)


def test_gvp_physical_register_rule():
    assert not VPFlavor.GVP.needs_physical_register(1)
    assert not VPFlavor.GVP.needs_physical_register(255)
    assert VPFlavor.GVP.needs_physical_register(512)
    assert VPFlavor.GVP.needs_physical_register(0xFFFF_0000)
    assert not VPFlavor.MVP.needs_physical_register(0xFFFF_0000)


def test_none_flavor_is_inert():
    assert not VPFlavor.NONE.representable(0)
    assert not VPFlavor.NONE.enables_inlining


@given(st.integers(-256, 255))
def test_nine_bit_roundtrip(value):
    unsigned = to_unsigned(value, 64)
    field = encode_value_field(unsigned, 9)
    assert decode_value_field(field, 9) == unsigned
    assert value_roundtrips(unsigned, 9)


@given(u64)
def test_sixty_four_bit_roundtrip(value):
    assert decode_value_field(encode_value_field(value, 64), 64) == value
    assert value_roundtrips(value, 64)


def test_one_bit_field():
    assert decode_value_field(encode_value_field(0, 1), 1) == 0
    assert decode_value_field(encode_value_field(1, 1), 1) == 1
    assert not value_roundtrips(2, 1)
    # Truncation aliasing: 3 stores field 1 and decodes to 1 (a mismatch
    # that training will see — the mechanism that keeps MVP honest).
    assert decode_value_field(encode_value_field(3, 1), 1) == 1


@given(st.integers(256, 2**63))
def test_wide_values_do_not_roundtrip_in_9_bits(value):
    assert not value_roundtrips(value, 9)
