"""Swap-in value predictors: LVP, stride, perceptron (the §7 extensions)."""

import pytest

from repro.core.lvp import LastValuePredictor, LvpConfig
from repro.core.perceptron import PerceptronValuePredictor, PerceptronVpConfig
from repro.core.stride import StrideValuePredictor, StrideVpConfig
from repro.frontend.history import GlobalHistory


def drive_constant(predictor, pc, value, rounds=400):
    used = 0
    for _ in range(rounds):
        prediction = predictor.predict(pc)
        if prediction.confident and prediction.value == value:
            used += 1
        predictor.train(pc, value, prediction.info)
    return used


# -- LVP ------------------------------------------------------------------------
def test_lvp_learns_constants():
    lvp = LastValuePredictor()
    assert drive_constant(lvp, 0x4000, 42) > 200


def test_lvp_cannot_learn_strides():
    lvp = LastValuePredictor()
    confident = 0
    for i in range(400):
        prediction = lvp.predict(0x4000)
        if prediction.confident and prediction.value == i * 8:
            confident += 1
        lvp.train(0x4000, i * 8, prediction.info)
    assert confident == 0


def test_lvp_tag_conflict_reallocates():
    lvp = LastValuePredictor(LvpConfig(log2_entries=4, tag_bits=8))
    drive_constant(lvp, 0x4000, 7, rounds=50)
    # A pc aliasing the same index with a different tag steals the entry.
    alias = 0x4000 + (1 << (2 + 4)) * 3
    lvp.train(alias, 9, lvp.predict(alias).info)
    prediction = lvp.predict(0x4000)
    assert not (prediction.confident and prediction.value == 7)


def test_lvp_storage_model():
    config = LvpConfig(value_bits=9)
    assert config.storage_bits == (1 << 13) * (10 + 9 + 3)


# -- stride ----------------------------------------------------------------------
def test_stride_learns_arithmetic_sequences():
    predictor = StrideValuePredictor()
    correct = 0
    value = 0
    for i in range(600):
        prediction = predictor.predict(0x4000)
        if prediction.confident and prediction.value == value:
            correct += 1
        predictor.train(0x4000, value, prediction.info)
        value += 8
    assert correct > 300


def test_stride_learns_constants_too():
    predictor = StrideValuePredictor()
    assert drive_constant(predictor, 0x4000, 5) > 200


def test_stride_inflight_scaling():
    """Two in-flight instances: the second prediction is last + 2*stride."""
    predictor = StrideValuePredictor()
    value = 0
    for _ in range(600):
        prediction = predictor.predict(0x4000)
        predictor.train(0x4000, value, prediction.info)
        value += 8
    first = predictor.predict(0x4000)     # in-flight becomes 1
    second = predictor.predict(0x4000)    # in-flight becomes 2
    assert first.value == value
    assert second.value == value + 8
    predictor.abandon(0x4000, second.info)
    predictor.train(0x4000, value, first.info)


def test_stride_abandon_repairs_inflight():
    predictor = StrideValuePredictor()
    for _ in range(10):
        prediction = predictor.predict(0x4000)
        predictor.abandon(0x4000, prediction.info)
    index, _ = predictor._index_tag(0x4000)
    assert predictor._table[index].inflight == 0


def test_stride_storage_model():
    config = StrideVpConfig(value_bits=9)
    assert config.storage_bits == (1 << 12) * (10 + 9 + 16 + 3 + 6)


# -- perceptron --------------------------------------------------------------------
def test_perceptron_learns_constant_zero():
    history = GlobalHistory()
    predictor = PerceptronValuePredictor(history=history)
    used = 0
    for i in range(600):
        history.push(i % 2 == 0)
        prediction = predictor.predict(0x4000)
        if prediction.confident and prediction.value == 0:
            used += 1
        predictor.train(0x4000, 0, prediction.info)
    assert used > 100


def test_perceptron_history_correlated_value():
    """Value follows the last branch direction: linearly separable."""
    history = GlobalHistory()
    predictor = PerceptronValuePredictor(history=history)
    correct_late = 0
    for i in range(2500):
        taken = (i % 3 == 0)
        history.push(taken)
        value = 1 if taken else 0
        prediction = predictor.predict(0x4000)
        if i > 2000 and prediction.confident and prediction.value == value:
            correct_late += 1
        predictor.train(0x4000, value, prediction.info)
    assert correct_late > 200


def test_perceptron_rejects_wide_values():
    history = GlobalHistory()
    predictor = PerceptronValuePredictor(history=history)
    confident = 0
    for i in range(800):
        history.push(bool(i & 1))
        prediction = predictor.predict(0x4000)
        if prediction.confident:
            confident += 1
        predictor.train(0x4000, 1000 + i, prediction.info)
    assert confident < 10


def test_perceptron_storage_model():
    config = PerceptronVpConfig()
    assert config.storage_bits == 2 * (1 << 9) * 33 * 8


# -- pipeline integration -----------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["lvp", "stride", "perceptron"])
def test_alternative_predictors_run_in_pipeline(algorithm):
    from tests.helpers import run_pipeline
    from repro.pipeline.config import MachineConfig

    source = """
        mov   x0, #0
        mov   x1, #2000
        adr   x2, slot
    loop:
        ldr   x3, [x2]
        add   x0, x0, x3
        subs  x1, x1, #1
        b.ne  loop
        hlt
    .data
    slot: .quad 0
    """
    config = MachineConfig.mvp(vp_algorithm=algorithm)
    model, result = run_pipeline(source, config=config,
                                 max_instructions=10_000)
    assert result.stats.retired_uops == result.trace_uops
    assert result.stats.vp_correct_used > 50
    assert model.rat.check_consistent_with_committed()


def test_perceptron_requires_mvp():
    from repro.pipeline.config import MachineConfig
    from repro.pipeline.core import CpuModel

    with pytest.raises(ValueError):
        CpuModel([], MachineConfig.tvp(vp_algorithm="perceptron"))


def test_unknown_algorithm_rejected():
    from repro.pipeline.config import MachineConfig
    from repro.pipeline.core import CpuModel

    with pytest.raises(ValueError):
        CpuModel([], MachineConfig.mvp(vp_algorithm="nonsense"))
