"""Forward Probabilistic Counters."""

from repro.core.fpc import ForwardProbabilisticCounter
from repro.util.rng import XorShift64


def test_first_increment_always_succeeds():
    fpc = ForwardProbabilisticCounter(rng=XorShift64(1))
    assert fpc.increment(0) == 1


def test_saturation():
    fpc = ForwardProbabilisticCounter(bits=3, one_in=1, rng=XorShift64(1))
    value = 0
    for _ in range(10):
        value = fpc.increment(value)
    assert value == 7
    assert fpc.increment(7) == 7
    assert fpc.is_confident(7)
    assert not fpc.is_confident(6)


def test_reset():
    fpc = ForwardProbabilisticCounter(rng=XorShift64(1))
    assert fpc.reset(7) == 0


def test_probabilistic_step_rate():
    fpc = ForwardProbabilisticCounter(bits=3, one_in=16, rng=XorShift64(99))
    successes = sum(1 for _ in range(16_000) if fpc.increment(1) == 2)
    # Expected ~1000 of 16000.
    assert 700 < successes < 1300


def test_expected_trainings_to_confidence():
    """3-bit FPC at 1/16 needs on the order of 100 correct outcomes."""
    counts = []
    for seed in range(1, 30):
        fpc = ForwardProbabilisticCounter(rng=XorShift64(seed))
        value, steps = 0, 0
        while not fpc.is_confident(value):
            value = fpc.increment(value)
            steps += 1
        counts.append(steps)
    average = sum(counts) / len(counts)
    assert 40 < average < 250


def test_deterministic_given_seed():
    a = ForwardProbabilisticCounter(rng=XorShift64(5))
    b = ForwardProbabilisticCounter(rng=XorShift64(5))
    va = vb = 0
    for _ in range(200):
        va, vb = a.increment(va), b.increment(vb)
    assert va == vb
