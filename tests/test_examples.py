"""Smoke tests: every shipped example must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples")
                  .glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "value_prediction_comparison",
            "spsr_exploration", "custom_workload"} <= names
