"""Per-interval metrics time series sampled from a live simulation.

Every ``interval`` cycles the sampler snapshots the run's counters and
derives interval-local rates (IPC, VP coverage/accuracy, eliminations per
kilocycle) plus instantaneous structure occupancies (ROB/IQ/LQ/SQ, RAS
depth, BTB fill).  This is what localizes a VP-misprediction flush storm
to the 2k cycles where it happened instead of diluting it into an
end-of-run aggregate.

The pipeline's idle-cycle fast-forward (``_advance_clock``) means
``tick`` is only called on *active* cycles; a boundary crossed during an
idle stretch yields one sample whose ``cycles`` span covers the whole
stretch — sample records carry their actual ``cycle`` stamp and width, so
consumers never need to assume uniform spacing.
"""

from dataclasses import dataclass, fields

# Counters whose per-interval deltas are recorded (all declared
# PipelineStats fields; checked at sampler construction).  Every name
# here is covered by the event-sum invariant in tests/observability/
# (per-interval deltas sum to the final totals), which is what keeps the
# interp and batch engines counter-identical at interval granularity.
_DELTA_COUNTERS = (
    "retired_arch_insts", "retired_uops", "vp_correct_used",
    "vp_incorrect_used", "vp_flushes", "vp_replays",
    "memory_order_flushes", "branch_mispredicts",
    "elim_zero_idiom", "elim_one_idiom", "elim_move",
    "elim_nine_bit_idiom", "elim_spsr",
    "stall_rob_full", "stall_iq_full", "stall_lq_full", "stall_sq_full",
    "stall_no_phys_reg",
)

# PipelineStats counters deliberately *not* sampled per interval, each
# with a reason.  The determinism lint's DET005 requires every declared
# counter to appear in exactly one of _DELTA_COUNTERS (event-sum
# invariant coverage) or this exemption list — a new counter in neither
# is schema drift and fails `harness lint`.
NON_DELTA_COUNTERS = (
    "cycles",                    # the sample's own axis, not an event count
    "fetched_uops",              # wrong-path inclusive; no retire-side sum
    "branches",                  # static property of the trace, not a rate
    "btb_mistargets",            # frontend detail; aggregate suffices
    "spsr_resolved_branches",    # subset of elim_spsr, sampled via it
    "elim_move_width_blocked",   # diagnostic subset of move sites
    "vp_eligible",               # trace property (per-config constant)
    "vp_predicted_used",         # = correct_used + incorrect_used
    "vp_not_representable",      # rare; aggregate diagnostic only
    "vp_phys_reg_predictions",   # GVP storage accounting, not a rate
    "vp_loads_marked_acquire",   # memory-model bookkeeping
    "replayed_uops",             # derived from vp_replays episodes
    "store_set_violations",      # = memory_order_flushes triggers
    "store_forwards",            # memory-system detail; aggregate suffices
    "int_prf_reads", "int_prf_writes", "fp_prf_reads", "fp_prf_writes",
    "iq_dispatched", "iq_issued",   # Fig. 6 activity proxies (end-of-run)
)


@dataclass
class IntervalSample:
    """One row of the metrics time series."""

    cycle: int                 # cycle at which the sample was taken
    cycles: int                # width of the interval it covers
    # Interval-local deltas.
    retired_arch_insts: int = 0
    retired_uops: int = 0
    vp_correct_used: int = 0
    vp_incorrect_used: int = 0
    vp_flushes: int = 0
    vp_replays: int = 0
    memory_order_flushes: int = 0
    branch_mispredicts: int = 0
    elim_zero_idiom: int = 0
    elim_one_idiom: int = 0
    elim_move: int = 0
    elim_nine_bit_idiom: int = 0
    elim_spsr: int = 0
    # Rename-stall cycles inside this interval (queue-pressure signal for
    # the headroom analyzer's bottleneck attribution).
    stall_rob_full: int = 0
    stall_iq_full: int = 0
    stall_lq_full: int = 0
    stall_sq_full: int = 0
    stall_no_phys_reg: int = 0
    # Instantaneous occupancies (at the sample cycle).
    rob_occupancy: int = 0
    iq_occupancy: int = 0
    lq_occupancy: int = 0
    sq_occupancy: int = 0
    ras_depth: int = 0
    btb_fill: int = 0

    # -- derived rates ---------------------------------------------------------------
    @property
    def ipc(self):
        """Architectural IPC over this interval."""
        return self.retired_arch_insts / self.cycles if self.cycles else 0.0

    @property
    def upc(self):
        return self.retired_uops / self.cycles if self.cycles else 0.0

    @property
    def eliminations(self):
        return (self.elim_zero_idiom + self.elim_one_idiom + self.elim_move
                + self.elim_nine_bit_idiom + self.elim_spsr)

    @property
    def elim_per_kilocycle(self):
        if not self.cycles:
            return 0.0
        return 1000.0 * self.eliminations / self.cycles

    @property
    def vp_accuracy(self):
        used = self.vp_correct_used + self.vp_incorrect_used
        return self.vp_correct_used / used if used else 0.0

    @property
    def stall_cycles(self):
        """Rename-stall cycles (queue pressure) inside this interval."""
        return (self.stall_rob_full + self.stall_iq_full + self.stall_lq_full
                + self.stall_sq_full + self.stall_no_phys_reg)

    def as_dict(self):
        """Flat dict (fields + derived rates) for the JSONL exporter."""
        row = {f.name: getattr(self, f.name) for f in fields(self)}
        row["ipc"] = self.ipc
        row["upc"] = self.upc
        row["elim_per_kilocycle"] = self.elim_per_kilocycle
        row["vp_accuracy"] = self.vp_accuracy
        return row


class MetricsTimeSeries:
    """Samples a :class:`~repro.pipeline.core.CpuModel` every N cycles."""

    def __init__(self, model, interval):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.model = model
        self.interval = interval
        self.samples = []
        self._last_cycle = 0
        self._next_at = interval
        self._last_counts = {name: 0 for name in _DELTA_COUNTERS}

    def tick(self, cycle):
        """Called once per active cycle; records samples at boundaries."""
        if cycle >= self._next_at:
            self._record(cycle)
            self._next_at = (cycle // self.interval + 1) * self.interval

    def flush(self, cycle):
        """Record the final partial interval at the end of the run."""
        if cycle > self._last_cycle:
            self._record(cycle)

    def _record(self, cycle):
        model = self.model
        stats = model.stats
        sample = IntervalSample(cycle=cycle,
                                cycles=cycle - self._last_cycle)
        for name in _DELTA_COUNTERS:
            current = getattr(stats, name)
            setattr(sample, name, current - self._last_counts[name])
            self._last_counts[name] = current
        sample.rob_occupancy = model.rob.occupancy
        sample.iq_occupancy = len(model.iq)
        lq_occupancy, sq_occupancy = model.lsq.occupancy()
        sample.lq_occupancy = lq_occupancy
        sample.sq_occupancy = sq_occupancy
        sample.ras_depth = model.ras.live_entries
        sample.btb_fill = model.btb.fill
        self._last_cycle = cycle
        self.samples.append(sample)
