"""Observability knobs, kept apart from the architectural configuration.

A :class:`TraceConfig` describes *how a run is watched*, never *what the
machine does*: two simulations that differ only in their trace settings
produce bit-identical :class:`~repro.pipeline.stats.PipelineStats`.  The
harness cache relies on that — the ``trace`` field of
:class:`~repro.pipeline.config.MachineConfig` is excluded from the config
fingerprint, so traced and untraced runs share cache entries.

This module must stay free of ``repro`` imports: it is imported by
``pipeline.config`` (for the ``trace`` field type) and by the tracer.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass
class TraceConfig:
    """What the per-µop lifecycle tracer should record and emit."""

    enabled: bool = True
    # Metrics time-series sampling period in cycles (0 disables sampling).
    sample_interval: int = 0
    # Output paths; None means "keep in memory only" (tests, inspection).
    konata_out: Optional[str] = None   # gem5 O3PipeView text (Konata-readable)
    jsonl_out: Optional[str] = None    # JSONL events + interval samples
    # Stop recording per-µop lifetimes after this many (memory guard for
    # long runs; typed events and interval samples keep flowing).  None
    # records everything.
    max_lifetimes: Optional[int] = None

    def __post_init__(self):
        if self.sample_interval < 0:
            raise ValueError("sample_interval must be >= 0")
        if self.max_lifetimes is not None and self.max_lifetimes < 0:
            raise ValueError("max_lifetimes must be >= 0 or None")
