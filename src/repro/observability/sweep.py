"""Sweep orchestration events, recorded through the tracer interface.

The sweep engine (:mod:`repro.harness.orchestrator`) narrates itself —
heartbeats, per-point lifecycle, retries, worker crashes, degradation —
through the same :class:`~repro.observability.tracer.Tracer` protocol
the cycle model uses, so one observer type serves both worlds.
:class:`SweepEventLog` is the minimal recording sink: it keeps every
typed event, in order, and stays **passive** — all wall-clock stamping
happens in the harness (this package must stay time-free for the
determinism lint), with the elapsed-seconds stamp arriving in the
``cycle`` slot of :meth:`event`.

Event kinds emitted by the orchestrator::

    sweep_begin, worker_spawn, point_start, point_done, point_retry,
    point_quarantined, payload_corrupt, worker_crash, heartbeat,
    sweep_degraded, sweep_end
"""

from repro.observability.tracer import Tracer


class SweepEventLog(Tracer):
    """Record every sweep event; the pipeline lifecycle hooks stay no-ops.

    The ``cycle`` field of each stored ``(cycle, kind, payload)`` triple
    holds the orchestrator's elapsed-seconds stamp (a float), not a
    simulated cycle — sweeps run in wall-clock time.
    """

    enabled = True

    def __init__(self):
        self.events = []

    def event(self, cycle, kind, **payload):
        self.events.append((cycle, kind, payload))

    def events_of(self, kind):
        """All recorded events of one kind, in arrival order."""
        return [item for item in self.events if item[1] == kind]

    def kinds(self):
        """The set of event kinds seen so far."""
        return {kind for _, kind, _ in self.events}

    def __len__(self):
        return len(self.events)
