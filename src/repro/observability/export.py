"""Trace exporters: gem5 O3PipeView text and JSONL event streams.

``write_o3_pipeview`` emits the exact line format of gem5's O3 pipeline
viewer trace (``O3PipeView:<stage>:<tick>...``), which the Konata
pipeline visualizer imports directly (Konata: File -> Open -> gem5
O3PipeView trace).  One record per µop incarnation; squashed stages carry
tick 0, the gem5 convention for "never happened".

``write_jsonl`` emits one self-describing JSON object per line:

* ``{"type": "meta", ...}``       — schema version, workload, config
* ``{"type": "uop", ...}``        — one per µop lifetime (stage cycles,
  fate, elimination kind, VP use, assigned name)
* ``{"type": "event", ...}``      — typed VP/SpSR/flush/branch events
* ``{"type": "sample", ...}``     — per-interval metrics rows
* ``{"type": "summary", ...}``    — final PipelineStats counters

Both writers accept a path or an open text file.
"""

import json
from contextlib import contextmanager

JSONL_SCHEMA_VERSION = 1

_O3_STAGES = ("fetch", "decode", "rename", "dispatch", "issue")


@contextmanager
def _open_out(path_or_file):
    if hasattr(path_or_file, "write"):
        yield path_or_file
    else:
        with open(path_or_file, "w") as handle:
            yield handle


def _tick(cycle):
    """gem5 tick for a stage cycle (0 = the stage never happened)."""
    return 0 if cycle is None else cycle


def write_o3_pipeview(lifetimes, path_or_file):
    """Write gem5 O3PipeView / Konata-compatible text; returns #records."""
    written = 0
    with _open_out(path_or_file) as out:
        for lifetime in lifetimes:
            stages = {stage: _tick(getattr(lifetime, stage))
                      for stage in _O3_STAGES}
            complete = _tick(lifetime.writeback)
            if lifetime.elim_kind is not None:
                # Eliminated at rename: completes instantly there, which
                # the viewer renders as a collapsed (zero-length) µop.
                rename = stages["rename"]
                stages["dispatch"] = stages["issue"] = rename
                complete = rename
            out.write(f"O3PipeView:fetch:{stages['fetch']}:"
                      f"0x{lifetime.pc:08x}:0:{lifetime.seq}:"
                      f"{lifetime.text.strip()}\n")
            for stage in _O3_STAGES[1:]:
                out.write(f"O3PipeView:{stage}:{stages[stage]}\n")
            out.write(f"O3PipeView:complete:{complete}\n")
            retire = _tick(lifetime.commit)
            store_tick = retire if (lifetime.is_store and retire) else 0
            out.write(f"O3PipeView:retire:{retire}:store:{store_tick}\n")
            written += 1
    return written


def _uop_row(lifetime):
    return {
        "type": "uop",
        "seq": lifetime.seq,
        "inc": lifetime.incarnation,
        "pc": lifetime.pc,
        "text": lifetime.text.strip(),
        "fetch": lifetime.fetch,
        "decode": lifetime.decode,
        "rename": lifetime.rename,
        "dispatch": lifetime.dispatch,
        "issue": lifetime.issue,
        "writeback": lifetime.writeback,
        "commit": lifetime.commit,
        "squash": lifetime.squash,
        "squash_reason": lifetime.squash_reason,
        "elim_kind": lifetime.elim_kind,
        "vp_used": lifetime.vp_used,
        "dest_name": lifetime.dest_name,
        "dispatch_count": lifetime.dispatch_count,
        "issue_count": lifetime.issue_count,
    }


def write_jsonl(tracer, path_or_file, stats=None, workload=None,
                config_name=None):
    """Write the full JSONL stream; returns the number of lines."""
    lines = 0
    with _open_out(path_or_file) as out:
        def emit(row):
            nonlocal lines
            out.write(json.dumps(row, sort_keys=True,
                                 separators=(",", ":")) + "\n")
            lines += 1

        emit({"type": "meta", "version": JSONL_SCHEMA_VERSION,
              "workload": workload, "config": config_name,
              "sample_interval": tracer.config.sample_interval,
              "lifetimes": len(tracer.lifetimes),
              "lifetimes_dropped": tracer.lifetimes_dropped,
              "events": len(tracer.events)})
        for lifetime in tracer.lifetimes:
            emit(_uop_row(lifetime))
        for cycle, kind, payload in tracer.events:
            row = {"type": "event", "cycle": cycle, "kind": kind}
            row.update(payload)
            emit(row)
        if tracer.series is not None:
            for sample in tracer.series.samples:
                row = {"type": "sample"}
                row.update(sample.as_dict())
                emit(row)
        if stats is not None:
            emit({"type": "summary", "cycles": stats.cycles,
                  "ipc": stats.ipc,
                  "counters": {name: getattr(stats, name)
                               for name in type(stats).counter_names()}})
    return lines
