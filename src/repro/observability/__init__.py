"""Pipeline observability: per-µop lifecycle tracing, typed VP/SpSR/flush
events, interval metrics time series, and trace exporters.

The cycle model accepts any :class:`~repro.observability.tracer.Tracer`;
the default :data:`~repro.observability.tracer.NULL_TRACER` keeps the
untraced path zero-overhead and bit-identical.
"""

from repro.observability.config import TraceConfig
from repro.observability.export import write_jsonl, write_o3_pipeview
from repro.observability.interval import IntervalSample, MetricsTimeSeries
from repro.observability.sweep import SweepEventLog
from repro.observability.tracer import (
    NULL_TRACER,
    PipelineTracer,
    Tracer,
    UopLifetime,
)

__all__ = [
    "TraceConfig", "Tracer", "NULL_TRACER", "PipelineTracer", "UopLifetime",
    "MetricsTimeSeries", "IntervalSample", "SweepEventLog",
    "write_o3_pipeview", "write_jsonl",
]
