"""Per-µop lifecycle tracing for the cycle model.

Two tracer classes share one interface:

* :class:`Tracer` — the **null object**.  Every hook is a no-op and
  ``enabled`` is False; the pipeline hoists that flag once per stage, so
  the disabled path costs one attribute read + branch per stage per cycle
  and the simulated statistics stay bit-identical to an uninstrumented
  run.
* :class:`PipelineTracer` — records a cycle-stamped
  :class:`UopLifetime` per fetched µop *incarnation* (a µop refetched
  after a squash opens a fresh lifetime), a typed event stream for the
  VP/SpSR/flush machinery, and (optionally) a per-interval metrics time
  series (:mod:`repro.observability.interval`).

Tracing is observational only: no hook mutates the model or its stats, so
enabling it never changes a single counter — a property the
``tests/observability`` suite pins.
"""

from repro.observability.config import TraceConfig
from repro.observability.interval import MetricsTimeSeries


class Tracer:
    """The null tracer: the interface, with every hook a no-op."""

    enabled = False

    # -- lifecycle hooks (called by the pipeline stages) ----------------------------
    def attach(self, model):
        """Bind to a :class:`~repro.pipeline.core.CpuModel` before the run."""

    def fetch(self, uop, cycle):
        """A µop entered the fetch queue (opens a lifetime)."""

    def decode(self, uop, cycle):
        """A µop moved from the fetch queue into the decode queue."""

    def rename(self, entry, cycle):
        """A µop was renamed (``entry`` is its ROB entry, fully filled)."""

    def dispatch(self, entry, cycle):
        """A µop entered the issue queue (also re-entry on replay)."""

    def issue(self, entry, cycle):
        """A µop was selected and sent to a functional unit."""

    def writeback(self, entry, cycle):
        """A µop completed execution (state became DONE)."""

    def commit(self, entry, cycle):
        """A µop retired (closes its lifetime)."""

    def squash(self, uop, cycle, reason):
        """A µop was squashed by a flush (closes its lifetime)."""

    # -- typed events ---------------------------------------------------------------
    def event(self, cycle, kind, **payload):
        """Record one typed VP/SpSR/flush/branch event."""

    # -- run pacing -----------------------------------------------------------------
    def cycle_tick(self, cycle):
        """Called once per simulated (non-skipped) cycle, after all stages."""

    def finish(self, cycle):
        """The run retired its whole trace; flush any partial sample."""


NULL_TRACER = Tracer()


class UopLifetime:
    """Cycle timestamps of one µop incarnation through the pipeline.

    ``None`` timestamps mean the µop never reached that stage (squashed
    early, eliminated at rename, or a NOP).  ``dispatch``/``issue``/
    ``writeback`` keep the *first* occurrence; replays bump the
    ``dispatch_count``/``issue_count`` counters instead, so summing them
    reproduces the pipeline's ``iq_dispatched``/``iq_issued`` stats.
    """

    __slots__ = (
        "seq", "incarnation", "pc", "text", "is_branch", "is_load",
        "is_store", "is_last", "fetch", "decode", "rename", "dispatch",
        "issue", "writeback", "commit", "squash", "squash_reason",
        "elim_kind", "move_width_blocked", "vp_used", "dest_name",
        "dispatch_count", "issue_count",
    )

    def __init__(self, uop, incarnation, fetch_cycle):
        self.seq = uop.seq
        self.incarnation = incarnation
        self.pc = uop.pc
        self.text = uop.text
        self.is_branch = uop.is_branch
        self.is_load = uop.is_load
        self.is_store = uop.is_store
        self.is_last = uop.is_last_uop
        self.fetch = fetch_cycle
        self.decode = None
        self.rename = None
        self.dispatch = None
        self.issue = None
        self.writeback = None
        self.commit = None
        self.squash = None
        self.squash_reason = None
        self.elim_kind = None
        self.move_width_blocked = False
        self.vp_used = False
        self.dest_name = None
        self.dispatch_count = 0
        self.issue_count = 0

    @property
    def committed(self):
        return self.commit is not None

    @property
    def squashed(self):
        return self.squash is not None

    def stage_cycles(self):
        """(stage, cycle) pairs in pipeline order, recorded stages only."""
        pairs = []
        for stage in ("fetch", "decode", "rename", "dispatch", "issue",
                      "writeback", "commit"):
            cycle = getattr(self, stage)
            if cycle is not None:
                pairs.append((stage, cycle))
        return pairs

    def __repr__(self):
        fate = ("commit@%d" % self.commit if self.committed else
                "squash@%d" % self.squash if self.squashed else "in-flight")
        return (f"<lifetime #{self.seq}.{self.incarnation} "
                f"{self.text!r} {fate}>")


class PipelineTracer(Tracer):
    """Recording tracer: lifetimes + typed events + interval samples."""

    enabled = True

    def __init__(self, config=None):
        self.config = config or TraceConfig()
        self.lifetimes = []          # every incarnation, fetch order
        self.events = []             # (cycle, kind, payload-dict)
        self.series = None           # MetricsTimeSeries when sampling
        self._open = {}              # seq -> live UopLifetime
        self._incarnations = {}      # seq -> incarnations opened so far
        self._model = None
        self._lifetimes_dropped = 0

    # -- binding -------------------------------------------------------------------
    def attach(self, model):
        self._model = model
        if self.config.sample_interval:
            self.series = MetricsTimeSeries(model,
                                            self.config.sample_interval)

    # -- lifecycle hooks ------------------------------------------------------------
    def fetch(self, uop, cycle):
        seq = uop.seq
        incarnation = self._incarnations.get(seq, 0)
        self._incarnations[seq] = incarnation + 1
        lifetime = UopLifetime(uop, incarnation, cycle)
        limit = self.config.max_lifetimes
        if limit is None or len(self.lifetimes) < limit:
            self.lifetimes.append(lifetime)
        else:
            self._lifetimes_dropped += 1
        self._open[seq] = lifetime

    def decode(self, uop, cycle):
        lifetime = self._open.get(uop.seq)
        if lifetime is not None:
            lifetime.decode = cycle

    def rename(self, entry, cycle):
        lifetime = self._open.get(entry.seq)
        if lifetime is None:
            return
        lifetime.rename = cycle
        lifetime.elim_kind = entry.elim_kind
        lifetime.move_width_blocked = entry.move_width_blocked
        lifetime.vp_used = entry.vp_used
        lifetime.dest_name = entry.dest_name

    def dispatch(self, entry, cycle):
        lifetime = self._open.get(entry.seq)
        if lifetime is not None:
            if lifetime.dispatch is None:
                lifetime.dispatch = cycle
            lifetime.dispatch_count += 1

    def issue(self, entry, cycle):
        lifetime = self._open.get(entry.seq)
        if lifetime is not None:
            if lifetime.issue is None:
                lifetime.issue = cycle
            lifetime.issue_count += 1

    def writeback(self, entry, cycle):
        lifetime = self._open.get(entry.seq)
        if lifetime is not None and lifetime.writeback is None:
            lifetime.writeback = cycle

    def commit(self, entry, cycle):
        lifetime = self._open.pop(entry.seq, None)
        if lifetime is None:
            return
        lifetime.commit = cycle
        # Rename-time flags may have changed (width-blocked moves are
        # detected during rename, after the hook ran).
        lifetime.move_width_blocked = entry.move_width_blocked

    def squash(self, uop, cycle, reason):
        lifetime = self._open.pop(uop.seq, None)
        if lifetime is not None:
            lifetime.squash = cycle
            lifetime.squash_reason = reason

    # -- typed events ---------------------------------------------------------------
    def event(self, cycle, kind, **payload):
        self.events.append((cycle, kind, payload))

    def events_of(self, kind):
        """All recorded events of one kind, in time order."""
        return [item for item in self.events if item[1] == kind]

    # -- run pacing -----------------------------------------------------------------
    def cycle_tick(self, cycle):
        if self.series is not None:
            self.series.tick(cycle)

    def finish(self, cycle):
        if self.series is not None:
            self.series.flush(cycle)
        if self.config.konata_out or self.config.jsonl_out:
            # Imported here so the tracer module stays import-light for
            # the common in-memory case.
            from repro.observability.export import (write_jsonl,
                                                    write_o3_pipeview)
            if self.config.konata_out:
                write_o3_pipeview(self.lifetimes, self.config.konata_out)
            if self.config.jsonl_out:
                stats = self._model.stats if self._model else None
                write_jsonl(self, self.config.jsonl_out, stats=stats)

    # -- inspection -----------------------------------------------------------------
    @property
    def lifetimes_dropped(self):
        """Lifetimes not recorded because ``max_lifetimes`` was reached."""
        return self._lifetimes_dropped

    def committed_lifetimes(self):
        return [l for l in self.lifetimes if l.committed]

    def squashed_lifetimes(self):
        return [l for l in self.lifetimes if l.squashed]
