"""``python -m repro.harness trace <workload>`` — run one traced simulation.

Examples::

    python -m repro.harness trace hash_loop
    python -m repro.harness trace xml_tree --config gvp+spsr \\
        --instructions 5000 --sample-interval 500 --out-dir traces/

Writes a gem5 O3PipeView text trace (drag into Konata to visualize the
pipeline) and a JSONL stream (per-µop lifetimes, typed VP/SpSR/flush
events, per-interval metrics) named ``<workload>.<config>.pipeview`` /
``<workload>.<config>.trace.jsonl``.
"""

import argparse
import os
import sys

_CONFIG_NAMES = ("baseline", "mvp", "tvp", "gvp",
                 "mvp+spsr", "tvp+spsr", "gvp+spsr")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-harness trace",
        description="Trace one (workload, config) simulation: per-uop "
                    "lifecycle events, VP/SpSR/flush events and interval "
                    "metrics.")
    parser.add_argument("workload", help="workload name (see `suite`)")
    parser.add_argument("--config", default="tvp+spsr",
                        choices=_CONFIG_NAMES,
                        help="machine configuration (default: tvp+spsr)")
    parser.add_argument("--instructions", type=int, default=3000,
                        help="dynamic instruction budget (default: 3000)")
    parser.add_argument("--sample-interval", type=int, default=200,
                        metavar="N",
                        help="metrics sample period in cycles; 0 disables "
                             "the time series (default: 200)")
    parser.add_argument("--max-lifetimes", type=int, default=None,
                        metavar="N",
                        help="cap recorded per-uop lifetimes (default: all)")
    parser.add_argument("--out-dir", default=".", metavar="DIR",
                        help="where to write the trace files (default: .)")
    parser.add_argument("--format", default="both",
                        choices=("both", "konata", "jsonl"),
                        help="which exporters to run (default: both)")
    return parser


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        argv = argv[1:]
    args = build_parser().parse_args(argv)
    if args.instructions < 1:
        print("--instructions must be >= 1", file=sys.stderr)
        return 2
    if args.sample_interval < 0:
        print("--sample-interval must be >= 0", file=sys.stderr)
        return 2

    from repro.emulator.trace import trace_program
    from repro.harness.runner import ExperimentRunner
    from repro.observability.config import TraceConfig
    from repro.observability.export import write_jsonl, write_o3_pipeview
    from repro.observability.tracer import PipelineTracer
    from repro.pipeline.core import CpuModel
    from repro.workloads import get_workload

    try:
        workload = get_workload(args.workload)
    except KeyError:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    config = ExperimentRunner.config(args.config).with_(
        trace=TraceConfig(sample_interval=args.sample_interval,
                          max_lifetimes=args.max_lifetimes))

    trace, _ = trace_program(workload.program,
                             max_instructions=args.instructions)
    model = CpuModel(trace, config)
    result = model.run()
    tracer = model.tracer

    os.makedirs(args.out_dir, exist_ok=True)
    stem = os.path.join(args.out_dir, f"{args.workload}.{args.config}")
    written = []
    if args.format in ("both", "konata"):
        path = stem + ".pipeview"
        records = write_o3_pipeview(tracer.lifetimes, path)
        written.append(f"{path} ({records} uops, Konata/gem5 O3PipeView)")
    if args.format in ("both", "jsonl"):
        path = stem + ".trace.jsonl"
        lines = write_jsonl(tracer, path, stats=result.stats,
                            workload=args.workload, config_name=args.config)
        written.append(f"{path} ({lines} lines)")

    stats = result.stats
    samples = len(tracer.series.samples) if tracer.series else 0
    print(f"traced {args.workload} / {args.config}: "
          f"{stats.retired_uops} uops over {stats.cycles} cycles "
          f"(IPC {stats.ipc:.3f})")
    print(f"  lifetimes: {len(tracer.lifetimes)} "
          f"({len(tracer.squashed_lifetimes())} squashed"
          + (f", {tracer.lifetimes_dropped} dropped by --max-lifetimes"
             if tracer.lifetimes_dropped else "") + ")")
    print(f"  events: {len(tracer.events)}   interval samples: {samples}")
    for line in written:
        print(f"  wrote {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
