"""One function per table/figure of the paper's evaluation.

Each ``run_*`` takes an :class:`~repro.harness.runner.ExperimentRunner`
(sharing traces/results across experiments) and returns an
:class:`~repro.harness.report.ExperimentResult` whose rows mirror what the
paper plots; the ``notes`` carry the paper-vs-measured comparison.
"""

from repro.core.modes import VPFlavor
from repro.core.storage import flavor_config, vtage_storage_kb
from repro.harness import paper_data
from repro.harness.report import ExperimentResult, pct
from repro.pipeline.config import MachineConfig
from repro.util.stats import amean, geomean, hmean, percent

_FLAVORS = ("mvp", "tvp", "gvp")

# Every named configuration point the paper evaluates — the default
# column set of `harness sweep` and the `repro.api.sweep` facade.
STANDARD_CONFIGS = ("baseline", "mvp", "tvp", "gvp",
                    "mvp+spsr", "tvp+spsr", "gvp+spsr")


def _speedups(runner, config_names):
    """{config: {workload: speedup%}} over the shared baseline."""
    results = runner.run_all(("baseline",) + tuple(config_names))
    base = results["baseline"]
    table = {}
    for name in config_names:
        table[name] = {
            wl: results[name][wl].speedup_over(base[wl])
            for wl in results[name]
        }
    return table, results


def _geomean_speedup(per_workload):
    return 100.0 * (geomean(1.0 + s / 100.0 for s in per_workload.values()) - 1.0)


# ------------------------------------------------------------------ Fig. 1
def run_fig1(runner, top=20):
    """Dynamic value distribution of GPR-writing instructions."""
    from repro.workloads.profile import narrow_fraction, top_values, value_profile

    budget = runner.instructions or 20_000
    counter, total = value_profile(runner.workloads,
                                   instructions_each=budget)
    series = top_values(counter, total, top)
    rows = [[f"{value:#x}", pct(share, signed=False)]
            for value, share in series]
    narrow9 = narrow_fraction(counter, total, bits=9)
    zero_share = percent(counter.get(0, 0), total)
    notes = [
        f"paper: 0x0 is the most produced value (~{paper_data.FIG1_TOP_SHARE_APPROX}%), "
        f"0x1 ranks 3rd, narrow values dominate",
        f"measured: 0x0 share {zero_share:.2f}%, "
        f"signed-9-bit-representable {narrow9:.1f}% of produced values",
    ]
    return ExperimentResult(
        "fig1", "Fig. 1 — Dynamic value distribution (GPR writers)",
        ["value", "share"], rows, notes,
        raw={"zero_share": zero_share, "narrow9": narrow9,
             "series": series},
    )


# ------------------------------------------------------------------ Fig. 2
def run_fig2(runner):
    """µops per architectural instruction (bars) and baseline IPC (line)."""
    results = runner.run_all(("baseline",))["baseline"]
    rows = []
    expansions, ipcs = [], []
    for workload in runner.workloads:
        stats = results[workload.name].stats
        rows.append([workload.name, f"{stats.expansion_ratio:.3f}",
                     f"{stats.ipc:.3f}"])
        expansions.append(stats.expansion_ratio)
        ipcs.append(stats.ipc)
    rows.append(["mean/hmean", f"{amean(expansions):.3f}",
                 f"{hmean(ipcs):.3f}"])
    low, high = paper_data.FIG2_EXPANSION_RANGE
    notes = [
        f"paper: per-benchmark expansion ratios ~{low}-{high} "
        f"(pre/post-index addressing cracks into 2 µops)",
        f"measured mean expansion: {amean(expansions):.3f}",
    ]
    return ExperimentResult(
        "fig2", "Fig. 2 — µops per architectural instruction + baseline IPC",
        ["workload", "uops/inst", "IPC"], rows, notes,
        raw={"expansion_mean": amean(expansions), "ipc_hmean": hmean(ipcs)},
    )


# ------------------------------------------------------------------ Fig. 3
def run_fig3(runner):
    """Speedups of MVP/TVP/GVP over the ME+0/1-idiom baseline."""
    speedups, results = _speedups(runner, _FLAVORS)
    rows = []
    for workload in runner.workloads:
        name = workload.name
        rows.append([name] + [pct(speedups[f][name]) for f in _FLAVORS])
    gmeans = {f: _geomean_speedup(speedups[f]) for f in _FLAVORS}
    rows.append(["geomean"] + [pct(gmeans[f]) for f in _FLAVORS])
    coverage = {f: 100 * amean(results[f][wl].stats.vp_coverage
                               for wl in speedups[f]) for f in _FLAVORS}
    accuracy = {f: 100 * amean(results[f][wl].stats.vp_accuracy
                               for wl in speedups[f]
                               if results[f][wl].stats.vp_correct_used) or 100.0
                for f in _FLAVORS}
    notes = [
        "paper geomeans: MVP +{mvp:.2f}%, TVP +{tvp:.2f}%, GVP +{gvp:.2f}%".format(
            **paper_data.FIG3_GEOMEAN_SPEEDUP),
        "measured geomeans: MVP {m}, TVP {t}, GVP {g}".format(
            m=pct(gmeans["mvp"]), t=pct(gmeans["tvp"]), g=pct(gmeans["gvp"])),
        "paper avg coverage: MVP {mvp}%, TVP {tvp}%, GVP {gvp}%".format(
            **paper_data.FIG3_COVERAGE),
        "measured avg coverage: MVP {m:.1f}%, TVP {t:.1f}%, GVP {g:.1f}%".format(
            m=coverage["mvp"], t=coverage["tvp"], g=coverage["gvp"]),
        "xml_tree is the xalancbmk-style outlier (paper: GVP +52.65%)",
    ]
    return ExperimentResult(
        "fig3", "Fig. 3 — Speedup of MVP/TVP/GVP over baseline",
        ["workload", "MVP", "TVP", "GVP"], rows, notes,
        raw={"geomeans": gmeans, "coverage": coverage, "accuracy": accuracy,
             "per_workload": speedups},
    )


# ---------------------------------------------------------------- Table 2
def run_table2(_runner=None):
    """Predictor storage model (the VP rows of Table 2) — closed form."""
    rows = []
    for flavor_name in ("gvp", "tvp", "mvp"):
        flavor = VPFlavor[flavor_name.upper()]
        measured = vtage_storage_kb(flavor_config(flavor))
        published = paper_data.TABLE2_STORAGE_KB[flavor_name]
        rows.append([flavor_name.upper(), f"{measured:.2f} KB",
                     f"{published} KB",
                     "match" if int(measured * 10) / 10 == published else "DIFF"])
    notes = ["paper truncates to one decimal; we report two and compare "
             "after truncation"]
    return ExperimentResult(
        "table2", "Table 2 (VP rows) — value predictor storage",
        ["flavor", "measured", "paper", "verdict"], rows, notes,
        raw={row[0]: row[1] for row in rows},
    )


# ---------------------------------------------------------------- Table 3
def run_table3(runner):
    """Geomean speedup per flavor at four predictor storage budgets."""
    base_results = runner.run_all(("baseline",))["baseline"]
    rows = []
    raw = {}
    for budget, delta in paper_data.TABLE3_LOG2_DELTAS.items():
        row = [budget]
        raw[budget] = {}
        for flavor_name in _FLAVORS:
            flavor = VPFlavor[flavor_name.upper()]
            vtage = flavor_config(flavor, log2_delta=delta)
            config = runner.config(flavor_name, vtage=vtage)
            config_name = f"{flavor_name}@{budget}"
            speedups = {}
            for workload in runner.workloads:
                record = runner.run(workload, config_name, config=config)
                speedups[workload.name] = record.speedup_over(
                    base_results[workload.name])
            gmean = _geomean_speedup(speedups)
            raw[budget][flavor_name] = gmean
            paper_value = paper_data.TABLE3[budget][flavor_name]
            row.append(f"{pct(gmean)} (paper {pct(paper_value)})")
        rows.append(row)
    notes = [
        "protocol per the paper: same tables/histories, only entry counts "
        "scaled (log2 deltas {} vs the MVP-budget geometry)".format(
            dict(paper_data.TABLE3_LOG2_DELTAS)),
        "expected shape: GVP scales with budget; MVP saturates by ~4-8KB",
    ]
    return ExperimentResult(
        "table3", "Table 3 — geomean speedup vs predictor storage budget",
        ["budget", "MVP", "TVP", "GVP"], rows, notes, raw=raw)


# ------------------------------------------------------------------ Fig. 4
def run_fig4(runner):
    """Fraction of rename-eliminated instructions, MVP+SpSR and TVP+SpSR."""
    results = runner.run_all(("mvp+spsr", "tvp+spsr"))
    categories = ["zero_idiom", "one_idiom", "move", "nine_bit_idiom",
                  "spsr", "non_me_move"]
    rows = []
    means = {}
    for config_name in ("mvp+spsr", "tvp+spsr"):
        per_cat = {cat: [] for cat in categories}
        for workload in runner.workloads:
            fractions = results[config_name][workload.name] \
                .stats.elimination_fractions()
            rows.append([config_name, workload.name] +
                        [pct(fractions[c], signed=False) for c in categories])
            for cat in categories:
                per_cat[cat].append(fractions[cat])
        means[config_name] = {cat: amean(v) for cat, v in per_cat.items()}
        rows.append([config_name, "amean"] +
                    [pct(means[config_name][c], signed=False)
                     for c in categories])
    notes = [
        "paper (MVP): 0-idiom 0.72%, 1-idiom 0.39%, move 3.96%, SpSR 1.73%, "
        "non-ME move 0.44%",
        "paper (TVP): + 9-bit idiom 0.48%, SpSR 1.70%",
        "synthetic kernels are idiom-denser than SPEC, so absolute "
        "fractions run higher; the category structure is the check",
    ]
    return ExperimentResult(
        "fig4", "Fig. 4 — Instructions eliminated at rename (by category)",
        ["config", "workload"] + categories, rows, notes, raw=means)


# ------------------------------------------------------------------ Fig. 5
def run_fig5(runner):
    """Speedup of MVP/TVP with and without SpSR."""
    config_names = ("mvp", "mvp+spsr", "tvp", "tvp+spsr")
    speedups, _results = _speedups(runner, config_names)
    rows = []
    for workload in runner.workloads:
        rows.append([workload.name] +
                    [pct(speedups[c][workload.name]) for c in config_names])
    gmeans = {c: _geomean_speedup(speedups[c]) for c in config_names}
    rows.append(["geomean"] + [pct(gmeans[c]) for c in config_names])
    notes = [
        "paper geomeans: MVP +0.54% / +SpSR +0.64%; TVP +1.11% / +SpSR +1.17%",
        "expected shape: SpSR moves IPC very little either way (its win is "
        "backend activity, Fig. 6)",
    ]
    return ExperimentResult(
        "fig5", "Fig. 5 — MVP/TVP speedup with and without SpSR",
        ["workload", "MVP", "MVP+SpSR", "TVP", "TVP+SpSR"], rows, notes,
        raw=gmeans)


# ------------------------------------------------------------------ Fig. 6
def run_fig6(runner):
    """Activity proxies normalized to baseline."""
    config_names = ("mvp", "mvp+spsr", "tvp", "tvp+spsr", "gvp", "gvp+spsr")
    results = runner.run_all(("baseline",) + config_names)
    base = results["baseline"]
    metrics = ["int_prf_reads", "int_prf_writes", "iq_dispatched", "iq_issued"]
    rows = []
    raw = {}
    for config_name in config_names:
        deltas = {}
        for metric in metrics:
            base_total = sum(getattr(base[wl].stats, metric)
                             for wl in base)
            total = sum(getattr(results[config_name][wl].stats, metric)
                        for wl in results[config_name])
            deltas[metric] = percent(total - base_total, base_total)
        raw[config_name] = deltas
        rows.append([config_name] + [pct(deltas[m]) for m in metrics])
    notes = [
        "paper: MVP -2.41% PRF reads / -4.17% writes; TVP -9.51% / -11.32%; "
        "GVP *increases* writes (explicit wide-prediction writes)",
        "paper: SpSR lowers IQ dispatch/issue by ~1.5-2.7%",
    ]
    return ExperimentResult(
        "fig6", "Fig. 6 — INT PRF and IQ activity vs baseline",
        ["config"] + metrics, rows, notes, raw=raw)


# --------------------------------------------------------- §3.4.1 ablation
def run_silencing_sweep(runner, cycles=(0, 15, 250, 1000)):
    """Sensitivity to the post-mispredict silencing window."""
    base_results = runner.run_all(("baseline",))["baseline"]
    rows = []
    raw = {}
    for silence in cycles:
        row = [str(silence)]
        raw[silence] = {}
        for flavor_name in _FLAVORS:
            config = runner.config(flavor_name, vp_silence_cycles=silence)
            speedups = {}
            flushes = 0
            for workload in runner.workloads:
                record = runner.run(workload, f"{flavor_name}@sil{silence}",
                                    config=config)
                speedups[workload.name] = record.speedup_over(
                    base_results[workload.name])
                flushes += record.stats.vp_flushes
            gmean = _geomean_speedup(speedups)
            raw[silence][flavor_name] = {"gmean": gmean, "flushes": flushes}
            row.append(f"{pct(gmean)} ({flushes} fl)")
        rows.append(row)
    notes = [
        "paper §3.4.1: 15 cycles suffices except for one prefetcher "
        "interaction; 250 is used everywhere as it costs nothing",
        "0 cycles risks livelock (the repeated-mispredict loop); the "
        "deadlock watchdog would catch it",
    ]
    return ExperimentResult(
        "silencing", "§3.4.1 — silencing-cycle sensitivity (geomean speedup)",
        ["silence cycles", "MVP", "TVP", "GVP"], rows, notes, raw=raw)


# -------------------------------------------------------- §6.2 ablation
def run_prefetcher_ablation(runner):
    """SpSR x L1D-stride-prefetcher interaction (the roms/cam4 anecdote)."""
    from repro.pipeline.config import MemoryConfig

    rows = []
    raw = {}
    for prefetch_on in (True, False):
        memory = MemoryConfig(enable_stride_prefetcher=prefetch_on)
        tag = "pf_on" if prefetch_on else "pf_off"
        base_records = {}
        for workload in runner.workloads:
            base_records[workload.name] = runner.run(
                workload, f"baseline@{tag}",
                config=MachineConfig.baseline(memory=memory))
        for config_name in ("tvp", "tvp+spsr"):
            config = runner.config(config_name, memory=memory)
            speedups = {}
            for workload in runner.workloads:
                record = runner.run(workload, f"{config_name}@{tag}",
                                    config=config)
                speedups[workload.name] = record.speedup_over(
                    base_records[workload.name])
            gmean = _geomean_speedup(speedups)
            raw[(tag, config_name)] = gmean
            rows.append([tag, config_name, pct(gmean)])
    notes = [
        "paper §6.2: with the stride prefetcher off, SpSR's residual "
        "slowdowns on perlbench/x264/cam4 disappear (TVP+SpSR geomean "
        "+0.11% vs +0.06% with it on)",
    ]
    return ExperimentResult(
        "prefetcher", "§6.2 — SpSR x stride-prefetcher interaction",
        ["prefetcher", "config", "geomean speedup"], rows, notes, raw=raw)


# ----------------------------------------------------- extension ablations
def run_recovery_ablation(runner):
    """Flush vs selective replay (§2.2 / §3.4).

    Replay can only repair wide GVP predictions (real storage); MVP/TVP
    must flush regardless — so the knob shows movement only for GVP, which
    is exactly the paper's argument for keeping the simple flush.
    """
    base_results = runner.run_all(("baseline",))["baseline"]
    rows = []
    raw = {}
    for flavor_name in _FLAVORS:
        for recovery in ("flush", "replay"):
            config = runner.config(flavor_name, vp_recovery=recovery)
            speedups = {}
            flushes = replays = 0
            for workload in runner.workloads:
                record = runner.run(workload,
                                    f"{flavor_name}@{recovery}",
                                    config=config)
                speedups[workload.name] = record.speedup_over(
                    base_results[workload.name])
                flushes += record.stats.vp_flushes
                replays += record.stats.vp_replays
            gmean = _geomean_speedup(speedups)
            raw[(flavor_name, recovery)] = {"gmean": gmean,
                                            "flushes": flushes,
                                            "replays": replays}
            rows.append([flavor_name, recovery, pct(gmean),
                         str(flushes), str(replays)])
    notes = [
        "MVP/TVP predictions live in hardwired/inline names with no "
        "storage for the correct value: replay structurally cannot fire "
        "(replays stay 0), the paper's §3.4 asymmetry",
        "with >99.9% accuracy, recoveries are so rare the scheme choice "
        "barely moves geomean IPC — the paper's reason to keep flush",
    ]
    return ExperimentResult(
        "recovery", "Ablation — flush vs selective replay recovery",
        ["flavor", "recovery", "geomean speedup", "flushes", "replays"],
        rows, notes, raw=raw)


def run_capacity_sweep(runner, log2_deltas=(-7, -5, -3, 0)):
    """Scale-compensated Table 3: predictor capacity pressure.

    At our 10^4-instruction scale even the paper's ~4KB point holds every
    static µop, so Table 3's GVP-budget sensitivity cannot appear at its
    absolute sizes.  Shrinking the tables much further (down to tens of
    entries) recreates the same capacity mechanism proportionally: with
    too few entries, tag aliasing destroys confidence and coverage, and it
    recovers as the predictor grows.
    """
    from repro.core.storage import flavor_config, vtage_storage_kb

    base_results = runner.run_all(("baseline",))["baseline"]
    rows = []
    raw = {}
    for delta in log2_deltas:
        row = [f"2^{delta}"]
        raw[delta] = {}
        for flavor_name in _FLAVORS:
            flavor = VPFlavor[flavor_name.upper()]
            vtage = flavor_config(flavor, log2_delta=delta)
            config = runner.config(flavor_name, vtage=vtage)
            speedups, coverages = {}, []
            for workload in runner.workloads:
                record = runner.run(workload,
                                    f"{flavor_name}@cap{delta}",
                                    config=config)
                speedups[workload.name] = record.speedup_over(
                    base_results[workload.name])
                coverages.append(record.stats.vp_coverage)
            gmean = _geomean_speedup(speedups)
            coverage = 100 * amean(coverages)
            raw[delta][flavor_name] = {"gmean": gmean,
                                       "coverage": coverage,
                                       "kb": vtage_storage_kb(vtage)}
            row.append(f"{pct(gmean)} cov {coverage:.1f}% "
                       f"({vtage_storage_kb(vtage):.2f}KB)")
        rows.append(row)
    notes = [
        "the proportional analogue of Table 3 for short traces: coverage "
        "and speedup collapse when entries alias, recover with capacity",
    ]
    return ExperimentResult(
        "capacity", "Ablation — predictor capacity pressure "
        "(scale-compensated Table 3)",
        ["table scale", "MVP", "TVP", "GVP"], rows, notes, raw=raw)



def run_predictor_ablation(runner):
    """Swap-in predictor algorithms (§7: VTAGE vs LVP vs stride vs
    perceptron-MVP)."""
    from repro.core.lvp import LvpConfig
    from repro.core.perceptron import PerceptronVpConfig
    from repro.core.stride import StrideVpConfig
    from repro.core.storage import flavor_config, vtage_storage_bits

    base_results = runner.run_all(("baseline",))["baseline"]
    points = [
        ("tvp", "vtage", vtage_storage_bits(flavor_config(VPFlavor.TVP))),
        ("tvp", "lvp", LvpConfig(value_bits=9).storage_bits),
        ("tvp", "stride", StrideVpConfig(value_bits=9).storage_bits),
        ("mvp", "vtage", vtage_storage_bits(flavor_config(VPFlavor.MVP))),
        ("mvp", "perceptron", PerceptronVpConfig().storage_bits),
    ]
    rows = []
    raw = {}
    for flavor_name, algorithm, storage_bits in points:
        config = runner.config(flavor_name, vp_algorithm=algorithm)
        speedups, coverages = {}, []
        for workload in runner.workloads:
            record = runner.run(workload, f"{flavor_name}/{algorithm}",
                                config=config)
            speedups[workload.name] = record.speedup_over(
                base_results[workload.name])
            coverages.append(record.stats.vp_coverage)
        gmean = _geomean_speedup(speedups)
        raw[(flavor_name, algorithm)] = gmean
        rows.append([flavor_name, algorithm,
                     f"{storage_bits / 8 / 1024:.1f} KB", pct(gmean),
                     pct(100 * amean(coverages), signed=False)])
    notes = [
        "paper §7: 'there exist many variations of value predictors that "
        "could be swapped in'; perceptron-MVP is its explicit suggestion",
        "expected shape: VTAGE >= LVP (history sensitivity); stride adds "
        "speculative in-flight state for little targeted-VP gain",
    ]
    return ExperimentResult(
        "predictors", "Ablation — swap-in value prediction algorithms",
        ["flavor", "algorithm", "storage", "geomean speedup", "coverage"],
        rows, notes, raw=raw)


def run_spsr_folding_ablation(runner):
    """SpSR constant folding: the generalization the paper leaves open."""
    base_results = runner.run_all(("baseline",))["baseline"]
    rows = []
    raw = {}
    for label, config in [
        ("tvp", MachineConfig.tvp()),
        ("tvp+spsr", MachineConfig.tvp(spsr=True)),
        ("tvp+spsr+fold", MachineConfig.tvp(spsr=True,
                                            spsr_constant_folding=True)),
    ]:
        speedups, spsr_fracs = {}, []
        for workload in runner.workloads:
            record = runner.run(workload, f"fold/{label}", config=config)
            speedups[workload.name] = record.speedup_over(
                base_results[workload.name])
            spsr_fracs.append(
                record.stats.elimination_fractions()["spsr"])
        gmean = _geomean_speedup(speedups)
        raw[label] = {"gmean": gmean, "spsr_amean": amean(spsr_fracs)}
        rows.append([label, pct(gmean),
                     pct(amean(spsr_fracs), signed=False)])
    notes = [
        "constant folding reduces any Table-1-adjacent ALU µop whose "
        "operands are all rename-time known (an extension beyond Table 1)",
        "expected: strictly more eliminations, IPC still nearly flat",
    ]
    return ExperimentResult(
        "folding", "Ablation — SpSR with full constant folding",
        ["config", "geomean speedup", "SpSR eliminated (amean)"],
        rows, notes, raw=raw)


def run_value_width_sweep(runner, widths=(1, 5, 9, 13, 17, 33, 64)):
    """Predictor value-field width vs storage vs achievable coverage.

    Standalone VTAGE over the suite's traces (no timing): the tradeoff
    curve that motivates the paper's choice of 1/9/64-bit design points.
    """
    from repro.core.storage import vtage_storage_kb
    from repro.core.vtage import Vtage, VtageConfig
    from repro.frontend.history import GlobalHistory
    from repro.rename.renamer import vp_eligible

    rows = []
    raw = {}
    for width in widths:
        correct = 0
        eligible = 0
        for workload in runner.workloads:
            history = GlobalHistory()
            predictor = Vtage(VtageConfig(value_bits=width), history=history)
            for uop in runner.trace_of(workload):
                if uop.is_cond_branch:
                    history.push(uop.taken)
                if not vp_eligible(uop):
                    continue
                eligible += 1
                prediction = predictor.predict(uop.pc)
                if prediction.confident and prediction.value == uop.result:
                    correct += 1
                predictor.train(uop.pc, uop.result, prediction.info)
        coverage = percent(correct, eligible)
        storage = vtage_storage_kb(VtageConfig(value_bits=width))
        raw[width] = {"coverage": coverage, "kb": storage}
        rows.append([str(width), f"{storage:.1f} KB",
                     pct(coverage, signed=False)])
    notes = [
        "the paper's design points are 1 (MVP), 9 (TVP) and 64 (GVP) bits",
        "expected: coverage grows with width while storage grows linearly; "
        "the knee past 9 bits is what makes TVP 'targeted'",
    ]
    return ExperimentResult(
        "width", "Ablation — value-field width vs storage vs coverage",
        ["value bits", "storage", "coverage"], rows, notes, raw=raw)


EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "table2": run_table2,
    "table3": run_table3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "silencing": run_silencing_sweep,
    "prefetcher": run_prefetcher_ablation,
    "predictors": run_predictor_ablation,
    "folding": run_spsr_folding_ablation,
    "width": run_value_width_sweep,
    "capacity": run_capacity_sweep,
    "recovery": run_recovery_ablation,
}


def _register_characterize():
    from repro.harness.inspect import run_characterize

    EXPERIMENTS["characterize"] = run_characterize


_register_characterize()
