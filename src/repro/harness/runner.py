"""Shared run infrastructure: trace caching and config sweeps.

Every experiment needs (workload x config) simulations over the same
traces; the runner memoizes traces per (workload, instruction budget) and
results per (workload, config name, config fingerprint) so multi-figure
sessions do not re-simulate.  With a :class:`SimulationCache` attached,
results also persist across processes and sessions.
"""

import time
from dataclasses import asdict, dataclass, fields
from typing import Dict, Tuple

from repro.emulator.trace import ColumnarTrace, trace_program
from repro.harness.cache import (TraceCache, config_fingerprint,
                                 simulation_key, trace_key)
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel
from repro.pipeline.stats import PipelineStats


@dataclass
class RunRecord:
    """One (workload, config) simulation result."""

    workload: str
    config_name: str
    stats: PipelineStats

    @property
    def ipc(self):
        return self.stats.ipc

    def speedup_over(self, baseline):
        """Speedup in percent over a baseline RunRecord."""
        return 100.0 * (self.ipc / baseline.ipc - 1.0)

    def to_dict(self):
        """The documented JSON shape of one simulation result.

        Used verbatim by the :mod:`repro.api` facade and the CLI
        ``--save`` path::

            {"workload": str, "config": str, "ipc": float,
             "stats": {<every PipelineStats counter>: number, ...}}

        ``stats`` is ``dataclasses.asdict`` of the full counter bag, so
        two records are byte-identical in JSON iff their simulations
        were.
        """
        return {
            "workload": self.workload,
            "config": self.config_name,
            "ipc": self.ipc,
            "stats": asdict(self.stats),
        }


class ExperimentRunner:
    """Trace/result cache plus the standard config set."""

    def __init__(self, workloads=None, instructions=None, verbose=False,
                 cache=None, trace_cache=None, traces=None,
                 profile_stages=False):
        from repro.workloads import suite

        self.workloads = workloads if workloads is not None else suite()
        self.instructions = instructions
        self.verbose = verbose
        self.cache = cache
        # --profile-stages: accumulated per-stage wall time across every
        # simulation this runner actually executed (cache hits carry no
        # timing, so they are not counted).
        self.profile_stages = profile_stages
        self.stage_profile = {}
        self.profiled_runs = 0
        if trace_cache is None and cache is not None:
            # The trace store rides along in the same cache directory.
            trace_cache = TraceCache(cache.directory)
        self.trace_cache = trace_cache
        self.trace_emulations = 0
        # Preloaded traces keyed (workload_name, budget) — the sweep
        # workers seed this with shared-memory attached traces so they
        # never touch the emulator or the disk cache.
        self._traces: Dict[Tuple[str, int], object] = dict(traces or {})
        self._results: Dict[Tuple[str, str, str], RunRecord] = {}
        self._named_fingerprints: Dict[str, str] = {}

    # -- configuration points the paper evaluates ----------------------------------
    @staticmethod
    def config(name, **overrides):
        """Named configuration factory covering every evaluated point.

        Override keys are validated against :class:`MachineConfig`
        fields (plus the builders' ``spsr`` flag): a typo like
        ``vp_silence_cycle=15`` used to silently build a config whose
        bogus field never reached the fingerprint; now it raises with
        the list of valid names.
        """
        builders = {
            "baseline": MachineConfig.baseline,
            "mvp": MachineConfig.mvp,
            "tvp": MachineConfig.tvp,
            "gvp": MachineConfig.gvp,
            "mvp+spsr": lambda **kw: MachineConfig.mvp(spsr=True, **kw),
            "tvp+spsr": lambda **kw: MachineConfig.tvp(spsr=True, **kw),
            "gvp+spsr": lambda **kw: MachineConfig.gvp(spsr=True, **kw),
        }
        if name not in builders:
            raise KeyError(f"unknown config name {name!r}; valid names: "
                           f"{sorted(builders)}")
        valid = {f.name for f in fields(MachineConfig)} | {"spsr"}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise TypeError(
                f"unknown MachineConfig override(s) {unknown}; "
                f"valid names: {sorted(valid)}")
        return builders[name](**overrides)

    def fingerprint_of(self, config_name, config=None):
        """The fingerprint keying results for (config_name, config).

        Experiments reuse names like ``"tvp"`` with ad-hoc overrides, so
        the memo key must hash the actual configuration, not just its
        label; named configs are fingerprinted once per runner.
        """
        if config is not None:
            return config_fingerprint(config)
        if config_name not in self._named_fingerprints:
            self._named_fingerprints[config_name] = config_fingerprint(
                self.config(config_name))
        return self._named_fingerprints[config_name]

    # -- execution -------------------------------------------------------------------
    def budget_for(self, workload):
        return self.instructions or workload.default_instructions

    def trace_of(self, workload):
        """The (columnar) µop trace for *workload* at the current budget.

        Resolution order: in-process memo → disk trace cache (mmap
        zero-copy) → run the emulator once, pack, and persist.  The
        emulator therefore runs at most once per (workload, budget,
        code-version) across every process that shares the cache
        directory.
        """
        key = (workload.name, self.budget_for(workload))
        trace = self._traces.get(key)
        if trace is None:
            trace = self._load_or_emulate(workload, key[1])
            self._traces[key] = trace
        return trace

    def _load_or_emulate(self, workload, budget):
        if self.trace_cache is not None:
            trace = self.trace_cache.load(trace_key(workload.name, budget))
            if trace is not None:
                return trace
        uops, _stats = trace_program(workload.program,
                                     max_instructions=budget)
        self.trace_emulations += 1
        # Pack even without a disk cache: the columnar form carries the
        # per-trace derived-data memo (cache-line column, precomputed
        # branch outcomes) that every config replaying this trace shares.
        trace = ColumnarTrace.from_uops(uops, keep_views=True)
        if self.trace_cache is not None:
            self.trace_cache.store(trace_key(workload.name, budget), trace)
        return trace

    def run(self, workload, config_name, config=None) -> RunRecord:
        """Simulate one point (memoized by workload + config contents)."""
        fingerprint = self.fingerprint_of(config_name, config)
        key = (workload.name, config_name, fingerprint)
        if key in self._results:
            return self._results[key]
        budget = self.budget_for(workload)
        stats = None
        disk_key = None
        if self.cache is not None:
            disk_key = simulation_key(workload.name, budget, fingerprint)
            stats = self.cache.load(disk_key)
        if stats is None:
            machine_config = (config if config is not None
                              else self.config(config_name))
            model = CpuModel(self.trace_of(workload), machine_config)
            if self.profile_stages:
                model.enable_stage_profile(time.perf_counter)
            stats = model.run().stats
            if self.profile_stages:
                for stage, seconds in model.stage_profile.items():
                    self.stage_profile[stage] = \
                        self.stage_profile.get(stage, 0.0) + seconds
                self.profiled_runs += 1
            if self.cache is not None:
                self.cache.store(disk_key, workload.name, config_name,
                                 budget, stats)
        record = RunRecord(workload.name, config_name, stats)
        self._results[key] = record
        if self.verbose:
            print(f"    ran {workload.name} / {config_name}: "
                  f"IPC={record.ipc:.3f}")
        return record

    def admit(self, record, config_name, fingerprint):
        """Adopt a record simulated elsewhere (the parallel runner)."""
        self._results[(record.workload, config_name, fingerprint)] = record

    def run_all(self, config_names):
        """Run every workload under every named config; returns
        {config_name: {workload_name: RunRecord}}."""
        out = {name: {} for name in config_names}
        for workload in self.workloads:
            for name in config_names:
                out[name][workload.name] = self.run(workload, name)
        return out
