"""Persistent disk cache for simulation results.

Re-running ``python -m repro.harness all`` (or the benchmark suite) used to
re-simulate every (workload × config) point from scratch.  Simulations are
deterministic functions of (workload, instruction budget, machine
configuration, simulator code), so their stats can be cached on disk and
replayed exactly.

Keys
----
A cache entry is keyed by the SHA-256 of:

* the workload name,
* the dynamic instruction budget,
* the **config fingerprint** — a hash of the canonicalised
  :class:`~repro.pipeline.config.MachineConfig` contents (every field,
  nested dataclasses and enums included), so two configs that differ in
  any knob never collide, and
* the **code-version hash** — a hash over every ``src/repro`` Python
  source file, so editing the simulator invalidates the whole cache.

Entries are JSON files written atomically (temp file + ``os.replace``), so
a killed run never leaves a torn entry, and concurrent writers (the
parallel runner) last-write-win with identical payloads.

The cache directory defaults to ``.repro-cache/`` under the current
working directory and can be moved with the ``REPRO_CACHE_DIR``
environment variable or the ``--cache-dir`` CLI flag.
"""

import hashlib
import json
import math
import os
import tempfile
from dataclasses import fields, is_dataclass
from enum import Enum

from repro.pipeline.stats import PipelineStats

_CACHE_FORMAT = 1          # bump to orphan all existing entries
_DEFAULT_DIR = ".repro-cache"


# -- canonicalisation / fingerprints -----------------------------------------------
def _canonical(value):
    """A JSON-stable structure capturing *value* exactly.

    Dataclass fields marked ``metadata={"fingerprint": False}`` are
    skipped: they describe *how a run is observed* (tracing, sampling),
    never what the machine computes, so they must not fragment the cache
    key space — a traced run hits the cache entry its untraced twin wrote.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in fields(value)
                if f.metadata.get("fingerprint", True)}
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def config_fingerprint(config):
    """A short stable hash of every knob in a machine configuration."""
    blob = json.dumps(_canonical(config), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


_code_version_memo = None
_trace_code_version_memo = None

# Emulated traces are a function of the *functional* simulator only: the
# emulator itself, the ISA it interprets, the workload programs, and the
# shared utilities they import.  Timing-side edits (pipeline, predictors,
# harness) must not orphan cached traces — that is the whole point of
# caching them separately from results.
_TRACE_CODE_SUBPACKAGES = ("emulator", "isa", "workloads", "util")


def _hash_source_tree(package_root, subpackages=None):
    digest = hashlib.sha256()
    for directory, subdirs, filenames in sorted(os.walk(package_root)):
        subdirs.sort()
        if subpackages is not None and directory != package_root:
            relative = os.path.relpath(directory, package_root)
            if relative.split(os.sep)[0] not in subpackages:
                continue
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            if subpackages is not None and directory == package_root:
                continue   # top-level modules are timing/facade code
            path = os.path.join(directory, filename)
            digest.update(os.path.relpath(path, package_root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()[:16]


def code_version_hash():
    """Hash of every ``repro`` source file (memoized per process).

    Any edit to the simulator — a config default, a pipeline tweak —
    changes this value and therefore orphans every existing cache entry.
    """
    global _code_version_memo
    if _code_version_memo is not None:
        return _code_version_memo
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    _code_version_memo = _hash_source_tree(package_root)
    return _code_version_memo


def trace_code_version_hash():
    """Hash of only the sources that determine emulated traces.

    Memoized per process, like :func:`code_version_hash`.
    """
    global _trace_code_version_memo
    if _trace_code_version_memo is not None:
        return _trace_code_version_memo
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    _trace_code_version_memo = _hash_source_tree(
        package_root, _TRACE_CODE_SUBPACKAGES)
    return _trace_code_version_memo


def simulation_key(workload_name, instructions, fingerprint):
    """The cache key for one (workload, budget, config) simulation point."""
    blob = json.dumps([_CACHE_FORMAT, workload_name, instructions,
                       fingerprint, code_version_hash()],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def trace_key(workload_name, instructions):
    """The cache key for one emulated trace.

    Traces are config-independent — the functional emulator sees only
    (workload, instruction budget) — so a single entry serves every
    machine configuration; the trace code-version hash orphans entries
    when an emulator-side source (emulator/isa/workloads/util) changes,
    while timing-model and harness edits leave cached traces valid.
    """
    blob = json.dumps([_CACHE_FORMAT, "trace", workload_name, instructions,
                       trace_code_version_hash()], separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def headroom_key(workload_name, instructions, fingerprint, sample_interval,
                 schema):
    """The cache key for one headroom analysis report.

    Keyed like :func:`simulation_key` (workload, budget, config
    fingerprint, code version) plus the analyzer inputs that change the
    report: the attribution sampling interval and the report *schema*
    string (so a schema bump orphans stale reports instead of serving
    them).  The engine is deliberately absent — backends are
    counter-identical, so reports are engine-independent.
    """
    blob = json.dumps([_CACHE_FORMAT, "headroom", schema, workload_name,
                       instructions, fingerprint, sample_interval,
                       code_version_hash()], separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def space_fingerprint(canonical_space):
    """A short stable hash of a declarative parameter-space definition.

    *canonical_space* is the plain structure
    :meth:`repro.dse.space.ParameterSpace.canonical` returns (name, base
    config, every dimension with its choices and overrides); enums and
    tuples inside override values canonicalise exactly like config
    fields do, so a space hashes the same across processes and runs.
    Exploration journals and report keys are derived from this, which is
    what makes ``harness explore`` resumable: the same space definition
    always finds its own journal.
    """
    blob = json.dumps(_canonical(canonical_space), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def explore_key(space_fp, strategy, seed, max_points, workload_names,
                instructions):
    """The report-cache key for one finished exploration.

    Keyed by everything that determines an :class:`ExploreResult`
    byte-for-byte: the space *content* fingerprint (not its name), the
    strategy, the seed, the point budget, the workload set and the
    instruction budget, plus the code version — a warm re-run of the
    same exploration is a single report-cache read with zero
    simulations.  Individual space points need no key of their own:
    they compile to :class:`MachineConfig` objects whose
    :func:`config_fingerprint` already hits :func:`simulation_key`.
    """
    blob = json.dumps([_CACHE_FORMAT, "explore", space_fp, strategy, seed,
                       max_points, sorted(workload_names), instructions,
                       code_version_hash()], separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def stats_from_payload(payload):
    """A validated :class:`PipelineStats` from an untrusted dict, or None.

    Shared by the disk cache, the sweep journal and the orchestrator's
    worker-result admission: every key must be a declared stats field,
    counters must be finite numbers, and the ``memory`` snapshot must be a
    dict.  Anything else (an entry written by an incompatible version, a
    torn journal line, a corrupted worker payload) is rejected rather than
    admitted into merged results.
    """
    if not isinstance(payload, dict) or not payload:
        return None
    known = {f.name for f in fields(PipelineStats)}
    if not set(payload) <= known:
        return None
    for name, value in payload.items():
        if name == "memory":
            if not isinstance(value, dict):
                return None
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        elif not math.isfinite(value):
            return None
    return PipelineStats(**payload)


# -- the cache itself ----------------------------------------------------------------
class SimulationCache:
    """Disk-backed (workload × config) result store with hit statistics."""

    def __init__(self, directory=None):
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_DIR
        self.directory = str(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    def _path_of(self, key):
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key):
        """The cached :class:`PipelineStats` for *key*, or None."""
        try:
            with open(self._path_of(key)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        stats = stats_from_payload(payload.get("stats"))
        if stats is None:
            self.misses += 1   # written by an incompatible version
            return None
        self.hits += 1
        return stats

    def has(self, key):
        """Whether an entry file exists for *key* (no validation)."""
        return os.path.exists(self._path_of(key))

    def store(self, key, workload_name, config_name, instructions, stats):
        """Atomically persist one simulation result.

        An unwritable cache location degrades to a no-op (counted in
        ``errors``) — caching is an optimization, never a reason to
        lose a finished simulation.
        """
        from dataclasses import asdict

        payload = {
            "format": _CACHE_FORMAT,
            "workload": workload_name,
            "config": config_name,
            "instructions": instructions,
            "code_version": code_version_hash(),
            "stats": asdict(stats),
        }
        tmp_path = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle, tmp_path = tempfile.mkstemp(dir=self.directory,
                                                suffix=".tmp")
            with os.fdopen(handle, "w") as tmp:
                json.dump(payload, tmp, sort_keys=True)
            os.replace(tmp_path, self._path_of(key))
        except OSError:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            self.errors += 1
            return
        self.stores += 1

    # -- reporting -----------------------------------------------------------------
    @property
    def lookups(self):
        return self.hits + self.misses

    def summary(self):
        """One human-readable line for reports/CLI output."""
        if not self.lookups and not self.stores and not self.errors:
            return f"cache {self.directory}: unused"
        line = (f"cache {self.directory}: {self.hits}/{self.lookups} hits, "
                f"{self.stores} new entries")
        if self.errors:
            line += f", {self.errors} write failures"
        return line


# -- the trace cache -----------------------------------------------------------------
class TraceCache:
    """Disk store of packed ``.rtrc`` traces under ``<cache-dir>/traces/``.

    Keyed by :func:`trace_key` (workload, budget, code-version): the
    functional emulator runs once per key ever; every later run — any
    config, any process — loads the packed trace zero-copy through mmap.
    Loads touch the file mtime so the optional size cap can evict
    least-recently-used entries.
    """

    def __init__(self, directory=None, max_bytes=None):
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_DIR
        self.directory = os.path.join(str(directory), "traces")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self.evictions = 0

    def _path_of(self, key):
        return os.path.join(self.directory, f"{key}.rtrc")

    def _touch(self, path):
        try:
            os.utime(path)
        except OSError:
            pass

    def load(self, key):
        """The cached :class:`~repro.emulator.trace.ColumnarTrace` for
        *key* (mmap-backed, zero-copy), or None.

        A torn or stale-format file counts as a miss and is deleted so
        the slot is rewritten cleanly.
        """
        from repro.emulator.trace import ColumnarTrace, TraceFormatError

        path = self._path_of(key)
        try:
            trace = ColumnarTrace.from_file(path)
        except OSError:
            self.misses += 1
            return None
        except TraceFormatError:
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        self._touch(path)
        return trace

    def load_bytes(self, key):
        """The validated raw ``.rtrc`` image for *key*, or None.

        Used by the orchestrator, which copies the image into shared
        memory without materializing a trace in the parent.
        """
        from repro.emulator.trace import ColumnarTrace, TraceFormatError

        path = self._path_of(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            ColumnarTrace.from_buffer(blob)   # header + checksum validation
        except OSError:
            self.misses += 1
            return None
        except TraceFormatError:
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        self._touch(path)
        return blob

    def store(self, key, trace):
        """Atomically persist one packed trace (no-op on write failure)."""
        try:
            os.makedirs(self.directory, exist_ok=True)
            trace.to_file(self._path_of(key))
        except OSError:
            self.errors += 1
            return
        self.stores += 1
        if self.max_bytes is not None:
            self.evictions += self.prune(self.max_bytes)

    def store_bytes(self, key, blob):
        """Atomically persist a pre-packed ``.rtrc`` image."""
        path = self._path_of(key)
        tmp_path = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle, tmp_path = tempfile.mkstemp(dir=self.directory,
                                                suffix=".tmp")
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(blob)
            os.replace(tmp_path, path)
        except OSError:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            self.errors += 1
            return
        self.stores += 1
        if self.max_bytes is not None:
            self.evictions += self.prune(self.max_bytes)

    # -- housekeeping ----------------------------------------------------------------
    def entries(self):
        """[(path, size, mtime)] for every trace file, oldest first."""
        out = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return out
        for name in names:
            if not name.endswith(".rtrc"):
                continue
            path = os.path.join(self.directory, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            out.append((path, info.st_size, info.st_mtime))
        out.sort(key=lambda item: item[2])
        return out

    def usage(self):
        """(file_count, total_bytes) currently on disk."""
        entries = self.entries()
        return len(entries), sum(size for _path, size, _mtime in entries)

    def prune(self, max_bytes):
        """Evict least-recently-used traces until under *max_bytes*.

        Returns the number of files removed.
        """
        entries = self.entries()
        total = sum(size for _path, size, _mtime in entries)
        removed = 0
        for path, size, _mtime in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed

    def summary(self):
        """One human-readable line for reports/CLI output."""
        lookups = self.hits + self.misses
        if not lookups and not self.stores:
            return f"trace cache {self.directory}: unused"
        line = (f"trace cache {self.directory}: {self.hits}/{lookups} hits, "
                f"{self.stores} new traces")
        if self.evictions:
            line += f", {self.evictions} evicted"
        if self.errors:
            line += f", {self.errors} write failures"
        return line


# -- the analysis report cache -------------------------------------------------------
class ReportCache:
    """Disk store of JSON analysis reports under ``<cache-dir>/reports/``.

    The headroom analyzer (and future analysis passes) cache their
    finished report documents here, keyed by :func:`headroom_key`-style
    content hashes, so warm ``harness headroom`` invocations are
    interactive.  Entries are whole JSON documents validated only by the
    caller (a ``schema`` field mismatch is treated as a miss there).
    """

    def __init__(self, directory=None):
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_DIR
        self.directory = os.path.join(str(directory), "reports")
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    def _path_of(self, key):
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key):
        """The cached report dict for *key*, or None."""
        try:
            with open(self._path_of(key)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key, payload):
        """Atomically persist one report (no-op on write failure)."""
        tmp_path = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle, tmp_path = tempfile.mkstemp(dir=self.directory,
                                                suffix=".tmp")
            with os.fdopen(handle, "w") as tmp:
                json.dump(payload, tmp, sort_keys=True)
            os.replace(tmp_path, self._path_of(key))
        except OSError:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            self.errors += 1
            return
        self.stores += 1

    def summary(self):
        """One human-readable line for reports/CLI output."""
        lookups = self.hits + self.misses
        if not lookups and not self.stores:
            return f"report cache {self.directory}: unused"
        line = (f"report cache {self.directory}: {self.hits}/{lookups} "
                f"hits, {self.stores} new reports")
        if self.errors:
            line += f", {self.errors} write failures"
        return line


# -- cache directory reporting (the `harness cache` subcommand) ----------------------
def cache_usage(directory=None):
    """On-disk usage per category of a cache directory.

    Returns ``{category: {"files": int, "bytes": int}}`` for the five
    stores a cache directory holds: simulation ``results`` (top-level
    ``*.json``), packed ``traces`` (``traces/*.rtrc``), sweep
    ``journals`` (``journals/*.jsonl``), analysis ``reports``
    (``reports/*.json``) and the service's job registry
    (``jobs/*.json``).
    """
    if directory is None:
        directory = os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_DIR
    directory = str(directory)

    def tally(path, suffix):
        files = 0
        total = 0
        try:
            names = os.listdir(path)
        except OSError:
            return {"files": 0, "bytes": 0}
        for name in names:
            if not name.endswith(suffix):
                continue
            try:
                total += os.stat(os.path.join(path, name)).st_size
            except OSError:
                continue
            files += 1
        return {"files": files, "bytes": total}

    return {
        "results": tally(directory, ".json"),
        "traces": tally(os.path.join(directory, "traces"), ".rtrc"),
        "journals": tally(os.path.join(directory, "journals"), ".jsonl"),
        "reports": tally(os.path.join(directory, "reports"), ".json"),
        "jobs": tally(os.path.join(directory, "jobs"), ".json"),
    }


def clear_cache(directory=None,
                categories=("results", "traces", "journals", "reports",
                            "jobs")):
    """Delete cache entries by category; returns {category: removed_count}."""
    if directory is None:
        directory = os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_DIR
    directory = str(directory)
    layout = {
        "results": (directory, ".json"),
        "traces": (os.path.join(directory, "traces"), ".rtrc"),
        "journals": (os.path.join(directory, "journals"), ".jsonl"),
        "reports": (os.path.join(directory, "reports"), ".json"),
        "jobs": (os.path.join(directory, "jobs"), ".json"),
    }
    removed = {}
    for category in categories:
        path, suffix = layout[category]
        count = 0
        try:
            names = os.listdir(path)
        except OSError:
            names = []
        for name in names:
            if not name.endswith(suffix):
                continue
            try:
                os.unlink(os.path.join(path, name))
            except OSError:
                continue
            count += 1
        removed[category] = count
    return removed
