"""Fault-tolerant, resumable (workload × config) sweep orchestration.

The paper's headline numbers come from large sweeps, and a production
harness cannot afford to lose an hour of simulation to one wedged worker
or a ``kill -9``.  :class:`OrchestratedRunner` replaces the
fire-and-forget ``ProcessPoolExecutor`` fan-out with a work-stealing
engine built from three pieces:

**Sweep journal** (:class:`SweepJournal`)
    A durable on-disk log — one JSON record per completed (workload,
    config-fingerprint) point, appended and ``fsync``'d the moment the
    point finishes.  Layered on :mod:`repro.harness.cache`: records carry
    the same config fingerprint / instruction budget / code-version hash
    the disk cache keys on, and replaying a journal write-throughs into
    the cache.  An interrupted sweep resumed against its journal
    recomputes **zero** completed points and merges byte-identical
    payloads, even with the disk cache disabled.

**Fault-tolerant pool**
    Idle workers pull points dynamically (fast workers take more), every
    point runs under a deadline, and the parent detects and repairs each
    failure class: a crashed worker is reaped and respawned, a hung
    worker is killed at its deadline, a corrupted result payload is
    rejected at admission.  Failed points retry with exponential backoff;
    a point that keeps failing is quarantined after
    ``max_attempts`` and falls back to serial in-parent execution.  If
    the pool itself is unhealthy (respawn budget exhausted) the whole
    sweep degrades gracefully to serial execution instead of spinning.

**Observability**
    Heartbeats, per-point lifecycle events and every recovery action are
    routed through the session's :class:`repro.observability.Tracer`
    (see :class:`repro.observability.SweepEventLog`), and the sweep ends
    with a structured :class:`FaultReport` the CLI prints and embeds in
    ``--save`` JSON.

Fault injection for tests/CI lives in :mod:`repro.harness.faults`
(``REPRO_FAULT_*`` knobs); ``tests/orchestrator`` drives every recovery
path through it.
"""

import hashlib
import json
import multiprocessing
import os
import queue
import tempfile
from collections import deque
from dataclasses import asdict, dataclass, field, fields
from heapq import heappop, heappush
from time import monotonic, sleep
from typing import Optional

from repro.emulator.trace import ColumnarTrace, TraceFormatError
from repro.harness import faults
from repro.harness.cache import (TraceCache, code_version_hash,
                                 simulation_key, stats_from_payload,
                                 trace_key)
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.observability.tracer import NULL_TRACER


def default_jobs():
    """Worker count when ``--jobs`` is not given."""
    return max(1, os.cpu_count() or 1)


def default_journal_path(cache_dir=None, workload_names=(),
                         instructions=None, label=""):
    """The canonical journal location for one sweep specification.

    Journals live next to the simulation cache (``<cache-dir>/journals``)
    and are named by a hash of the sweep's identity — workload set,
    instruction budget and a free-form label (the CLI uses the experiment
    or config list) — so re-running the same command finds and resumes
    its own journal while a different sweep gets a fresh one.
    """
    base = cache_dir or os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
    blob = json.dumps([sorted(workload_names), instructions, label],
                      separators=(",", ":"))
    sweep_id = hashlib.sha256(blob.encode()).hexdigest()[:16]
    return os.path.join(str(base), "journals", f"{sweep_id}.jsonl")


# -- configuration -------------------------------------------------------------------
@dataclass
class OrchestratorConfig:
    """Fault-tolerance knobs of the sweep engine."""

    # Per-point wall-clock deadline in seconds.  None resolves from
    # $REPRO_POINT_TIMEOUT (default 600); zero or negative disables.
    point_timeout: Optional[float] = None
    max_attempts: int = 3          # failures before a point is quarantined
    backoff_base: float = 0.25     # retry delay: base * 2**(attempt-1) ...
    backoff_cap: float = 8.0       # ... capped here (seconds)
    heartbeat_interval: float = 5.0
    max_respawns: int = 8          # worker respawns before serial fallback
    poll_interval: float = 0.05    # result-queue poll granularity
    start_method: Optional[str] = None   # None -> fork when available
    # The workers are pure-CPU: running more of them than cores only adds
    # scheduler thrash and IPC (measured ~1.5x slower at jobs=4 on one
    # core), so ``jobs`` is clamped to the CPU count.  The fault-injection
    # tests exercise multi-worker races regardless of the host, so they
    # opt out of the clamp.
    oversubscribe: bool = False

    def resolved_timeout(self):
        timeout = self.point_timeout
        if timeout is None:
            timeout = float(os.environ.get("REPRO_POINT_TIMEOUT", "600"))
        return None if timeout <= 0 else timeout


# -- the fault report ----------------------------------------------------------------
@dataclass
class FaultReport:
    """Structured end-of-sweep account of where results came from and
    every fault the engine survived (or didn't)."""

    points_total: int = 0
    from_memo: int = 0             # already in this runner's memory
    from_journal: int = 0          # replayed from the sweep journal
    from_cache: int = 0            # loaded from the disk cache
    completed_pool: int = 0        # simulated by pool workers
    completed_serial: int = 0      # simulated serially in the parent
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    worker_respawns: int = 0
    worker_errors: int = 0
    corrupt_payloads: int = 0
    quarantined: list = field(default_factory=list)
    degraded_to_serial: bool = False
    wall_seconds: float = 0.0
    trace_cache_hits: int = 0      # traces loaded from the disk trace cache
    trace_emulations: int = 0      # emulator runs (at most one per workload)
    traces_shared: int = 0         # traces distributed via shared memory

    @property
    def faults_seen(self):
        return bool(self.timeouts or self.worker_crashes
                    or self.worker_errors or self.corrupt_payloads
                    or self.retries or self.quarantined
                    or self.degraded_to_serial)

    @classmethod
    def merged(cls, reports):
        """One aggregate report over several sweeps (a CLI invocation
        running multiple experiments calls ``run_all`` repeatedly)."""
        total = cls()
        for report in reports:
            for name in (f.name for f in fields(cls)):
                value = getattr(report, name)
                if isinstance(value, bool):
                    setattr(total, name, getattr(total, name) or value)
                elif isinstance(value, (int, float)):
                    setattr(total, name, getattr(total, name) + value)
                elif isinstance(value, list):
                    getattr(total, name).extend(value)
        return total

    def to_dict(self):
        """JSON-ready payload (the CLI embeds this under ``--save``)."""
        payload = asdict(self)
        payload["healthy"] = not self.faults_seen
        return payload

    def summary(self):
        """One human-readable line for the CLI."""
        sources = (f"{self.from_journal} journal, {self.from_cache} cache, "
                   f"{self.from_memo} memo, {self.completed_pool} pool, "
                   f"{self.completed_serial} serial")
        head = f"sweep {self.points_total} points ({sources})"
        if self.trace_cache_hits or self.trace_emulations or self.traces_shared:
            head += (f"; traces: {self.trace_cache_hits} cached, "
                     f"{self.trace_emulations} emulated, "
                     f"{self.traces_shared} shared")
        if not self.faults_seen:
            return f"{head}; no faults"
        parts = [f"{self.worker_crashes} worker crashes",
                 f"{self.timeouts} timeouts",
                 f"{self.worker_errors} worker errors",
                 f"{self.corrupt_payloads} corrupt payloads",
                 f"{self.retries} retries",
                 f"{len(self.quarantined)} quarantined"]
        if self.degraded_to_serial:
            parts.append("degraded to serial")
        return f"{head}; faults: " + ", ".join(parts)


# -- the journal ---------------------------------------------------------------------
class SweepJournal:
    """Append-only, fsync'd JSONL log of completed sweep points.

    Each line records one completed point with exactly the identity the
    disk cache keys on — workload, config name, config fingerprint,
    instruction budget and code-version hash — plus the full stats
    payload, so a resume needs nothing but the journal file.  Torn final
    lines (the ``kill -9`` case) and records from other code versions are
    skipped on replay; when stale records dominate, the file is
    compacted in place (atomic temp-file + ``os.replace``, the cache's
    own idiom).
    """

    FORMAT = 1
    _COMPACT_MIN_STALE = 32

    def __init__(self, path):
        self.path = str(path)
        self._handle = None

    # -- writing -------------------------------------------------------------------
    def record(self, workload_name, config_name, fingerprint, instructions,
               stats):
        """Durably append one completed point (flush + fsync)."""
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a")
        line = json.dumps({
            "format": self.FORMAT,
            "workload": workload_name,
            "config_name": config_name,
            "fingerprint": fingerprint,
            "instructions": instructions,
            "code_version": code_version_hash(),
            "stats": asdict(stats),
        }, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reset(self):
        """Discard the journal (``--no-resume``)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # -- reading -------------------------------------------------------------------
    def replay(self):
        """[(record, PipelineStats)] for every valid current-code record.

        Invalid lines — torn tails, other code versions, unknown stats
        fields — are skipped, and the file is compacted when they
        dominate.
        """
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except OSError:
            return []
        valid, stale = [], 0
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                stale += 1
                continue
            if (not isinstance(record, dict)
                    or record.get("format") != self.FORMAT
                    or record.get("code_version") != code_version_hash()
                    or not isinstance(record.get("workload"), str)
                    or not isinstance(record.get("config_name"), str)
                    or not isinstance(record.get("fingerprint"), str)
                    or not isinstance(record.get("instructions"), int)):
                stale += 1
                continue
            stats = stats_from_payload(record.get("stats"))
            if stats is None:
                stale += 1
                continue
            valid.append((record, stats))
        if stale > self._COMPACT_MIN_STALE and stale > len(valid):
            self._compact(valid)
        return valid

    def _compact(self, valid):
        """Atomically rewrite the journal with only the valid records."""
        self.close()
        directory = os.path.dirname(self.path) or "."
        try:
            handle, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(handle, "w") as tmp:
                for record, _stats in valid:
                    tmp.write(json.dumps(record, sort_keys=True) + "\n")
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_path, self.path)
        except OSError:
            pass


# -- pool plumbing -------------------------------------------------------------------
def _mp_context(start_method=None):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:          # platforms without fork
        return multiprocessing.get_context("spawn")


def _attach_shared_traces(descriptors):
    """Zero-copy attach to the parent's shared-memory trace segments.

    Returns ``({(workload, budget): ColumnarTrace}, [SharedMemory])`` —
    the segments ride along so the buffers outlive the column views.  A
    segment that cannot be attached or validated is simply skipped: the
    worker falls back to the disk cache / emulator for that workload.
    """
    traces = {}
    segments = []
    if not descriptors:
        return traces, segments
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return traces, segments
    for workload_name, (shm_name, nbytes, budget) in descriptors.items():
        try:
            segment = shared_memory.SharedMemory(name=shm_name)
        except (OSError, ValueError):
            continue
        try:
            trace = ColumnarTrace.from_buffer(segment.buf)
        except (TraceFormatError, ValueError):
            segment.close()
            continue
        # Workers share the parent's resource tracker (its fd travels
        # through both fork and spawn), so the attach-time re-register
        # is idempotent; ownership and unlinking stay with the parent.
        traces[(workload_name, budget)] = trace
        segments.append(segment)
    return traces, segments


def _worker_main(worker_id, task_q, result_q, workload_names, instructions,
                 trace_descriptors=None, cache_dir=None):
    """Pool worker: pull (point, attempt) tasks until told to stop.

    Workers attach the parent's shared-memory traces zero-copy (falling
    back to the disk trace cache, then the emulator), report results (or
    exceptions) over ``result_q``, and apply any env-gated injection
    plan — the parent stays in control of retries because the attempt
    number travels with the task.
    """
    faults.mark_worker()
    plan = faults.FaultPlan.from_env()
    from repro.workloads import get_workload, suite

    traces, _segments = _attach_shared_traces(trace_descriptors)
    if traces:
        # The shared trace pages are immutable for the worker's whole
        # life: freeze them (and everything else already allocated) out
        # of the collector so GC passes never scan or CoW-dirty them.
        import gc

        gc.freeze()
    trace_cache = TraceCache(cache_dir) if cache_dir is not None else None
    runner = ExperimentRunner(workloads=suite(workload_names),
                              instructions=instructions,
                              trace_cache=trace_cache, traces=traces)
    try:
        while True:
            message = task_q.get()
            if not message or message[0] == "stop":
                break
            _, index, workload_name, config_name, attempt = message
            try:
                plan.maybe_error(workload_name, config_name, attempt)
                plan.maybe_hang(workload_name, config_name, attempt)
                plan.maybe_kill(workload_name, config_name, attempt)
                record = runner.run(get_workload(workload_name), config_name)
                payload = plan.maybe_corrupt(asdict(record.stats),
                                             workload_name, config_name,
                                             attempt)
                result_q.put(("done", worker_id, index, payload))
            except Exception as exc:
                result_q.put(("error", worker_id, index, repr(exc)))
    finally:
        # Release every exported buffer pointer before detaching, so the
        # segments close cleanly instead of erroring in __del__.
        for trace in traces.values():
            trace.release()
        for segment in _segments:
            try:
                segment.close()
            except (OSError, BufferError):
                pass


@dataclass
class _Point:
    """Parent-side state of one sweep point."""

    index: int
    workload: object
    config_name: str
    fingerprint: str
    budget: int
    attempts: int = 0
    status: str = "pending"        # pending | running | done | quarantined

    @property
    def label(self):
        return f"{self.workload.name}/{self.config_name}"


class _Worker:
    """One pool worker process plus its private task queue."""

    def __init__(self, wid, ctx, result_q, workload_names, instructions,
                 trace_descriptors=None, cache_dir=None):
        self.wid = wid
        self.task_q = ctx.SimpleQueue()
        self.point = None
        self.deadline = None
        self.process = ctx.Process(
            target=_worker_main,
            args=(wid, self.task_q, result_q, workload_names, instructions,
                  trace_descriptors, cache_dir),
            daemon=True)
        self.process.start()

    def assign(self, point, timeout):
        point.status = "running"
        self.point = point
        self.deadline = monotonic() + timeout if timeout else None
        self.task_q.put(("run", point.index, point.workload.name,
                         point.config_name, point.attempts))

    def release(self):
        self.point = None
        self.deadline = None

    def kill(self):
        self.process.kill()
        self.process.join(1.0)

    def stop(self):
        if self.process.is_alive():
            try:
                self.task_q.put(("stop",))
            except (OSError, ValueError):
                pass
            self.process.join(0.5)
            if self.process.is_alive():
                self.kill()


# -- the runner ----------------------------------------------------------------------
class OrchestratedRunner(ExperimentRunner):
    """A fault-tolerant, journaled :class:`ExperimentRunner`.

    Single-point :meth:`run` calls (and ``jobs=1``) stay serial in the
    parent — custom non-picklable configs keep working, and every fresh
    result is still journaled; only :meth:`run_all` sweeps fan out to
    the worker pool.
    """

    def __init__(self, workloads=None, instructions=None, verbose=False,
                 cache=None, jobs=None, journal=None, resume=True,
                 tracer=None, orchestration=None, profile_stages=False):
        super().__init__(workloads=workloads, instructions=instructions,
                         verbose=verbose, cache=cache,
                         profile_stages=profile_stages)
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.orchestration = orchestration or OrchestratorConfig()
        self.resume = resume
        self.last_fault_report = None
        self.fault_reports = []      # one per run_all, in call order
        if journal is not None and not isinstance(journal, SweepJournal):
            journal = SweepJournal(journal)
        self.journal = journal
        self._journal_opened = False
        self._journaled = set()          # keys already recorded on disk
        self._journal_admitted = set()   # keys admitted from replay
        self._active_report = None
        self._fault_plan = None          # parsed lazily from the env
        self._sweep_started = 0.0        # monotonic() at run_all entry

    # -- journaling ----------------------------------------------------------------
    def _ensure_journal(self):
        """Open (and on resume, replay) the journal exactly once."""
        if self.journal is None or self._journal_opened:
            return
        self._journal_opened = True
        if not self.resume:
            self.journal.reset()
            return
        by_name = {workload.name: workload for workload in self.workloads}
        for record, stats in self.journal.replay():
            workload = by_name.get(record["workload"])
            if (workload is None
                    or record["instructions"] != self.budget_for(workload)):
                continue       # journaled under a different sweep spec
            key = (record["workload"], record["config_name"],
                   record["fingerprint"])
            self._journaled.add(key)
            if key in self._results:
                continue
            self.admit(RunRecord(record["workload"], record["config_name"],
                                 stats),
                       record["config_name"], record["fingerprint"])
            self._journal_admitted.add(key)
            if self.cache is not None:
                disk_key = simulation_key(record["workload"],
                                          record["instructions"],
                                          record["fingerprint"])
                if not self.cache.has(disk_key):
                    self.cache.store(disk_key, record["workload"],
                                     record["config_name"],
                                     record["instructions"], stats)

    def _journal_point(self, workload_name, config_name, fingerprint,
                       budget, stats):
        if self.journal is None:
            return
        self._ensure_journal()
        key = (workload_name, config_name, fingerprint)
        if key in self._journaled:
            return
        self.journal.record(workload_name, config_name, fingerprint,
                            budget, stats)
        self._journaled.add(key)

    # -- serial path ---------------------------------------------------------------
    def run(self, workload, config_name, config=None):
        self._ensure_journal()
        fingerprint = self.fingerprint_of(config_name, config)
        fresh = (workload.name, config_name, fingerprint) not in self._results
        if fresh:
            # With REPRO_FAULT_SCOPE=all, the error fault also fires on
            # the parent's serial path: a genuinely poisoned point must
            # fail the sweep loudly, not hide behind the fallback.
            if self._fault_plan is None:
                self._fault_plan = faults.FaultPlan.from_env()
            if self._fault_plan.active:
                self._fault_plan.maybe_error(workload.name, config_name, 1)
        record = super().run(workload, config_name, config)
        if fresh:
            self._journal_point(workload.name, config_name, fingerprint,
                                self.budget_for(workload), record.stats)
            if self._active_report is not None:
                self._active_report.completed_serial += 1
                self._emit_point(workload.name, config_name, "serial")
        return record

    def _emit_point(self, workload_name, config_name, source):
        """One ``point_done`` event on the sweep's wall-clock axis.

        The pool path narrates its points from inside :meth:`_fan_out`;
        this covers every other way a sweep point resolves (memo,
        journal replay, disk cache, serial in-parent computation), so an
        event feed sees *every* point of a ``run_all`` exactly once —
        including on one-core hosts where the pool never engages.
        """
        self.tracer.event(round(monotonic() - self._sweep_started, 3),
                          "point_done",
                          point=f"{workload_name}/{config_name}",
                          source=source)

    # -- trace distribution --------------------------------------------------------
    def _trace_blob_of(self, workload):
        """The packed ``.rtrc`` image for *workload*, materialized once.

        Resolution order mirrors :meth:`trace_of`: in-process memo →
        disk trace cache → one emulator run (packed and persisted).
        Trace-source accounting happens in :meth:`run_all` by deltaing
        the runner/cache counters, so serial and pool paths report
        through one mechanism.
        """
        budget = self.budget_for(workload)
        memo = self._traces.get((workload.name, budget))
        if isinstance(memo, ColumnarTrace):
            return memo.to_bytes()
        if self.trace_cache is not None:
            blob = self.trace_cache.load_bytes(trace_key(workload.name,
                                                         budget))
            if blob is not None:
                return blob
        from repro.emulator.trace import trace_program

        uops, _stats = trace_program(workload.program,
                                     max_instructions=budget)
        self.trace_emulations += 1
        trace = ColumnarTrace.from_uops(uops, keep_views=True)
        self._traces[(workload.name, budget)] = trace
        blob = trace.to_bytes()
        if self.trace_cache is not None:
            self.trace_cache.store_bytes(trace_key(workload.name, budget),
                                         blob)
        return blob

    def _share_traces(self, pending, report):
        """Copy each pending workload's trace into shared memory once.

        Returns ``({workload_name: (shm_name, nbytes, budget)},
        [SharedMemory])``.  The parent owns the segments and unlinks
        them when the pool drains; a failed allocation (no /dev/shm,
        exotic platforms) leaves the remaining workloads undistributed
        and the workers fall back to the disk cache.
        """
        try:
            from multiprocessing import shared_memory
        except ImportError:
            return {}, []
        descriptors = {}
        segments = []
        seen = set()
        for workload, _name, _fingerprint in pending:
            if workload.name in seen:
                continue
            seen.add(workload.name)
            blob = self._trace_blob_of(workload)
            try:
                segment = shared_memory.SharedMemory(create=True,
                                                     size=len(blob))
            except OSError:
                break
            segment.buf[:len(blob)] = blob
            segments.append(segment)
            descriptors[workload.name] = (segment.name, len(blob),
                                          self.budget_for(workload))
            report.traces_shared += 1
        return descriptors, segments

    @staticmethod
    def _release_segments(segments):
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except (OSError, BufferError):
                pass

    # -- the sweep -----------------------------------------------------------------
    def run_all(self, config_names):
        """Run every workload under every named config; returns
        {config_name: {workload_name: RunRecord}} exactly as the serial
        runner would, surviving worker crashes, hangs and corruption."""
        self._ensure_journal()
        config_names = list(config_names)
        report = FaultReport()
        self.last_fault_report = report
        self.fault_reports.append(report)
        self._active_report = report
        started = monotonic()
        self._sweep_started = started
        trace_hits_base = (self.trace_cache.hits
                           if self.trace_cache is not None else 0)
        trace_emu_base = self.trace_emulations
        try:
            pending = []
            for workload in self.workloads:
                for name in config_names:
                    fingerprint = self.fingerprint_of(name)
                    key = (workload.name, name, fingerprint)
                    report.points_total += 1
                    if key in self._results:
                        if key in self._journal_admitted:
                            report.from_journal += 1
                            self._emit_point(workload.name, name, "journal")
                        else:
                            report.from_memo += 1
                            self._emit_point(workload.name, name, "memo")
                        continue
                    budget = self.budget_for(workload)
                    if self.cache is not None:
                        disk_key = simulation_key(workload.name, budget,
                                                  fingerprint)
                        stats = self.cache.load(disk_key)
                        if stats is not None:
                            self.admit(RunRecord(workload.name, name, stats),
                                       name, fingerprint)
                            self._journal_point(workload.name, name,
                                                fingerprint, budget, stats)
                            report.from_cache += 1
                            self._emit_point(workload.name, name, "cache")
                            continue
                    pending.append((workload, name, fingerprint))
            if pending and self._worker_target(len(pending)) > 1:
                self._fan_out(pending, report)
            # Anything the pool could not finish (quarantined points, a
            # degraded pool, jobs=1) is computed serially right here.
            out = {name: {} for name in config_names}
            for workload in self.workloads:
                for name in config_names:
                    out[name][workload.name] = self.run(workload, name)
            return out
        finally:
            report.wall_seconds = monotonic() - started
            if self.trace_cache is not None:
                report.trace_cache_hits = (self.trace_cache.hits
                                           - trace_hits_base)
            report.trace_emulations = self.trace_emulations - trace_emu_base
            self._active_report = None

    def _worker_target(self, n_points):
        """Workers to actually spawn: ``jobs`` is an upper bound.

        There is never a reason to run more CPU-bound workers than
        points, and (unless ``oversubscribe``) than cores — on a one-core
        host a ``--jobs 4`` sweep degrades ~1.5x from pure scheduler
        thrash, so the clamp IS the fast path there (serial in-parent,
        no fork/IPC at all).
        """
        target = min(self.jobs, n_points)
        if not self.orchestration.oversubscribe:
            target = min(target, default_jobs())
        return max(1, target)

    # -- the fault-tolerant pool ---------------------------------------------------
    def _fan_out(self, pending, report):
        cfg = self.orchestration
        timeout = cfg.resolved_timeout()
        points = [_Point(index, workload, name, fingerprint,
                         self.budget_for(workload))
                  for index, (workload, name, fingerprint)
                  in enumerate(pending)]
        ready = deque(points)
        waiting = []                       # heap of (due, index, point)
        ctx = _mp_context(cfg.start_method)
        result_q = ctx.Queue()
        workload_names = [workload.name for workload in self.workloads]
        trace_descriptors, trace_segments = self._share_traces(pending,
                                                               report)
        cache_dir = self.cache.directory if self.cache is not None else None
        workers = {}
        state = {"next_wid": 0, "respawns": 0, "active": len(points),
                 "degraded": False}
        started = monotonic()
        next_beat = started + cfg.heartbeat_interval

        def emit(kind, **payload):
            self.tracer.event(round(monotonic() - started, 3), kind,
                              **payload)

        def spawn():
            worker = _Worker(state["next_wid"], ctx, result_q,
                             workload_names, self.instructions,
                             trace_descriptors, cache_dir)
            workers[worker.wid] = worker
            state["next_wid"] += 1
            emit("worker_spawn", worker=worker.wid)

        def complete(point, stats):
            if point.status not in ("pending", "running"):
                return       # stale duplicate after a kill race/quarantine
            point.status = "done"
            state["active"] -= 1
            record = RunRecord(point.workload.name, point.config_name, stats)
            self.admit(record, point.config_name, point.fingerprint)
            if self.cache is not None:
                disk_key = simulation_key(point.workload.name, point.budget,
                                          point.fingerprint)
                self.cache.store(disk_key, point.workload.name,
                                 point.config_name, point.budget, stats)
            self._journal_point(point.workload.name, point.config_name,
                                point.fingerprint, point.budget, stats)
            report.completed_pool += 1
            emit("point_done", point=point.label, attempts=point.attempts,
                 source="pool")
            if self.verbose:
                print(f"    ran {point.workload.name} / {point.config_name}: "
                      f"IPC={record.ipc:.3f}  [worker]")

        def fail(point, reason):
            if point.status in ("done", "quarantined"):
                return
            if point.attempts >= cfg.max_attempts:
                point.status = "quarantined"
                state["active"] -= 1
                report.quarantined.append({
                    "workload": point.workload.name,
                    "config": point.config_name,
                    "attempts": point.attempts,
                    "last_failure": reason,
                })
                emit("point_quarantined", point=point.label,
                     attempts=point.attempts, reason=reason)
            else:
                point.status = "pending"
                report.retries += 1
                delay = min(cfg.backoff_cap,
                            cfg.backoff_base * (2 ** (point.attempts - 1)))
                heappush(waiting, (monotonic() + delay, point.index, point))
                emit("point_retry", point=point.label,
                     attempt=point.attempts, reason=reason,
                     backoff=round(delay, 3))

        def worker_lost(worker, reason):
            point = worker.point
            worker.release()
            workers.pop(worker.wid, None)
            worker.process.join(0.2)
            if reason == "hang":
                report.timeouts += 1
            else:
                report.worker_crashes += 1
            emit("worker_crash", worker=worker.wid, reason=reason,
                 point=point.label if point else None)
            if point is not None:
                fail(point, reason)
            state["respawns"] += 1
            if state["respawns"] > cfg.max_respawns:
                state["degraded"] = True
            else:
                report.worker_respawns += 1
                spawn()

        worker_target = self._worker_target(len(points))
        emit("sweep_begin", points=len(points), workers=worker_target)
        for _ in range(worker_target):
            spawn()
        try:
            while state["active"] > 0 and not state["degraded"]:
                now = monotonic()
                while waiting and waiting[0][0] <= now:
                    _, _, point = heappop(waiting)
                    if point.status == "pending":
                        ready.append(point)
                for worker in workers.values():
                    if worker.point is not None or not ready:
                        continue
                    point = ready.popleft()
                    if point.status != "pending":
                        continue
                    point.attempts += 1
                    worker.assign(point, timeout)
                    emit("point_start", point=point.label,
                         attempt=point.attempts, worker=worker.wid)
                message = None
                try:
                    message = result_q.get(timeout=cfg.poll_interval)
                except queue.Empty:
                    pass
                except (EOFError, OSError):
                    report.corrupt_payloads += 1
                if message is not None:
                    kind, wid, index = message[0], message[1], message[2]
                    point = points[index]
                    worker = workers.get(wid)
                    if worker is not None and worker.point is point:
                        worker.release()
                    if kind == "done":
                        stats = stats_from_payload(message[3])
                        if stats is None:
                            report.corrupt_payloads += 1
                            emit("payload_corrupt", point=point.label)
                            fail(point, "corrupt payload")
                        else:
                            complete(point, stats)
                    elif kind == "error":
                        report.worker_errors += 1
                        fail(point, message[3])
                now = monotonic()
                for worker in list(workers.values()):
                    if not worker.process.is_alive():
                        worker_lost(worker, "crash")
                    elif (worker.deadline is not None
                          and now > worker.deadline):
                        worker.kill()
                        worker_lost(worker, "hang")
                if now >= next_beat:
                    in_flight = sum(1 for worker in workers.values()
                                    if worker.point is not None)
                    emit("heartbeat", done=len(points) - state["active"],
                         active=state["active"], in_flight=in_flight,
                         retries=report.retries)
                    next_beat = now + cfg.heartbeat_interval
                if not ready and message is None and waiting:
                    sleep(min(cfg.poll_interval,
                              max(0.0, waiting[0][0] - monotonic())))
        finally:
            for worker in list(workers.values()):
                worker.stop()
            self._release_segments(trace_segments)
        if state["degraded"]:
            report.degraded_to_serial = True
            emit("sweep_degraded", remaining=state["active"])
        emit("sweep_end", completed=report.completed_pool,
             quarantined=len(report.quarantined),
             degraded=report.degraded_to_serial)
