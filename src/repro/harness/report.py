"""ASCII reporting of experiment results."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class ExperimentResult:
    """A rendered experiment: a titled table plus comparison notes."""

    experiment_id: str          # e.g. "fig3"
    title: str
    headers: List[str]
    rows: List[list]
    notes: List[str] = field(default_factory=list)
    raw: dict = field(default_factory=dict)   # machine-readable payload

    def format(self):
        return format_table(self.title, self.headers, self.rows, self.notes)

    def print(self):
        print(self.format())


def _cell(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(title, headers, rows, notes=()):
    """Monospace table with a title rule and optional trailing notes."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) if _is_numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    for note in notes:
        lines.append(f"  * {note}")
    return "\n".join(lines) + "\n"


def _is_numeric(cell):
    try:
        float(cell.replace("%", "").replace("+", ""))
        return True
    except ValueError:
        return False


def pct(value, signed=True):
    """Format a percentage cell."""
    return f"{value:+.2f}%" if signed else f"{value:.2f}%"
