"""Parallel (workload × config) fan-out for experiment sweeps.

Every simulation point in a sweep is independent — the timing model is a
pure function of (trace, config) — so :class:`ParallelRunner` dispatches
them across a ``ProcessPoolExecutor`` and merges the results in the same
deterministic order the serial runner would have produced them.  The
merged payload is bit-identical to a serial run: workers return the exact
:class:`~repro.harness.runner.RunRecord` a serial run would compute, and
the parent admits them in the fixed (workload-major, config-minor) point
order.

Workers are seeded with (workload names, instruction budget) — both
trivially picklable — and rebuild their own runner, memoizing traces per
process so a workload traced once serves every config that lands on the
same worker.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.harness.cache import simulation_key
from repro.harness.runner import ExperimentRunner, RunRecord

_WORKER_RUNNER = None


def _init_worker(workload_names, instructions):
    """Build this worker's private runner (traces memoized per process)."""
    global _WORKER_RUNNER
    from repro.workloads import suite

    _WORKER_RUNNER = ExperimentRunner(workloads=suite(workload_names),
                                      instructions=instructions)


def _simulate_point(point):
    """Run one (workload name, config name) point in a worker."""
    workload_name, config_name = point
    from repro.workloads import get_workload

    return _WORKER_RUNNER.run(get_workload(workload_name), config_name)


def default_jobs():
    """Worker count when ``--jobs`` is not given."""
    return max(1, os.cpu_count() or 1)


class ParallelRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` whose sweeps fan out across processes.

    Single-point :meth:`run` calls (and ``jobs=1``) stay serial in the
    parent, so custom non-picklable configs keep working; only
    :meth:`run_all` sweeps are dispatched to the pool.
    """

    def __init__(self, workloads=None, instructions=None, verbose=False,
                 cache=None, jobs=None):
        super().__init__(workloads=workloads, instructions=instructions,
                         verbose=verbose, cache=cache)
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def run_all(self, config_names):
        """Run every workload under every named config; returns
        {config_name: {workload_name: RunRecord}} exactly as the serial
        runner would."""
        config_names = list(config_names)
        pending = []
        for workload in self.workloads:
            for name in config_names:
                fingerprint = self.fingerprint_of(name)
                key = (workload.name, name, fingerprint)
                if key in self._results:
                    continue
                if self.cache is not None:
                    disk_key = simulation_key(workload.name,
                                              self.budget_for(workload),
                                              fingerprint)
                    stats = self.cache.load(disk_key)
                    if stats is not None:
                        self.admit(RunRecord(workload.name, name, stats),
                                   name, fingerprint)
                        continue
                pending.append((workload, name, fingerprint))

        if pending and self.jobs > 1:
            self._fan_out(pending)
        # Serial fallback (jobs=1 or nothing pending) falls through to
        # the memoized per-point path below.
        out = {name: {} for name in config_names}
        for workload in self.workloads:
            for name in config_names:
                out[name][workload.name] = self.run(workload, name)
        return out

    def _fan_out(self, pending):
        """Simulate *pending* points in a worker pool; admit in order."""
        workload_names = [workload.name for workload in self.workloads]
        points = [(workload.name, name) for workload, name, _ in pending]
        workers = min(self.jobs, len(points))
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker,
                initargs=(workload_names, self.instructions)) as pool:
            records = list(pool.map(_simulate_point, points, chunksize=1))
        for (workload, name, fingerprint), record in zip(pending, records):
            self.admit(record, name, fingerprint)
            if self.cache is not None:
                disk_key = simulation_key(workload.name,
                                          self.budget_for(workload),
                                          fingerprint)
                self.cache.store(disk_key, workload.name, name,
                                 self.budget_for(workload), record.stats)
            if self.verbose:
                print(f"    ran {workload.name} / {name}: "
                      f"IPC={record.ipc:.3f}  [worker]")


def make_runner(workloads=None, instructions=None, verbose=False,
                cache=None, jobs=None):
    """The right runner for a job count: parallel when jobs > 1."""
    jobs = jobs if jobs is not None else default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1:
        return ParallelRunner(workloads=workloads, instructions=instructions,
                              verbose=verbose, cache=cache, jobs=jobs)
    return ExperimentRunner(workloads=workloads, instructions=instructions,
                            verbose=verbose, cache=cache)
