"""Parallel (workload × config) fan-out for experiment sweeps.

The original fire-and-forget ``ProcessPoolExecutor`` pool that lived
here is gone: sweep fan-out is now the fault-tolerant, journaled engine
in :mod:`repro.harness.orchestrator` (per-point timeouts, retry with
backoff, worker respawn, quarantine, durable resume).
:class:`ParallelRunner` remains as the established name — it *is* an
:class:`~repro.harness.orchestrator.OrchestratedRunner` — and
:func:`make_runner` keeps picking the right runner for a job count.

Determinism is unchanged: workers return the exact
:class:`~repro.harness.runner.RunRecord` a serial run would compute and
the parent admits them in the fixed (workload-major, config-minor)
point order, so merged payloads stay bit-identical to a serial run.

Traces are distributed zero-copy: the parent packs (or disk-cache
loads) each workload's columnar ``.rtrc`` image once, places it in a
``multiprocessing.shared_memory`` segment, and workers attach
read-only views — no per-worker emulation, no per-worker deserialize,
one physical copy of every trace regardless of pool width.  Sweeps
that stay serial (``jobs=1``, or ``jobs`` clamped to a small CPU
count) read the same images straight from the mmap'd disk cache.
"""

from repro.harness.orchestrator import (OrchestratedRunner, default_jobs,
                                        default_journal_path)
from repro.harness.runner import ExperimentRunner

__all__ = ["ParallelRunner", "default_jobs", "default_journal_path",
           "make_runner"]


class ParallelRunner(OrchestratedRunner):
    """An :class:`ExperimentRunner` whose sweeps fan out across processes.

    Single-point :meth:`run` calls (and ``jobs=1``) stay serial in the
    parent, so custom non-picklable configs keep working; only
    :meth:`run_all` sweeps are dispatched to the pool.
    """


def make_runner(workloads=None, instructions=None, verbose=False,
                cache=None, jobs=None, journal=None, resume=True,
                tracer=None, orchestration=None, profile_stages=False):
    """The right runner for a job count: parallel when jobs > 1, and an
    orchestrated (journaling) serial runner when a journal or tracer is
    requested with jobs = 1.  ``profile_stages`` forces the serial path:
    per-stage wall times accumulate in the parent process only."""
    jobs = jobs if jobs is not None else default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if profile_stages:
        jobs = 1
    if jobs > 1:
        return ParallelRunner(workloads=workloads, instructions=instructions,
                              verbose=verbose, cache=cache, jobs=jobs,
                              journal=journal, resume=resume, tracer=tracer,
                              orchestration=orchestration)
    if journal is not None or tracer is not None:
        return OrchestratedRunner(workloads=workloads,
                                  instructions=instructions, verbose=verbose,
                                  cache=cache, jobs=1, journal=journal,
                                  resume=resume, tracer=tracer,
                                  orchestration=orchestration,
                                  profile_stages=profile_stages)
    return ExperimentRunner(workloads=workloads, instructions=instructions,
                            verbose=verbose, cache=cache,
                            profile_stages=profile_stages)
