"""Workload characterization: the analysis behind Figs. 1-2.

``characterize(workload)`` runs the functional emulator and summarizes the
properties the paper's reasoning depends on — instruction mix, µop
expansion, branch and value behaviour, VP-eligibility and the
narrow-value share.  Exposed as ``python -m repro.harness characterize``.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.emulator.trace import trace_program
from repro.isa.bits import fits_signed
from repro.isa.opcodes import ExecClass, FP_OPS
from repro.rename.renamer import vp_eligible


@dataclass
class Characterization:
    """Per-workload profile summary."""

    name: str
    arch_instructions: int = 0
    uops: int = 0
    expansion: float = 1.0
    mix: Dict[str, float] = field(default_factory=dict)   # % of µops
    branch_share: float = 0.0
    taken_share: float = 0.0
    load_share: float = 0.0
    store_share: float = 0.0
    fp_share: float = 0.0
    vp_eligible_share: float = 0.0
    zero_share: float = 0.0      # of GPR-writer results
    one_share: float = 0.0
    narrow9_share: float = 0.0
    top_values: list = field(default_factory=list)
    static_pcs: int = 0
    static_eligible_pcs: int = 0


_MIX_BUCKETS = {
    ExecClass.INT_ALU: "int_alu",
    ExecClass.INT_MUL: "int_mul",
    ExecClass.INT_DIV: "int_div",
    ExecClass.FP_ALU: "fp",
    ExecClass.FP_MUL: "fp",
    ExecClass.FP_DIV: "fp",
    ExecClass.LOAD: "load",
    ExecClass.STORE: "store",
    ExecClass.BRANCH: "branch",
    ExecClass.NOP: "nop",
}


def characterize(workload, instructions=10_000):
    """Profile one workload functionally (no timing model involved)."""
    trace, stats = trace_program(workload.program,
                                 max_instructions=instructions)
    profile = Characterization(name=workload.name)
    profile.arch_instructions = stats.arch_instructions
    profile.uops = stats.uops
    profile.expansion = stats.expansion_ratio

    mix = Counter()
    values = Counter()
    gpr_writers = 0
    eligible = 0
    pcs = set()
    eligible_pcs = set()
    taken = 0
    branches = 0
    for uop in trace:
        mix[_MIX_BUCKETS[uop.cls]] += 1
        pcs.add(uop.pc)
        if uop.is_branch:
            branches += 1
            taken += 1 if uop.taken else 0
        if vp_eligible(uop):
            eligible += 1
            eligible_pcs.add(uop.pc)
        if uop.dst is not None and not uop.dst_is_fp:
            gpr_writers += 1
            values[uop.result] += 1
        if uop.op in FP_OPS:
            mix["fp"] += 0  # already bucketed; keeps the key present

    total = max(len(trace), 1)
    profile.mix = {k: 100.0 * v / total for k, v in sorted(mix.items())}
    profile.branch_share = 100.0 * branches / total
    profile.taken_share = 100.0 * taken / branches if branches else 0.0
    profile.load_share = profile.mix.get("load", 0.0)
    profile.store_share = profile.mix.get("store", 0.0)
    profile.fp_share = profile.mix.get("fp", 0.0)
    profile.vp_eligible_share = 100.0 * eligible / total
    writers = max(gpr_writers, 1)
    profile.zero_share = 100.0 * values.get(0, 0) / writers
    profile.one_share = 100.0 * values.get(1, 0) / writers
    narrow = sum(n for v, n in values.items() if fits_signed(v, 9))
    profile.narrow9_share = 100.0 * narrow / writers
    profile.top_values = values.most_common(5)
    profile.static_pcs = len(pcs)
    profile.static_eligible_pcs = len(eligible_pcs)
    return profile


def run_characterize(runner):
    """Harness experiment: one row per workload."""
    from repro.harness.report import ExperimentResult

    rows = []
    raw = {}
    for workload in runner.workloads:
        budget = runner.instructions or 10_000
        profile = characterize(workload, instructions=budget)
        raw[workload.name] = profile
        rows.append([
            workload.name,
            f"{profile.expansion:.3f}",
            f"{profile.branch_share:.1f}%",
            f"{profile.load_share:.1f}%",
            f"{profile.fp_share:.1f}%",
            f"{profile.vp_eligible_share:.1f}%",
            f"{profile.zero_share:.1f}%",
            f"{profile.narrow9_share:.1f}%",
            str(profile.static_eligible_pcs),
        ])
    notes = [
        "zero%/narrow9% are over GPR-writing µops (the Fig. 1 population)",
        "static eligible PCs bounds how much predictor capacity matters "
        "(see the capacity ablation)",
    ]
    return ExperimentResult(
        "characterize", "Workload characterization (functional profile)",
        ["workload", "uops/inst", "branch", "load", "fp", "VP-elig",
         "zero", "narrow9", "elig PCs"],
        rows, notes, raw=raw)
