"""Command-line entry point: ``python -m repro.harness <experiment...>``.

Examples::

    python -m repro.harness fig3
    python -m repro.harness fig3 fig5 --instructions 20000
    python -m repro.harness all --workloads xml_tree,hash_loop
    repro-harness table2
"""

import argparse
import json
import sys
import time

from repro.harness.cache import SimulationCache
from repro.harness.experiments import EXPERIMENTS
from repro.harness.parallel import default_jobs, make_runner


def _jsonable(value):
    """Best-effort conversion of raw experiment payloads to JSON."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="+",
                        help="experiment ids (%s) or 'all'"
                             % ", ".join(sorted(EXPERIMENTS)))
    parser.add_argument("--instructions", type=int, default=None,
                        help="dynamic instruction budget per workload "
                             "(default: each workload's own default)")
    parser.add_argument("--workloads", type=str, default=None,
                        help="comma-separated subset of workload names")
    parser.add_argument("--verbose", action="store_true",
                        help="print each simulation as it finishes")
    parser.add_argument("--save", type=str, default=None, metavar="FILE",
                        help="also write machine-readable results as JSON")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for (workload x config) "
                             "sweeps (default: all cores, %d here)"
                             % default_jobs())
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the on-disk "
                             "simulation result cache")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="simulation cache location (default: "
                             ".repro-cache, or $REPRO_CACHE_DIR)")
    return parser


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("audit", "lint"):
        # Static-analysis subcommands (repro.analysis): `harness audit`
        # verifies + cross-checks the kernels, `harness lint` runs the
        # simulator determinism lint.
        from repro.analysis.cli import main as analysis_main

        return analysis_main(argv)
    if argv and argv[0] == "trace":
        # Observability subcommand: one traced simulation, exported as a
        # Konata/gem5 O3PipeView text trace and a JSONL event stream.
        from repro.observability.cli import main as trace_main

        return trace_main(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    names = list(args.experiments)
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    workloads = None
    if args.workloads:
        from repro.workloads import suite

        workloads = suite(args.workloads.split(","))
    cache = None if args.no_cache else SimulationCache(args.cache_dir)
    runner = make_runner(workloads=workloads,
                         instructions=args.instructions,
                         verbose=args.verbose,
                         cache=cache,
                         jobs=args.jobs)
    saved = {}
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](runner)
        result.print()
        print(f"[{name} completed in {time.time() - started:.1f}s]\n")
        saved[name] = {
            "title": result.title,
            "headers": result.headers,
            "rows": _jsonable(result.rows),
            "notes": result.notes,
            "raw": _jsonable(result.raw),
        }
    if args.save:
        with open(args.save, "w") as handle:
            json.dump(saved, handle, indent=2)
        print(f"[results saved to {args.save}]")
    if cache is not None:
        print(f"[{cache.summary()}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
