"""Command-line entry point: ``python -m repro.harness <subcommand>``.

Subcommands::

    harness run <experiment...>    regenerate tables/figures
    harness sweep                  raw (workload x config) sweep
    harness explore                design-space exploration with Pareto
                                   reports (--space/--strategy/--seed)
    harness trace <workload>       one traced simulation (observability)
    harness audit                  kernel verifier + elimination cross-check
    harness lint                   simulator determinism lint
    harness headroom <workload>    analytic cycle lower bounds + headroom
                                   attribution (also: headroom --all)
    harness cache info|clear|prune inspect / clear / LRU-cap the on-disk
                                   result + trace + journal stores
    harness serve                  run the async job service (HTTP)
    harness submit / poll          client side of a running service

Every simulation-running subcommand shares one common flag set
(``--jobs/--cache-dir/--no-cache/--instructions/--workloads/--save`` plus
the journal controls ``--journal/--no-journal/--resume/--no-resume``).
Sweeps are journaled by default: an interrupted run re-invoked with the
same command resumes from ``<cache-dir>/journals/`` with zero
recomputation (see EXPERIMENTS.md).

``--save`` files wear the unified envelope (:mod:`repro.envelope`):
every document opens with ``schema``/``code_version``/``fingerprint``
and sweep documents are exactly ``SweepResult.to_dict()`` plus the
fault report as an explicit provenance field.

The historical bare spelling ``harness fig3`` is retired (it warned for
one release); it now exits with a pointer to ``harness run fig3``.

Examples::

    python -m repro.harness run fig3 fig5 --instructions 20000
    python -m repro.harness sweep --configs baseline,tvp --jobs 8
    python -m repro.harness run all --workloads xml_tree,hash_loop
    repro-harness run table2
"""

import argparse
import json
import sys
import time

from repro.harness.cache import SimulationCache
from repro.harness.experiments import EXPERIMENTS, STANDARD_CONFIGS
from repro.harness.orchestrator import FaultReport, default_journal_path
from repro.harness.parallel import default_jobs, make_runner
from repro.harness.report import format_table


def _jsonable(value):
    """JSON conversion of experiment payloads.

    Anything with a documented ``to_dict()`` (RunRecord, FaultReport,
    the api result types) is converted through it; remaining exotic
    values (ad-hoc dataclasses in ``raw``) fall back to ``str``.
    """
    if hasattr(value, "to_dict"):
        return _jsonable(value.to_dict())
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


# -- shared flags --------------------------------------------------------------------
def _common_flags():
    """The one flag parser every simulation subcommand inherits."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--instructions", type=int, default=None,
                        help="dynamic instruction budget per workload "
                             "(default: each workload's own default)")
    common.add_argument("--workloads", type=str, default=None,
                        help="comma-separated subset of workload names")
    common.add_argument("--verbose", action="store_true",
                        help="print each simulation as it finishes")
    common.add_argument("--save", type=str, default=None, metavar="FILE",
                        help="also write machine-readable results as JSON")
    common.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for (workload x config) "
                             "sweeps (default: all cores, %d here)"
                             % default_jobs())
    common.add_argument("--engine", type=str, default=None,
                        metavar="NAME",
                        help="timing-core backend (interp or batch; "
                             "default: $REPRO_ENGINE, then interp). "
                             "Backends are counter-identical, so cached "
                             "results are shared across engines.")
    common.add_argument("--profile-stages", action="store_true",
                        help="report wall-time share per pipeline stage "
                             "(fetch/decode/rename/issue/complete/commit) "
                             "over the simulations this invocation "
                             "actually ran (forces --jobs 1; cache hits "
                             "are not profiled — combine with --no-cache "
                             "to profile every point)")
    common.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the on-disk "
                             "simulation result cache")
    common.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="simulation cache location (default: "
                             ".repro-cache, or $REPRO_CACHE_DIR)")
    common.add_argument("--journal", type=str, default=None, metavar="FILE",
                        help="sweep journal location (default: derived "
                             "from the sweep spec under "
                             "<cache-dir>/journals/)")
    common.add_argument("--no-journal", action="store_true",
                        help="disable the durable sweep journal")
    common.add_argument("--resume", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="replay completed points from the journal "
                             "(--no-resume discards it and starts fresh)")
    return common


def build_parser():
    """The `run` subcommand parser (also carries the top-level help)."""
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the paper's tables and figures.",
        parents=[_common_flags()])
    parser.add_argument("experiments", nargs="+",
                        help="experiment ids (%s) or 'all'"
                             % ", ".join(sorted(EXPERIMENTS)))
    return parser


def build_sweep_parser():
    parser = argparse.ArgumentParser(
        prog="repro-harness sweep",
        description="Run a raw fault-tolerant (workload x config) sweep.",
        parents=[_common_flags()])
    parser.add_argument("--configs", type=str,
                        default=",".join(STANDARD_CONFIGS),
                        help="comma-separated named configs "
                             "(default: %(default)s)")
    return parser


def build_explore_parser():
    from repro.dse.space import space_names
    from repro.dse.strategies import strategy_names

    parser = argparse.ArgumentParser(
        prog="repro-harness explore",
        description="Explore a declarative design space and report its "
                    "Pareto frontier (geomean IPC vs hardware cost).",
        parents=[_common_flags()])
    parser.add_argument("--space", type=str, default="smoke",
                        help="parameter space to explore (%s; default: "
                             "%%(default)s)" % ", ".join(space_names()))
    parser.add_argument("--strategy", type=str, default="grid",
                        help="search strategy (%s; default: %%(default)s)"
                             % ", ".join(strategy_names()))
    parser.add_argument("--seed", type=int, default=1,
                        help="seed for the deterministic search stream "
                             "(default: %(default)s)")
    parser.add_argument("--max-points", type=int, default=0, metavar="N",
                        help="evaluate at most N space points "
                             "(default: the whole space)")
    parser.add_argument("--format", type=str, default="markdown",
                        choices=("markdown", "latex", "json"),
                        help="report format on stdout "
                             "(default: %(default)s)")
    return parser


def _runner_from_args(args, parser, label):
    """Build the (orchestrated) runner every subcommand shares."""
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.engine is not None:
        import os

        from repro.pipeline.engine import engine_names

        if args.engine not in engine_names():
            parser.error(f"--engine must be one of {engine_names()}, "
                         f"got {args.engine!r}")
        # The models resolve REPRO_ENGINE themselves, so exporting the
        # choice covers serial runs and sweep worker processes alike.
        os.environ["REPRO_ENGINE"] = args.engine
    workloads = None
    if args.workloads:
        from repro.workloads import suite

        workloads = suite(args.workloads.split(","))
    cache = None if args.no_cache else SimulationCache(args.cache_dir)
    journal = None
    if not args.no_journal:
        journal = args.journal
        if journal is None:
            from repro.workloads import suite

            names = [w.name for w in (workloads if workloads is not None
                                      else suite())]
            journal = default_journal_path(args.cache_dir, names,
                                           args.instructions, label)
    return make_runner(workloads=workloads,
                       instructions=args.instructions,
                       verbose=args.verbose,
                       cache=cache,
                       jobs=args.jobs,
                       journal=journal,
                       resume=args.resume,
                       profile_stages=args.profile_stages)


def _fault_report_of(runner):
    """The invocation-wide FaultReport, or None for plain serial runners."""
    reports = getattr(runner, "fault_reports", None)
    if not reports:
        return None
    return FaultReport.merged(reports)


def _print_stage_profile(runner, saved):
    """--profile-stages epilogue: per-stage wall-time share table."""
    profile = getattr(runner, "stage_profile", None)
    if not getattr(runner, "profile_stages", False):
        return
    if not runner.profiled_runs or not profile:
        print("[--profile-stages: every point came from the cache; "
              "re-run with --no-cache to profile]")
        return
    total = sum(profile.values()) or 1.0
    rows = [[stage, f"{seconds:.3f}", f"{100.0 * seconds / total:.1f}%"]
            for stage, seconds in sorted(profile.items(),
                                         key=lambda kv: -kv[1])]
    print(format_table(
        f"Stage wall time — {runner.profiled_runs} simulated point(s)",
        ["stage", "seconds", "share"], rows))
    saved["stage_profile"] = {
        "runs": runner.profiled_runs,
        "seconds": {k: round(v, 6) for k, v in profile.items()},
    }


def _epilogue(runner, saved, args):
    """Shared tail: fault report, --save, cache summary.

    *saved* is an enveloped payload dict; the fault report and stage
    profile are added as explicit provenance fields (they legitimately
    differ between cold and warm runs of the same request, unlike the
    result body).
    """
    _print_stage_profile(runner, saved)
    report = _fault_report_of(runner)
    if report is not None:
        print(f"[{report.summary()}]")
        saved["fault_report"] = report.to_dict()
    if args.save:
        with open(args.save, "w") as handle:
            json.dump(saved, handle, indent=2)
        print(f"[results saved to {args.save}]")
    if runner.cache is not None:
        print(f"[{runner.cache.summary()}]")


# -- cache management ----------------------------------------------------------------
def _format_bytes(count):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return (f"{count} {unit}" if unit == "B"
                    else f"{count:.1f} {unit}")
        count /= 1024


def _cache_main(argv):
    from repro.harness.cache import TraceCache, cache_usage, clear_cache

    parser = argparse.ArgumentParser(
        prog="repro-harness cache",
        description="Inspect and manage the on-disk cache: simulation "
                    "results (*.json), packed traces (traces/*.rtrc), "
                    "sweep journals (journals/*.jsonl), analysis "
                    "reports (reports/*.json) and the service job "
                    "registry (jobs/*.json).")
    sub = parser.add_subparsers(dest="action", required=True)
    location = argparse.ArgumentParser(add_help=False)
    location.add_argument("--cache-dir", type=str, default=None,
                          metavar="DIR",
                          help="cache location (default: .repro-cache, "
                               "or $REPRO_CACHE_DIR)")
    info = sub.add_parser("info", parents=[location],
                          help="per-category file count and size report")
    info.add_argument("--json", action="store_true",
                      help="machine-readable output")
    clear = sub.add_parser(
        "clear", parents=[location],
        help="delete cache entries (all categories unless narrowed)")
    clear.add_argument("--results", action="store_true",
                       help="only the simulation result entries")
    clear.add_argument("--traces", action="store_true",
                       help="only the packed .rtrc traces")
    clear.add_argument("--journals", action="store_true",
                       help="only the sweep journals")
    clear.add_argument("--reports", action="store_true",
                       help="only the cached analysis reports")
    clear.add_argument("--jobs", action="store_true",
                       help="only the service job registry")
    prune = sub.add_parser(
        "prune", parents=[location],
        help="evict least-recently-used traces down to a size cap")
    prune.add_argument("--max-trace-mb", type=float, required=True,
                       metavar="MB",
                       help="keep at most this many MiB of packed traces")
    args = parser.parse_args(argv)

    if args.action == "info":
        usage = cache_usage(args.cache_dir)
        if args.json:
            print(json.dumps(usage, indent=2, sort_keys=True))
            return 0
        for category in ("results", "traces", "journals", "reports",
                         "jobs"):
            entry = usage[category]
            print(f"{category:9s} {entry['files']:5d} files  "
                  f"{_format_bytes(entry['bytes'])}")
        return 0
    if args.action == "clear":
        all_categories = ("results", "traces", "journals", "reports",
                          "jobs")
        chosen = [name for name in all_categories if getattr(args, name)]
        removed = clear_cache(args.cache_dir,
                              categories=chosen or all_categories)
        for category, count in removed.items():
            print(f"cleared {count} {category} entries")
        return 0
    # prune: LRU eviction of the trace store only — results and journals
    # are small JSON files, traces are where the bytes live.
    cap = int(args.max_trace_mb * 1024 * 1024)
    removed = TraceCache(args.cache_dir).prune(cap)
    files, total = TraceCache(args.cache_dir).usage()
    print(f"evicted {removed} traces; {files} remain "
          f"({_format_bytes(total)})")
    return 0


# -- subcommands ---------------------------------------------------------------------
def _run_main(argv):
    parser = build_parser()
    args = parser.parse_args(argv)
    names = list(args.experiments)
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    runner = _runner_from_args(args, parser,
                               label="run:" + ",".join(sorted(names)))
    experiments = {}
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](runner)
        result.print()
        print(f"[{name} completed in {time.time() - started:.1f}s]\n")
        experiments[name] = {
            "title": result.title,
            "headers": result.headers,
            "rows": _jsonable(result.rows),
            "notes": result.notes,
            "raw": _jsonable(result.raw),
        }
    from repro.envelope import header, request_fingerprint

    saved = header("harness-run/1", request_fingerprint(
        "run", experiments=sorted(names),
        workloads=[w.name for w in runner.workloads],
        instructions=args.instructions))
    saved.update({"command": "run", "experiments": experiments})
    _epilogue(runner, saved, args)
    return 0


def _sweep_main(argv):
    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    configs = [name.strip() for name in args.configs.split(",")
               if name.strip()]
    if not configs:
        parser.error("--configs must name at least one configuration")
    from repro.harness.runner import ExperimentRunner

    for name in configs:
        try:
            ExperimentRunner.config(name)
        except KeyError as exc:
            parser.error(str(exc))
    runner = _runner_from_args(args, parser,
                               label="sweep:" + ",".join(configs))
    started = time.time()
    results = runner.run_all(configs)
    rows = []
    for workload in runner.workloads:
        rows.append([workload.name] +
                    [f"{results[name][workload.name].ipc:.3f}"
                     for name in configs])
    print(format_table("Sweep — IPC per (workload, config)",
                       ["workload"] + configs, rows))
    print(f"[sweep completed in {time.time() - started:.1f}s]\n")
    # The saved document is exactly the api.sweep() envelope (sweep/2):
    # one assembly helper serves the CLI and the facade, so a --save
    # file, an api.sweep().to_dict() and a service result body only
    # differ by the provenance fields _epilogue appends.
    from repro.api import sweep_result_from_records

    saved = sweep_result_from_records(runner, results, configs,
                                      args.instructions).to_dict()
    _epilogue(runner, saved, args)
    return 0


def _explore_main(argv):
    parser = build_explore_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.seed == 0:
        parser.error("--seed must be non-zero (the XorShift64 stream "
                     "has no zero state)")
    from repro.dse.explore import Explorer
    from repro.dse.report import render
    from repro.dse.space import get_space
    from repro.dse.strategies import strategy_names

    try:
        space = get_space(args.space)
    except KeyError as exc:
        parser.error(str(exc))
    if args.strategy not in strategy_names():
        parser.error(f"--strategy must be one of {strategy_names()}, "
                     f"got {args.strategy!r}")
    if args.engine is not None:
        import os

        from repro.pipeline.engine import engine_names

        if args.engine not in engine_names():
            parser.error(f"--engine must be one of {engine_names()}, "
                         f"got {args.engine!r}")
        os.environ["REPRO_ENGINE"] = args.engine
    workloads = None
    if args.workloads:
        from repro.workloads import suite

        workloads = suite(args.workloads.split(","))
    cache = None if args.no_cache else SimulationCache(args.cache_dir)
    journal = None
    if not args.no_journal:
        # args.journal is an explicit path; True derives the canonical
        # location from the exploration's identity.
        journal = args.journal if args.journal is not None else True
    explorer = Explorer(space=space, strategy=args.strategy,
                        workloads=workloads,
                        instructions=args.instructions, seed=args.seed,
                        max_points=args.max_points, cache=cache,
                        jobs=args.jobs or 1, journal=journal,
                        resume=args.resume, verbose=args.verbose)
    started = time.time()
    result = explorer.run()
    print(render(result, args.format), end="")
    print(f"[{explorer.summary()}]")
    print(f"[explore completed in {time.time() - started:.1f}s]")
    if args.save:
        from repro.dse.report import render_json

        with open(args.save, "w") as handle:
            handle.write(render_json(result))
        print(f"[results saved to {args.save}]")
    if cache is not None:
        print(f"[{cache.summary()}]")
    return 0


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("audit", "lint"):
        # Static-analysis subcommands (repro.analysis): `harness audit`
        # verifies + cross-checks the kernels, `harness lint` runs the
        # simulator determinism lint.
        from repro.analysis.cli import main as analysis_main

        return analysis_main(argv)
    if argv and argv[0] == "headroom":
        # Static headroom analyzer: dependence-graph + structural lower
        # bounds with per-workload bottleneck attribution.
        from repro.analysis.headroom.cli import main as headroom_main

        return headroom_main(argv)
    if argv and argv[0] == "trace":
        # Observability subcommand: one traced simulation, exported as a
        # Konata/gem5 O3PipeView text trace and a JSONL event stream.
        from repro.observability.cli import main as trace_main

        return trace_main(argv)
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] in ("serve", "submit", "poll"):
        # The job service: `harness serve` runs it, `harness submit` and
        # `harness poll` talk to a running instance over HTTP.
        from repro.service.cli import main as service_main

        return service_main(argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "explore":
        return _explore_main(argv[1:])
    if argv and argv[0] == "run":
        return _run_main(argv[1:])
    if argv and not argv[0].startswith("-"):
        # The pre-PR-4 bare spelling `harness fig3` is retired after its
        # deprecation release (see README "Deprecation policy").
        hint = ""
        if argv[0] in EXPERIMENTS or argv[0] == "all":
            hint = (f"; the bare experiment spelling was removed — "
                    f"use `harness run {argv[0]}`")
        print(f"error: unknown subcommand {argv[0]!r}{hint}",
              file=sys.stderr)
        return 2
    # No subcommand (or just -h/--help): the run parser carries the help.
    build_parser().parse_args(argv)
    return 2


if __name__ == "__main__":
    sys.exit(main())
