"""The published numbers every experiment compares against.

All values transcribed from Perais, "Leveraging Targeted Value Prediction
to Unlock New Hardware Strength Reduction Potential", MICRO 2021.
"""

# Table 2, Value Prediction rows: predictor storage (KB, paper truncates
# to one decimal).
TABLE2_STORAGE_KB = {"gvp": 55.2, "tvp": 13.9, "mvp": 7.9}

# Fig. 3: geomean speedup over the ME+0/1-idiom baseline (percent).
FIG3_GEOMEAN_SPEEDUP = {"mvp": 0.54, "tvp": 1.11, "gvp": 4.67}

# Fig. 3 commentary: average coverage and accuracy.
FIG3_COVERAGE = {"mvp": 5.3, "tvp": 12.6, "gvp": 32.7}     # percent
FIG3_ACCURACY_FLOOR = 99.9                                  # percent

# Fig. 3 outlier: xalancbmk.
FIG3_XALANCBMK = {"mvp": 0.52, "tvp": 0.41, "gvp": 52.65}   # speedup %
FIG3_XALANCBMK_COVERAGE = {"mvp": 7.30, "tvp": 55.97, "gvp": 72.32}

# Table 3: geomean speedup (%) per flavor at each storage budget.
TABLE3 = {
    # budget label      MVP    TVP    GVP
    "0.5x MVP (~4KB)": {"mvp": 0.50, "tvp": 0.74, "gvp": 2.54},
    "MVP (~8KB)":      {"mvp": 0.54, "tvp": 0.96, "gvp": 2.86},
    "TVP (~14KB)":     {"mvp": 0.60, "tvp": 1.11, "gvp": 3.51},
    "GVP (~55KB)":     {"mvp": 0.66, "tvp": 1.24, "gvp": 4.67},
}
# log2 scale factor applied to every VTAGE table, per budget row.
TABLE3_LOG2_DELTAS = {
    "0.5x MVP (~4KB)": -1,
    "MVP (~8KB)": 0,
    "TVP (~14KB)": 1,
    "GVP (~55KB)": 3,
}

# Fig. 4 averages: % of dynamic instructions eliminated at rename.
FIG4_MVP = {"zero_idiom": 0.72, "one_idiom": 0.39, "move": 3.96,
            "spsr": 1.73, "non_me_move": 0.44}
FIG4_TVP = {"zero_idiom": 0.72, "one_idiom": 0.39, "move": 4.06,
            "nine_bit_idiom": 0.48, "spsr": 1.70, "non_me_move": 0.34}

# Fig. 5: geomean speedups (%) with and without SpSR.
FIG5_GEOMEAN = {"mvp": 0.54, "mvp+spsr": 0.64, "tvp": 1.11, "tvp+spsr": 1.17}

# Fig. 6: activity normalized to baseline (percent deltas).
FIG6 = {
    "mvp": {"int_prf_reads": -2.41, "int_prf_writes": -4.17},
    "tvp": {"int_prf_reads": -9.51, "int_prf_writes": -11.32},
    "mvp+spsr": {"iq_dispatched": -1.64, "iq_issued": -1.53},
    "tvp+spsr": {"iq_dispatched": -2.41, "iq_issued": -2.04},
    "gvp+spsr": {"iq_dispatched": -2.66, "iq_issued": -1.90},
}
# GVP increases INT PRF writes (wide predictions written explicitly).
FIG6_GVP_WRITES_INCREASE = True

# Fig. 1: qualitative shape — 0x0 is the most produced value (~5%), 0x1 is
# third (~2%), and many of the top-20 values are narrow.
FIG1_TOP_VALUE = 0x0
FIG1_TOP_SHARE_APPROX = 5.0

# Fig. 2: µops per architectural instruction land in ~1.0-1.15 on average.
FIG2_EXPANSION_RANGE = (1.0, 1.3)

# §3.4.1: silencing cycles evaluated.
SILENCING_DEFAULT = 250
SILENCING_MINIMAL = 15
