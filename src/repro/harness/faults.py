"""Env-gated fault injection for the sweep orchestrator.

The orchestrator's recovery paths (worker crash, hang, corrupted result
payload, poisoned point) are impossible to exercise with healthy
simulations, so this module lets the test suite and CI *inject* each
fault class deterministically, from the environment:

``REPRO_FAULT_KILL``
    Worker suicide via ``SIGKILL`` right before simulating the point.
``REPRO_FAULT_HANG``
    An artificial hang (``sleep``) that the per-point timeout must catch.
``REPRO_FAULT_CORRUPT``
    The worker completes but returns a corrupted stats payload that must
    fail admission validation.
``REPRO_FAULT_ERROR``
    A raised :class:`FaultInjected` exception (an in-worker crash that
    leaves the process alive).

Each knob holds comma-separated specs ``workload/config[:count]`` where
the ``workload/config`` part is an :mod:`fnmatch` pattern matched against
``"<workload>/<config_name>"`` and *count* (default 1) is the number of
*attempts* the fault fires on: a spec ``hash_loop/tvp:2`` kills attempts
1 and 2 of that point and lets attempt 3 succeed.  Because the attempt
number is carried in the task itself, injection is fully deterministic —
no shared state, no randomness, identical behaviour under any seed.

Additional knobs:

``REPRO_FAULT_HANG_SECONDS``
    How long an injected hang sleeps (default 3600 — far beyond any
    sane per-point timeout).
``REPRO_FAULT_SCOPE``
    ``"worker"`` (default): faults only fire inside pool worker
    processes (marked via :func:`mark_worker`), so the orchestrator's
    serial in-parent fallback is a genuine recovery path.  ``"all"``:
    faults also arm in the parent — the serial path injects the *error*
    fault (never kill/hang/corrupt, which are worker-loop injection
    points) — used to prove that a truly poisoned point fails the sweep
    instead of silently succeeding through the fallback.
"""

import os
import signal
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase

_IN_WORKER = False

_KNOBS = {
    "kill": "REPRO_FAULT_KILL",
    "hang": "REPRO_FAULT_HANG",
    "corrupt": "REPRO_FAULT_CORRUPT",
    "error": "REPRO_FAULT_ERROR",
}


class FaultInjected(RuntimeError):
    """Raised by an injected ``error`` fault (and by nothing else)."""


def mark_worker():
    """Flag this process as a pool worker (arms worker-scoped faults)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker():
    return _IN_WORKER


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``pattern[:count]`` injection rule."""

    pattern: str   # fnmatch pattern over "<workload>/<config_name>"
    count: int     # fires on attempts 1..count

    def matches(self, workload, config_name, attempt):
        return (attempt <= self.count
                and fnmatchcase(f"{workload}/{config_name}", self.pattern))


def _parse_specs(raw):
    specs = []
    for chunk in (raw or "").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        pattern, colon, count = chunk.rpartition(":")
        if colon and count.isdigit():
            specs.append(FaultSpec(pattern, int(count)))
        else:
            specs.append(FaultSpec(chunk, 1))
    return tuple(specs)


class FaultPlan:
    """The parsed injection plan for one process."""

    def __init__(self, specs=None, hang_seconds=3600.0, scope="worker"):
        self.specs = {kind: tuple(specs.get(kind, ())) if specs else ()
                      for kind in _KNOBS}
        self.hang_seconds = hang_seconds
        self.scope = scope

    @classmethod
    def from_env(cls, env=None):
        env = os.environ if env is None else env
        specs = {kind: _parse_specs(env.get(var))
                 for kind, var in _KNOBS.items()}
        return cls(specs=specs,
                   hang_seconds=float(env.get("REPRO_FAULT_HANG_SECONDS",
                                              "3600")),
                   scope=env.get("REPRO_FAULT_SCOPE", "worker"))

    @property
    def active(self):
        return any(self.specs.values())

    def _armed(self):
        return self.scope == "all" or _IN_WORKER

    def should(self, kind, workload, config_name, attempt):
        """Whether fault *kind* fires for this (point, attempt)."""
        if not self._armed():
            return False
        return any(spec.matches(workload, config_name, attempt)
                   for spec in self.specs[kind])

    # -- injection points (called by the worker main loop) -------------------------
    def maybe_error(self, workload, config_name, attempt):
        if self.should("error", workload, config_name, attempt):
            raise FaultInjected(
                f"injected error for {workload}/{config_name} "
                f"attempt {attempt}")

    def maybe_hang(self, workload, config_name, attempt):
        if self.should("hang", workload, config_name, attempt):
            time.sleep(self.hang_seconds)

    def maybe_kill(self, workload, config_name, attempt):
        if self.should("kill", workload, config_name, attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    def maybe_corrupt(self, payload, workload, config_name, attempt):
        """Return *payload*, corrupted if the corrupt fault fires."""
        if not self.should("corrupt", workload, config_name, attempt):
            return payload
        corrupted = dict(payload)
        corrupted["cycles"] = "corrupted-by-fault-injection"
        return corrupted
