"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_prefetcher_ablation,
    run_silencing_sweep,
    run_table2,
    run_table3,
)

__all__ = [
    "ExperimentRunner",
    "RunRecord",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_prefetcher_ablation",
    "run_silencing_sweep",
    "run_table2",
    "run_table3",
]
