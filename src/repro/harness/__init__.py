"""Experiment harness: regenerates every table and figure of the paper.

Sweeps run on the fault-tolerant orchestrated engine
(:mod:`repro.harness.orchestrator`): journaled for crash-resume,
per-point timeouts with retry/backoff, worker respawn and quarantine.
Prefer the stable :mod:`repro.api` facade over driving runners directly.
"""

from repro.harness.orchestrator import (
    FaultReport,
    OrchestratedRunner,
    OrchestratorConfig,
    SweepJournal,
    default_journal_path,
)
from repro.harness.parallel import ParallelRunner, default_jobs, make_runner
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_prefetcher_ablation,
    run_silencing_sweep,
    run_table2,
    run_table3,
)

__all__ = [
    "ExperimentRunner",
    "FaultReport",
    "OrchestratedRunner",
    "OrchestratorConfig",
    "ParallelRunner",
    "RunRecord",
    "SweepJournal",
    "default_jobs",
    "default_journal_path",
    "make_runner",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_prefetcher_ablation",
    "run_silencing_sweep",
    "run_table2",
    "run_table3",
]
