"""Shared utilities: deterministic RNG, geometric series, statistics helpers."""

from repro.util.rng import XorShift64
from repro.util.series import geometric_history_lengths
from repro.util.stats import geomean

__all__ = ["XorShift64", "geometric_history_lengths", "geomean"]
