"""Small statistics helpers shared by the harness and benchmarks."""

import math


def geomean(values):
    """Geometric mean of positive values (returns 0.0 on empty input)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_speedup_percent(speedup_percents):
    """Geometric mean of speedups expressed in percent (paper style).

    ``[+10.0, -5.0]`` means 1.10x and 0.95x; the result is again in percent.
    """
    factors = [1.0 + s / 100.0 for s in speedup_percents]
    return (geomean(factors) - 1.0) * 100.0


def amean(values):
    """Arithmetic mean (0.0 on empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def hmean(values):
    """Harmonic mean, the paper's choice for averaging IPC."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("hmean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def percent(part, whole):
    """``part / whole`` in percent, 0.0 when the denominator is zero."""
    return 100.0 * part / whole if whole else 0.0
