"""Deterministic pseudo-randomness for probabilistic hardware counters.

Hardware FPC/TAGE implementations use an LFSR; we use xorshift64 so every
simulation is exactly reproducible for a given seed (``Date``-free, as
required for replayable experiments).
"""

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


class XorShift64:
    """Marsaglia xorshift64: a tiny, fast, deterministic PRNG."""

    def __init__(self, seed=0x9E3779B97F4A7C15):
        if seed == 0:
            raise ValueError("xorshift seed must be non-zero")
        self._state = seed & _MASK64

    def next(self):
        """Next 64-bit pseudo-random value."""
        x = self._state
        x ^= (x << 13) & _MASK64
        x ^= x >> 7
        x ^= (x << 17) & _MASK64
        self._state = x
        return x

    def chance(self, one_in):
        """True with probability ``1 / one_in`` (one_in must be a power of 2
        for hardware fidelity, but any positive int works)."""
        if one_in <= 1:
            return True
        return self.next() % one_in == 0
