"""Geometric history-length series used by TAGE-like predictors."""


def geometric_history_lengths(minimum, maximum, count):
    """*count* history lengths growing geometrically from min to max.

    This is the classic TAGE L(i) = min * (max/min)^((i-1)/(count-1)) series
    (Seznec), rounded to integers and forced monotonically increasing.
    """
    if count == 1:
        return [maximum]
    if count - 1 > maximum - minimum:
        raise ValueError(
            f"cannot fit {count} strictly increasing lengths in "
            f"[{minimum}, {maximum}]")
    lengths = []
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    value = float(minimum)
    previous = 0
    for _ in range(count):
        length = max(int(round(value)), previous + 1)
        lengths.append(length)
        previous = length
        value *= ratio
    lengths[-1] = maximum
    return lengths
