"""The stable, user-facing simulation API.

Notebooks, tests and downstream tooling should not reach into
:class:`~repro.harness.runner.ExperimentRunner` internals; this facade
is the supported surface::

    from repro import api

    r = api.simulate("hash_loop", config="tvp+spsr", instructions=20_000)
    print(r.ipc, r.stats["vp_correct_used"])

    s = api.sweep(["hash_loop", "permute"], configs=("baseline", "tvp"))
    print(s.get("tvp", "hash_loop").speedup_over(s.get("baseline",
                                                       "hash_loop")))

Every ``harness`` subcommand has an API twin: ``run``/``sweep`` →
:func:`simulate`/:func:`sweep`, ``explore`` → :func:`explore`,
``headroom`` → :func:`headroom`, and the job service (``harness
serve``/``submit``/``poll``) → :func:`submit`/:func:`status`/
:func:`result`/:func:`events` over an in-process
:class:`~repro.service.JobManager`.

Results are frozen dataclasses wearing the unified envelope
(:mod:`repro.envelope`): ``to_dict()`` emits a ``schema`` /
``code_version`` / ``fingerprint`` header plus a deterministic body,
``from_dict()`` validates the schema family and is its exact inverse.
Provenance — the sweep :class:`~repro.harness.orchestrator.FaultReport`
in particular — rides on the result object (``SweepResult.fault_report``)
and is serialized only on request (``to_dict(provenance=True)``), so the
default payload of a cold run, a warm cache read and a crash-resumed
sweep are byte-identical under :func:`repro.envelope.canonical_json`.
"""

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.envelope import check_schema, header, request_fingerprint
from repro.harness.orchestrator import OrchestratedRunner
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig

__all__ = ["HeadroomResult", "SIM_SCHEMA", "SWEEP_SCHEMA", "SimResult",
           "SweepResult", "events", "explore", "headroom", "result",
           "service", "simulate", "status", "submit", "sweep"]

SIM_SCHEMA = "sim/2"
SWEEP_SCHEMA = "sweep/2"

_CUSTOM_CONFIG_NAME = "custom"


@dataclass(frozen=True)
class SimResult:
    """One (workload, config) simulation, in stable plain-data form."""

    workload: str
    config: str                     # config name ("tvp+spsr", "custom", ...)
    fingerprint: str                # hash of every MachineConfig knob
    instructions: int               # dynamic instruction budget
    ipc: float
    stats: Mapping[str, object]     # every PipelineStats counter, by name

    def speedup_over(self, baseline):
        """Speedup in percent over a baseline :class:`SimResult`."""
        return 100.0 * (self.ipc / baseline.ipc - 1.0)

    def to_dict(self):
        """JSON-ready enveloped payload; inverse of :meth:`from_dict`."""
        payload = header(SIM_SCHEMA, self.fingerprint)
        payload.update({
            "workload": self.workload,
            "config": self.config,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "stats": dict(self.stats),
        })
        return payload

    @classmethod
    def from_dict(cls, payload):
        if "schema" in payload:
            check_schema(payload, "sim")
        return cls(workload=payload["workload"], config=payload["config"],
                   fingerprint=payload["fingerprint"],
                   instructions=payload["instructions"],
                   ipc=payload["ipc"], stats=dict(payload["stats"]))


@dataclass(frozen=True)
class SweepResult:
    """A full (workload × config) sweep plus its fault report.

    The fault report (retries, quarantines, provenance counters, wall
    time) is an attribute for programmatic access — service clients read
    it from the job status — but is **not** part of the default
    ``to_dict()`` payload: it differs between a cold and a warm run of
    the same matrix, and the result body must not.  Pass
    ``provenance=True`` to embed it (the CLI ``--save`` path does).
    """

    results: Mapping[str, Mapping[str, SimResult]]   # config -> workload
    configs: Tuple[str, ...]
    workloads: Tuple[str, ...]
    instructions: Optional[int]
    fingerprint: str = ""           # hash of the request matrix
    fault_report: Optional[dict] = field(default=None, compare=False)

    def get(self, config, workload):
        """The :class:`SimResult` for one (config, workload) point."""
        return self.results[config][workload]

    def to_dict(self, provenance=False):
        """JSON-ready enveloped payload; inverse of :meth:`from_dict`.

        Deterministic by default; ``provenance=True`` adds the
        ``fault_report`` (wall time, retries, result sources), which is
        honest about *how* the numbers were obtained and therefore not
        byte-stable across re-runs.
        """
        payload = header(SWEEP_SCHEMA, self.fingerprint)
        payload.update({
            "configs": list(self.configs),
            "workloads": list(self.workloads),
            "instructions": self.instructions,
            "results": {config: {workload: result.to_dict()
                                 for workload, result in by_workload.items()}
                        for config, by_workload in self.results.items()},
        })
        if provenance:
            payload["fault_report"] = self.fault_report
        return payload

    @classmethod
    def from_dict(cls, payload):
        if "schema" in payload:
            check_schema(payload, "sweep")
        results = {config: {workload: SimResult.from_dict(item)
                            for workload, item in by_workload.items()}
                   for config, by_workload in payload["results"].items()}
        return cls(results=results, configs=tuple(payload["configs"]),
                   workloads=tuple(payload["workloads"]),
                   instructions=payload["instructions"],
                   fingerprint=payload.get("fingerprint", ""),
                   fault_report=payload.get("fault_report"))


@dataclass(frozen=True)
class HeadroomResult:
    """One (workload, config) headroom analysis in envelope form.

    Wraps the ``headroom/2`` report document
    (:func:`repro.analysis.headroom.report.analyze_headroom`) with typed
    access to the fields callers branch on; ``report`` holds the full
    document (bounds, critical path, attribution).
    """

    workload: str
    config: str
    fingerprint: str                # compiled MachineConfig fingerprint
    report: Mapping[str, object]    # the full headroom/2 document

    @property
    def ipc(self):
        return self.report["ipc"]

    @property
    def bound(self):
        """The binding analytic cycle lower bound."""
        return self.report["bound"]

    @property
    def binding(self):
        """Which bound binds: ``"dependence"`` or ``"structural"``."""
        return self.report["binding"]

    @property
    def headroom_pct(self):
        return self.report["headroom_pct"]

    @property
    def sound(self):
        return self.report["sound"]

    def to_dict(self):
        """The enveloped report document; inverse of :meth:`from_dict`."""
        return dict(self.report)

    @classmethod
    def from_dict(cls, payload):
        check_schema(payload, "headroom")
        return cls(workload=payload["workload"], config=payload["config"],
                   fingerprint=payload["fingerprint"], report=dict(payload))


def sweep_fingerprint(workload_names, config_names, instructions):
    """The request fingerprint of one (workload × config × budget) matrix.

    Order-sensitive on purpose: the result document lays configs and
    workloads out in submission order, so a reordered matrix is a
    different document and must be a different fingerprint (and service
    job key).
    """
    return request_fingerprint("sweep", workloads=list(workload_names),
                               configs=list(config_names),
                               instructions=instructions)


def _resolve_workloads(workloads):
    """Workload objects from names, objects, or None (the full suite)."""
    from repro.workloads import get_workload, suite

    if workloads is None:
        return suite()
    resolved = []
    for workload in workloads:
        resolved.append(get_workload(workload)
                        if isinstance(workload, str) else workload)
    return resolved


def _config_name_of(config):
    if isinstance(config, MachineConfig):
        return _CUSTOM_CONFIG_NAME, config
    return str(config), None


def _to_sim_result(runner, record, config_name, config=None):
    workload = next(w for w in runner.workloads
                    if w.name == record.workload)
    return SimResult(workload=record.workload, config=config_name,
                     fingerprint=runner.fingerprint_of(config_name, config),
                     instructions=runner.budget_for(workload),
                     ipc=record.ipc, stats=record.to_dict()["stats"])


def sweep_result_from_records(runner, raw, config_names, instructions,
                              fault_report=None):
    """Assemble a :class:`SweepResult` from ``run_all`` records.

    Shared by :func:`sweep` and the CLI ``--save`` path, so both emit
    the same enveloped document for the same records.
    """
    results = {
        config_name: {
            workload_name: _to_sim_result(runner, record, config_name)
            for workload_name, record in by_workload.items()
        }
        for config_name, by_workload in raw.items()
    }
    workload_names = tuple(w.name for w in runner.workloads)
    return SweepResult(
        results=results, configs=tuple(config_names),
        workloads=workload_names, instructions=instructions,
        fingerprint=sweep_fingerprint(workload_names, config_names,
                                      instructions),
        fault_report=fault_report)


def simulate(workload, config="baseline", *, instructions=None,
             cache=None) -> SimResult:
    """Simulate one workload under one configuration.

    ``workload`` is a workload name or object; ``config`` is a named
    configuration (``"baseline"``, ``"tvp+spsr"``, ...) or a
    :class:`MachineConfig` instance.
    """
    workloads = _resolve_workloads([workload])
    config_name, machine_config = _config_name_of(config)
    runner = ExperimentRunner(workloads=workloads,
                              instructions=instructions, cache=cache)
    record = runner.run(workloads[0], config_name, config=machine_config)
    return _to_sim_result(runner, record, config_name, machine_config)


def sweep(workloads=None, configs=("baseline", "mvp", "tvp", "gvp"), *,
          instructions=None, jobs=None, cache=None, journal=None,
          resume=True, tracer=None, orchestration=None) -> SweepResult:
    """Run a fault-tolerant (workload × config) sweep.

    ``configs`` are named configurations; ``jobs`` defaults to all
    cores (the orchestrated pool with per-point timeouts, retry and
    journaled resume — pass ``journal=`` a path to make the sweep
    resumable across interruptions).  The returned result carries the
    sweep's :class:`~repro.harness.orchestrator.FaultReport` as a dict
    on ``fault_report``, so retries and quarantines are visible without
    scraping CLI output.
    """
    workload_objects = _resolve_workloads(workloads)
    config_names = [str(name) for name in configs]
    # Always the orchestrated engine (even jobs=1): facade sweeps carry
    # a fault report and journal/resume support unconditionally.
    runner = OrchestratedRunner(workloads=workload_objects,
                                instructions=instructions, cache=cache,
                                jobs=jobs, journal=journal, resume=resume,
                                tracer=tracer, orchestration=orchestration)
    raw = runner.run_all(config_names)
    report = runner.last_fault_report
    return sweep_result_from_records(
        runner, raw, config_names, instructions,
        fault_report=report.to_dict() if report is not None else None)


def explore(space="smoke", strategy="grid", *, workloads=None,
            instructions=None, seed=1, max_points=0, jobs=None, cache=None,
            journal=None, resume=True, tracer=None):
    """Run a design-space exploration; returns a frozen
    :class:`repro.dse.result.ExploreResult`.

    ``space`` is a built-in space name (see
    :func:`repro.dse.space.space_names`) or a
    :class:`~repro.dse.space.ParameterSpace`; ``strategy`` one of
    :func:`repro.dse.strategy_names` (``grid``, ``random``, ``beam``,
    ``headroom``) or a :class:`~repro.dse.strategies.Strategy`.  Same
    knobs as :func:`sweep` otherwise — explorations share the
    simulation cache with ordinary runs (a space point whose config
    matches a named configuration is a cache hit in both directions)
    and are journal-resumable (``journal=`` a path or ``True`` for the
    canonical location).  ``tracer`` receives per-point progress events
    (the job service bridges them into its event feeds).
    """
    from repro.dse.explore import Explorer

    explorer = Explorer(space=space, strategy=strategy,
                        workloads=_resolve_workloads(workloads),
                        instructions=instructions, seed=seed,
                        max_points=max_points, cache=cache, jobs=jobs or 1,
                        journal=journal, resume=resume, tracer=tracer)
    return explorer.run()


def headroom(workload, config="baseline", *, instructions=None,
             sample_interval=500, cache=None) -> HeadroomResult:
    """Analytic cycle lower bounds + headroom attribution for one point.

    The API twin of ``harness headroom``: runs the static headroom
    analyzer (dependence + structural bounds, lost-cycle attribution)
    and returns the enveloped report.  With a cache attached (a
    :class:`~repro.harness.cache.SimulationCache`,
    :class:`~repro.harness.cache.ReportCache` or cache directory
    string), warm calls are served from the report cache without
    re-simulating.
    """
    from repro.analysis.headroom.report import cached_headroom_report
    from repro.harness.cache import ReportCache, SimulationCache

    if isinstance(cache, SimulationCache):
        cache = ReportCache(cache.directory)
    elif isinstance(cache, str):
        cache = ReportCache(cache)
    workload_object = _resolve_workloads([workload])[0]
    report = cached_headroom_report(workload_object, str(config),
                                    instructions=instructions,
                                    sample_interval=sample_interval,
                                    cache=cache)
    return HeadroomResult(workload=report["workload"],
                          config=report["config"],
                          fingerprint=report["fingerprint"], report=report)


# -- the in-process job service --------------------------------------------------------
_default_manager = None


def service(cache_dir=None, jobs=None, resume=True, max_active=1):
    """The in-process :class:`~repro.service.JobManager` facade state.

    The first call creates the module-default manager (later calls with
    all-default arguments return it); passing any argument rebuilds it.
    :func:`submit`/:func:`status`/:func:`result`/:func:`events` operate
    on this manager unless given one explicitly — the same four verbs
    the HTTP surface exposes.
    """
    global _default_manager
    from repro.service.core import JobManager

    explicit = (cache_dir is not None or jobs is not None
                or resume is not True or max_active != 1)
    if _default_manager is None or explicit:
        _default_manager = JobManager(cache_dir=cache_dir, jobs=jobs,
                                      resume=resume, max_active=max_active)
    return _default_manager


def submit(workloads=None, configs=None, *, kind="sweep", instructions=None,
           space="smoke", strategy="grid", seed=1, max_points=0,
           spec=None, manager=None):
    """Submit an asynchronous job; returns its submission receipt dict.

    Mirrors ``POST /v1/jobs``: identical concurrent submissions coalesce
    onto one running job, and a matrix whose result is already in the
    report cache completes instantly with zero simulations.  Pass a
    pre-built :class:`~repro.service.JobSpec` via ``spec``, or the same
    keyword arguments :func:`sweep`/:func:`explore` take.
    """
    from repro.service.core import JobSpec

    manager = manager if manager is not None else service()
    if spec is None:
        if kind == "sweep":
            spec = JobSpec.sweep(workloads=workloads, configs=configs,
                                 instructions=instructions)
        else:
            spec = JobSpec.explore(space=space, strategy=strategy,
                                   seed=seed, max_points=max_points,
                                   workloads=workloads,
                                   instructions=instructions)
    return manager.submit(spec).receipt()


def status(job, *, manager=None):
    """Job status dict (state, progress, fault report); ``GET /v1/jobs/<id>``."""
    manager = manager if manager is not None else service()
    return manager.status(_job_key(job))


def result(job, *, timeout=None, manager=None):
    """The finished job's typed result; ``GET /v1/jobs/<id>/result``.

    Blocks up to ``timeout`` seconds for completion, then returns a
    :class:`SweepResult` or :class:`~repro.dse.result.ExploreResult`
    depending on the job kind.
    """
    from repro.dse.result import ExploreResult

    manager = manager if manager is not None else service()
    payload = manager.result(_job_key(job), timeout=timeout)
    if payload.get("schema", "").startswith("explore/"):
        return ExploreResult.from_dict(payload)
    return SweepResult.from_dict(payload)


def events(job, after=0, *, timeout=None, manager=None):
    """``(events, next_index, done)`` for a job's progress feed.

    Mirrors ``GET /v1/jobs/<id>/events?after=N``: returns every event
    recorded after index ``after`` (long-polling up to ``timeout``
    seconds when none are pending yet).
    """
    manager = manager if manager is not None else service()
    return manager.events_after(_job_key(job), after=after, timeout=timeout)


def _job_key(job):
    """Accept a job key string, a receipt dict, or a Job object."""
    if isinstance(job, dict):
        return job["job"]
    return getattr(job, "key", job)
