"""The stable, user-facing simulation API.

Notebooks, tests and downstream tooling should not reach into
:class:`~repro.harness.runner.ExperimentRunner` internals; this facade
is the supported surface::

    from repro import api

    r = api.simulate("hash_loop", config="tvp+spsr", instructions=20_000)
    print(r.ipc, r.stats["vp_correct_used"])

    s = api.sweep(["hash_loop", "permute"], configs=("baseline", "tvp"))
    print(s.get("tvp", "hash_loop").speedup_over(s.get("baseline",
                                                       "hash_loop")))

Results are frozen dataclasses with documented ``to_dict()`` /
``from_dict()`` JSON round-trips, built on the exact same runner the
experiment harness uses — facade numbers are byte-identical to a direct
:meth:`ExperimentRunner.run`.
"""

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.harness.orchestrator import OrchestratedRunner
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MachineConfig

__all__ = ["SimResult", "SweepResult", "explore", "simulate", "sweep"]

_CUSTOM_CONFIG_NAME = "custom"


@dataclass(frozen=True)
class SimResult:
    """One (workload, config) simulation, in stable plain-data form."""

    workload: str
    config: str                     # config name ("tvp+spsr", "custom", ...)
    fingerprint: str                # hash of every MachineConfig knob
    instructions: int               # dynamic instruction budget
    ipc: float
    stats: Mapping[str, object]     # every PipelineStats counter, by name

    def speedup_over(self, baseline):
        """Speedup in percent over a baseline :class:`SimResult`."""
        return 100.0 * (self.ipc / baseline.ipc - 1.0)

    def to_dict(self):
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "workload": self.workload,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(workload=payload["workload"], config=payload["config"],
                   fingerprint=payload["fingerprint"],
                   instructions=payload["instructions"],
                   ipc=payload["ipc"], stats=dict(payload["stats"]))


@dataclass(frozen=True)
class SweepResult:
    """A full (workload × config) sweep plus its fault report."""

    results: Mapping[str, Mapping[str, SimResult]]   # config -> workload
    configs: Tuple[str, ...]
    workloads: Tuple[str, ...]
    instructions: Optional[int]
    fault_report: Optional[dict] = field(default=None)

    def get(self, config, workload):
        """The :class:`SimResult` for one (config, workload) point."""
        return self.results[config][workload]

    def to_dict(self):
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "configs": list(self.configs),
            "workloads": list(self.workloads),
            "instructions": self.instructions,
            "results": {config: {workload: result.to_dict()
                                 for workload, result in by_workload.items()}
                        for config, by_workload in self.results.items()},
            "fault_report": self.fault_report,
        }

    @classmethod
    def from_dict(cls, payload):
        results = {config: {workload: SimResult.from_dict(item)
                            for workload, item in by_workload.items()}
                   for config, by_workload in payload["results"].items()}
        return cls(results=results, configs=tuple(payload["configs"]),
                   workloads=tuple(payload["workloads"]),
                   instructions=payload["instructions"],
                   fault_report=payload.get("fault_report"))


def _resolve_workloads(workloads):
    """Workload objects from names, objects, or None (the full suite)."""
    from repro.workloads import get_workload, suite

    if workloads is None:
        return suite()
    resolved = []
    for workload in workloads:
        resolved.append(get_workload(workload)
                        if isinstance(workload, str) else workload)
    return resolved


def _config_name_of(config):
    if isinstance(config, MachineConfig):
        return _CUSTOM_CONFIG_NAME, config
    return str(config), None


def _to_sim_result(runner, record, config_name, config=None):
    workload = next(w for w in runner.workloads
                    if w.name == record.workload)
    return SimResult(workload=record.workload, config=config_name,
                     fingerprint=runner.fingerprint_of(config_name, config),
                     instructions=runner.budget_for(workload),
                     ipc=record.ipc, stats=record.to_dict()["stats"])


def simulate(workload, config="baseline", *, instructions=None,
             cache=None) -> SimResult:
    """Simulate one workload under one configuration.

    ``workload`` is a workload name or object; ``config`` is a named
    configuration (``"baseline"``, ``"tvp+spsr"``, ...) or a
    :class:`MachineConfig` instance.
    """
    workloads = _resolve_workloads([workload])
    config_name, machine_config = _config_name_of(config)
    runner = ExperimentRunner(workloads=workloads,
                              instructions=instructions, cache=cache)
    record = runner.run(workloads[0], config_name, config=machine_config)
    return _to_sim_result(runner, record, config_name, machine_config)


def sweep(workloads=None, configs=("baseline", "mvp", "tvp", "gvp"), *,
          instructions=None, jobs=None, cache=None, journal=None,
          resume=True, tracer=None, orchestration=None) -> SweepResult:
    """Run a fault-tolerant (workload × config) sweep.

    ``configs`` are named configurations; ``jobs`` defaults to all
    cores (the orchestrated pool with per-point timeouts, retry and
    journaled resume — pass ``journal=`` a path to make the sweep
    resumable across interruptions).
    """
    workload_objects = _resolve_workloads(workloads)
    config_names = [str(name) for name in configs]
    # Always the orchestrated engine (even jobs=1): facade sweeps carry
    # a fault report and journal/resume support unconditionally.
    runner = OrchestratedRunner(workloads=workload_objects,
                                instructions=instructions, cache=cache,
                                jobs=jobs, journal=journal, resume=resume,
                                tracer=tracer, orchestration=orchestration)
    raw = runner.run_all(config_names)
    results = {
        config_name: {
            workload_name: _to_sim_result(runner, record, config_name)
            for workload_name, record in by_workload.items()
        }
        for config_name, by_workload in raw.items()
    }
    report = getattr(runner, "last_fault_report", None)
    return SweepResult(
        results=results, configs=tuple(config_names),
        workloads=tuple(w.name for w in workload_objects),
        instructions=instructions,
        fault_report=report.to_dict() if report is not None else None)


def explore(space="smoke", strategy="grid", *, workloads=None,
            instructions=None, seed=1, max_points=0, jobs=None, cache=None,
            journal=None, resume=True):
    """Run a design-space exploration; returns a frozen
    :class:`repro.dse.result.ExploreResult`.

    ``space`` is a built-in space name (see
    :func:`repro.dse.space.space_names`) or a
    :class:`~repro.dse.space.ParameterSpace`; ``strategy`` one of
    :func:`repro.dse.strategy_names` (``grid``, ``random``, ``beam``,
    ``headroom``) or a :class:`~repro.dse.strategies.Strategy`.  Same
    knobs as :func:`sweep` otherwise — explorations share the
    simulation cache with ordinary runs (a space point whose config
    matches a named configuration is a cache hit in both directions)
    and are journal-resumable (``journal=`` a path or ``True`` for the
    canonical location).
    """
    from repro.dse.explore import Explorer

    explorer = Explorer(space=space, strategy=strategy,
                        workloads=_resolve_workloads(workloads),
                        instructions=instructions, seed=seed,
                        max_points=max_points, cache=cache, jobs=jobs or 1,
                        journal=journal, resume=resume)
    return explorer.run()
