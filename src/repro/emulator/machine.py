"""The functional machine: architectural state plus a µop-level stepper.

The machine executes the program architecturally (the golden model) and
emits :class:`~repro.emulator.trace.DynUop` records.  It is also used on its
own by tests as a reference interpreter.
"""

from repro.emulator.trace import DynUop
from repro.isa.bits import mask
from repro.isa.opcodes import Op, access_size, exec_class
from repro.isa.program import INST_BYTES
from repro.isa.registers import FLAGS, N_ARCH_REGS, XZR, is_fpr
from repro.isa.semantics import (
    branch_taken,
    compute_csel,
    compute_fcmp,
    compute_fcvtzs,
    compute_fp,
    compute_int,
    compute_movk,
    compute_scvtf,
    compute_unary,
)
from repro.isa.uops import decode_program

STACK_BASE = 0x0800_0000
PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1

_INT_ALU_OPS = frozenset({
    Op.ADD, Op.ADDS, Op.SUB, Op.SUBS, Op.AND, Op.ANDS, Op.ORR, Op.EOR,
    Op.BIC, Op.LSL, Op.LSR, Op.ASR, Op.MUL, Op.SDIV, Op.UDIV,
    Op.CMP, Op.CMN, Op.TST,
})


class EmulationError(RuntimeError):
    """Raised when the program does something the emulator cannot run."""


class Machine:
    """Architectural state: registers, NZCV, byte-addressable memory, PC."""

    def __init__(self, program, sp=STACK_BASE):
        self.program = program
        self.decoded = decode_program(program)
        self.regs = [0] * N_ARCH_REGS
        self.regs[32] = sp  # stack pointer
        self.flags = 0
        self.pc = program.entry_pc
        self.halted = False
        self._pages = {}
        self._seq = 0
        self._arch_seq = 0
        for address, payload in program.data_image:
            self._write_bytes(address, payload)

    # -- memory ----------------------------------------------------------------
    def _page(self, address):
        base = address & ~PAGE_MASK
        page = self._pages.get(base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[base] = page
        return page

    def _write_bytes(self, address, payload):
        for i, byte in enumerate(payload):
            addr = address + i
            self._page(addr)[addr & PAGE_MASK] = byte

    def read_mem(self, address, size):
        """Little-endian unsigned read of *size* bytes."""
        value = 0
        for i in range(size):
            addr = address + i
            value |= self._page(addr)[addr & PAGE_MASK] << (8 * i)
        return value

    def write_mem(self, address, value, size):
        """Little-endian write of *size* bytes."""
        for i in range(size):
            addr = address + i
            self._page(addr)[addr & PAGE_MASK] = (value >> (8 * i)) & 0xFF

    # -- registers ---------------------------------------------------------------
    def read_reg(self, operand):
        """Architectural register read honouring xzr and w-views."""
        if operand.reg == XZR:
            return 0
        value = self.regs[operand.reg]
        return value & 0xFFFF_FFFF if operand.width == 32 else value

    def write_reg(self, operand, value):
        """Architectural register write (w-writes zero-extend; xzr is void)."""
        if operand.reg == XZR:
            return
        self.regs[operand.reg] = mask(value, operand.width)

    # -- execution ----------------------------------------------------------------
    def run(self, max_instructions=100_000):
        """Yield DynUops until HLT, a bad PC, or the instruction budget."""
        executed = 0
        while not self.halted and executed < max_instructions:
            try:
                index = self.program.index_of(self.pc)
            except ValueError:
                raise EmulationError(
                    f"PC out of code range: {self.pc:#x}") from None
            for uop_record in self.step(index):
                yield uop_record
            executed += 1

    def step(self, index):
        """Execute the architectural instruction at *index*; yield its µops."""
        uops = self.decoded[index]
        pc = self.pc
        next_pc = pc + INST_BYTES
        records = []
        for position, uop in enumerate(uops):
            record = self._execute_uop(uop, pc, position, len(uops), next_pc)
            if record.is_branch and record.taken:
                next_pc = record.target_pc
            records.append(record)
        # Patch next_pc into all records of this instruction and advance.
        for record in records:
            record.next_pc = next_pc
        self.pc = next_pc
        self._arch_seq += 1
        return records

    # -- helpers -------------------------------------------------------------------
    def _operand_values(self, uop):
        return tuple(self.read_reg(src) for src in uop.srcs)

    def _deps_of(self, uop):
        deps = [src.reg for src in uop.srcs if src.reg != XZR]
        if uop.mem is not None:
            deps.append(uop.mem.base.reg)
            if uop.mem.offset_reg is not None and uop.mem.offset_reg.reg != XZR:
                deps.append(uop.mem.offset_reg.reg)
        if uop.reads_flags:
            deps.append(FLAGS)
        return tuple(deps)

    def _mem_address(self, uop):
        base = self.read_reg(uop.mem.base)
        offset = uop.mem.offset_imm
        if uop.mem.offset_reg is not None:
            offset += self.read_reg(uop.mem.offset_reg) << uop.mem.offset_shift
        return mask(base + offset, 64)

    def _make_record(self, uop, pc, position, count, next_pc, *, result=None,
                     flags_out=None, taken=False, target_pc=None, addr=None,
                     size=0, store_value=None, src_values=()):
        dst = uop.dsts[0] if uop.dsts else None
        if dst is not None and dst.reg == XZR:
            dst = None  # writes to xzr produce no architectural value
        record = DynUop(
            seq=self._seq, arch_seq=self._arch_seq, pc=pc, uop_index=position,
            uop_count=count, op=uop.op, cls=exec_class(uop.op),
            width=uop.width, dst=None if dst is None else dst.reg,
            dst_is_fp=bool(dst and is_fpr(dst.reg)),
            writes_flags=flags_out is not None,
            deps=self._deps_of(uop),
            src_regs=tuple(src.reg for src in uop.srcs),
            cond=uop.cond, imm=uop.imm, imm2=uop.imm2, result=result,
            flags_out=flags_out, is_branch=uop.is_branch,
            is_cond_branch=uop.is_conditional_branch,
            is_indirect=uop.is_indirect_branch,
            is_call=uop.op in (Op.BL, Op.BLR), is_return=uop.op is Op.RET,
            taken=taken, target_pc=target_pc, next_pc=next_pc,
            is_load=uop.is_load, is_store=uop.is_store, addr=addr, size=size,
            store_value=store_value, src_values=src_values, text=uop.text,
        )
        self._seq += 1
        return record

    def _execute_uop(self, uop, pc, position, count, next_pc):
        op = uop.op
        src_values = self._operand_values(uop)

        if op in _INT_ALU_OPS:
            a = src_values[0]
            b = src_values[1] if len(src_values) > 1 else (uop.imm or 0)
            reg_shift = uop.imm2 if (len(src_values) > 1 and uop.imm2) else 0
            result, flags_out = compute_int(op, a, b, uop.width, reg_shift)
            if uop.dsts:
                self.write_reg(uop.dsts[0], result)
            if flags_out is not None:
                self.flags = flags_out
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result if uop.dsts else None,
                                     flags_out=flags_out, src_values=src_values)

        if op is Op.MADD:
            a, b, c = src_values
            result = mask(c + a * b, uop.width)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if op in (Op.RBIT, Op.CLZ, Op.UBFM, Op.SBFM):
            result = compute_unary(op, src_values[0], uop.width,
                                   immr=uop.imm, imms=uop.imm2)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if op is Op.MOV:
            result = mask(src_values[0], uop.width)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if op is Op.MOVZ:
            result = mask(uop.imm or 0, uop.width)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if op is Op.MOVK:
            result = compute_movk(src_values[0], uop.imm, uop.imm2 or 0, uop.width)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if op in (Op.CSEL, Op.CSINC, Op.CSNEG, Op.CSET):
            a = src_values[0]
            b = src_values[1] if len(src_values) > 1 else 0
            result = compute_csel(op, uop.cond, self.flags, a, b, uop.width)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if uop.is_load:
            address = self._mem_address(uop)
            size = access_size(op, uop.width)
            raw = self.read_mem(address, size)
            if op is Op.LDRSW:
                raw = mask(raw | (0xFFFF_FFFF_0000_0000 if raw & 0x8000_0000 else 0), 64)
            result = raw
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, addr=address, size=size,
                                     src_values=src_values)

        if uop.is_store:
            address = self._mem_address(uop)
            size = access_size(op, uop.width)
            value = mask(src_values[0], min(uop.width, 8 * size)) & ((1 << (8 * size)) - 1)
            self.write_mem(address, value, size)
            return self._make_record(uop, pc, position, count, next_pc,
                                     addr=address, size=size, store_value=value,
                                     src_values=src_values)

        if uop.is_branch:
            return self._branch(uop, pc, position, count, next_pc, src_values)

        if op is Op.FCMP:
            flags_out = compute_fcmp(src_values[0], src_values[1])
            self.flags = flags_out
            return self._make_record(uop, pc, position, count, next_pc,
                                     flags_out=flags_out, src_values=src_values)

        if op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMADD, Op.FMOV):
            if op is Op.FMOV and not src_values:
                result = uop.imm or 0
            else:
                a = src_values[0]
                b = src_values[1] if len(src_values) > 1 else 0
                c = src_values[2] if len(src_values) > 2 else 0
                result = compute_fp(op, a, b, c)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if op is Op.FCVTZS:
            result = compute_fcvtzs(src_values[0], uop.width)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if op is Op.SCVTF:
            result = compute_scvtf(src_values[0], 64)
            self.write_reg(uop.dsts[0], result)
            return self._make_record(uop, pc, position, count, next_pc,
                                     result=result, src_values=src_values)

        if op is Op.NOP:
            return self._make_record(uop, pc, position, count, next_pc)

        if op is Op.HLT:
            self.halted = True
            return self._make_record(uop, pc, position, count, next_pc)

        raise EmulationError(f"unimplemented opcode {op}")

    def _branch(self, uop, pc, position, count, next_pc, src_values):
        op = uop.op
        if op in (Op.BR, Op.BLR, Op.RET):
            target = src_values[0]
        else:
            target = self.program.resolve(uop.target) if uop.target else next_pc
        src_value = src_values[0] if src_values else 0
        taken = branch_taken(op, uop.cond, self.flags, src_value, uop.imm2 or 0)
        result = None
        if op in (Op.BL, Op.BLR):
            result = pc + INST_BYTES
            self.regs[30] = result
        record = self._make_record(uop, pc, position, count, next_pc,
                                   result=result, taken=taken,
                                   target_pc=target if taken else None,
                                   src_values=src_values)
        if result is not None:
            record.dst = 30
        return record
