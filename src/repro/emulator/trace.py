"""Dynamic micro-op trace records and the columnar trace engine.

The timing model is trace-driven: the functional emulator executes the
program architecturally and emits one :class:`DynUop` per retired µop,
carrying the concrete result value, memory address and branch outcome.  The
timing model replays this correct-path stream and decides predictor
hits/misses by comparing predictions against the recorded truth.

Two trace representations coexist:

* a plain ``list[DynUop]`` — what :func:`trace_program` returns and what
  ad-hoc tests construct by hand; and
* :class:`ColumnarTrace` — the same stream packed struct-of-arrays into
  typed :mod:`array` columns, with a versioned binary serialization
  (``.rtrc`` files) so a trace is emulated once per (workload, budget,
  code-version) ever and then loaded from disk / shared memory.

``ColumnarTrace`` is a drop-in sequence of :class:`DynUop`: indexing
materializes (and caches) an object view that is field-for-field equal to
the emulator's original record, so observability/analysis consumers keep
working unchanged while the pipeline's hot loops read columns directly.
"""

import json
import struct
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Optional, Tuple

from repro.isa.condition import Cond
from repro.isa.opcodes import ExecClass, Op

# The paper's value-prediction eligibility classes (a tuple so membership
# tests compare by identity instead of the pure-Python enum ``__hash__``).
_VP_CLASSES = (ExecClass.INT_ALU, ExecClass.INT_MUL,
               ExecClass.INT_DIV, ExecClass.LOAD)


@dataclass
class DynUop:
    """One dynamic micro-op on the correct path."""

    __slots__ = (
        "seq", "arch_seq", "pc", "uop_index", "uop_count", "op", "cls",
        "width", "dst", "dst_is_fp", "writes_flags", "deps", "src_regs",
        "cond", "imm", "imm2", "result", "flags_out", "is_branch",
        "is_cond_branch", "is_indirect", "is_call", "is_return", "taken",
        "target_pc", "next_pc", "is_load", "is_store", "addr", "size",
        "store_value", "src_values", "text", "vp_elig", "is_last_uop",
    )

    seq: int                 # global µop sequence number
    arch_seq: int            # architectural instruction sequence number
    pc: int
    uop_index: int           # position within the architectural instruction
    uop_count: int           # µops of the architectural instruction
    op: Op
    cls: ExecClass
    width: int
    dst: Optional[int]       # architectural destination register (or None)
    dst_is_fp: bool
    writes_flags: bool
    deps: Tuple[int, ...]    # architectural registers read (incl. FLAGS)
    src_regs: Tuple[int, ...]  # positional register sources (incl. xzr)
    cond: Optional[object]   # condition code for csel/b.cond families
    imm: Optional[int]
    imm2: Optional[int]      # shift amount / tbz bit / ubfm imms
    result: Optional[int]    # value written to dst
    flags_out: Optional[int]
    is_branch: bool
    is_cond_branch: bool
    is_indirect: bool
    is_call: bool
    is_return: bool
    taken: bool
    target_pc: Optional[int]  # where the branch goes when taken
    next_pc: int              # actual next pc after this µop's instruction
    is_load: bool
    is_store: bool
    addr: Optional[int]
    size: int
    store_value: Optional[int]
    src_values: Tuple[int, ...]
    text: str

    def __post_init__(self):
        # Value-prediction eligibility (the paper's rule: arithmetic and
        # load µops producing a general-purpose register), precomputed
        # once because the pipeline consults it at fetch, rename and
        # commit for every µop.  ``is_last_uop`` (final µop of its
        # architectural instruction) is likewise a stored slot: commit
        # and the stats loops test it per µop.
        self.vp_elig = (self.dst is not None and not self.dst_is_fp
                        and not self.is_branch and self.cls in _VP_CLASSES)
        self.is_last_uop = self.uop_index == self.uop_count - 1

    def __repr__(self):
        return f"<uop #{self.seq} pc={self.pc:#x} {self.text}>"


@dataclass
class TraceStats:
    """Aggregate counts produced alongside a trace."""

    arch_instructions: int = 0
    uops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    gpr_writers: int = 0
    value_histogram: dict = field(default_factory=dict)

    @property
    def expansion_ratio(self):
        """µops per architectural instruction (the paper's Fig. 2 bars)."""
        if self.arch_instructions == 0:
            return 0.0
        return self.uops / self.arch_instructions


# -- columnar trace engine -----------------------------------------------------------
#
# Enum values are encoded by their positional index in the declaration
# order below; the schema hash embedded in every serialized trace covers
# those orders (plus the column layout), so a trace written by a
# different enum/layout revision is rejected at load instead of decoding
# garbage.

_OPS = tuple(Op)
_CLASSES = tuple(ExecClass)
_CONDS = tuple(Cond)
_OP_INDEX = {op: i for i, op in enumerate(_OPS)}
_CLASS_INDEX = {cls: i for i, cls in enumerate(_CLASSES)}
_COND_INDEX = {cond: i for i, cond in enumerate(_CONDS)}

# Per-µop boolean/presence bits packed into the 'flags' column.
_F_DST_IS_FP = 1 << 0
_F_WRITES_FLAGS = 1 << 1
_F_IS_BRANCH = 1 << 2
_F_IS_COND_BRANCH = 1 << 3
_F_IS_INDIRECT = 1 << 4
_F_IS_CALL = 1 << 5
_F_IS_RETURN = 1 << 6
_F_TAKEN = 1 << 7
_F_IS_LOAD = 1 << 8
_F_IS_STORE = 1 << 9
_F_VP_ELIG = 1 << 10
_F_IS_LAST_UOP = 1 << 11
_F_HAS_IMM = 1 << 12
_F_IMM_NEG = 1 << 13
_F_HAS_IMM2 = 1 << 14
_F_IMM2_NEG = 1 << 15
_F_HAS_RESULT = 1 << 16
_F_HAS_TARGET = 1 << 17
_F_HAS_ADDR = 1 << 18
_F_HAS_STORE_VALUE = 1 << 19

# (name, array typecode) per column, in serialization order.  'S' marks
# the interned-text string table (a UTF-8 JSON blob, not an array).
# ``imm``/``imm2`` store magnitudes with sign/presence bits in 'flags'
# because immediates span negative offsets *and* raw float64 bit
# patterns (FMOV) that exceed the signed 64-bit range.
_COLUMN_SPEC = (
    ("seq", "q"), ("arch_seq", "q"), ("pc", "Q"), ("next_pc", "Q"),
    ("uop_index", "B"), ("uop_count", "B"), ("op", "H"), ("cls", "B"),
    ("width", "B"), ("dst", "h"), ("cond", "b"), ("flags_out", "b"),
    ("size", "B"), ("flags", "I"), ("imm", "Q"), ("imm2", "Q"),
    ("result", "Q"), ("target_pc", "Q"), ("addr", "Q"),
    ("store_value", "Q"), ("dep_off", "I"), ("dep_flat", "B"),
    ("src_off", "I"), ("src_reg_flat", "B"), ("src_val_flat", "Q"),
    ("text_idx", "I"), ("text_tab", "S"),
)

_MAGIC = b"RTRC"
_RTRC_VERSION = 1
# magic, version, reserved, schema-hash prefix, n_uops, n_cols,
# body length, body crc32, pad — 40 bytes, 8-aligned.
_HEADER = struct.Struct("<4sHH8sIIQI4x")
# column name (16 bytes, NUL-padded), typecode, pad, offset, length.
_DIRENT = struct.Struct("<16sc7xQQ")


def _schema_hash():
    spec = json.dumps({
        "version": _RTRC_VERSION,
        "columns": _COLUMN_SPEC,
        "ops": [op.name for op in _OPS],
        "classes": [cls.name for cls in _CLASSES],
        "conds": [cond.name for cond in _CONDS],
    }, sort_keys=True)
    return sha256(spec.encode()).digest()[:8]


_SCHEMA_HASH = _schema_hash()


class TraceFormatError(ValueError):
    """A serialized trace is torn, truncated or from another revision."""


class ColumnarTrace:
    """A µop trace packed struct-of-arrays into typed columns.

    Behaves as an immutable sequence of :class:`DynUop` — indexing
    materializes an object view lazily and caches it, so downstream
    consumers that hold µop references (ROB entries, observability)
    see one identity-stable object per slot, exactly like a plain
    list trace.  The pipeline's hot loops bypass the views and read
    the columns directly via :attr:`columns`.
    """

    __slots__ = ("_n", "_cols", "_texts", "_views", "_buffer", "derived")

    def __init__(self, n, cols, texts, buffer=None):
        self._n = n
        self._cols = cols
        self._texts = texts
        self._views = [None] * n
        # Keeps the backing mmap / SharedMemory.buf alive for zero-copy
        # column views.
        self._buffer = buffer
        # Memoized per-trace derived data (cache-line column, precomputed
        # branch outcomes keyed by frontend fingerprint, ...), shared by
        # every CpuModel replaying this trace in-process.
        self.derived = {}

    # -- construction ----------------------------------------------------------------
    @classmethod
    def from_uops(cls, uops, keep_views=False):
        """Pack a ``list[DynUop]`` (lossless round-trip guaranteed).

        With ``keep_views=True`` the input objects are adopted as the
        materialized views — zero rebuild cost when the packer already
        holds the emulator's records.
        """
        from array import array

        n = len(uops)
        cols = {name: array(tc) for name, tc in _COLUMN_SPEC if tc != "S"}
        seq_c = cols["seq"]; arch_c = cols["arch_seq"]; pc_c = cols["pc"]
        next_c = cols["next_pc"]; ui_c = cols["uop_index"]
        uc_c = cols["uop_count"]; op_c = cols["op"]; cls_c = cols["cls"]
        width_c = cols["width"]; dst_c = cols["dst"]; cond_c = cols["cond"]
        fo_c = cols["flags_out"]; size_c = cols["size"]; fl_c = cols["flags"]
        imm_c = cols["imm"]; imm2_c = cols["imm2"]; res_c = cols["result"]
        tgt_c = cols["target_pc"]; addr_c = cols["addr"]
        sv_c = cols["store_value"]; dep_off = cols["dep_off"]
        dep_flat = cols["dep_flat"]; src_off = cols["src_off"]
        src_reg_flat = cols["src_reg_flat"]; src_val_flat = cols["src_val_flat"]
        text_idx = cols["text_idx"]
        texts = []
        text_table = {}
        dep_off.append(0)
        src_off.append(0)
        for u in uops:
            fl = 0
            if u.dst_is_fp: fl |= _F_DST_IS_FP
            if u.writes_flags: fl |= _F_WRITES_FLAGS
            if u.is_branch: fl |= _F_IS_BRANCH
            if u.is_cond_branch: fl |= _F_IS_COND_BRANCH
            if u.is_indirect: fl |= _F_IS_INDIRECT
            if u.is_call: fl |= _F_IS_CALL
            if u.is_return: fl |= _F_IS_RETURN
            if u.taken: fl |= _F_TAKEN
            if u.is_load: fl |= _F_IS_LOAD
            if u.is_store: fl |= _F_IS_STORE
            if u.vp_elig: fl |= _F_VP_ELIG
            if u.is_last_uop: fl |= _F_IS_LAST_UOP
            seq_c.append(u.seq)
            arch_c.append(u.arch_seq)
            pc_c.append(u.pc)
            next_c.append(u.next_pc)
            ui_c.append(u.uop_index)
            uc_c.append(u.uop_count)
            op_c.append(_OP_INDEX[u.op])
            cls_c.append(_CLASS_INDEX[u.cls])
            width_c.append(u.width)
            dst_c.append(-1 if u.dst is None else u.dst)
            cond_c.append(-1 if u.cond is None else _COND_INDEX[u.cond])
            fo_c.append(-1 if u.flags_out is None else u.flags_out)
            size_c.append(u.size)
            if u.imm is None:
                imm_c.append(0)
            else:
                fl |= _F_HAS_IMM
                v = u.imm
                if v < 0:
                    fl |= _F_IMM_NEG
                    v = -v
                imm_c.append(v)
            if u.imm2 is None:
                imm2_c.append(0)
            else:
                fl |= _F_HAS_IMM2
                v = u.imm2
                if v < 0:
                    fl |= _F_IMM2_NEG
                    v = -v
                imm2_c.append(v)
            if u.result is None:
                res_c.append(0)
            else:
                fl |= _F_HAS_RESULT
                res_c.append(u.result)
            if u.target_pc is None:
                tgt_c.append(0)
            else:
                fl |= _F_HAS_TARGET
                tgt_c.append(u.target_pc)
            if u.addr is None:
                addr_c.append(0)
            else:
                fl |= _F_HAS_ADDR
                addr_c.append(u.addr)
            if u.store_value is None:
                sv_c.append(0)
            else:
                fl |= _F_HAS_STORE_VALUE
                sv_c.append(u.store_value)
            fl_c.append(fl)
            dep_flat.extend(u.deps)
            dep_off.append(len(dep_flat))
            src_reg_flat.extend(u.src_regs)
            src_val_flat.extend(u.src_values)
            src_off.append(len(src_reg_flat))
            idx = text_table.get(u.text)
            if idx is None:
                idx = text_table[u.text] = len(texts)
                texts.append(u.text)
            text_idx.append(idx)
        trace = cls(n, cols, texts)
        if keep_views:
            trace._views[:] = list(uops)
        return trace

    # -- serialization ---------------------------------------------------------------
    def to_bytes(self):
        """The versioned ``.rtrc`` byte image (header + directory + columns)."""
        blobs = []
        for name, tc in _COLUMN_SPEC:
            if tc == "S":
                blobs.append(json.dumps(self._texts,
                                        ensure_ascii=False).encode("utf-8"))
            else:
                blobs.append(self._cols[name].tobytes())
        dir_size = _DIRENT.size * len(_COLUMN_SPEC)
        parts = []
        entries = []
        offset = dir_size
        for (name, tc), blob in zip(_COLUMN_SPEC, blobs):
            entries.append(_DIRENT.pack(name.encode("ascii"),
                                        tc.encode("ascii"), offset, len(blob)))
            parts.append(blob)
            pad = (-len(blob)) % 8
            if pad:
                parts.append(b"\0" * pad)
            offset += len(blob) + pad
        body = b"".join(entries) + b"".join(parts)
        header = _HEADER.pack(_MAGIC, _RTRC_VERSION, 0, _SCHEMA_HASH,
                              self._n, len(_COLUMN_SPEC), len(body),
                              zlib.crc32(body))
        return header + body

    @classmethod
    def from_buffer(cls, buffer):
        """Zero-copy load from any buffer (bytes, mmap, SharedMemory.buf).

        Columns are :class:`memoryview` casts into *buffer*; the trace
        keeps a reference so the backing storage outlives the views.
        Raises :class:`TraceFormatError` on a torn, truncated or
        schema-mismatched image.
        """
        mv = memoryview(buffer)
        if len(mv) < _HEADER.size:
            raise TraceFormatError("truncated trace: missing header")
        (magic, version, _reserved, schema, n_uops, n_cols, body_len,
         crc) = _HEADER.unpack_from(mv, 0)
        if magic != _MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != _RTRC_VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        if schema != _SCHEMA_HASH:
            raise TraceFormatError("trace written by another code revision")
        if n_cols != len(_COLUMN_SPEC):
            raise TraceFormatError(f"expected {len(_COLUMN_SPEC)} columns, "
                                   f"found {n_cols}")
        body = mv[_HEADER.size:_HEADER.size + body_len]
        if len(body) != body_len:
            raise TraceFormatError("truncated trace body")
        if zlib.crc32(body) != crc:
            raise TraceFormatError("trace checksum mismatch (torn write?)")
        cols = {}
        texts = None
        for i, (name, tc) in enumerate(_COLUMN_SPEC):
            ent_name, ent_tc, offset, length = _DIRENT.unpack_from(
                body, i * _DIRENT.size)
            if (ent_name.rstrip(b"\0").decode("ascii") != name
                    or ent_tc.decode("ascii") != tc):
                raise TraceFormatError(f"column {i} mismatch: "
                                       f"expected {name}/{tc}")
            if offset + length > body_len:
                raise TraceFormatError(f"column {name} overruns the body")
            blob = body[offset:offset + length]
            if tc == "S":
                texts = json.loads(bytes(blob).decode("utf-8"))
            else:
                cols[name] = blob.cast(tc)
        if len(cols["seq"]) != n_uops:
            raise TraceFormatError("column length disagrees with header")
        return cls(n_uops, cols, texts, buffer=buffer)

    def to_file(self, path):
        """Atomic write (tmp + rename) of the ``.rtrc`` image."""
        import os

        blob = self.to_bytes()
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
        return len(blob)

    @classmethod
    def from_file(cls, path, use_mmap=True):
        """Load an ``.rtrc`` file, zero-copy through mmap by default."""
        if use_mmap:
            import mmap

            with open(path, "rb") as handle:
                try:
                    buf = mmap.mmap(handle.fileno(), 0,
                                    access=mmap.ACCESS_READ)
                except ValueError:  # empty file
                    raise TraceFormatError("empty trace file") from None
            return cls.from_buffer(buf)
        with open(path, "rb") as handle:
            return cls.from_buffer(handle.read())

    # -- sequence protocol -----------------------------------------------------------
    def __len__(self):
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n))]
        if index < 0:
            index += self._n
        view = self._views[index]
        if view is None:
            view = self._views[index] = self._materialize(index)
        return view

    def __iter__(self):
        views = self._views
        for i in range(self._n):
            view = views[i]
            if view is None:
                view = views[i] = self._materialize(i)
            yield view

    def __repr__(self):
        return f"<ColumnarTrace {self._n} uops>"

    @property
    def columns(self):
        """The raw column mapping for hot-loop indexed access."""
        return self._cols

    @property
    def views(self):
        """The materialized-view cache (``None`` per unmaterialized slot).

        Hot loops index this list directly (C-speed) and fall back to
        ``trace[i]`` only on a ``None`` slot; the slot is then filled,
        so every later pass over the same trace runs at list speed.
        """
        return self._views

    def release(self):
        """Release every memoryview into the backing buffer.

        Required before closing a ``SharedMemory`` segment (or mmap)
        this trace was attached to: exported buffer pointers keep the
        mapping open otherwise.  The trace is unusable afterwards except
        for already-materialized views.
        """
        for col in list(self._cols.values()):
            if isinstance(col, memoryview):
                col.release()
        self._cols = {}
        self.derived.clear()
        self._buffer = None

    @property
    def texts(self):
        return self._texts

    def line_column(self, shift):
        """Memoized per-µop cache-line index column (``pc >> shift``)."""
        key = ("line", shift)
        col = self.derived.get(key)
        if col is None:
            from array import array

            col = array("Q", (pc >> shift for pc in self._cols["pc"]))
            self.derived[key] = col
        return col

    def _materialize(self, i):
        cols = self._cols
        fl = cols["flags"][i]
        dst = cols["dst"][i]
        cond = cols["cond"][i]
        flags_out = cols["flags_out"][i]
        d0, d1 = cols["dep_off"][i], cols["dep_off"][i + 1]
        s0, s1 = cols["src_off"][i], cols["src_off"][i + 1]
        u = DynUop.__new__(DynUop)
        u.seq = cols["seq"][i]
        u.arch_seq = cols["arch_seq"][i]
        u.pc = cols["pc"][i]
        u.uop_index = cols["uop_index"][i]
        u.uop_count = cols["uop_count"][i]
        u.op = _OPS[cols["op"][i]]
        u.cls = _CLASSES[cols["cls"][i]]
        u.width = cols["width"][i]
        u.dst = None if dst < 0 else dst
        u.dst_is_fp = bool(fl & _F_DST_IS_FP)
        u.writes_flags = bool(fl & _F_WRITES_FLAGS)
        u.deps = tuple(cols["dep_flat"][d0:d1])
        u.src_regs = tuple(cols["src_reg_flat"][s0:s1])
        u.cond = None if cond < 0 else _CONDS[cond]
        if fl & _F_HAS_IMM:
            u.imm = -cols["imm"][i] if fl & _F_IMM_NEG else cols["imm"][i]
        else:
            u.imm = None
        if fl & _F_HAS_IMM2:
            u.imm2 = -cols["imm2"][i] if fl & _F_IMM2_NEG else cols["imm2"][i]
        else:
            u.imm2 = None
        u.result = cols["result"][i] if fl & _F_HAS_RESULT else None
        u.flags_out = None if flags_out < 0 else flags_out
        u.is_branch = bool(fl & _F_IS_BRANCH)
        u.is_cond_branch = bool(fl & _F_IS_COND_BRANCH)
        u.is_indirect = bool(fl & _F_IS_INDIRECT)
        u.is_call = bool(fl & _F_IS_CALL)
        u.is_return = bool(fl & _F_IS_RETURN)
        u.taken = bool(fl & _F_TAKEN)
        u.target_pc = cols["target_pc"][i] if fl & _F_HAS_TARGET else None
        u.next_pc = cols["next_pc"][i]
        u.is_load = bool(fl & _F_IS_LOAD)
        u.is_store = bool(fl & _F_IS_STORE)
        u.addr = cols["addr"][i] if fl & _F_HAS_ADDR else None
        u.size = cols["size"][i]
        u.store_value = cols["store_value"][i] if fl & _F_HAS_STORE_VALUE else None
        u.src_values = tuple(cols["src_val_flat"][s0:s1])
        u.text = self._texts[cols["text_idx"][i]]
        u.vp_elig = bool(fl & _F_VP_ELIG)
        u.is_last_uop = bool(fl & _F_IS_LAST_UOP)
        return u


# -- dependence-edge iteration -------------------------------------------------------
def iter_dep_edges(trace):
    """Yield every data/memory dependence edge of a committed-µop trace.

    Edges are ``(producer_index, consumer_index, kind)`` with *kind* one
    of:

    * ``"reg"``   — register def→use through the last architectural
      writer (XZR reads never appear in ``deps``);
    * ``"flags"`` — the NZCV chain (a ``deps`` entry equal to FLAGS,
      produced by the youngest older flag-setting µop);
    * ``"mem"``   — store→load through overlapping resolved addresses
      (per-byte last-store map, so partial overlaps are edges too).

    The trace is the correct path, so last-writer resolution over the
    sequential order *is* the dataflow graph — no control speculation to
    undo.  Edges are emitted in consumer order, deduplicated per
    (producer, consumer) pair; register/flag edges win over memory edges
    in the dedup only within one consumer (kinds never conflict in
    practice: a load's address registers and its forwarding store are
    different producers).

    Works on any ``DynUop`` sequence — a plain list or a
    :class:`ColumnarTrace` (views materialize on first touch).
    """
    from repro.isa.registers import FLAGS

    last_writer = {}
    last_store = {}   # byte address -> producing store index
    for i, uop in enumerate(trace):
        seen = set()
        for reg in uop.deps:
            producer = last_writer.get(reg)
            if producer is not None and producer not in seen:
                seen.add(producer)
                yield producer, i, ("flags" if reg == FLAGS else "reg")
        if uop.is_load and uop.addr is not None:
            for byte in range(uop.addr, uop.addr + uop.size):
                producer = last_store.get(byte)
                if producer is not None and producer not in seen:
                    seen.add(producer)
                    yield producer, i, "mem"
        if uop.is_store and uop.addr is not None:
            for byte in range(uop.addr, uop.addr + uop.size):
                last_store[byte] = i
        if uop.dst is not None:
            last_writer[uop.dst] = i
        if uop.writes_flags:
            last_writer[FLAGS] = i


def dep_edge_counts(trace):
    """``{kind: count}`` over :func:`iter_dep_edges` (reporting helper)."""
    counts = {"reg": 0, "flags": 0, "mem": 0}
    for _producer, _consumer, kind in iter_dep_edges(trace):
        counts[kind] += 1
    return counts


def trace_program(program, max_instructions=100_000, machine=None,
                  collect_value_histogram=False):
    """Emulate *program* and return ``(list_of_DynUop, TraceStats)``.

    A convenience wrapper over :class:`~repro.emulator.machine.Machine`.
    """
    from repro.emulator.machine import Machine

    machine = machine or Machine(program)
    trace = []
    stats = TraceStats()
    histogram = stats.value_histogram
    for uop in machine.run(max_instructions=max_instructions):
        trace.append(uop)
        stats.uops += 1
        if uop.is_last_uop:
            stats.arch_instructions += 1
        if uop.is_load:
            stats.loads += 1
        elif uop.is_store:
            stats.stores += 1
        if uop.is_branch:
            stats.branches += 1
            if uop.taken:
                stats.taken_branches += 1
        if uop.dst is not None and not uop.dst_is_fp:
            stats.gpr_writers += 1
            if collect_value_histogram:
                histogram[uop.result] = histogram.get(uop.result, 0) + 1
    return trace, stats
