"""Dynamic micro-op trace records.

The timing model is trace-driven: the functional emulator executes the
program architecturally and emits one :class:`DynUop` per retired µop,
carrying the concrete result value, memory address and branch outcome.  The
timing model replays this correct-path stream and decides predictor
hits/misses by comparing predictions against the recorded truth.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import ExecClass, Op

# The paper's value-prediction eligibility classes (a tuple so membership
# tests compare by identity instead of the pure-Python enum ``__hash__``).
_VP_CLASSES = (ExecClass.INT_ALU, ExecClass.INT_MUL,
               ExecClass.INT_DIV, ExecClass.LOAD)


@dataclass
class DynUop:
    """One dynamic micro-op on the correct path."""

    __slots__ = (
        "seq", "arch_seq", "pc", "uop_index", "uop_count", "op", "cls",
        "width", "dst", "dst_is_fp", "writes_flags", "deps", "src_regs",
        "cond", "imm", "imm2", "result", "flags_out", "is_branch",
        "is_cond_branch", "is_indirect", "is_call", "is_return", "taken",
        "target_pc", "next_pc", "is_load", "is_store", "addr", "size",
        "store_value", "src_values", "text", "vp_elig",
    )

    seq: int                 # global µop sequence number
    arch_seq: int            # architectural instruction sequence number
    pc: int
    uop_index: int           # position within the architectural instruction
    uop_count: int           # µops of the architectural instruction
    op: Op
    cls: ExecClass
    width: int
    dst: Optional[int]       # architectural destination register (or None)
    dst_is_fp: bool
    writes_flags: bool
    deps: Tuple[int, ...]    # architectural registers read (incl. FLAGS)
    src_regs: Tuple[int, ...]  # positional register sources (incl. xzr)
    cond: Optional[object]   # condition code for csel/b.cond families
    imm: Optional[int]
    imm2: Optional[int]      # shift amount / tbz bit / ubfm imms
    result: Optional[int]    # value written to dst
    flags_out: Optional[int]
    is_branch: bool
    is_cond_branch: bool
    is_indirect: bool
    is_call: bool
    is_return: bool
    taken: bool
    target_pc: Optional[int]  # where the branch goes when taken
    next_pc: int              # actual next pc after this µop's instruction
    is_load: bool
    is_store: bool
    addr: Optional[int]
    size: int
    store_value: Optional[int]
    src_values: Tuple[int, ...]
    text: str

    def __post_init__(self):
        # Value-prediction eligibility (the paper's rule: arithmetic and
        # load µops producing a general-purpose register), precomputed
        # once because the pipeline consults it at fetch, rename and
        # commit for every µop.
        self.vp_elig = (self.dst is not None and not self.dst_is_fp
                        and not self.is_branch and self.cls in _VP_CLASSES)

    @property
    def is_last_uop(self):
        """True for the final µop of its architectural instruction."""
        return self.uop_index == self.uop_count - 1

    def __repr__(self):
        return f"<uop #{self.seq} pc={self.pc:#x} {self.text}>"


@dataclass
class TraceStats:
    """Aggregate counts produced alongside a trace."""

    arch_instructions: int = 0
    uops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    gpr_writers: int = 0
    value_histogram: dict = field(default_factory=dict)

    @property
    def expansion_ratio(self):
        """µops per architectural instruction (the paper's Fig. 2 bars)."""
        if self.arch_instructions == 0:
            return 0.0
        return self.uops / self.arch_instructions


def trace_program(program, max_instructions=100_000, machine=None,
                  collect_value_histogram=False):
    """Emulate *program* and return ``(list_of_DynUop, TraceStats)``.

    A convenience wrapper over :class:`~repro.emulator.machine.Machine`.
    """
    from repro.emulator.machine import Machine

    machine = machine or Machine(program)
    trace = []
    stats = TraceStats()
    histogram = stats.value_histogram
    for uop in machine.run(max_instructions=max_instructions):
        trace.append(uop)
        stats.uops += 1
        if uop.is_last_uop:
            stats.arch_instructions += 1
        if uop.is_load:
            stats.loads += 1
        elif uop.is_store:
            stats.stores += 1
        if uop.is_branch:
            stats.branches += 1
            if uop.taken:
                stats.taken_branches += 1
        if uop.dst is not None and not uop.dst_is_fp:
            stats.gpr_writers += 1
            if collect_value_histogram:
                histogram[uop.result] = histogram.get(uop.result, 0) + 1
    return trace, stats
