"""Functional (architectural) emulation and dynamic µop traces."""

from repro.emulator.machine import EmulationError, Machine
from repro.emulator.trace import (ColumnarTrace, DynUop, TraceFormatError,
                                  trace_program)

__all__ = ["ColumnarTrace", "DynUop", "EmulationError", "Machine",
           "TraceFormatError", "trace_program"]
