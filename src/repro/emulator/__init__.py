"""Functional (architectural) emulation and dynamic µop traces."""

from repro.emulator.machine import EmulationError, Machine
from repro.emulator.trace import DynUop, trace_program

__all__ = ["DynUop", "EmulationError", "Machine", "trace_program"]
