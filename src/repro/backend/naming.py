"""Overloaded physical register names (the paper's §3.2).

A physical register *name* is a small integer.  Names below the physical
register count denote real PRF entries; the paper widens names by one bit
so a name can instead *be* a small value.  Our encoding:

* ``0`` / ``1``                      — the hardwired 0x0 / 0x1 registers
  (present even in the baseline: they implement 0/1-idiom elimination, and
  they are all MVP needs)
* ``INLINE_BASE + f`` (f in 0..511)  — a signed 9-bit inline value with
  field ``f`` (TVP/GVP physical register inlining)
* ``FLAG_INLINE_BASE + n`` (n in 0..15) — a hardwired NZCV value, the
  paper's footnote-4 hardwired condition-flag registers that let SpSR fully
  reduce flag-setting instructions

``known_value(name)`` recovers the rename-time-known value of a name, or
``None`` for a real register — this single predicate is what makes SpSR
decisions and PRF-port savings fall out naturally everywhere else.
"""

from repro.core.modes import decode_value_field
from repro.isa.bits import fits_signed

HARDWIRED_ZERO = 0
HARDWIRED_ONE = 1
N_HARDWIRED = 2
INLINE_BASE = 1024
FLAG_INLINE_BASE = 2048
# Disjoint name spaces for the other register classes.
FP_NAME_BASE = 4096
FLAGS_NAME_BASE = 8192


def is_inline_name(name):
    """True for 9-bit inline value names (not the hardwired pair)."""
    return INLINE_BASE <= name < INLINE_BASE + 512


def is_flag_inline_name(name):
    return FLAG_INLINE_BASE <= name < FLAG_INLINE_BASE + 16


def is_real_register(name):
    """True when *name* denotes an allocatable PRF entry."""
    return N_HARDWIRED <= name < INLINE_BASE


def encode_inline(value):
    """Inline name for a signed-9-bit-representable 64-bit value.

    Prefers the hardwired registers for 0/1 (they exist anyway and need no
    extra name bit).  Raises when the value does not fit.
    """
    if value == 0:
        return HARDWIRED_ZERO
    if value == 1:
        return HARDWIRED_ONE
    if not fits_signed(value, 9):
        raise ValueError(f"value {value:#x} does not fit a signed 9-bit inline name")
    return INLINE_BASE + (value & 0x1FF)


def encode_flag_inline(flags):
    """Hardwired-NZCV name for a known 4-bit flags value."""
    return FLAG_INLINE_BASE + (flags & 0xF)


def inline_flags_value(name):
    """The NZCV value of a hardwired-flags name."""
    return name - FLAG_INLINE_BASE


def known_value(name):
    """Rename-time-known 64-bit value of *name*, or None for a real reg."""
    if name == HARDWIRED_ZERO:
        return 0
    if name == HARDWIRED_ONE:
        return 1
    if is_inline_name(name):
        return decode_value_field(name - INLINE_BASE, 9)
    return None


def known_flags(name):
    """Rename-time-known NZCV of a flags name, or None."""
    if is_flag_inline_name(name):
        return name - FLAG_INLINE_BASE
    return None
