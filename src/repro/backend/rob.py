"""Reorder buffer.

Each entry carries the rename undo log (arch reg, previous name, new name)
used to repair the RAT on a flush — the paper's Active-List-walk recovery
(§3.2.1), which is unchanged by value-encoding names except that the
entries are one bit wider.
"""

import enum
from collections import deque


class UopState(enum.Enum):
    WAITING = "waiting"        # in the IQ (or LSQ), not yet issued
    ISSUED = "issued"          # executing on a functional unit
    DONE = "done"              # result produced, prediction validated
    ELIMINATED = "eliminated"  # removed at rename; completes instantly


class RobEntry:
    """One µop's lifetime in the window."""

    __slots__ = (
        "seq", "uop", "state", "dest_name", "flags_name", "undo",
        "complete_cycle", "vp_used", "vp_predicted", "elim_kind",
        "move_width_blocked", "wait_store_seq", "src_names",
        "issue_ready_cycle", "in_iq", "wakeup_cycle", "wakeup_known",
        "issue_token", "select_gate", "iq_active", "pending_count",
    )

    def __init__(self, seq, uop):
        self.seq = seq
        self.uop = uop
        self.state = UopState.WAITING
        self.dest_name = None          # physical name of the GPR/FPR dest
        self.flags_name = None         # physical name of the NZCV dest
        self.undo = []                 # [(arch_reg, prev_name, new_name)]
        self.complete_cycle = None
        self.vp_used = False
        self.vp_predicted = None       # the value installed at rename
        self.elim_kind = None          # stats category when eliminated
        self.move_width_blocked = False  # "non-ME move" (Fig. 4)
        self.wait_store_seq = None     # store-set predicted dependence
        self.src_names = ()            # physical names of the sources
        self.issue_ready_cycle = 0     # earliest cycle the IQ may select it
        self.in_iq = False
        self.wakeup_cycle = 0          # cached max source-ready cycle
        self.wakeup_known = False      # True once every source is scheduled
        self.issue_token = 0           # bumped per (re-)issue: stale
                                       # completion events are ignored
        self.select_gate = 0           # single scan key: earliest cycle the
                                       # scheduler may reconsider this entry
                                       # (dispatch floor, then cached wakeup
                                       # time; ~infinity while parked on an
                                       # unissued producer in the wakeup CAM)
        self.iq_active = False         # on the batch engine's active scan
                                       # list (vs parked in a gate bucket)
        self.pending_count = -1        # batch engine: outstanding unissued
                                       # sources (counter-based readiness);
                                       # -1 selects the reference rescan
                                       # protocol (_sources_ready)

    def __repr__(self):
        return f"<rob #{self.seq} {self.uop.text!r} {self.state.value}>"


class ReorderBuffer:
    """In-order window of :class:`RobEntry`."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = deque()

    def __len__(self):
        return len(self.entries)

    @property
    def full(self):
        return len(self.entries) >= self.capacity

    @property
    def empty(self):
        return not self.entries

    @property
    def occupancy(self):
        """Live entries right now (sampled by the observability layer)."""
        return len(self.entries)

    def push(self, entry):
        if self.full:
            raise AssertionError("ROB overflow")
        self.entries.append(entry)

    def head(self):
        return self.entries[0] if self.entries else None

    def pop_head(self):
        return self.entries.popleft()

    def squash_from(self, seq, rat):
        """Remove all entries with ``entry.seq >= seq`` (young -> old),
        undoing their RAT mappings.  Returns the squashed entries."""
        squashed = []
        while self.entries and self.entries[-1].seq >= seq:
            entry = self.entries.pop()
            for arch_reg, prev_name, new_name in reversed(entry.undo):
                rat.undo(arch_reg, prev_name, new_name)
                rat.drop_rob_ref(arch_reg, new_name)
            squashed.append(entry)
        return squashed
