"""Store Sets memory dependence predictor (Chrysos & Emer, 1998).

2k-entry SSIT (PC-indexed store-set ids) + 2k-entry LFST (last fetched
store per set), per Table 2.  A load whose PC maps to a valid set waits for
the store the LFST names; sets are created/merged when a memory-order
violation is detected.
"""

_INVALID = -1


class StoreSets:
    def __init__(self, ssit_entries=2048, lfst_entries=2048):
        self.ssit_entries = ssit_entries
        self.lfst_entries = lfst_entries
        self._ssit = [_INVALID] * ssit_entries
        self._lfst = [_INVALID] * lfst_entries   # store seq, or invalid
        self._next_set = 0
        self.stat_load_waits = 0
        self.stat_trainings = 0

    def _ssit_index(self, pc):
        return (pc >> 2) % self.ssit_entries

    # -- rename-time hooks ---------------------------------------------------------
    def load_dependence(self, load_pc):
        """Store seq this load should wait for, or None."""
        set_id = self._ssit[self._ssit_index(load_pc)]
        if set_id == _INVALID:
            return None
        store_seq = self._lfst[set_id % self.lfst_entries]
        if store_seq == _INVALID:
            return None
        self.stat_load_waits += 1
        return store_seq

    def store_renamed(self, store_pc, store_seq):
        """Record this store as the last fetched one of its set (if any)."""
        set_id = self._ssit[self._ssit_index(store_pc)]
        if set_id != _INVALID:
            self._lfst[set_id % self.lfst_entries] = store_seq
            return set_id
        return None

    def store_done(self, store_pc, store_seq):
        """Clear the LFST entry when the store completes or squashes."""
        set_id = self._ssit[self._ssit_index(store_pc)]
        if set_id != _INVALID and \
                self._lfst[set_id % self.lfst_entries] == store_seq:
            self._lfst[set_id % self.lfst_entries] = _INVALID

    # -- training ------------------------------------------------------------------
    def train_violation(self, store_pc, load_pc):
        """Assign the violating pair to a common store set."""
        self.stat_trainings += 1
        store_index = self._ssit_index(store_pc)
        load_index = self._ssit_index(load_pc)
        store_set = self._ssit[store_index]
        load_set = self._ssit[load_index]
        if store_set == _INVALID and load_set == _INVALID:
            new_set = self._next_set
            self._next_set = (self._next_set + 1) % self.lfst_entries
            self._ssit[store_index] = new_set
            self._ssit[load_index] = new_set
        elif store_set == _INVALID:
            self._ssit[store_index] = load_set
        elif load_set == _INVALID:
            self._ssit[load_index] = store_set
        else:
            merged = min(store_set, load_set)
            self._ssit[store_index] = merged
            self._ssit[load_index] = merged
