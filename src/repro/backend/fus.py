"""Functional unit port pool (the paper's Table 2 issue plan).

Up to 15 µops issue per cycle across: 4 simple ALUs, 2 ALU+IntMul(3c),
1 IntDiv(20c, unpipelined), 3 FP/SIMD(3c)+FPMul(4c/5c mac), 1 of those
also FPDiv(12c, unpipelined), 2 load ports, 2 store ports.  Branches
execute on simple ALU ports.
"""

from repro.isa.opcodes import ExecClass, Op


class _Port:
    __slots__ = ("capabilities", "busy_until")

    def __init__(self, capabilities):
        self.capabilities = frozenset(capabilities)
        self.busy_until = 0  # for unpipelined units


def port_plan(config):
    """The issue-port capability sets for *config*, in allocation order.

    One frozenset of :class:`ExecClass` per port, pure-capability ports
    first (greedy allocation prefers them).  Branches are not listed —
    they execute on the simple-ALU ports (see ``try_issue``); consumers
    reasoning about port pressure should fold BRANCH work into INT_ALU.

    This is the single source of truth for the issue plan: the live
    :class:`FunctionalUnits` arbiter and the static headroom analyzer
    (``repro.analysis.headroom.structural``) both build from it, so a
    port-count knob change moves both in lockstep.
    """
    alu = ExecClass.INT_ALU
    return tuple(
        [frozenset({alu})] * (config.int_alu_ports - config.int_mul_ports)
        + [frozenset({alu, ExecClass.INT_MUL})] * config.int_mul_ports
        + [frozenset({ExecClass.INT_DIV})] * config.int_div_ports
        + [frozenset({ExecClass.FP_ALU, ExecClass.FP_MUL})]
        * (config.fp_alu_ports - config.fp_div_ports)
        + [frozenset({ExecClass.FP_ALU, ExecClass.FP_MUL, ExecClass.FP_DIV})]
        * config.fp_div_ports
        + [frozenset({ExecClass.LOAD})] * config.load_ports
        + [frozenset({ExecClass.STORE})] * config.store_ports
    )


class FunctionalUnits:
    """Per-cycle port arbitration plus operation latencies."""

    def __init__(self, config):
        self.config = config
        self.ports = [_Port(caps) for caps in port_plan(config)]
        self._issued_this_cycle = 0
        self._cycle = -1
        self._issue_width = config.issue_width
        self._n_ports = len(self.ports)
        self._port_taken = [False] * self._n_ports
        # Candidate port indices per class, in the same greedy (pure
        # capabilities first) order the linear capability scan used.
        # Keyed by the enum's (string) value: interned-string hashing is
        # much cheaper than the pure-Python enum __hash__.
        self._ports_of = {
            cls.value: tuple(index for index, port in enumerate(self.ports)
                             if cls in port.capabilities)
            for cls in ExecClass
        }
        self._ports_of[ExecClass.BRANCH.value] = \
            self._ports_of[ExecClass.INT_ALU.value]

    def new_cycle(self, cycle):
        self._cycle = cycle
        self._issued_this_cycle = 0
        self._port_taken = [False] * self._n_ports

    def try_issue(self, exec_class, cycle):
        """Claim a port for one µop; returns True on success."""
        if self._issued_this_cycle >= self._issue_width:
            return False
        taken = self._port_taken
        ports = self.ports
        for index in self._ports_of[exec_class.value]:
            if taken[index]:
                continue
            port = ports[index]
            if port.busy_until > cycle:
                continue  # unpipelined unit still grinding
            taken[index] = True
            self._issued_this_cycle += 1
            if exec_class is ExecClass.INT_DIV or exec_class is ExecClass.FP_DIV:
                port.busy_until = cycle + self.latency_of(exec_class)
            return True
        return False

    def latency_of(self, exec_class, op=None):
        cfg = self.config
        if exec_class is ExecClass.INT_MUL:
            return cfg.int_mul_latency
        if exec_class is ExecClass.INT_DIV:
            return cfg.int_div_latency
        if exec_class is ExecClass.FP_ALU:
            return cfg.fp_alu_latency
        if exec_class is ExecClass.FP_MUL:
            return cfg.fp_mac_latency if op is Op.FMADD else cfg.fp_mul_latency
        if exec_class is ExecClass.FP_DIV:
            return cfg.fp_div_latency
        return 1  # simple ALU / branch / store address
