"""Out-of-order execution backend structures."""

from repro.backend.naming import (
    FLAG_INLINE_BASE,
    HARDWIRED_ONE,
    HARDWIRED_ZERO,
    INLINE_BASE,
    encode_flag_inline,
    encode_inline,
    inline_flags_value,
    is_inline_name,
    is_real_register,
    known_value,
)
from repro.backend.prf import PhysicalRegisterFile
from repro.backend.rat import RegisterAliasTable
from repro.backend.rob import ReorderBuffer, RobEntry, UopState
from repro.backend.storesets import StoreSets

__all__ = [
    "FLAG_INLINE_BASE",
    "HARDWIRED_ONE",
    "HARDWIRED_ZERO",
    "INLINE_BASE",
    "PhysicalRegisterFile",
    "RegisterAliasTable",
    "ReorderBuffer",
    "RobEntry",
    "StoreSets",
    "UopState",
    "encode_flag_inline",
    "encode_inline",
    "inline_flags_value",
    "is_inline_name",
    "is_real_register",
    "known_value",
]
