"""Register Alias Table (speculative RAT + committed CRAT).

Maps architectural registers to physical names.  Per the paper's §3.2.1 the
only change TVP requires is that the stored names may be value-encoding
names; recovery (undo-walk from the ROB) and reclamation (CRAT swap at
commit, skipping non-register names) are otherwise the classic algorithms —
both implemented here and exercised directly by unit tests.

Three register classes share this structure: INT (x0..x30, sp), FP
(d0..d31) and the NZCV flags pseudo-register; xzr is permanently mapped to
the hardwired zero register.
"""

from repro.backend.naming import HARDWIRED_ZERO
from repro.isa.registers import FLAGS, FP_BASE, N_ARCH_REGS, XZR


class RegisterAliasTable:
    """One speculative map + one committed map over all arch registers."""

    def __init__(self, int_prf, fp_prf, flags_prf):
        self._int_prf = int_prf
        self._fp_prf = fp_prf
        self._flags_prf = flags_prf
        # Flat reg -> file map: the remap paths below run once per rename /
        # commit, so the class dispatch is paid once here instead.
        self._prf_by_reg = [self._prf_of(reg) for reg in range(N_ARCH_REGS)]
        self.spec = [None] * N_ARCH_REGS
        self.committed = [None] * N_ARCH_REGS
        for reg in range(N_ARCH_REGS):
            if reg == XZR:
                self.spec[reg] = self.committed[reg] = HARDWIRED_ZERO
                continue
            prf = self._prf_of(reg)
            name = prf.alloc(cycle_ready=0)
            prf.add_ref(name)  # referenced by both spec and committed maps
            self.spec[reg] = name
            self.committed[reg] = name

    def _prf_of(self, reg):
        if reg == FLAGS:
            return self._flags_prf
        if reg >= FP_BASE:
            return self._fp_prf
        return self._int_prf

    # -- speculative map ----------------------------------------------------------
    def lookup(self, reg):
        """Current speculative name of *reg*."""
        return self.spec[reg]

    def write(self, reg, name):
        """Point *reg* at *name*; returns the previous name (for the ROB
        undo log).  Reference counts move accordingly."""
        if reg == XZR:
            return HARDWIRED_ZERO
        prf = self._prf_by_reg[reg]
        previous = self.spec[reg]
        prf.add_ref(name)
        prf.release(previous)
        self.spec[reg] = name
        return previous

    def undo(self, reg, previous_name, new_name):
        """Roll one mapping back during a flush (young -> old order)."""
        if reg == XZR:
            return
        prf = self._prf_by_reg[reg]
        prf.add_ref(previous_name)
        prf.release(new_name)
        self.spec[reg] = previous_name

    def drop_rob_ref(self, reg, name):
        """Release the ROB entry's own reference on its destination name.

        Reference protocol: a name is referenced by (a) speculative RAT
        entries, (b) committed RAT entries, and (c) the ROB entry that
        created the mapping — dropped at commit or squash.  This third
        reference is what keeps a speculatively-overwritten register alive
        for its in-flight consumers.
        """
        if reg == XZR:
            return
        self._prf_by_reg[reg].release(name)

    def commit_and_drop(self, reg, new_name):
        """Equivalent to ``commit(reg, new_name)`` then
        ``drop_rob_ref(reg, new_name)`` — the retire-time pair.

        The ROB entry's own reference transfers to the CRAT, so the
        +1/-1 on *new_name* cancels (the entry's reference keeps the
        count >= 1 throughout) and only the old committed name is
        actually released.
        """
        if reg == XZR:
            return
        prf = self._prf_by_reg[reg]
        previous = self.committed[reg]
        self.committed[reg] = new_name
        prf.release(previous)

    # -- committed map -------------------------------------------------------------
    def commit(self, reg, new_name):
        """Retire a mapping: CRAT swap + reclamation of the old name.

        Per §3.2.1: if the old CRAT name is a value name it is simply not
        put on the free list (release is a no-op for it); if the new name
        is a value the CRAT just records it.
        """
        if reg == XZR:
            return
        prf = self._prf_of(reg)
        previous = self.committed[reg]
        prf.add_ref(new_name)
        prf.release(previous)
        self.committed[reg] = new_name

    # -- invariants ---------------------------------------------------------------
    def check_consistent_with_committed(self):
        """After a full-pipeline flush, spec must equal committed."""
        for reg in range(N_ARCH_REGS):
            if self.spec[reg] != self.committed[reg]:
                raise AssertionError(
                    f"RAT mismatch on arch reg {reg}: "
                    f"spec={self.spec[reg]} committed={self.committed[reg]}")
        return True
