"""Physical register file: allocation, reference counting, readiness.

Reference counting implements the unlimited-reference move elimination the
paper assumes ("we assume unlimited reference counting for move
elimination, as existing proposals achieve potential that is close to
ideal").  A register's count is the number of RAT + CRAT entries that
reference it; it returns to the free list when the count reaches zero.

``ready_at`` tracks, per name, the cycle at which the value becomes
available — the scheduler's wakeup information.  Hardwired and inline
names are always ready.

Each register class (INT, FP, flags) is a separate file with a disjoint
*name_base* so physical names never collide across classes; value-encoding
names (:mod:`repro.backend.naming`) live between the INT space and the
other bases.
"""

from repro.backend.naming import N_HARDWIRED


class FreeListEmpty(Exception):
    """No physical register available (rename must stall)."""


class PhysicalRegisterFile:
    """One register class."""

    def __init__(self, n_regs, name_base=0, reserve_hardwired=True):
        self.n_regs = n_regs
        self.name_base = name_base
        self._first = N_HARDWIRED if reserve_hardwired else 0
        self._free = list(range(n_regs - 1, self._first - 1, -1))
        self._refcount = [0] * n_regs
        self._ready_at = [0] * n_regs
        self._width = [64] * n_regs   # producer width: the ME width rule
        self.stat_allocations = 0

    def owns(self, name):
        """True when *name* is an allocatable register of this file."""
        index = name - self.name_base
        return self._first <= index < self.n_regs

    # -- allocation ---------------------------------------------------------------
    @property
    def free_count(self):
        return len(self._free)

    def alloc(self, cycle_ready=None):
        """Take a register off the free list with refcount 1."""
        if not self._free:
            raise FreeListEmpty()
        index = self._free.pop()
        self._refcount[index] = 1
        self._ready_at[index] = cycle_ready if cycle_ready is not None else (1 << 62)
        self.stat_allocations += 1
        return self.name_base + index

    def add_ref(self, name):
        """One more RAT/CRAT entry references *name*."""
        index = name - self.name_base  # inlined owns(): hot path
        if self._first <= index < self.n_regs:
            self._refcount[index] += 1

    def release(self, name):
        """One fewer reference; frees the register at zero."""
        index = name - self.name_base  # inlined owns(): hot path
        if not (self._first <= index < self.n_regs):
            return
        refcount = self._refcount
        refcount[index] -= 1
        if refcount[index] == 0:
            self._free.append(index)
        elif refcount[index] < 0:
            raise AssertionError(f"refcount underflow on p{name}")

    def refcount(self, name):
        return self._refcount[name - self.name_base] if self.owns(name) else 0

    # -- readiness -----------------------------------------------------------------
    def set_ready(self, name, cycle):
        """Producer completion: value available from *cycle* on."""
        index = name - self.name_base  # inlined owns(): hot path
        if self._first <= index < self.n_regs:
            self._ready_at[index] = cycle

    def ready_at(self, name):
        """Cycle the value behind *name* is available (0 for value names
        and the hardwired registers)."""
        index = name - self.name_base
        if 0 <= index < self.n_regs:
            return self._ready_at[index]
        return 0

    def ready_slot(self, name):
        """A ``(buffer, index)`` pair with ``buffer[index] == ready_at(name)``.

        The buffer is this file's readiness array, mutated in place by
        :meth:`set_ready`, so the slot stays valid for the file's lifetime —
        the scheduler caches it to skip the per-lookup range dispatch.
        Returns None for names outside the file (value-encoding names),
        whose readiness is the constant 0.
        """
        index = name - self.name_base
        if 0 <= index < self.n_regs:
            return self._ready_at, index
        return None

    # -- width metadata (move-elimination 64->32 rule) -----------------------------
    def set_width(self, name, width):
        """Record the producing write's width (w-writes zero-extend)."""
        if self.owns(name):
            self._width[name - self.name_base] = width

    def width_of(self, name):
        if self.owns(name):
            return self._width[name - self.name_base]
        return 64

    # -- invariants (used by property tests) ------------------------------------------
    def live_registers(self):
        """Names currently allocated (not free, not hardwired)."""
        free = set(self._free)
        return [self.name_base + i for i in range(self._first, self.n_regs)
                if i not in free]

    def check_conservation(self):
        """Every register is exactly free or referenced: no leaks/doubles."""
        free = set(self._free)
        if len(free) != len(self._free):
            raise AssertionError("duplicate entries on the free list")
        for index in range(self._first, self.n_regs):
            count = self._refcount[index]
            if index in free and count != 0:
                raise AssertionError(f"free register p{index} has refcount {count}")
            if index not in free and count <= 0:
                raise AssertionError(f"live register p{index} has refcount {count}")
        return True
