"""Load and store queues: forwarding and memory-order violation detection.

Addresses come from the trace (the functional emulator), so conflict
detection is exact; *timing* still matters — a load that issues before an
older same-address store has executed is a memory-order violation unless
the Store Sets predictor made it wait.
"""


class LsqEntry:
    __slots__ = ("seq", "addr", "size", "rob_entry", "executed_cycle",
                 "data_ready_cycle")

    def __init__(self, seq, addr, size, rob_entry):
        self.seq = seq
        self.addr = addr
        self.size = size
        self.rob_entry = rob_entry
        self.executed_cycle = None      # when the access/AGU happened
        self.data_ready_cycle = None    # stores: when the data can forward

    def overlaps(self, other):
        return self.addr < other.addr + other.size and \
            other.addr < self.addr + self.size

    def contains(self, other):
        """This entry's bytes fully cover *other*'s."""
        return self.addr <= other.addr and \
            other.addr + other.size <= self.addr + self.size


class LoadStoreQueues:
    """Both queues plus the cross-checking logic."""

    def __init__(self, lq_capacity, sq_capacity):
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self.loads = []
        self.stores = []

    @property
    def lq_full(self):
        return len(self.loads) >= self.lq_capacity

    @property
    def sq_full(self):
        return len(self.stores) >= self.sq_capacity

    def add_load(self, entry):
        self.loads.append(entry)

    def add_store(self, entry):
        self.stores.append(entry)

    # -- load issue checks ---------------------------------------------------------
    def youngest_older_store_conflict(self, load):
        """Youngest store older than *load* touching the same bytes."""
        best = None
        for store in self.stores:
            if store.seq < load.seq and store.overlaps(load):
                if best is None or store.seq > best.seq:
                    best = store
        return best

    # -- store execution checks ------------------------------------------------------
    def violating_loads(self, store):
        """Younger loads that already executed against stale data."""
        return [load for load in self.loads
                if load.seq > store.seq and load.overlaps(store)
                and load.executed_cycle is not None]

    # -- lifecycle --------------------------------------------------------------------
    def remove_committed(self, seq):
        self.loads = [e for e in self.loads if e.seq != seq]
        self.stores = [e for e in self.stores if e.seq != seq]

    def squash_from(self, seq):
        self.loads = [e for e in self.loads if e.seq < seq]
        self.stores = [e for e in self.stores if e.seq < seq]
