"""Load and store queues: forwarding and memory-order violation detection.

Addresses come from the trace (the functional emulator), so conflict
detection is exact; *timing* still matters — a load that issues before an
older same-address store has executed is a memory-order violation unless
the Store Sets predictor made it wait.

Both queues are kept in seq (age) order: entries arrive at rename in
program order, commit removes from the head, and squashes remove a tail
suffix.  That invariant makes removal O(1) and lets the conflict check
walk stores youngest-first and stop at the first overlap.
"""

from collections import deque


class LsqEntry:
    __slots__ = ("seq", "addr", "size", "rob_entry", "executed_cycle",
                 "data_ready_cycle")

    def __init__(self, seq, addr, size, rob_entry):
        self.seq = seq
        self.addr = addr
        self.size = size
        self.rob_entry = rob_entry
        self.executed_cycle = None      # when the access/AGU happened
        self.data_ready_cycle = None    # stores: when the data can forward

    def overlaps(self, other):
        return self.addr < other.addr + other.size and \
            other.addr < self.addr + self.size

    def contains(self, other):
        """This entry's bytes fully cover *other*'s."""
        return self.addr <= other.addr and \
            other.addr + other.size <= self.addr + self.size


class LoadStoreQueues:
    """Both queues plus the cross-checking logic."""

    def __init__(self, lq_capacity, sq_capacity):
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self.loads = deque()
        self.stores = deque()
        self._load_by_seq = {}

    @property
    def lq_full(self):
        return len(self.loads) >= self.lq_capacity

    @property
    def sq_full(self):
        return len(self.stores) >= self.sq_capacity

    def add_load(self, entry):
        self.loads.append(entry)
        self._load_by_seq[entry.seq] = entry

    def add_store(self, entry):
        self.stores.append(entry)

    def load_of(self, seq):
        """The LQ entry for *seq*, or None."""
        return self._load_by_seq.get(seq)

    def occupancy(self):
        """``(lq_live, sq_live)`` (sampled by the observability layer)."""
        return len(self.loads), len(self.stores)

    # -- load issue checks ---------------------------------------------------------
    def youngest_older_store_conflict(self, load):
        """Youngest store older than *load* touching the same bytes."""
        load_seq = load.seq
        load_addr = load.addr
        load_end = load_addr + load.size
        for store in reversed(self.stores):
            if store.seq < load_seq and store.addr < load_end \
                    and load_addr < store.addr + store.size:
                return store
        return None

    # -- store execution checks ------------------------------------------------------
    def violating_loads(self, store):
        """Younger loads that already executed against stale data."""
        store_seq = store.seq
        return [load for load in self.loads
                if load.seq > store_seq and load.executed_cycle is not None
                and load.overlaps(store)]

    # -- lifecycle --------------------------------------------------------------------
    def remove_committed(self, seq):
        loads = self.loads
        if loads and loads[0].seq == seq:
            loads.popleft()
            self._load_by_seq.pop(seq, None)
            return
        stores = self.stores
        if stores and stores[0].seq == seq:
            stores.popleft()
            return
        # Out-of-order removal: never hit by the in-order commit path, but
        # kept so direct API users get the original semantics.
        self.loads = deque(e for e in loads if e.seq != seq)
        self.stores = deque(e for e in stores if e.seq != seq)
        self._load_by_seq.pop(seq, None)

    def squash_from(self, seq):
        loads = self.loads
        while loads and loads[-1].seq >= seq:
            self._load_by_seq.pop(loads.pop().seq, None)
        stores = self.stores
        while stores and stores[-1].seq >= seq:
            stores.pop()
