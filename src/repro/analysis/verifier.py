"""Dataflow verifier for assembled programs.

Proves each kernel well-formed before any cycle is simulated:

* **V001** structural sanity (entry index, label indices, data image
  placement — delegated to :meth:`Program.validate`).
* **V002** every branch/adr target resolves to a code label.
* **V003** control cannot run past the end of the code section.
* **V004** def-before-use: every integer/FP register read is dominated by
  a write on *every* path from the entry (``xzr``/``sp`` are pre-defined).
* **V005** NZCV discipline: every flag consumer (``b.cond``, ``csel``,
  ``csinc``, ``csneg``, ``cset``) is dominated by a flag setter.
* **V006** constant-addressed loads/stores stay inside the initialized
  data image (error if they overlap the code section).
* **V007** unreachable instructions (warning).

The analysis runs at µop granularity over the decode-time expansion, so
pre/post-indexed writeback µops define their base registers exactly like
the timing model sees them.  Both dataflows (must-defined registers and
constant propagation) are simple forward fixpoints; programs are a few
hundred instructions, so no acceleration is needed.
"""

from collections import deque

from repro.analysis.cfg import build_cfg
from repro.analysis.findings import ERROR, Finding, WARNING
from repro.isa.bits import mask
from repro.isa.opcodes import BRANCHES, Op, access_size
from repro.isa.program import CODE_BASE, INST_BYTES
from repro.isa.registers import FLAGS, SP, XZR, reg_name
from repro.isa.semantics import compute_movk
from repro.isa.uops import expand

# Registers architecturally defined before the first instruction runs: the
# hardwired zero and the stack pointer (the machine seeds it at init).
_PREDEFINED = frozenset({XZR, SP})


def _uop_uses(uop):
    """Architectural registers this µop reads (mirrors Machine._deps_of)."""
    uses = [src.reg for src in uop.srcs if src.reg != XZR]
    if uop.mem is not None:
        uses.append(uop.mem.base.reg)
        if uop.mem.offset_reg is not None and uop.mem.offset_reg.reg != XZR:
            uses.append(uop.mem.offset_reg.reg)
    if uop.reads_flags:
        uses.append(FLAGS)
    return uses


def _uop_defs(uop):
    """Architectural registers this µop writes."""
    defs = [dst.reg for dst in uop.dsts if dst.reg != XZR]
    if uop.writes_flags:
        defs.append(FLAGS)
    if uop.op in (Op.BL, Op.BLR):
        defs.append(30)  # the link register
    return defs


def _location(program, index):
    inst = program.instructions[index]
    text = inst.text.strip() or inst.op.value
    return f"#{index} pc={program.pc_of(index):#x}: {text}"


class _Verifier:
    def __init__(self, program, name):
        self.program = program
        self.name = name
        self.findings = []
        self.expanded = [expand(inst) for inst in program.instructions]
        self.cfg = build_cfg(program)

    def add(self, rule, severity, index, message):
        self.findings.append(Finding(
            rule=rule, severity=severity, where=self.name,
            location=_location(self.program, index), message=message))

    # -- structural --------------------------------------------------------------
    def check_structure(self):
        try:
            self.program.validate()
        except ValueError as exc:
            self.findings.append(Finding(
                rule="V001", severity=ERROR, where=self.name,
                location="<program>", message=str(exc)))

    def check_targets(self):
        labels = self.program.labels
        for index, inst in enumerate(self.program.instructions):
            if inst.target is None:
                continue
            if inst.op in BRANCHES:
                if inst.target not in labels:
                    self.add("V002", ERROR, index,
                             f"branch target {inst.target!r} is not a code label")
            else:
                # Only branches may carry symbolic targets after assembly;
                # anything else is an unresolved adr-style fixup.
                self.add("V002", ERROR, index,
                         f"unresolved symbolic operand {inst.target!r}")

    def check_fall_off_end(self):
        end = self.cfg.end_index
        for index in sorted(self.cfg.reachable):
            if end in self.cfg.successors[index]:
                self.add("V003", ERROR, index,
                         "control can run past the end of the code section")

    def check_unreachable(self):
        for index in range(len(self.program.instructions)):
            if index not in self.cfg.reachable:
                self.add("V007", WARNING, index, "instruction is unreachable")

    # -- def-before-use ----------------------------------------------------------
    def check_def_before_use(self):
        n = len(self.program.instructions)
        if not n:
            return
        successors = self.cfg.successors
        ins = {self.program.entry: set(_PREDEFINED)}
        work = deque([self.program.entry])
        while work:
            index = work.popleft()
            out = set(ins[index])
            for uop in self.expanded[index]:
                out.update(_uop_defs(uop))
            for succ in successors[index]:
                if not 0 <= succ < n:
                    continue
                known = ins.get(succ)
                if known is None:
                    ins[succ] = set(out)
                    work.append(succ)
                else:
                    merged = known & out
                    if merged != known:
                        ins[succ] = merged
                        work.append(succ)
        for index in sorted(self.cfg.reachable):
            defined = set(ins.get(index, _PREDEFINED))
            for uop in self.expanded[index]:
                for reg in _uop_uses(uop):
                    if reg in defined:
                        continue
                    if reg == FLAGS:
                        self.add("V005", ERROR, index,
                                 "flag consumer is not dominated by a "
                                 "flag-setting instruction")
                    else:
                        self.add("V004", ERROR, index,
                                 f"register {reg_name(reg)} may be read "
                                 "before it is written")
                defined.update(_uop_defs(uop))

    # -- constant-address sanity ---------------------------------------------------
    def _transfer_consts(self, index, env, record=False):
        """Constant propagation through one instruction (µop by µop)."""
        pc = self.program.pc_of(index)
        for uop in self.expanded[index]:
            if record:
                self._check_mem(index, uop, env)
            dsts = [dst for dst in uop.dsts if dst.reg != XZR]
            if uop.op in (Op.BL, Op.BLR):
                env[30] = pc + INST_BYTES
            if not dsts:
                continue
            dst = dsts[0]
            value = None
            op = uop.op
            if op is Op.MOVZ:
                value = mask(uop.imm or 0, dst.width)
            elif op is Op.MOV and uop.srcs:
                value = env.get(uop.srcs[0].reg)
                if uop.srcs[0].reg == XZR:
                    value = 0
            elif op is Op.MOVK and uop.srcs \
                    and env.get(uop.srcs[0].reg) is not None:
                value = compute_movk(env[uop.srcs[0].reg], uop.imm,
                                     uop.imm2 or 0, dst.width)
            elif op in (Op.ADD, Op.SUB) and len(uop.srcs) == 1 \
                    and uop.mem is None and env.get(uop.srcs[0].reg) is not None:
                base = env[uop.srcs[0].reg]
                delta = uop.imm or 0
                value = mask(base + delta if op is Op.ADD else base - delta,
                             dst.width)
            for reg in _uop_defs(uop):
                env.pop(reg, None)
            if value is not None:
                env[dst.reg] = value

    def _data_extent(self):
        image = self.program.data_image
        if not image:
            return None
        lo = min(address for address, _ in image)
        hi = max(address + len(payload) for address, payload in image)
        return lo, hi

    def _check_mem(self, index, uop, env):
        if uop.mem is None:
            return
        mem = uop.mem
        base = 0 if mem.base.reg == XZR else env.get(mem.base.reg)
        if base is None:
            return
        offset = mem.offset_imm
        if mem.offset_reg is not None:
            if mem.offset_reg.reg == XZR:
                reg_offset = 0
            else:
                reg_offset = env.get(mem.offset_reg.reg)
                if reg_offset is None:
                    return
            offset += reg_offset << mem.offset_shift
        address = mask(base + offset, 64)
        size = access_size(uop.op, uop.width)
        code_end = CODE_BASE + len(self.program.instructions) * INST_BYTES
        if address < code_end and address + size > CODE_BASE:
            self.add("V006", ERROR, index,
                     f"memory access at {address:#x} overlaps the code section")
            return
        extent = self._data_extent()
        if extent is None:
            return
        lo, hi = extent
        if address + size <= lo or address >= hi:
            self.add("V006", WARNING, index,
                     f"constant-addressed access at {address:#x} is outside "
                     f"the initialized data image [{lo:#x}, {hi:#x})")

    def check_constant_addresses(self):
        n = len(self.program.instructions)
        if not n:
            return
        successors = self.cfg.successors
        ins = {self.program.entry: {XZR: 0}}
        work = deque([self.program.entry])
        # Fixpoint first (no findings while environments still shrink).
        while work:
            index = work.popleft()
            env = dict(ins[index])
            self._transfer_consts(index, env)
            for succ in successors[index]:
                if not 0 <= succ < n:
                    continue
                known = ins.get(succ)
                if known is None:
                    ins[succ] = dict(env)
                    work.append(succ)
                else:
                    merged = {reg: value for reg, value in known.items()
                              if env.get(reg) == value}
                    if merged != known:
                        ins[succ] = merged
                        work.append(succ)
        for index in sorted(self.cfg.reachable):
            env = dict(ins.get(index, {}))
            self._transfer_consts(index, env, record=True)

    # -- driver -------------------------------------------------------------------
    def run(self):
        self.check_structure()
        self.check_targets()
        self.check_fall_off_end()
        self.check_unreachable()
        self.check_def_before_use()
        self.check_constant_addresses()
        return self.findings


def verify_program(program, name="program"):
    """Run every static check; returns a list of :class:`Finding`."""
    return _Verifier(program, name).run()
