"""Finding records shared by the verifier, the opportunity audit and the lint.

A finding is one diagnosed problem with a stable rule id, a severity and a
location.  ``error`` findings fail ``harness audit`` / ``harness lint``;
``warning`` findings are reported but only fail under ``--strict``.
"""

from dataclasses import asdict, dataclass

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem."""

    rule: str        # stable id, e.g. "V004" or "DET002"
    severity: str    # ERROR or WARNING
    where: str       # kernel name or source file (relative path)
    location: str    # "#12 pc=0x4030: add x0, x1, x2" or "line 37"
    message: str

    def to_dict(self):
        return asdict(self)

    def render(self):
        return f"[{self.rule}] {self.severity}: {self.where} {self.location}: {self.message}"


def has_errors(findings, strict=False):
    """True when *findings* should produce a non-zero exit."""
    if strict:
        return bool(findings)
    return any(f.severity == ERROR for f in findings)


def findings_to_json(findings):
    """JSON-ready list of finding dicts (stable field order)."""
    return [f.to_dict() for f in findings]
