"""Static analysis over assembled programs and the simulator source.

Three independent passes back the dynamic pipeline statistics with static
ground truth:

* :mod:`repro.analysis.verifier` — a dataflow verifier proving each
  assembled :class:`~repro.isa.program.Program` well-formed (CFG
  construction, def-before-use for integer/FP/NZCV registers, branch-target
  and data-label validity, constant-address load/store sanity).
* :mod:`repro.analysis.opportunity` — a static SpSR/TVP opportunity
  analysis classifying every static µop site as idiom-eliminable,
  Table-1-reducible or VP-eligible, producing per-kernel upper bounds that
  the dynamic elimination counters are checked against, plus the
  :class:`~repro.analysis.opportunity.EliminationAudit` runtime cross-check
  hook the pipeline calls on every rename-time elimination.
* :mod:`repro.analysis.lint` — an AST linter enforcing the simulator's
  determinism discipline (no wall-clock/OS randomness, no unordered-set
  iteration in stats paths, no machine-config mutation after construction,
  no undeclared stats counters).

``python -m repro.harness audit`` and ``python -m repro.harness lint``
expose the passes on the command line; both run in CI.
"""

from repro.analysis.findings import Finding, findings_to_json
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.opportunity import (
    EliminationAudit,
    EliminationAuditError,
    StaticOpportunities,
)
from repro.analysis.verifier import verify_program

__all__ = [
    "EliminationAudit",
    "EliminationAuditError",
    "Finding",
    "StaticOpportunities",
    "findings_to_json",
    "lint_paths",
    "lint_source",
    "verify_program",
]
