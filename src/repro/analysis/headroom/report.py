"""Assembles one (workload, config) headroom report (the JSON shape).

``analyze_headroom`` ties the three passes together: static opportunity
classification (shared with the runtime elimination audit), the
dependence longest-path bound, the structural machine-limit bound, and
one traced simulation for the actual cycle count plus lost-cycle
attribution.  The result is a plain JSON-ready dict wearing the unified
envelope (``schema: "headroom/2"`` plus ``code_version`` and the
config-``fingerprint``) — the shape the CLI prints, the report cache
stores, :func:`repro.api.headroom` wraps and the golden tests pin.
:func:`cached_headroom_report` is the shared report-cache path both the
CLI and the API facade go through.
"""

from repro.analysis.headroom.attribution import attribute, refill_estimate
from repro.analysis.headroom.graph import dependence_bound
from repro.analysis.headroom.structural import structural_bound
from repro.analysis.opportunity import StaticOpportunities
from repro.envelope import header

HEADROOM_SCHEMA = "headroom/2"

# Workloads default to at most this many instructions: the analyzer runs
# a traced simulation per point, and bounds converge well before the
# full sweep budgets.
DEFAULT_BUDGET_CAP = 20_000


def budget_for(workload, instructions=None):
    """The analyzer's default instruction budget for *workload*."""
    if instructions is not None:
        return instructions
    return min(workload.default_instructions, DEFAULT_BUDGET_CAP)


def analyze_headroom(workload, config_name, config=None, trace=None,
                     instructions=None, sample_interval=500,
                     max_path_sites=64):
    """Full headroom analysis of one (workload, config) point.

    *workload* is a workload object (``repro.workloads``); *config* an
    optional pre-built :class:`~repro.pipeline.config.MachineConfig`
    (else built from *config_name*); *trace* an optional pre-loaded µop
    trace (else emulated at the default budget).  Returns the
    ``headroom/2`` report dict (envelope fingerprint = the compiled
    config's fingerprint).
    """
    from repro.emulator.trace import trace_program
    from repro.harness.cache import config_fingerprint
    from repro.harness.runner import ExperimentRunner

    if config is None:
        config = ExperimentRunner.config(config_name)
    budget = budget_for(workload, instructions)
    if trace is None:
        trace, _ = trace_program(workload.program, max_instructions=budget)

    opps = StaticOpportunities.analyze(
        workload.program, name=workload.name,
        constant_folding=bool(config.spsr_constant_folding))
    dep = dependence_bound(trace, config, sites=opps.sites,
                           max_path_sites=max_path_sites)
    struct = structural_bound(trace, config, sites=opps.sites)
    attr = attribute(trace, config, sample_interval=sample_interval)

    bound = max(dep.bound, struct.bound)
    binding = "dependence" if dep.bound >= struct.bound else "structural"
    actual = attr.actual_cycles
    headroom = actual - bound
    report = header(HEADROOM_SCHEMA, config_fingerprint(config))
    report.update({
        "workload": workload.name,
        "config": config_name,
        "instructions": budget,
        "uops": len(trace),
        "actual_cycles": actual,
        "ipc": round(attr.ipc, 4),
        "dep_lb": dep.bound,
        "dep_lb_unbroken": dep.bound_unbroken,
        "structural_lb": struct.bound,
        "bound": bound,
        "binding": binding,
        "headroom_cycles": headroom,
        "headroom_pct": round(100.0 * headroom / actual, 2) if actual else 0.0,
        "sound": bound <= actual,
        "dep": dep.to_dict(),
        "structural": struct.to_dict(),
        "critical_path": dep.critical_path,
        "attribution": attr.to_dict(),
        "refill_estimate": refill_estimate(config),
        "sample_interval": sample_interval,
    })
    return report


def cached_headroom_report(workload, config_name, *, config=None,
                           instructions=None, sample_interval=500,
                           cache=None):
    """One report, through the report cache when one is attached.

    The shared warm path of ``harness headroom`` and
    :func:`repro.api.headroom`: reports are keyed like simulation
    results (:func:`repro.harness.cache.headroom_key`, which folds in
    the code version), so a warm call never re-simulates.  Cached
    documents from an older schema are ignored, not migrated.
    """
    from repro.harness.cache import config_fingerprint, headroom_key
    from repro.harness.runner import ExperimentRunner

    if config is None:
        config = ExperimentRunner.config(config_name)
    key = None
    if cache is not None:
        key = headroom_key(workload.name, budget_for(workload, instructions),
                           config_fingerprint(config), sample_interval,
                           HEADROOM_SCHEMA)
        cached = cache.load(key)
        if isinstance(cached, dict) \
                and cached.get("schema") == HEADROOM_SCHEMA:
            return cached
    report = analyze_headroom(workload, config_name, config=config,
                              instructions=instructions,
                              sample_interval=sample_interval)
    if cache is not None:
        cache.store(key, report)
    return report


def dominant_bottleneck(report):
    """The single bucket/bound name that most limits this point.

    Returns an attribution bucket name (``"queue_pressure"``,
    ``"flush_storms"``, ``"vp_miss_silencing"``) when one bucket
    dominates the lost cycles, else the binding bound
    (``"dependence"`` or ``"structural"``).  The headroom-guided search
    strategy (:mod:`repro.dse.strategies`) uses this to decide which
    space dimensions to mutate first.
    """
    buckets = dict(report["attribution"]["buckets"])
    buckets.pop("other", None)
    lost = sum(buckets.values())
    if lost > 0:
        name, cycles = max(sorted(buckets.items()), key=lambda kv: kv[1])
        if cycles * 2 >= lost:          # one bucket holds a majority
            return name
    return report["binding"]


def render_report(report, top=5):
    """Human-readable text block for one report dict."""
    lines = []
    lines.append(f"{report['workload']} / {report['config']}  "
                 f"({report['instructions']} insts, {report['uops']} uops)")
    lines.append(f"  actual cycles      {report['actual_cycles']:>10}   "
                 f"IPC {report['ipc']:.3f}")
    lines.append(f"  dependence LB      {report['dep_lb']:>10}   "
                 f"(unbroken {report['dep_lb_unbroken']})")
    lines.append(f"  structural LB      {report['structural_lb']:>10}   "
                 f"(binding: {report['structural']['binding']})")
    lines.append(f"  headroom           {report['headroom_cycles']:>10}   "
                 f"{report['headroom_pct']:.1f}% above the "
                 f"{report['binding']} bound")
    if not report["sound"]:
        lines.append("  !! SOUNDNESS VIOLATION: bound exceeds actual cycles")
    attribution = report["attribution"]["buckets"]
    lost = sum(attribution.values())
    if lost > 0:
        parts = ", ".join(f"{name} {100.0 * cycles / lost:.0f}%"
                          for name, cycles in attribution.items() if cycles)
        lines.append(f"  lost cycles        {lost:>10.0f}   ({parts})")
    path = report["critical_path"][:top]
    if path:
        lines.append(f"  critical path (top {len(path)} sites by cycles):")
        for entry in path:
            lines.append(f"    {entry['cycles']:>8} cyc  x{entry['count']:<6}"
                         f" {entry['pc']}/{entry['uop_index']}  "
                         f"{entry['text']}")
    return "\n".join(lines)
