"""``harness headroom`` — per-workload headroom reports from the CLI.

Two modes::

    harness headroom <workload> [--config tvp+spsr] [--top N] [--json]
    harness headroom --all [--workloads a,b,c] [--configs ...] [--json]

The first prints a detailed per-config report (critical-path excerpt
with source-line provenance, ``--top N`` sites); the second a sweep-wide
markdown table (or, with ``--json``, a single document carrying every
report).  Reports are cache-keyed like simulation results
(:func:`repro.harness.cache.headroom_key`), so warm invocations never
re-simulate.  The exit code is non-zero iff any report violates the
soundness invariant ``max(dep_lb, structural_lb) <= actual_cycles`` —
which is what CI runs this for.
"""

import argparse
import json
import os
import sys

DEFAULT_CONFIGS = "baseline,tvp,tvp+spsr,gvp+spsr"


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-harness headroom",
        description="Analytic cycle lower bounds (dependence + structural) "
                    "and headroom attribution per (workload, config).")
    parser.add_argument("workloads", nargs="*",
                        help="workload names for detailed reports")
    parser.add_argument("--all", action="store_true",
                        help="sweep-wide report over the whole suite "
                             "(narrow with --workloads)")
    parser.add_argument("--workloads", dest="workload_subset", type=str,
                        default=None, metavar="A,B,C",
                        help="comma-separated subset for --all")
    parser.add_argument("--config", type=str, default=None,
                        help="single named config (detailed mode default: "
                             "the standard four)")
    parser.add_argument("--configs", type=str, default=DEFAULT_CONFIGS,
                        help="comma-separated named configs "
                             "(default: %(default)s)")
    parser.add_argument("--engine", type=str, default=None, metavar="NAME",
                        help="timing-core backend (interp or batch); "
                             "reports are engine-independent, the flag "
                             "only selects what executes")
    parser.add_argument("--instructions", type=int, default=None,
                        help="instruction budget per workload (default: "
                             "workload default, capped at 20000)")
    parser.add_argument("--sample-interval", type=int, default=500,
                        metavar="N",
                        help="attribution sampling period in cycles "
                             "(default: 500)")
    parser.add_argument("--top", type=int, default=5, metavar="N",
                        help="critical-path sites to print (default: 5)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON output")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the report cache")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="cache location (default: .repro-cache, or "
                             "$REPRO_CACHE_DIR)")
    return parser


#: Schema of the --all --json sweep document (a collection of
#: ``headroom/2`` reports plus the sweep-level verdict).
SWEEP_SCHEMA = "headroom-sweep/1"


def _report_for(workload, config_name, args, cache):
    """One report, through the shared report-cache path."""
    from repro.analysis.headroom.report import cached_headroom_report

    return cached_headroom_report(workload, config_name,
                                  instructions=args.instructions,
                                  sample_interval=args.sample_interval,
                                  cache=cache)


def _markdown_table(reports, workload_names, config_names):
    """The --all report: one headroom row per workload."""
    by_point = {(r["workload"], r["config"]): r for r in reports}
    lines = []
    lines.append("| workload | " + " | ".join(config_names) + " |")
    lines.append("|---" * (len(config_names) + 1) + "|")
    for name in workload_names:
        cells = []
        for config_name in config_names:
            r = by_point[(name, config_name)]
            mark = "" if r["sound"] else " **UNSOUND**"
            cells.append(f"{r['headroom_pct']:.1f}% "
                         f"({r['binding'][:4]}){mark}")
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "headroom":
        argv = argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.workloads and not args.all:
        parser.error("name at least one workload, or pass --all")
    if args.workloads and args.all:
        parser.error("--all and positional workloads are mutually exclusive")
    if args.engine is not None:
        from repro.pipeline.engine import engine_names

        if args.engine not in engine_names():
            parser.error(f"--engine must be one of {engine_names()}, "
                         f"got {args.engine!r}")
        os.environ["REPRO_ENGINE"] = args.engine
    if args.sample_interval < 1:
        parser.error("--sample-interval must be >= 1")

    from repro.harness.cache import ReportCache
    from repro.harness.runner import ExperimentRunner
    from repro.workloads import suite

    if args.config is not None:
        config_names = [args.config]
    else:
        config_names = [name.strip() for name in args.configs.split(",")
                        if name.strip()]
    for name in config_names:
        try:
            ExperimentRunner.config(name)
        except KeyError as exc:
            parser.error(str(exc))

    if args.all:
        subset = (args.workload_subset.split(",")
                  if args.workload_subset else None)
        workloads = suite(subset)
    else:
        workloads = suite(args.workloads)

    cache = None if args.no_cache else ReportCache(args.cache_dir)
    reports = []
    for workload in workloads:
        for config_name in config_names:
            reports.append(_report_for(workload, config_name, args, cache))

    ok = all(r["sound"] for r in reports)
    if args.as_json:
        from repro.envelope import header, request_fingerprint

        workload_names = [w.name for w in workloads]
        payload = header(SWEEP_SCHEMA, request_fingerprint(
            "headroom-sweep", workloads=workload_names,
            configs=config_names, instructions=args.instructions,
            sample_interval=args.sample_interval))
        payload.update({
            "command": "headroom",
            "configs": config_names,
            "workloads": workload_names,
            "reports": reports,
            "ok": ok,
        })
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.all:
        print("Headroom above max(dep LB, structural LB) — "
              "lower is closer to the analytic limit\n")
        print(_markdown_table(reports, [w.name for w in workloads],
                              config_names))
        unsound = [r for r in reports if not r["sound"]]
        if unsound:
            print(f"\n{len(unsound)} SOUNDNESS VIOLATION(S): " +
                  ", ".join(f"{r['workload']}/{r['config']}"
                            for r in unsound))
    else:
        from repro.analysis.headroom.report import render_report

        for i, report in enumerate(reports):
            if i:
                print()
            print(render_report(report, top=args.top))
    if cache is not None and (cache.hits or cache.stores):
        print(f"[{cache.summary()}]",
              file=sys.stderr if args.as_json else sys.stdout)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
