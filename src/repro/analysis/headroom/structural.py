"""Structural lower bound: machine limits over the committed-µop stream.

Independent of dataflow, a run of N µops cannot finish faster than the
machine's widths, issue ports and queue windows allow.  Every component
below is a sound lower bound on cycles; the structural bound is their
maximum:

* **width bounds** — ``ceil(N / width)`` for fetch, decode, rename and
  commit (every committed µop flows through each stage once, at most
  ``width`` per cycle);
* **issue-width / port bounds** — eliminated µops never issue, so the
  issuing population is the trace minus the statically eliminable µops
  (optimistic, hence sound).  For every class group served by a shared
  port pool (from :func:`repro.backend.fus.port_plan`, the same plan the
  live arbiter builds from), total occupancy — 1 cycle per pipelined µop,
  full latency for the unpipelined dividers — divided by the pool size
  bounds cycles from below.  Branch work folds into the simple-ALU pool,
  exactly as ``FunctionalUnits.try_issue`` routes it;
* **window bounds** (interval analysis) — the i-th entry of a capacity-Q
  queue cannot be allocated before entry i−Q has left, which takes at
  least one cycle after *its* completion.  Chaining this per-resource
  recurrence (ROB over all µops, LQ over loads, SQ over stores, the
  INT/FP free lists over physical-register writers) with minimum µop
  latencies yields a DP lower bound that captures long-latency µops
  holding a window open.  The recurrence is only sound for queues that
  free entries in *commit order* (ROB/LQ/SQ slots and physical registers
  all do): in-order release means the (i−Q)-th allocation is provably the
  one whose departure gates the i-th.  The IQ frees out of order at
  issue, so no such edge exists for it — IQ pressure is bounded here
  only through the issue-width component.

The PRF windows use the raw ``int_phys_regs``/``fp_phys_regs`` counts —
an over-estimate of the free list (architectural mappings pin some), so
the bound stays conservative.
"""

from dataclasses import dataclass
from typing import Dict

from repro.analysis.headroom.graph import (
    enabled_elimination_kinds,
    min_uop_latency,
)
from repro.backend.fus import FunctionalUnits, port_plan
from repro.isa.opcodes import ExecClass


def _ceil_div(a, b):
    return -(-a // b) if b > 0 else 0


def _port_groups(plan):
    """Connected components of the class↔port sharing graph, plus
    singletons: the candidate class sets for capacity bounds."""
    adjacency = {}
    for caps in plan:
        for cls in caps:
            adjacency.setdefault(cls, set()).update(caps)
    groups = []
    seen = set()
    for cls in sorted(adjacency, key=lambda c: c.name):
        if cls in seen:
            continue
        component = set()
        stack = [cls]
        while stack:
            cur = stack.pop()
            if cur in component:
                continue
            component.add(cur)
            stack.extend(adjacency[cur] - component)
        seen.update(component)
        groups.append(frozenset(component))
        if len(component) > 1:
            groups.extend(frozenset({member}) for member in
                          sorted(component, key=lambda c: c.name))
    return groups


@dataclass
class StructuralBound:
    """Machine-limit bound components for one (trace, config) pair."""

    bound: int
    components: Dict[str, int]
    binding: str

    def to_dict(self):
        return {"bound": self.bound, "binding": self.binding,
                "components": dict(self.components)}


def structural_bound(trace, config, sites=None):
    """Compute :class:`StructuralBound` for one trace under *config*.

    *sites* as in :func:`~repro.analysis.headroom.graph.dependence_bound`
    — used only to discount statically eliminable µops from the issue
    and PRF pressure (they still fetch, rename and commit).
    """
    n = len(trace)
    components = {}
    if n == 0:
        return StructuralBound(bound=0, components={}, binding="empty")
    uops = [trace[i] for i in range(n)]
    fus = FunctionalUnits(config)
    enabled = enabled_elimination_kinds(config)

    def eliminable(uop):
        if sites is None:
            return False
        site = sites.get((uop.pc, uop.uop_index))
        return site is not None and bool(site.kinds & enabled)

    elim = [eliminable(u) for u in uops]
    lat = [0 if elim[i] else min_uop_latency(u, config, fus)
           for i, u in enumerate(uops)]
    n_issued = sum(1 for e in elim if not e)

    # -- width bounds ----------------------------------------------------------------
    components["fetch_width"] = _ceil_div(n, config.fetch_width)
    components["decode_width"] = _ceil_div(n, config.decode_width)
    components["rename_width"] = _ceil_div(n, config.rename_width)
    components["commit_width"] = _ceil_div(n, config.commit_width)
    components["issue_width"] = _ceil_div(n_issued, config.issue_width)

    # -- port-capacity bounds --------------------------------------------------------
    plan = port_plan(config)
    unpipelined = {ExecClass.INT_DIV: config.int_div_latency,
                   ExecClass.FP_DIV: config.fp_div_latency}
    work = {}
    for i, uop in enumerate(uops):
        if elim[i]:
            continue
        cls = ExecClass.INT_ALU if uop.cls is ExecClass.BRANCH else uop.cls
        work[cls] = work.get(cls, 0) + unpipelined.get(cls, 1)
    for group in _port_groups(plan):
        total = sum(work.get(cls, 0) for cls in group)
        if not total:
            continue
        n_ports = sum(1 for caps in plan if caps & group)
        label = "+".join(sorted(cls.name for cls in group))
        components[f"ports:{label}"] = _ceil_div(total, n_ports)

    # -- window bounds (interval DP) -------------------------------------------------
    rob = config.rob_entries
    lq = config.lq_entries
    sq = config.sq_entries
    int_window = config.int_phys_regs
    fp_window = config.fp_phys_regs
    complete = [0] * n
    loads, stores, int_writers, fp_writers = [], [], [], []
    window = 0
    for i, uop in enumerate(uops):
        ready = 0
        j = i - rob
        if j >= 0:
            ready = complete[j] + 1
        if uop.is_load:
            loads.append(i)
            j = len(loads) - 1 - lq
            if j >= 0:
                ready = max(ready, complete[loads[j]] + 1)
        elif uop.is_store:
            stores.append(i)
            j = len(stores) - 1 - sq
            if j >= 0:
                ready = max(ready, complete[stores[j]] + 1)
        if not elim[i] and uop.dst is not None:
            # Eliminated µops allocate no physical register — that is
            # the point of DSR/SpSR — so they leave the free lists alone.
            writers = fp_writers if uop.dst_is_fp else int_writers
            writers.append(i)
            j = len(writers) - 1 - (fp_window if uop.dst_is_fp
                                    else int_window)
            if j >= 0:
                ready = max(ready, complete[writers[j]] + 1)
        complete[i] = ready + lat[i]
        if complete[i] > window:
            window = complete[i]
    components["window"] = window

    binding, bound = max(components.items(), key=lambda kv: kv[1])
    return StructuralBound(bound=bound, components=components,
                           binding=binding)
