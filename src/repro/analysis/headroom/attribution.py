"""Headroom attribution: where the cycles above the bound actually went.

``headroom = actual_cycles - max(dep_lb, structural_lb)`` says *how many*
cycles neither dataflow nor machine limits explain; this module says
*where* they went.  One traced simulation (interval sampling only, no
per-µop lifetimes — counters are bit-identical to the untraced run, so
the measured ``actual_cycles`` is the real one) yields the
:class:`~repro.observability.interval.MetricsTimeSeries`; each interval's
*lost* cycles — its width minus the cycles its retired µops would need at
full commit width — are split across three causes:

* **queue_pressure** — rename-stall cycles (``stall_*`` deltas), a
  direct cycle count;
* **flush_storms**   — branch mispredicts + memory-order flushes, each
  costed at the pipeline-refill estimate (redirect penalty plus the
  frontend stage latencies);
* **vp_miss_silencing** — VP flushes, each costed at a refill plus the
  silencing shadow (``vp_silence_cycles``, capped at the interval width)
  during which prediction is suppressed, plus replayed recoveries.

Within an interval the three scores are proportional weights over the
interval's lost cycles, capped at their own estimate; the remainder is
**other** (cache misses, fetch gaps, dispatch bubbles).  The split is an
explicitly heuristic *attribution* — the headroom total it decomposes is
exact, and the decomposition is deterministic for a given trace/config.
"""

from dataclasses import dataclass
from typing import Dict

from repro.observability.config import TraceConfig
from repro.pipeline.core import CpuModel

BUCKETS = ("queue_pressure", "flush_storms", "vp_miss_silencing", "other")


def refill_estimate(config):
    """Estimated cycles to refill the pipeline after a squash."""
    return (config.redirect_penalty + config.fetch_to_decode
            + config.decode_to_rename + config.rename_to_dispatch + 2)


@dataclass
class Attribution:
    """One traced run's lost-cycle decomposition."""

    actual_cycles: int
    ipc: float
    buckets: Dict[str, float]            # lost cycles per cause
    dominant_intervals: Dict[str, int]   # intervals where a cause led
    samples: int
    lost_cycles: float                   # total above ideal commit rate
    stats: object                        # the run's PipelineStats

    def to_dict(self):
        return {
            "buckets": {k: round(v, 1) for k, v in self.buckets.items()},
            "dominant_intervals": dict(self.dominant_intervals),
            "samples": self.samples,
            "lost_cycles": round(self.lost_cycles, 1),
        }


def attribute(trace, config, sample_interval=500):
    """Run one traced simulation and decompose its lost cycles.

    Tracing is observational only (stats are bit-identical with it on or
    off), so the returned ``actual_cycles`` is exactly what an untraced
    run of the same (trace, config) produces.
    """
    traced = config.with_(trace=TraceConfig(
        sample_interval=sample_interval, max_lifetimes=0))
    model = CpuModel(trace, traced)
    stats = model.run().stats
    series = model.tracer.series
    samples = series.samples if series is not None else []

    refill = refill_estimate(config)
    commit_width = config.commit_width
    buckets = {name: 0.0 for name in BUCKETS}
    dominant = {name: 0 for name in BUCKETS}
    lost_total = 0.0
    for sample in samples:
        if not sample.cycles:
            continue
        lost = sample.cycles - sample.retired_uops / commit_width
        if lost <= 0:
            continue
        lost_total += lost
        scores = {
            "queue_pressure": float(sample.stall_cycles),
            "flush_storms": refill * (sample.branch_mispredicts
                                      + sample.memory_order_flushes),
            "vp_miss_silencing":
                sample.vp_flushes * (refill + min(config.vp_silence_cycles,
                                                  sample.cycles))
                + 2.0 * sample.vp_replays,
        }
        total = sum(scores.values())
        if total <= 0:
            buckets["other"] += lost
            dominant["other"] += 1
            continue
        explained = min(lost, total)
        shares = {name: explained * score / total
                  for name, score in scores.items()}
        shares["other"] = lost - explained
        for name, share in shares.items():
            buckets[name] += share
        leader = max(BUCKETS, key=lambda name: shares[name])
        dominant[leader] += 1

    return Attribution(actual_cycles=stats.cycles, ipc=stats.ipc,
                       buckets=buckets, dominant_intervals=dominant,
                       samples=len(samples), lost_cycles=lost_total,
                       stats=stats)
