"""Dependence-graph lower bound: longest path through the µop dataflow.

The committed-µop trace is a DAG under its data/memory dependence edges
(:func:`repro.emulator.trace.iter_dep_edges`).  A µop cannot complete
before every producer it waits on has completed plus its own execution
latency, so the longest weighted path through that DAG — each node
weighted by the *minimum possible* latency of its µop — is a sound lower
bound on the run's cycle count, for any schedule, any machine width, any
predictor behaviour.

Config awareness (the paper's mechanisms, applied optimistically):

* **DSR / idiom elimination** (``enable_zero_one_idiom``,
  ``enable_move_elimination``, TVP/GVP's nine-bit idiom) — an eliminable
  µop executes nowhere, so its weight drops to 0.  Value idioms
  (zero/one/nine-bit) also *break outgoing edges*: the destination value
  is statically known, consumers never wait.  Move elimination keeps the
  edges (the consumer inherits the grandparent's physical register and
  therefore its timing).
* **SpSR** (``enable_spsr``, sites from
  :func:`repro.core.spsr.statically_reducible` via
  :class:`~repro.analysis.opportunity.StaticOpportunities`) — a reduced
  µop is resolved at rename, so both its weight and its outgoing edges
  disappear.
* **VP** (``vp_flavor``) — a correct prediction lets consumers of a
  VP-eligible producer dispatch against the predicted value, breaking the
  producer's *outgoing* edges; the producer itself still executes (to
  verify), so its own completion chain is kept.

Every assumption is *optimistic* (edges only removed, weights only
lowered), so the broken bound can only shrink: soundness — the bound
never exceeds actual cycles — is monotone and holds for every config.
Eligibility reuses the same :class:`~repro.analysis.opportunity.Site`
classification that drives the runtime :class:`EliminationAudit`, which
makes the breakable-edge census here provably dominated by the audit's
dynamic upper bounds (asserted in tests/analysis/headroom).
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.backend.fus import FunctionalUnits
from repro.core.modes import VPFlavor
from repro.emulator.trace import iter_dep_edges

# Elimination kinds whose destination value is known (or recomputed) at
# rename: consumers need not wait, so outgoing edges break.  "move" is
# deliberately absent — move elimination renames the consumer onto the
# producer's source, inheriting its timing (edges stay, weight drops).
_VALUE_KNOWN_KINDS = frozenset(
    {"zero_idiom", "one_idiom", "nine_bit_idiom", "spsr"})

_EMPTY = frozenset()


def enabled_elimination_kinds(config):
    """The elimination kinds the renamer may apply under *config*."""
    kinds = set()
    if config.enable_zero_one_idiom:
        kinds.update(("zero_idiom", "one_idiom"))
    if config.enable_move_elimination:
        kinds.add("move")
    if config.enable_nine_bit_idiom:
        kinds.add("nine_bit_idiom")
    if config.enable_spsr:
        kinds.add("spsr")
    return frozenset(kinds)


def min_uop_latency(uop, config, fus=None):
    """The smallest execution latency *uop* can possibly see.

    Loads take at least ``min(l1d_latency, store_forward_latency)``
    cycles (an L1 hit or a same-cycle forward); everything else has the
    deterministic latency the port model assigns.  Using minima keeps the
    longest-path bound sound when the memory system is slower.
    """
    if uop.is_load:
        return min(config.memory.l1d_latency, config.store_forward_latency)
    if fus is None:
        fus = FunctionalUnits(config)
    return fus.latency_of(uop.cls, uop.op)


@dataclass
class DependenceBound:
    """Longest-path results over one (trace, config) pair."""

    bound: int               # config-aware (VP/SpSR/DSR breaks applied)
    bound_unbroken: int      # raw graph, full latencies, no breaks
    edges: int
    edge_kinds: Dict[str, int]       # {"reg"/"flags"/"mem": count}
    breakable: Dict[str, int]        # vp/spsr breakable µop + edge census
    critical_path: List[dict]        # per-site excerpt, hottest first

    def to_dict(self):
        return {
            "bound": self.bound,
            "bound_unbroken": self.bound_unbroken,
            "edges": self.edges,
            "edge_kinds": dict(self.edge_kinds),
            "breakable": dict(self.breakable),
        }


def _site_of(sites, uop):
    if sites is None:
        return None
    return sites.get((uop.pc, uop.uop_index))


def dependence_bound(trace, config, sites=None, max_path_sites=64):
    """Compute :class:`DependenceBound` for one trace under *config*.

    *sites* is the ``.sites`` map of a
    :class:`~repro.analysis.opportunity.StaticOpportunities` (may be
    ``None`` for ad-hoc traces: no eliminations are then assumed and VP
    eligibility falls back to the µop's own ``vp_elig`` bit).
    """
    n = len(trace)
    uops = [trace[i] for i in range(n)]
    fus = FunctionalUnits(config)
    enabled = enabled_elimination_kinds(config)
    vp_on = config.vp_flavor is not VPFlavor.NONE

    preds = [[] for _ in range(n)]
    has_out = [False] * n
    edge_kinds = {"reg": 0, "flags": 0, "mem": 0}
    vp_site = [False] * n       # VP-eligible per the static site map
    spsr_site = [False] * n     # SpSR-reducible per the static site map
    breakable_vp_edges = 0
    breakable_spsr_edges = 0
    for i, uop in enumerate(uops):
        site = _site_of(sites, uop)
        if site is not None:
            vp_site[i] = site.vp_eligible
            spsr_site[i] = "spsr" in site.kinds
        else:
            vp_site[i] = uop.vp_elig
    for producer, consumer, kind in iter_dep_edges(uops):
        preds[consumer].append((producer, -1 if kind == "mem" else 0))
        has_out[producer] = True
        edge_kinds[kind] += 1
        if vp_site[producer]:
            breakable_vp_edges += 1
        if spsr_site[consumer]:
            breakable_spsr_edges += 1
    edges = sum(edge_kinds.values())

    # Per-node weights and break flags under the config.
    full_lat = [min_uop_latency(u, config, fus) for u in uops]
    broken_lat = list(full_lat)
    breaks_out = [False] * n
    for i, uop in enumerate(uops):
        site = _site_of(sites, uop)
        kinds = (site.kinds & enabled) if site is not None else _EMPTY
        if kinds:
            broken_lat[i] = 0
            if kinds & _VALUE_KNOWN_KINDS:
                breaks_out[i] = True
        if vp_on and vp_site[i]:
            breaks_out[i] = True

    def longest_path(lat, apply_breaks):
        comp = [0] * n
        parent = [-1] * n
        best = 0
        best_i = -1
        for i in range(n):
            base = 0
            par = -1
            for p, offset in preds[i]:
                if apply_breaks and breaks_out[p]:
                    continue
                c = comp[p] + offset
                if c > base:
                    base = c
                    par = p
            c = base + lat[i]
            comp[i] = c
            parent[i] = par
            if c > best:
                best = c
                best_i = i
        return best, best_i, parent

    bound_unbroken, _, _ = longest_path(full_lat, apply_breaks=False)
    bound, tail, parent = longest_path(broken_lat, apply_breaks=True)

    # Critical-path excerpt aggregated per static site (source-line
    # provenance: pc + µop slot + disassembly text), hottest first.
    by_site = {}
    node = tail
    length = 0
    while node >= 0:
        uop = uops[node]
        key = (uop.pc, uop.uop_index)
        entry = by_site.get(key)
        if entry is None:
            entry = by_site[key] = {
                "pc": uop.pc, "uop_index": uop.uop_index,
                "text": uop.text.strip(), "count": 0, "cycles": 0,
            }
        entry["count"] += 1
        entry["cycles"] += broken_lat[node]
        length += 1
        node = parent[node]
    path = sorted(by_site.values(),
                  key=lambda e: (-e["cycles"], -e["count"],
                                 e["pc"], e["uop_index"]))
    for entry in path:
        entry["pc"] = f"{entry['pc']:#x}"
    path = path[:max_path_sites]

    breakable = {
        "vp_uops": sum(1 for i in range(n) if vp_site[i] and has_out[i]),
        "spsr_uops": sum(1 for i in range(n) if spsr_site[i] and preds[i]),
        "vp_edges": breakable_vp_edges,
        "spsr_edges": breakable_spsr_edges,
        "path_uops": length,
    }
    return DependenceBound(bound=bound, bound_unbroken=bound_unbroken,
                           edges=edges, edge_kinds=edge_kinds,
                           breakable=breakable, critical_path=path)
