"""Static headroom analysis: analytic lower bounds on simulated cycles.

Per (workload, config) the analyzer computes, from the committed-µop
trace alone:

* a **dependence lower bound** — the longest path through the data /
  memory dependence graph (:mod:`.graph`), evaluated with and without
  the edges VP/SpSR/DSR can legally break under the config;
* a **structural lower bound** — machine-limit bounds (widths, issue
  ports, ROB/LQ/SQ/PRF windows) over the same trace (:mod:`.structural`);
* **headroom attribution** — ``actual_cycles - max(dep_lb,
  structural_lb)`` decomposed against the interval tracer's time series
  into flush storms, VP-miss/silencing windows and queue pressure
  (:mod:`.attribution`).

Soundness invariant (asserted by tests and the `harness headroom` CLI):
``max(dep_lb, structural_lb) <= actual_cycles`` for every workload,
config and engine.  Both bounds are *optimistic* — they assume every
statically eliminable µop is eliminated and every value prediction is
correct — so they can only shrink, never exceed, the simulated cycle
count.
"""

from repro.analysis.headroom.graph import DependenceBound, dependence_bound
from repro.analysis.headroom.report import HEADROOM_SCHEMA, analyze_headroom
from repro.analysis.headroom.structural import StructuralBound, structural_bound

__all__ = [
    "DependenceBound", "dependence_bound",
    "StructuralBound", "structural_bound",
    "HEADROOM_SCHEMA", "analyze_headroom",
]
