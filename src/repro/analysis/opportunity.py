"""Static SpSR/TVP opportunity analysis and the runtime elimination audit.

Classifies every static µop site of a program (after decode-time
expansion) into the rename-elimination categories the pipeline counts
dynamically:

* ``zero_idiom`` / ``one_idiom``   — 0/1-idiom eliminable (gem5-style DSR)
* ``move``                         — move-eliminable
* ``nine_bit_idiom``               — 9-bit signed move-immediate, eliminable
  by physical-register inlining under TVP/GVP
* ``spsr``                         — Table-1 reducible for *some* rename-time
  known operand assignment (:func:`repro.core.spsr.statically_reducible`)

plus value-prediction eligibility (the paper's rule: arithmetic/load µops
producing a general purpose register).  Each classification is a provable
*upper bound*: the renamer can only ever apply an elimination of kind *k*
at a site statically classified *k*.  Two consumers rely on that:

* :meth:`StaticOpportunities.dynamic_bounds` turns a µop trace into
  per-kind ceilings that the run's retired elimination counters must not
  exceed;
* :class:`EliminationAudit` is the per-µop runtime cross-check the
  pipeline invokes on every rename-time elimination — a violation means a
  simulator bug, not a workload property, and raises immediately.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.core.spsr import statically_reducible
from repro.isa.bits import fits_signed
from repro.isa.opcodes import BRANCHES, ExecClass, Op, exec_class
from repro.isa.registers import XZR, is_fpr
from repro.isa.uops import expand

ELIM_KINDS = ("zero_idiom", "one_idiom", "move", "nine_bit_idiom", "spsr")

_MOVE_IDIOM_OPS = frozenset({Op.ADD, Op.ORR, Op.EOR})
_VP_CLASSES = frozenset({ExecClass.INT_ALU, ExecClass.INT_MUL,
                         ExecClass.INT_DIV, ExecClass.LOAD})


@dataclass(frozen=True)
class Site:
    """One static µop site and its eliminability classification."""

    pc: int
    uop_index: int
    text: str
    kinds: FrozenSet[str]
    vp_eligible: bool


def classify_uop(uop, constant_folding=False):
    """``(kinds, vp_eligible)`` for one expanded µop (an Instruction)."""
    op = uop.op
    dst = uop.dsts[0] if uop.dsts else None
    if dst is not None and dst.reg == XZR:
        dst = None
    has_dst = dst is not None
    src_regs = tuple(src.reg for src in uop.srcs)

    kinds = set()
    if has_dst:
        if op is Op.MOVZ:
            imm = uop.imm or 0
            if imm == 0:
                kinds.add("zero_idiom")
            elif imm == 1:
                kinds.add("one_idiom")
            if fits_signed(imm, 9):
                kinds.add("nine_bit_idiom")
        elif op is Op.MOV:
            kinds.add("move")
        elif op is Op.EOR and len(src_regs) == 2 \
                and src_regs[0] == src_regs[1] and not uop.imm2 \
                and src_regs[0] != XZR:
            kinds.add("zero_idiom")
        if op is Op.AND and XZR in src_regs:
            kinds.add("zero_idiom")
        if op in _MOVE_IDIOM_OPS and len(src_regs) == 2 \
                and XZR in src_regs and not uop.imm2:
            if src_regs[0] == XZR and src_regs[1] == XZR:
                kinds.add("zero_idiom")
            else:
                kinds.add("move")
    if statically_reducible(op, has_dst=has_dst,
                            constant_folding=constant_folding):
        kinds.add("spsr")

    vp_eligible = (has_dst and not is_fpr(dst.reg) and op not in BRANCHES
                   and exec_class(op) in _VP_CLASSES)
    return frozenset(kinds), vp_eligible


class EliminationAuditError(RuntimeError):
    """A dynamic elimination happened at a statically ineligible site."""


class StaticOpportunities:
    """Per-program static elimination/VP opportunity map and bounds."""

    def __init__(self, sites, name="program", constant_folding=False):
        self.name = name
        self.constant_folding = constant_folding
        self.sites: Dict[Tuple[int, int], Site] = sites

    @classmethod
    def analyze(cls, program, name="program", constant_folding=False):
        """Classify every static µop site of an assembled program."""
        sites = {}
        for index, inst in enumerate(program.instructions):
            pc = program.pc_of(index)
            for uop_index, uop in enumerate(expand(inst)):
                kinds, vp = classify_uop(uop, constant_folding)
                sites[(pc, uop_index)] = Site(
                    pc=pc, uop_index=uop_index,
                    text=uop.text.strip() or uop.op.value,
                    kinds=kinds, vp_eligible=vp)
        return cls(sites, name=name, constant_folding=constant_folding)

    # -- static summary -----------------------------------------------------------
    def static_counts(self):
        """Number of static sites eligible per kind (plus VP)."""
        counts = {kind: 0 for kind in ELIM_KINDS}
        counts["vp_eligible"] = 0
        for site in self.sites.values():
            for kind in site.kinds:
                counts[kind] += 1
            if site.vp_eligible:
                counts["vp_eligible"] += 1
        return counts

    # -- dynamic upper bounds -------------------------------------------------------
    def dynamic_bounds(self, trace):
        """Per-kind ceilings for a µop trace: the number of dynamic µops at
        sites statically eligible for each kind.  Each trace µop retires at
        most once, so retired elimination counters can never exceed these.
        """
        bounds = {kind: 0 for kind in ELIM_KINDS}
        bounds["vp_eligible"] = 0
        sites = self.sites
        for uop in trace:
            site = sites.get((uop.pc, uop.uop_index))
            if site is None:
                continue
            for kind in site.kinds:
                bounds[kind] += 1
            if site.vp_eligible:
                bounds["vp_eligible"] += 1
        return bounds

    def check_bounds(self, trace, stats):
        """Compare a finished run's elimination counters against the trace
        bounds; returns a list of human-readable violation messages."""
        bounds = self.dynamic_bounds(trace)
        observed = {
            "zero_idiom": stats.elim_zero_idiom,
            "one_idiom": stats.elim_one_idiom,
            "move": stats.elim_move,
            "nine_bit_idiom": stats.elim_nine_bit_idiom,
            "spsr": stats.elim_spsr,
            "vp_eligible": stats.vp_eligible,
        }
        violations = []
        for kind, count in observed.items():
            if count > bounds[kind]:
                violations.append(
                    f"{self.name}: dynamic {kind} count {count} exceeds the "
                    f"static upper bound {bounds[kind]}")
        return violations


class EliminationAudit:
    """The pipeline's per-elimination cross-check hook.

    Attach via ``CpuModel(trace, config, elim_audit=audit)``; the rename
    stage calls :meth:`check` for every µop it eliminates.  Any elimination
    at a site the static analysis did not classify eligible is a simulator
    bug and raises :class:`EliminationAuditError` on the spot.
    """

    def __init__(self, opportunities):
        self.opportunities = opportunities
        self._sites = opportunities.sites
        self.checked = 0

    def check(self, uop, kind):
        site = self._sites.get((uop.pc, uop.uop_index))
        if site is None:
            raise EliminationAuditError(
                f"{self.opportunities.name}: eliminated µop at unknown "
                f"static site pc={uop.pc:#x} uop={uop.uop_index} ({uop.text})")
        if kind not in site.kinds:
            raise EliminationAuditError(
                f"{self.opportunities.name}: {kind!r} elimination at "
                f"statically ineligible site pc={uop.pc:#x} "
                f"uop={uop.uop_index} ({site.text}); eligible kinds: "
                f"{sorted(site.kinds) or 'none'}")
        self.checked += 1
