"""Determinism lint for the simulator sources (AST-based, no execution).

The cycle model must be a pure function of (trace, config): two runs of
the same experiment must produce bit-identical statistics.  Four rules
guard the ways that property has historically been lost in simulators:

* **DET001** — ``random`` / ``time`` / ``datetime`` imports anywhere in
  ``src/repro`` except ``util/rng.py`` (the seeded PRNG) and the harness
  (wall-clock progress reporting is fine; model code must not see time).
* **DET002** — iteration over a ``set``/``frozenset`` in the model
  packages (``pipeline``, ``backend``, ``core``, ``rename``,
  ``frontend``, ``memory``).  Set *membership* is deterministic; set
  *iteration order* is salted per process.  Wrap in ``sorted(...)`` or
  use an insertion-ordered ``dict`` instead.
* **DET003** — mutation of a machine config (``*.config.attr = ...`` or
  rebinding ``*.config``) outside ``__init__``: configs are frozen inputs
  once simulation starts.
* **DET004** — incrementing an undeclared stats counter
  (``*.stats.name += ...`` where ``name`` is not a declared
  :class:`~repro.pipeline.stats.PipelineStats` field): silent typos here
  create counters that exist only at runtime and never reach reports.
* **DET005** — a declared :class:`PipelineStats` counter not covered by
  the interval event-sum invariants: every counter must appear in the
  sampler's ``_DELTA_COUNTERS`` (whose per-interval deltas the
  tests/observability invariants force to sum to the final totals, on
  both engines) or in the explicit ``NON_DELTA_COUNTERS`` exemption list
  with a recorded reason.  A counter in neither — or a stale name listed
  but no longer declared — is schema drift between the ``interp`` and
  ``batch`` engines waiting to happen (:func:`lint_stats_coverage`, a
  schema check rather than an AST rule).

Detection is intentionally heuristic but *sound for this codebase*: every
rule was validated against the current sources (zero findings at HEAD)
and against seeded violations of each kind (see tests/analysis).
"""

import ast
from pathlib import Path, PurePosixPath

from repro.analysis.findings import ERROR, Finding
from repro.pipeline.stats import PipelineStats

_NONDET_MODULES = frozenset({"random", "time", "datetime"})
# Sub-packages of repro that implement the cycle model proper.
_MODEL_PACKAGES = frozenset({
    "pipeline", "backend", "core", "rename", "frontend", "memory",
})
# Files allowed to import the nondeterminism modules.  The harness and
# the job service live in wall-clock land (timeouts, heartbeats,
# long-polls) by design; the model packages never do.
_DET001_ALLOWED_PACKAGES = frozenset({"harness", "service"})
_DET001_ALLOWED_FILES = frozenset({"util/rng.py"})


def _subpackage(relpath):
    """The repro sub-package a relative posix path belongs to ('' if none)."""
    parts = PurePosixPath(relpath).parts
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1:]
    return parts[0] if len(parts) > 1 else ""


def _tail(relpath, n=2):
    return "/".join(PurePosixPath(relpath).parts[-n:])


class _Linter(ast.NodeVisitor):
    def __init__(self, relpath):
        self.relpath = relpath
        self.package = _subpackage(relpath)
        self.in_model = self.package in _MODEL_PACKAGES
        self.findings = []
        self.set_names = set()        # local/global names bound to sets
        self.set_attrs = set()        # self.<attr> names bound to sets
        self.func_stack = []
        self.counter_names = frozenset(PipelineStats.counter_names())

    def add(self, rule, node, message):
        self.findings.append(Finding(
            rule=rule, severity=ERROR, where=self.relpath,
            location=f"line {node.lineno}", message=message))

    # -- DET001: nondeterminism imports --------------------------------------------
    def _det001_allowed(self):
        return (self.package in _DET001_ALLOWED_PACKAGES
                or _tail(self.relpath) in _DET001_ALLOWED_FILES)

    def visit_Import(self, node):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _NONDET_MODULES and not self._det001_allowed():
                self.add("DET001", node,
                         f"import of nondeterministic module {root!r} "
                         "(only util/rng.py and the harness may)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        root = (node.module or "").split(".")[0]
        if root in _NONDET_MODULES and not self._det001_allowed():
            self.add("DET001", node,
                     f"import from nondeterministic module {root!r} "
                     "(only util/rng.py and the harness may)")
        self.generic_visit(node)

    # -- set binding collection + DET002 -------------------------------------------
    @staticmethod
    def _is_set_expr(node):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def _record_binding(self, target, value):
        is_set = self._is_set_expr(value)
        if isinstance(target, ast.Name):
            (self.set_names.add if is_set
             else self.set_names.discard)(target.id)
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            (self.set_attrs.add if is_set
             else self.set_attrs.discard)(target.attr)

    def _iterates_set(self, node):
        if self._is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr in self.set_attrs
        return False

    def _check_iteration(self, iter_node):
        if self.in_model and self._iterates_set(iter_node):
            self.add("DET002", iter_node,
                     "iteration over a set has salted, nondeterministic "
                     "order; wrap in sorted(...) or use a dict")

    def visit_For(self, node):
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node):
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- DET003 / DET004: assignments ----------------------------------------------
    def _check_target(self, node, target, augmented):
        if not isinstance(target, ast.Attribute):
            return
        owner = target.value
        in_init = bool(self.func_stack) and \
            self.func_stack[-1] in ("__init__", "__post_init__")
        if self.in_model and not in_init:
            if target.attr == "config":
                self.add("DET003", node,
                         "machine config rebound outside __init__; configs "
                         "are frozen once simulation starts")
            elif isinstance(owner, ast.Attribute) and owner.attr == "config":
                self.add("DET003", node,
                         f"machine config field {target.attr!r} mutated "
                         "outside __init__; configs are frozen once "
                         "simulation starts")
        if augmented and self.in_model:
            is_stats = (isinstance(owner, ast.Name) and owner.id == "stats") \
                or (isinstance(owner, ast.Attribute) and owner.attr == "stats")
            if is_stats and target.attr not in self.counter_names:
                self.add("DET004", node,
                         f"stats counter {target.attr!r} is not declared in "
                         "the PipelineStats schema")

    def visit_Assign(self, node):
        for target in node.targets:
            self._check_target(node, target, augmented=False)
            self._record_binding(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None:
            self._check_target(node, node.target, augmented=False)
            self._record_binding(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_target(node, node.target, augmented=True)
        self.generic_visit(node)

    # -- scope tracking --------------------------------------------------------------
    def _visit_function(self, node):
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def lint_source(source, relpath):
    """Lint one module's source text; *relpath* scopes the path rules."""
    relpath = str(PurePosixPath(relpath))
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [Finding(rule="DET000", severity=ERROR, where=relpath,
                        location=f"line {exc.lineno or 0}",
                        message=f"syntax error: {exc.msg}")]
    linter = _Linter(relpath)
    linter.visit(tree)
    return sorted(linter.findings,
                  key=lambda f: (int(f.location.split()[-1]), f.rule))


def lint_paths(root):
    """Lint every ``*.py`` under *root*; returns a list of Findings."""
    root = Path(root)
    findings = []
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root.parent).as_posix()
        findings.extend(lint_source(path.read_text(), relpath))
    return findings


def lint_stats_coverage(delta=None, exempt=None, declared=None):
    """DET005: the PipelineStats ↔ interval-sampler schema cross-check.

    Every declared counter must be in exactly one of the sampler's
    ``_DELTA_COUNTERS`` (covered by the event-sum invariants in
    tests/observability) or its ``NON_DELTA_COUNTERS`` exemption list;
    stale entries (listed but not declared) and double listings are
    findings too.  Import-based rather than AST-based: the check reads
    the live schemas, so it cannot drift from them.  The keyword
    arguments exist for the rule's own tests to seed violations.
    """
    from repro.observability.interval import (
        _DELTA_COUNTERS,
        NON_DELTA_COUNTERS,
    )

    delta = tuple(_DELTA_COUNTERS if delta is None else delta)
    exempt = tuple(NON_DELTA_COUNTERS if exempt is None else exempt)
    if declared is None:
        declared = PipelineStats.counter_names()
    declared = tuple(declared)
    where = "repro/observability/interval.py"

    def finding(message):
        return Finding(rule="DET005", severity=ERROR, where=where,
                       location="line 0", message=message)

    findings = []
    covered = set(delta) | set(exempt)
    for name in declared:
        if name not in covered:
            findings.append(finding(
                f"PipelineStats counter {name!r} is covered by neither "
                "_DELTA_COUNTERS (interval event-sum invariants) nor the "
                "NON_DELTA_COUNTERS exemption list"))
    for name in delta:
        if name in exempt:
            findings.append(finding(
                f"counter {name!r} is listed in both _DELTA_COUNTERS and "
                "NON_DELTA_COUNTERS; pick one"))
    for name in sorted(set(delta) | set(exempt)):
        if name not in declared:
            findings.append(finding(
                f"interval schema lists {name!r}, which is not a declared "
                "PipelineStats counter (stale entry?)"))
    return findings
