"""Control-flow graph construction over assembled programs.

The graph is per-instruction (programs are a few hundred instructions at
most): ``successors[i]`` lists the instruction indices control may reach
after instruction ``i``.  Conservative choices, documented per opcode:

* ``b``               -> target only
* conditional branch  -> fall-through + target
* ``bl``              -> target *and* fall-through: the call-return
  approximation.  Register definitions made inside the callee are not
  credited to the return site, so the def-before-use analysis stays sound
  (it can only over-report, never under-report).
* ``br``              -> every labelled instruction (an indirect jump
  through a table of code labels can reach any of them)
* ``blr``             -> every labelled instruction + fall-through
* ``ret`` / ``hlt``   -> no successors (exit)

``len(program)`` is used as a pseudo-index meaning "past the end of code";
the verifier reports any edge to it as a fall-off-the-end error.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.isa.opcodes import Op


@dataclass
class Cfg:
    """Per-instruction successor graph of one program."""

    program: object
    successors: List[Tuple[int, ...]]
    reachable: frozenset          # instruction indices reachable from entry

    @property
    def end_index(self):
        """The pseudo-index meaning control ran past the last instruction."""
        return len(self.successors)


def _label_indices(program):
    """All label target indices, in source order (deterministic)."""
    return tuple(sorted(set(program.labels.values())))


def build_cfg(program):
    """Build the :class:`Cfg` of an assembled program."""
    n = len(program.instructions)
    labels = program.labels
    label_targets = _label_indices(program)
    successors = []
    for index, inst in enumerate(program.instructions):
        op = inst.op
        fall = index + 1
        if op is Op.HLT or op is Op.RET:
            succ = ()
        elif op is Op.B:
            succ = (labels[inst.target],) if inst.target in labels else ()
        elif op is Op.BL:
            target = (labels[inst.target],) if inst.target in labels else ()
            succ = target + (fall,)
        elif op is Op.BR:
            succ = label_targets
        elif op is Op.BLR:
            succ = label_targets + (fall,)
        elif inst.is_conditional_branch:
            target = (labels[inst.target],) if inst.target in labels else ()
            succ = (fall,) + target
        else:
            succ = (fall,)
        successors.append(tuple(succ))

    reachable = set()
    if n:
        worklist = [program.entry]
        while worklist:
            index = worklist.pop()
            if index in reachable or not 0 <= index < n:
                continue
            reachable.add(index)
            worklist.extend(successors[index])
    return Cfg(program=program, successors=successors,
               reachable=frozenset(reachable))
