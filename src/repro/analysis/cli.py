"""``harness audit`` and ``harness lint`` command-line entry points.

Both commands print human-readable findings by default, a machine-readable
JSON document with ``--json``, and exit non-zero when any error-severity
finding exists (``--strict`` also fails on warnings).  CI runs both.

``audit``  — per shipped kernel: assemble, run the static verifier, build
the static SpSR/TVP opportunity map, then simulate with the per-µop
elimination audit attached and cross-check the retired elimination
counters against the trace's static upper bounds.

``lint``   — run the determinism lint (DET001-DET004) over ``src/repro``
plus the DET005 stats/interval schema cross-check.

JSON contract (both commands): every payload carries a ``schema``
version field (``audit/2`` / ``lint/2`` — bumped whenever the shape
changes, like the benchmark suite's ``bench_throughput/2``) and a
``suppressed_warnings`` count; the exit code is uniformly ``0`` iff
``payload["ok"]`` — warnings without ``--strict`` are *suppressed* (ok
stays true, exit 0, count recorded), exactly like an empty findings
list.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.findings import (
    ERROR,
    WARNING,
    Finding,
    findings_to_json,
    has_errors,
)
from repro.analysis.lint import lint_paths, lint_stats_coverage
from repro.analysis.opportunity import (
    EliminationAudit,
    EliminationAuditError,
    StaticOpportunities,
)
from repro.analysis.verifier import verify_program
from repro.emulator.trace import trace_program
from repro.pipeline.core import CpuModel


def _default_config():
    from repro.harness.runner import ExperimentRunner
    return ExperimentRunner.config("tvp+spsr")


def audit_workload(workload, config=None, instructions=None):
    """Audit one workload; returns ``(findings, summary_dict)``."""
    config = config or _default_config()
    name = workload.name
    findings = list(verify_program(workload.program, name=name))
    folding = bool(getattr(config, "spsr_constant_folding", False))
    opps = StaticOpportunities.analyze(workload.program, name=name,
                                       constant_folding=folding)
    summary = {"static": opps.static_counts()}
    if any(f.severity == ERROR for f in findings):
        return findings, summary  # do not simulate a broken program

    budget = instructions or min(workload.default_instructions, 20_000)
    trace, _ = trace_program(workload.program, max_instructions=budget)
    model = CpuModel(trace, config, elim_audit=EliminationAudit(opps))
    try:
        stats = model.run().stats
    except EliminationAuditError as exc:
        findings.append(Finding(
            rule="A002", severity=ERROR, where=name,
            location="<simulation>", message=str(exc)))
        return findings, summary
    summary["dynamic_bounds"] = opps.dynamic_bounds(trace)
    summary["eliminated"] = {
        "zero_idiom": stats.elim_zero_idiom,
        "one_idiom": stats.elim_one_idiom,
        "move": stats.elim_move,
        "nine_bit_idiom": stats.elim_nine_bit_idiom,
        "spsr": stats.elim_spsr,
        "vp_eligible": stats.vp_eligible,
    }
    for message in opps.check_bounds(trace, stats):
        findings.append(Finding(
            rule="A001", severity=ERROR, where=name,
            location="<simulation>", message=message))
    return findings, summary


def _finish(findings, payload, args, ok_message):
    """Shared payload tail + emission + exit code for both commands.

    The JSON shape and the exit-code rule are identical for ``audit``
    and ``lint``: ``ok`` is :func:`has_errors` under the strictness
    chosen, warnings not promoted by ``--strict`` are counted in
    ``suppressed_warnings`` (so an empty-findings exit 0 and a
    suppressed-warnings exit 0 are distinguishable from the payload),
    and the exit code is ``0`` iff ``ok``.
    """
    strict = args.strict
    payload["ok"] = not has_errors(findings, strict=strict)
    payload["suppressed_warnings"] = (
        0 if strict else sum(1 for f in findings if f.severity == WARNING))
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        if not findings:
            print(ok_message)
    return 0 if payload["ok"] else 1


def run_audit(argv=None):
    parser = argparse.ArgumentParser(
        prog="harness audit",
        description="Statically verify and dynamically cross-check kernels.")
    parser.add_argument("workloads", nargs="*",
                        help="kernel names (default: the whole suite)")
    parser.add_argument("--config", default="tvp+spsr",
                        help="named machine config to simulate under")
    parser.add_argument("--instructions", type=int, default=None,
                        help="per-kernel instruction budget")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON output")
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings too")
    args = parser.parse_args(argv)

    from repro.harness.runner import ExperimentRunner
    from repro.workloads import suite

    config = ExperimentRunner.config(args.config)
    workloads = suite(args.workloads or None)
    findings = []
    summaries = {}
    for workload in workloads:
        kernel_findings, summary = audit_workload(
            workload, config=config, instructions=args.instructions)
        findings.extend(kernel_findings)
        summaries[workload.name] = summary
    payload = {
        "schema": "audit/2",
        "command": "audit",
        "config": args.config,
        "findings": findings_to_json(findings),
        "kernels": summaries,
    }
    return _finish(findings, payload, args,
                   f"audit ok: {len(workloads)} kernels verified and "
                   "cross-checked")


def run_lint(argv=None):
    parser = argparse.ArgumentParser(
        prog="harness lint",
        description="Determinism lint (DET001-DET005) over the simulator.")
    parser.add_argument("paths", nargs="*",
                        help="package roots to lint (default: src/repro)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON output")
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings too")
    args = parser.parse_args(argv)

    if args.paths:
        roots = [Path(p) for p in args.paths]
    else:
        import repro
        roots = [Path(repro.__file__).parent]
    findings = []
    for root in roots:
        findings.extend(lint_paths(root))
    # DET005 is a schema cross-check over the live PipelineStats and
    # interval-sampler declarations — path-independent, so it runs once
    # per invocation regardless of which roots were linted.
    findings.extend(lint_stats_coverage())
    payload = {
        "schema": "lint/2",
        "command": "lint",
        "findings": findings_to_json(findings),
    }
    return _finish(findings, payload, args,
                   f"lint ok: {', '.join(str(r) for r in roots)} is clean")


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ("audit", "lint"):
        print("usage: analysis {audit,lint} [options]", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    return run_audit(rest) if command == "audit" else run_lint(rest)


if __name__ == "__main__":
    sys.exit(main())
