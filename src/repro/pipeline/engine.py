"""Selectable timing-core backends (the inner-kernel ``Engine`` interface).

The cycle loop in :mod:`repro.pipeline.core` is the *reference
interpreter*: one µop at a time, plain Python, easy to audit.  This
module factors the loop's stage implementations behind an :class:`Engine`
so a faster backend can be swapped in at runtime without touching the
model's architecture:

* ``interp`` — the default.  Exactly the reference stage methods.
* ``batch`` — the vectorized backend.  Per-trace packed arrays (rename
  eligibility gates, fetch chunk boundaries) are precomputed over the
  :class:`~repro.emulator.trace.ColumnarTrace` columns — with NumPy when
  available, with equivalent pure-Python loops otherwise — and the
  frontend processes whole fetch/decode groups as index spans against
  those arrays instead of walking µop attributes one at a time.

Every backend must reproduce the reference counters **byte-identically**;
the golden counter vectors, the differential fuzzer and the sweep
byte-identity check are the gate.  Because results are identical, the
engine choice is excluded from result-cache fingerprints (see
``MachineConfig.engine``): a batch run hits cache entries produced by an
interp run and vice versa.

Selection order: ``MachineConfig.engine`` > ``REPRO_ENGINE`` environment
variable > ``"interp"``.
"""

import os
from array import array

from repro.emulator.trace import (_F_HAS_IMM, _F_HAS_IMM2, _F_IMM_NEG,
                                  _F_IS_BRANCH, _F_VP_ELIG, _F_WRITES_FLAGS,
                                  ColumnarTrace)
from repro.isa.bits import fits_signed
from repro.isa.opcodes import Op
from repro.isa.registers import FLAGS, N_ARCH_REGS, XZR

try:                                    # optional: the container may lack it
    import numpy as _np
except ImportError:                     # pragma: no cover - environment
    _np = None

# Rename-gate bits: a CLEAR bit is a proof the corresponding rename path
# returns None/False for this µop, so the renamer may skip it entirely.
GATE_DSR = 1        # _dsr could eliminate (static candidacy under config)
GATE_SPSR = 2       # SpSR enabled and op statically reducible
GATE_VP = 4         # value prediction enabled and µop is VP-eligible

_MOVE_IDIOM = (Op.ADD, Op.ORR, Op.EOR)


class Engine:
    """One timing-core backend; stateless, shared across models."""

    name = None

    def prepare(self, model):
        """Install backend state on *model* before the run."""

    def run(self, model, max_cycles, progress_window):
        return model._run(max_cycles, progress_window)


class InterpEngine(Engine):
    """The reference backend: the per-µop pure-Python stage methods."""

    name = "interp"


class BatchEngine(Engine):
    """Span-batched frontend over precomputed per-trace packed arrays."""

    name = "batch"

    def prepare(self, model):
        trace = model.trace
        if not isinstance(trace, ColumnarTrace):
            # List traces have no columns to batch over; run the
            # reference path (identical results by construction).
            return
        model._fetch_chunk_end = _fetch_chunk_ends(trace)
        if model.vtage is not None:
            model._vp_next = _vp_next(trace)
        model._rename_gates = _rename_gates(trace, model.config,
                                            model.renamer)
        model._use_span_queues()
        if model._span_queues:
            # The scheduler kernel (counter-based readiness + adjacency
            # writeback) rides on the span dispatch path; without span
            # queues (tracer on, seq != index) the reference scheduler
            # runs and the adjacency would be dead weight.
            off, consumers, covered = _dep_adjacency(trace, model.config,
                                                     model.renamer)
            model._dep_adj_off = off
            model._dep_adj_consumers = consumers
            model._dep_covered = covered


_ENGINES = {cls.name: cls() for cls in (InterpEngine, BatchEngine)}


def resolve_engine(name=None):
    """The engine for *name* (or the environment/default fallback)."""
    name = name or os.environ.get("REPRO_ENGINE") or "interp"
    engine = _ENGINES.get(name)
    if engine is None:
        raise ValueError(f"unknown engine {name!r}; "
                         f"valid engines: {sorted(_ENGINES)}")
    return engine


def engine_names():
    return sorted(_ENGINES)


# -- per-trace packed precomputes -------------------------------------------------
#
# Everything below is memoized in ``trace.derived`` so the arrays are
# built once per trace (per config class where relevant) and shared by
# every model replaying it.

_LINE_SHIFT = 6


def _fetch_chunk_ends(trace):
    """``end[i]``: first index > i that fetch must examine individually.

    A chunk ``[i, end[i])`` is a run of µops on one cache line with no
    branch — the fetch stage may enqueue it as a single span after one
    line-buffer check (VP-eligible µops inside the chunk are predicted
    via the :func:`_vp_next` skip-index, so they do not break chunks).
    ``end[i] == i`` marks µop *i* itself as a branch: handle it one µop
    at a time.
    """
    special_mask = _F_IS_BRANCH
    key = ("batch", "fetch_chunk_end", special_mask)
    ends = trace.derived.get(key)
    if ends is not None:
        return ends
    flags = trace.columns["flags"]
    lines = trace.line_column(_LINE_SHIFT)
    n = len(flags)
    if _np is not None:
        fl = _np.frombuffer(flags, dtype=_np.uint32)
        ln = _np.frombuffer(lines, dtype=_np.uint64)
        special = (fl & special_mask) != 0
        # next special index at-or-after i, via a reversed running min.
        nsp = _np.full(n + 1, n, dtype=_np.int64)
        idx = _np.flatnonzero(special)
        nsp[idx] = idx
        nsp = _np.minimum.accumulate(nsp[::-1])[::-1]
        # first index after i on a different cache line.
        lre = _np.empty(n + 1, dtype=_np.int64)
        lre[n] = n
        change = _np.flatnonzero(ln[1:] != ln[:-1]) + 1
        bounds = _np.concatenate([change, [n]])
        lre[:n] = bounds[_np.searchsorted(change, _np.arange(n),
                                          side="right")]
        out = _np.minimum(nsp[:n], lre[:n])
        out[special] = idx  # special µops mark themselves (end == i)
        ends = array("q", out.tobytes())
    else:
        ends = array("q", bytes(8 * n))
        nsp = n
        lre = n
        prev_line = None
        for i in range(n - 1, -1, -1):
            line = lines[i]
            if prev_line is not None and line != prev_line:
                lre = i + 1
            prev_line = line
            if flags[i] & special_mask:
                nsp = i
                ends[i] = i
            else:
                ends[i] = nsp if nsp < lre else lre
    trace.derived[key] = ends
    return ends


def _vp_next(trace):
    """``nxt[i]``: first index >= i that is VP-eligible (``n`` if none).

    Length ``n + 1``, so fetch can hop eligible µops inside a chunk with
    ``j = nxt[j + 1]`` without a bounds check.  Inside a chunk there are
    no branches, hence no history pushes, so predicting the eligible
    µops in index order is exactly the reference fetch order.
    """
    key = ("batch", "vp_next")
    nxt = trace.derived.get(key)
    if nxt is not None:
        return nxt
    flags = trace.columns["flags"]
    n = len(flags)
    if _np is not None:
        fl = _np.frombuffer(flags, dtype=_np.uint32)
        nxt_a = _np.full(n + 1, n, dtype=_np.int64)
        idx = _np.flatnonzero((fl & _F_VP_ELIG) != 0)
        nxt_a[idx] = idx
        nxt_a = _np.minimum.accumulate(nxt_a[::-1])[::-1]
        nxt = array("q", nxt_a.tobytes())
    else:
        nxt = array("q", bytes(8 * (n + 1)))
        nv = n
        nxt[n] = n
        for i in range(n - 1, -1, -1):
            if flags[i] & _F_VP_ELIG:
                nv = i
            nxt[i] = nv
    trace.derived[key] = nxt
    return nxt


def _gate_knobs(config, renamer):
    """The config knobs the rename-path guards read.

    The shared memoization key suffix for :func:`_rename_gates` and
    :func:`_dep_adjacency`: configs agreeing on these knobs share both
    packed structures.
    """
    spsr_on = renamer.spsr is not None
    return (config.enable_move_elimination, config.enable_zero_one_idiom,
            config.enable_nine_bit_idiom,
            spsr_on and config.spsr_constant_folding, spsr_on,
            renamer.vtage is not None)


def _rename_gates(trace, config, renamer):
    """One gate byte per µop: which rename decision paths can apply.

    The gates are a *sound upper bound* mirroring the static guards in
    :meth:`Renamer._dsr` / ``statically_reducible`` / ``vp_eligible``: a
    clear bit means the path provably returns nothing for that µop, so
    the batch rename loop skips the call.  Keyed by the config knobs the
    guards read, so configs sharing knobs share the packed array.
    """
    knobs = _gate_knobs(config, renamer)
    en_move, en_01, en_9, _fold, spsr_on, vp_on = knobs
    key = ("batch", "rename_gates") + knobs
    gates = trace.derived.get(key)
    if gates is not None:
        return gates
    cols = trace.columns
    n = len(trace)
    ops = cols["op"]
    dst = cols["dst"]
    flags = cols["flags"]
    imm = cols["imm"]
    src_off = cols["src_off"]
    src_flat = cols["src_reg_flat"]
    op_index = {op: i for i, op in enumerate(Op)}
    movz = op_index[Op.MOVZ]
    mov = op_index[Op.MOV]
    dsr_src_ops = frozenset(op_index[op]
                            for op in (Op.EOR, Op.AND) + _MOVE_IDIOM)
    spsr_dst = spsr_nodst = frozenset()
    if spsr_on:
        spsr_dst = frozenset(op_index[op] for op in renamer._spsr_ops_dst)
        spsr_nodst = frozenset(op_index[op]
                               for op in renamer._spsr_ops_nodst)
    gates = bytearray(n)
    if _np is not None:
        op_a = _np.frombuffer(ops, dtype=_np.uint16).astype(_np.int64)
        dst_a = _np.frombuffer(dst, dtype=_np.int16).astype(_np.int64)
        fl_a = _np.frombuffer(flags, dtype=_np.uint32)
        gate_a = _np.zeros(n, dtype=_np.uint8)
        if vp_on:
            gate_a |= _np.where((fl_a & _F_VP_ELIG) != 0, GATE_VP, 0
                                ).astype(_np.uint8)
        if spsr_on:
            has_dst = dst_a >= 0
            hit = _np.where(has_dst,
                            _np.isin(op_a, sorted(spsr_dst)),
                            _np.isin(op_a, sorted(spsr_nodst)))
            gate_a |= _np.where(hit, GATE_SPSR, 0).astype(_np.uint8)
        # DSR candidacy: the immediate-only cases vectorize; the
        # source-register cases are refined µop-by-µop below, over the
        # (typically small) candidate subset only.
        dsr = _np.zeros(n, dtype=bool)
        has_dst = dst_a >= 0
        if en_move:
            dsr |= has_dst & (op_a == mov)
        if en_01 or en_9:
            imm_a = _np.frombuffer(imm, dtype=_np.uint64).astype(object)
            has_imm = (fl_a & _F_HAS_IMM) != 0
            neg = (fl_a & _F_IMM_NEG) != 0
            is_movz = has_dst & (op_a == movz) & has_imm
            if en_01:
                dsr |= is_movz & ~neg & ((imm_a == 0) | (imm_a == 1))
            if en_9:
                small = (imm_a < 256) | (neg & (imm_a <= 256))
                dsr |= is_movz & small
        maybe_src = has_dst & _np.isin(op_a, sorted(dsr_src_ops))
        gate_a |= _np.where(dsr, GATE_DSR, 0).astype(_np.uint8)
        gates[:] = gate_a.tobytes()
        # The source-register DSR cases are refined µop-by-µop, over the
        # (typically small) candidate subset only.
        for i in _np.flatnonzero(maybe_src & ~dsr).tolist():
            if _dsr_src_candidate(ops[i], op_index, src_flat, src_off[i],
                                  src_off[i + 1], flags[i], en_move, en_01):
                gates[i] |= GATE_DSR
    else:
        for i in range(n):
            gate = 0
            if vp_on and flags[i] & _F_VP_ELIG:
                gate = GATE_VP
            if spsr_on and ops[i] in (spsr_dst if dst[i] >= 0
                                      else spsr_nodst):
                gate |= GATE_SPSR
            if dst[i] >= 0:
                op = ops[i]
                if op == mov:
                    if en_move:
                        gate |= GATE_DSR
                elif op == movz:
                    if (en_01 or en_9) and flags[i] & _F_HAS_IMM:
                        value = imm[i]
                        if flags[i] & _F_IMM_NEG:
                            value = -value
                        if (en_01 and value in (0, 1)) \
                                or (en_9 and fits_signed(value, 9)):
                            gate |= GATE_DSR
                elif op in dsr_src_ops and not gate & GATE_DSR:
                    if _dsr_src_candidate(op, op_index, src_flat,
                                          src_off[i], src_off[i + 1],
                                          flags[i], en_move, en_01):
                        gate |= GATE_DSR
            gates[i] = gate
    trace.derived[key] = gates
    return gates


def _dsr_src_candidate(op, op_index, src_flat, s0, s1, fl, en_move, en_01):
    """The source-register DSR guards of :meth:`Renamer._dsr`, statically."""
    n_src = s1 - s0
    eor = op_index[Op.EOR]
    if en_01 and op == eor and n_src == 2 \
            and src_flat[s0] == src_flat[s0 + 1] \
            and not fl & _F_HAS_IMM2 and src_flat[s0] != XZR:
        return True
    has_xzr = any(src_flat[j] == XZR for j in range(s0, s1))
    if en_01 and op == op_index[Op.AND] and has_xzr:
        return True
    if en_move and n_src == 2 and has_xzr and not fl & _F_HAS_IMM2 \
            and op in (op_index[Op.ADD], op_index[Op.ORR], eor):
        return True
    return False


# A dependence edge is statically *covered* only when the producer's
# rename outcome is provably a plain allocation: any gate bit set means
# the producer might eliminate (its destination aliases another name) or
# value predict (its destination is ready at rename), so the edge's
# waking event is not the producer's writeback and the consumer falls
# back to the name-keyed wakeup CAM.  Flags never carry predictions, so
# flags edges only exclude the elimination bits.
_DEST_UNCOVERED = GATE_DSR | GATE_SPSR | GATE_VP
_FLAGS_UNCOVERED = GATE_DSR | GATE_SPSR


def _dep_adjacency(trace, config, renamer):
    """Producer→consumer dependence lists plus covered-source bitmasks.

    Returns ``(off, consumers, covered)``:

    * ``off``/``consumers`` — a CSR over producer trace index (== seq in
      span mode): ``consumers[off[j]:off[j + 1]]`` lists, oldest first,
      every µop with a covered source position whose last prior writer
      is *j* (once per position — duplicate reads appear twice).  The
      producer's writeback walks exactly this list to decrement the
      consumers' outstanding-source counters, instead of the consumers
      registering in the wakeup CAM.
    * ``covered`` — one byte per µop; bit *k* set means dependence
      position *k* (the ``entry.src_names`` index) is in the CSR.  Clear
      bits (unanalyzable producer, no prior writer, position >= 8) keep
      the CAM protocol.

    Built over the ``dep_off``/``dep_flat``/``dst``/``flags`` columns —
    ``dep_flat`` is the architectural *read* set including FLAGS, in the
    exact order ``Renamer.rename`` builds ``src_names`` from, so the
    bitmask indexes align.  Keyed like :func:`_rename_gates` (the gates
    decide coverage), memoized on the trace, NumPy-built with an
    equivalent pure-Python fallback producing byte-identical arrays.
    """
    knobs = _gate_knobs(config, renamer)
    key = ("batch", "dep_adjacency") + knobs
    adj = trace.derived.get(key)
    if adj is not None:
        return adj
    gates = _rename_gates(trace, config, renamer)
    cols = trace.columns
    n = len(trace)
    dep_off = cols["dep_off"]
    dep_flat = cols["dep_flat"]
    dst = cols["dst"]
    flags = cols["flags"]
    covered = bytearray(n)
    if _np is not None:
        dep_off_a = _np.frombuffer(dep_off, dtype=_np.uint32
                                   ).astype(_np.int64)
        dep_flat_a = _np.frombuffer(dep_flat, dtype=_np.uint8
                                    ).astype(_np.int64)
        dst_a = _np.frombuffer(dst, dtype=_np.int16).astype(_np.int64)
        fl_a = _np.frombuffer(flags, dtype=_np.uint32)
        gate_a = _np.frombuffer(gates, dtype=_np.uint8)
        # Writer records: (arch reg, µop index, analyzable) — one per
        # destination write, one per flags write.
        dest_w = _np.flatnonzero(dst_a >= 0)
        flag_w = _np.flatnonzero((fl_a & _F_WRITES_FLAGS) != 0)
        w_idx = _np.concatenate([dest_w, flag_w])
        w_reg = _np.concatenate([
            dst_a[dest_w],
            _np.full(len(flag_w), FLAGS, dtype=_np.int64)])
        w_ok = _np.concatenate([
            (gate_a[dest_w] & _DEST_UNCOVERED) == 0,
            (gate_a[flag_w] & _FLAGS_UNCOVERED) == 0])
        # Last-prior-writer lookup via one searchsorted over combined
        # (reg, index) keys: the record just below ``reg*stride + i`` is
        # the youngest writer of ``reg`` older than µop ``i`` (reads
        # resolve against the pre-update map, hence side='left').
        stride = n + 1
        w_key = w_reg * stride + w_idx
        order = _np.argsort(w_key)
        w_key = w_key[order]
        w_idx = w_idx[order]
        w_ok = w_ok[order]
        m = len(dep_flat_a)
        uop_of = _np.repeat(_np.arange(n, dtype=_np.int64),
                            _np.diff(dep_off_a))
        pos_of = _np.arange(m, dtype=_np.int64) - dep_off_a[uop_of]
        loc = _np.searchsorted(w_key, dep_flat_a * stride + uop_of,
                               side="left") - 1
        loc_c = _np.maximum(loc, 0)
        # The found record matches the read's register iff its key does
        # not fall below the register's key range.
        ok = (loc >= 0) & (w_key[loc_c] >= dep_flat_a * stride) \
            & w_ok[loc_c] & (pos_of < 8)
        prod = _np.where(ok, w_idx[loc_c], -1)
        bits = _np.where(ok, _np.int64(1) << (pos_of & 7), 0)
        # Bits are distinct per µop, so bitwise-or folds to a sum.
        cov = _np.bincount(uop_of, weights=bits, minlength=n)
        covered[:] = cov.astype(_np.uint8).tobytes()
        e_prod = prod[ok]
        e_cons = uop_of[ok]
        counts = _np.bincount(e_prod, minlength=n) if len(e_prod) \
            else _np.zeros(n, dtype=_np.int64)
        off_a = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(counts, out=off_a[1:])
        consumers_a = e_cons[_np.argsort(e_prod, kind="stable")]
        off = array("q", off_a.tobytes())
        consumers = array("q", consumers_a.astype(_np.int64).tobytes())
    else:
        m = len(dep_flat)
        producer = [-1] * m
        last_writer = [-1] * N_ARCH_REGS
        counts = array("q", bytes(8 * (n + 1)))
        for i in range(n):
            d0 = dep_off[i]
            d1 = dep_off[i + 1]
            for p in range(d0, d1):
                r = dep_flat[p]
                j = last_writer[r]
                if j < 0 or p - d0 >= 8:
                    continue
                blocked = (_FLAGS_UNCOVERED if r == FLAGS
                           else _DEST_UNCOVERED)
                if gates[j] & blocked:
                    continue
                producer[p] = j
                covered[i] |= 1 << (p - d0)
                counts[j + 1] += 1
            d = dst[i]
            if d >= 0:
                last_writer[d] = i
            if flags[i] & _F_WRITES_FLAGS:
                last_writer[FLAGS] = i
        for j in range(1, n + 1):
            counts[j] += counts[j - 1]
        off = counts
        consumers = array("q", bytes(8 * off[n]))
        cursor = list(off)
        for i in range(n):
            for p in range(dep_off[i], dep_off[i + 1]):
                j = producer[p]
                if j >= 0:
                    slot = cursor[j]
                    consumers[slot] = i
                    cursor[j] = slot + 1
    adj = (off, consumers, covered)
    trace.derived[key] = adj
    return adj
