"""The out-of-order superscalar timing model (the gem5 substitute)."""

from repro.pipeline.config import MachineConfig, MemoryConfig
from repro.pipeline.core import CpuModel, SimulationResult, simulate
from repro.pipeline.stats import PipelineStats

__all__ = [
    "CpuModel",
    "MachineConfig",
    "MemoryConfig",
    "PipelineStats",
    "SimulationResult",
    "simulate",
]
