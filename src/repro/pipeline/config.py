"""Machine configuration: the paper's Table 2, knob for knob.

``MachineConfig()`` is the baseline core (move elimination + 0/1-idiom
elimination, no value prediction).  The classmethods build the evaluated
configurations: ``mvp()``, ``tvp()``, ``gvp()``, each optionally with
``spsr=True``.
"""

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.modes import VPFlavor
from repro.core.vtage import VtageConfig
from repro.observability.config import TraceConfig


@dataclass
class MemoryConfig:
    """Cache/TLB/prefetcher parameters (Table 2)."""

    line_size: int = 64
    l1i_size: int = 128 * 1024
    l1i_ways: int = 8
    l1i_latency: int = 1
    l1i_mshrs: int = 8
    l1d_size: int = 128 * 1024
    l1d_ways: int = 8
    l1d_latency: int = 4
    l1d_mshrs: int = 56
    l2_size: int = 1024 * 1024
    l2_ways: int = 8
    l2_latency: int = 12
    l2_mshrs: int = 64
    l3_size: int = 8 * 1024 * 1024
    l3_ways: int = 16
    l3_latency: int = 37
    l3_mshrs: int = 64
    dram_latency: int = 110
    tlb_walk_penalty: int = 40
    enable_stride_prefetcher: bool = True
    stride_degree: int = 4
    enable_ampm_prefetcher: bool = True
    ampm_degree: int = 2


@dataclass
class MachineConfig:
    """The full core (Table 2: 11-stage pipeline at 3GHz)."""

    # Frontend.
    fetch_width: int = 16              # from a 64B line buffer
    fetch_queue: int = 32
    taken_branch_penalty: int = 1
    fetch_to_decode: int = 3
    decode_width: int = 8
    decode_to_rename: int = 1
    mistarget_penalty: int = 2         # BTB-miss taken branch, fixed at Decode
    # Rename / dispatch / commit.
    rename_width: int = 8
    rename_to_dispatch: int = 2
    commit_width: int = 8
    rob_entries: int = 315
    iq_entries: int = 92
    lq_entries: int = 74
    sq_entries: int = 53
    int_phys_regs: int = 292
    fp_phys_regs: int = 292
    # Issue/execute (port plan per Table 2).
    issue_width: int = 15
    int_alu_ports: int = 6             # 4 simple + 2 shared with IntMul
    int_mul_ports: int = 2
    int_mul_latency: int = 3
    int_div_ports: int = 1
    int_div_latency: int = 20          # unpipelined
    fp_alu_ports: int = 4
    fp_alu_latency: int = 3
    fp_mul_ports: int = 4
    fp_mul_latency: int = 4
    fp_mac_latency: int = 5
    fp_div_ports: int = 1
    fp_div_latency: int = 12           # unpipelined
    load_ports: int = 2
    store_ports: int = 2
    store_forward_latency: int = 5
    # Branch prediction.
    tage_tables: int = 15
    tage_min_history: int = 5
    tage_max_history: int = 640
    btb_entries: int = 8192
    ras_entries: int = 32
    indirect_entries: int = 1024
    # Redirect bubble after a resolved mispredict; the frontend refill time
    # (fetch->decode->rename latencies) adds on top, so the effective
    # penalty matches the paper's 11-stage pipeline.
    redirect_penalty: int = 2
    # Memory dependence prediction (Store Sets).
    ssit_entries: int = 2048
    lfst_entries: int = 2048
    # Rename optimizations (the paper's baseline includes DSR).
    enable_move_elimination: bool = True
    enable_zero_one_idiom: bool = True
    # Value prediction.
    vp_flavor: VPFlavor = VPFlavor.NONE
    # Which prediction algorithm backs the flavor.  The paper evaluates
    # VTAGE; "lvp", "stride" and (MVP-only) "perceptron" are the swap-in
    # alternatives its §7 points at, used by the predictor ablation.
    vp_algorithm: str = "vtage"
    vtage: Optional[VtageConfig] = None    # None -> Table 2 default for flavor
    vp_queue_entries: int = 192
    vp_silence_cycles: int = 250
    # Misprediction recovery: "flush" (the paper's choice, §3.4) or
    # "replay" (selective re-execution of consumers, §2.2).  Replay is
    # only *possible* when the prediction had real storage — a wide GVP
    # prediction written to a physical register.  MVP/TVP predictions live
    # in hardwired/inline names with nowhere to put the correct value, so
    # they always flush (including the offender) regardless of this knob —
    # the asymmetry the paper's §3.4 is about.
    vp_recovery: str = "flush"
    # Speculative Strength Reduction.
    enable_spsr: bool = False
    spsr_constant_folding: bool = False    # extension, off by default
    # Memory system.
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    # Simulation.
    seed: int = 0x5EED_0001
    # Observability (per-µop lifecycle tracing + interval metrics).
    # Tracing is purely observational — stats are bit-identical with it on
    # or off — so the field is excluded from the cache fingerprint
    # (``metadata={"fingerprint": False}``): traced and untraced runs
    # share harness cache entries.
    trace: Optional[TraceConfig] = field(
        default=None, metadata={"fingerprint": False})
    # Timing-core backend ("interp" or "batch"; None defers to the
    # REPRO_ENGINE environment variable, then "interp").  Backends are
    # required to produce byte-identical counters (golden + differential
    # gates), so like ``trace`` the choice is excluded from the cache
    # fingerprint: a batch run hits interp-produced cache entries.
    engine: Optional[str] = field(
        default=None, metadata={"fingerprint": False})

    # -- derived -----------------------------------------------------------------
    @property
    def enable_nine_bit_idiom(self):
        """9-bit signed-idiom elimination comes with TVP/GVP inlining."""
        return self.vp_flavor.enables_nine_bit_idiom

    def vtage_config(self):
        """The value predictor geometry for this configuration."""
        if self.vtage is not None:
            return self.vtage
        if self.vp_flavor is VPFlavor.NONE:
            return None
        return VtageConfig(value_bits=self.vp_flavor.value_bits)

    # -- the paper's evaluated configurations ------------------------------------
    @classmethod
    def baseline(cls, **overrides):
        """ME + 0/1-idiom elimination, no VP (the Fig. 3/5 baseline)."""
        return cls(**overrides)

    @classmethod
    def mvp(cls, spsr=False, **overrides):
        return cls(vp_flavor=VPFlavor.MVP, enable_spsr=spsr, **overrides)

    @classmethod
    def tvp(cls, spsr=False, **overrides):
        return cls(vp_flavor=VPFlavor.TVP, enable_spsr=spsr, **overrides)

    @classmethod
    def gvp(cls, spsr=False, **overrides):
        return cls(vp_flavor=VPFlavor.GVP, enable_spsr=spsr, **overrides)

    def with_(self, **overrides):
        """A copy with some fields replaced."""
        return replace(self, **overrides)
