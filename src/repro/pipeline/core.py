"""The cycle-level out-of-order core (the gem5 substitute).

Trace-driven: the functional emulator supplies the correct-path µop stream
(:class:`~repro.emulator.trace.DynUop`); this model replays it through an
11-stage-equivalent pipeline — fetch (16-wide, line buffer, I-cache, BTB /
TAGE / RAS / indirect predictor), decode (8-wide), rename (8-wide with
move/idiom elimination, SpSR and value prediction), dispatch into
ROB/IQ/LQ/SQ, port-constrained issue, execution with the Table 2 latencies
and the full cache hierarchy, in-place value-prediction validation, and
8-wide in-order commit with CRAT-based register reclamation.

Speculation model:

* **Branches** resolve at execute; a mispredicted branch blocks fetch until
  it resolves (wrong-path µops are not simulated — the standard
  trace-driven approximation, see DESIGN.md §5).
* **Value mispredictions** squash the offending µop and everything younger
  (the paper's §3.4 requires the offender to be included), repair the RAT
  by walking the ROB undo log, restart fetch at the offender, and silence
  the predictor for 250 cycles.
* **Memory-order violations** (a load that issued before an older
  same-address store executed) squash from the load; Store Sets learn the
  pair.
"""

import gc
import heapq
import os
from array import array
from collections import deque
from dataclasses import dataclass

from repro.backend.fus import FunctionalUnits
from repro.backend.lsq import LoadStoreQueues, LsqEntry
from repro.backend.naming import FLAGS_NAME_BASE, FP_NAME_BASE
from repro.backend.prf import PhysicalRegisterFile
from repro.backend.rat import RegisterAliasTable
from repro.backend.rob import ReorderBuffer, RobEntry, UopState
from repro.backend.storesets import StoreSets
from repro.core.inflight import VPQueue
from repro.core.modes import VPFlavor
from repro.core.spsr import SpSREngine
from repro.core.vtage import Vtage
from repro.emulator.trace import (_F_IS_BRANCH, _F_IS_CALL,
                                  _F_IS_COND_BRANCH, _F_IS_INDIRECT,
                                  _F_IS_LAST_UOP, _F_IS_LOAD, _F_IS_RETURN,
                                  _F_IS_STORE, _F_HAS_TARGET, _F_TAKEN,
                                  _F_VP_ELIG, ColumnarTrace)
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.history import GlobalHistory
from repro.frontend.indirect import IndirectTargetCache
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import Tage, TageConfig
from repro.isa.opcodes import ExecClass
from repro.isa.registers import FLAGS
from repro.memory.hierarchy import MemoryHierarchy
from repro.observability.tracer import NULL_TRACER, PipelineTracer
from repro.pipeline.config import MachineConfig
from repro.pipeline.stats import PipelineStats
from repro.rename.renamer import Renamer, vp_eligible

_LINE_SHIFT = 6  # 64B fetch lines

# Branch outcome classification at fetch, encoded small so the
# config-invariant precompute (below) can store one byte per µop.
_KIND_FALL = 0
_KIND_TAKEN = 1
_KIND_MISPREDICT = 2
_KIND_MISTARGET = 3


def _predict_and_train(pc, taken, target_pc, is_cond, is_call, is_return,
                       is_indirect, tage, btb, ras, indirect):
    """First-encounter prediction + training against one branch record.

    The single source of truth for frontend behavior: the live
    per-fetch path and the per-trace precompute both call this, so they
    cannot diverge.  Returns a ``_KIND_*`` code.
    """
    if is_cond:
        predicted_taken, info = tage.predict(pc)
        tage.update(pc, taken, info)
        if predicted_taken != taken:
            return _KIND_MISPREDICT
        if not taken:
            return _KIND_FALL
        target = btb.lookup(pc)
        btb.install(pc, target_pc)
        return _KIND_TAKEN if target == target_pc else _KIND_MISTARGET
    if is_call:
        ras.push(pc + 4)
    if is_return:
        predicted = ras.pop()
        return _KIND_TAKEN if predicted == target_pc else _KIND_MISPREDICT
    if is_indirect:
        predicted = indirect.lookup(pc)
        indirect.install(pc, target_pc)
        indirect.push_path(target_pc)
        return _KIND_TAKEN if predicted == target_pc else _KIND_MISPREDICT
    # Unconditional direct branch (b / bl).
    target = btb.lookup(pc)
    btb.install(pc, target_pc)
    return _KIND_TAKEN if target == target_pc else _KIND_MISTARGET


def _frontend_fingerprint(cfg):
    """The config knobs the branch-outcome precompute depends on.

    Every evaluated configuration shares one frontend, so the kinds
    column is computed once per (trace, fingerprint) and memoized on the
    trace for all configs replaying it.
    """
    return ("branch_kinds", cfg.tage_tables, cfg.tage_min_history,
            cfg.tage_max_history, cfg.btb_entries, cfg.ras_entries,
            cfg.indirect_entries, cfg.seed)


def _precompute_branch_kinds(trace, cfg):
    """One ``_KIND_*`` byte per µop of a columnar trace.

    Replays exactly the first-encounter prediction/training sequence the
    live frontend performs: the fetch frontier reaches trace positions
    in strictly increasing order (flush refetches only revisit already
    seen µops, which touch no predictor state), so walking the trace
    once in order trains the predictors identically.
    """
    history = GlobalHistory()
    tage = Tage(TageConfig(n_tables=cfg.tage_tables,
                           min_history=cfg.tage_min_history,
                           max_history=cfg.tage_max_history),
                history=history, seed=cfg.seed)
    btb = BranchTargetBuffer(cfg.btb_entries)
    ras = ReturnAddressStack(cfg.ras_entries)
    indirect = IndirectTargetCache(cfg.indirect_entries)
    cols = trace.columns
    pcs = cols["pc"]
    targets = cols["target_pc"]
    kinds = bytearray(len(pcs))
    for i, flags in enumerate(cols["flags"]):
        if not flags & _F_IS_BRANCH:
            continue
        target = targets[i] if flags & _F_HAS_TARGET else None
        kinds[i] = _predict_and_train(
            pcs[i], bool(flags & _F_TAKEN), target,
            bool(flags & _F_IS_COND_BRANCH), bool(flags & _F_IS_CALL),
            bool(flags & _F_IS_RETURN), bool(flags & _F_IS_INDIRECT),
            tage, btb, ras, indirect)
    return kinds


def _seq_of(entry):
    """Sort key keeping the scheduler's select list oldest-first."""
    return entry.seq


class SimulationDeadlock(RuntimeError):
    """The pipeline stopped making progress (a model bug, not a workload)."""


@dataclass
class SimulationResult:
    """What one run returns."""

    stats: PipelineStats
    config: MachineConfig
    trace_uops: int

    @property
    def ipc(self):
        return self.stats.ipc


class CpuModel:
    """One core instance bound to one trace."""

    def __init__(self, trace, config=None, elim_audit=None, tracer=None):
        self.trace = trace
        self.config = config or MachineConfig()
        cfg = self.config
        self.stats = PipelineStats()
        # Optional static-eligibility cross-check (repro.analysis): called
        # on every rename-time elimination, raises on any elimination at a
        # site the static opportunity analysis did not classify eligible.
        self.elim_audit = elim_audit
        # Observability: every stage hook is guarded by ``tracer.enabled``
        # (hoisted per stage), so with the null tracer the instrumented
        # paths cost one attribute read + branch and the stats stay
        # bit-identical to an untraced run.  A tracer is built from
        # ``config.trace`` unless one is injected directly.
        if tracer is None:
            tracer = (PipelineTracer(cfg.trace)
                      if cfg.trace is not None and cfg.trace.enabled
                      else NULL_TRACER)
        self.tracer = tracer

        # Register files and rename state.
        self.int_prf = PhysicalRegisterFile(cfg.int_phys_regs, name_base=0)
        self.fp_prf = PhysicalRegisterFile(cfg.fp_phys_regs,
                                           name_base=FP_NAME_BASE)
        self.flags_prf = PhysicalRegisterFile(384, name_base=FLAGS_NAME_BASE)
        self.rat = RegisterAliasTable(self.int_prf, self.fp_prf,
                                      self.flags_prf)

        # Columnar hot-path accessors: on a struct-of-arrays trace the
        # fetch loop reads the cache-line and flag columns by index
        # instead of dereferencing µop attributes.
        self._flags_col = None
        self._line_col = None
        # C-speed µop lookup: the columnar view cache (or the list trace
        # itself) is indexed directly in _fetch; only a None slot routes
        # through ColumnarTrace.__getitem__ to materialize.
        self._trace_views = trace
        if isinstance(trace, ColumnarTrace):
            self._flags_col = trace.columns["flags"]
            self._line_col = trace.line_column(_LINE_SHIFT)
            self._trace_views = trace.views

        # Prediction structures.
        self.history = GlobalHistory()
        # Config-invariant frontend precompute: first-encounter branch
        # outcomes depend only on the trace and the frontend knobs (every
        # evaluated config shares them), so on a columnar trace they are
        # computed once, memoized on the trace, and replayed here — and
        # the TAGE machinery is not built at all.  The global branch
        # history the value predictor folds over is still pushed
        # verbatim at the same fetch points (see _fetch_branch), so
        # value predictions stay bit-identical.  Traced runs keep the
        # live path: the tracer samples frontend occupancy.
        self._branch_kinds = None
        if self._flags_col is not None and not tracer.enabled:
            key = _frontend_fingerprint(cfg)
            kinds = trace.derived.get(key)
            if kinds is None:
                kinds = _precompute_branch_kinds(trace, cfg)
                trace.derived[key] = kinds
            self._branch_kinds = kinds
            self.tage = None
        else:
            self.tage = Tage(TageConfig(n_tables=cfg.tage_tables,
                                        min_history=cfg.tage_min_history,
                                        max_history=cfg.tage_max_history),
                             history=self.history, seed=cfg.seed)
        self.btb = BranchTargetBuffer(cfg.btb_entries)
        self.ras = ReturnAddressStack(cfg.ras_entries)
        self.indirect = IndirectTargetCache(cfg.indirect_entries)
        self.vtage = self._build_value_predictor(cfg)
        self.vp_queue = None
        if self.vtage is not None:
            self.vp_queue = VPQueue(cfg.vp_queue_entries,
                                    cfg.vp_silence_cycles)
        spsr = SpSREngine(cfg.spsr_constant_folding) if cfg.enable_spsr else None

        # Backend.
        self.rob = ReorderBuffer(cfg.rob_entries)
        self.iq = []
        self.lsq = LoadStoreQueues(cfg.lq_entries, cfg.sq_entries)
        self.fus = FunctionalUnits(cfg)
        self.store_sets = StoreSets(cfg.ssit_entries, cfg.lfst_entries)
        self.memory = MemoryHierarchy(cfg.memory)
        self.renamer = Renamer(cfg, self.rat, self.int_prf, self.fp_prf,
                               self.flags_prf, self.stats, spsr_engine=spsr,
                               vtage=self.vtage, vp_queue=self.vp_queue)

        # Frontend state.
        self.fetch_index = 0
        self.fetch_stall_until = 0
        self.waiting_branch_seq = None
        # Insertion-ordered on purpose (determinism lint DET002): dict
        # membership is as fast as a set's and iteration order is defined.
        self.branch_seen = {}
        self.current_fetch_line = None
        self.fetch_queue = deque()
        self.decode_queue = deque()
        self.decode_queue_cap = 3 * cfg.decode_width

        # Value predictions are generated in the frontend (at fetch), where
        # the global branch history is exactly the branches older than the
        # µop — rename-time lookup would see younger, already-fetched
        # branches.  Keyed by seq; refetches re-predict (as hardware does).
        self.pending_predictions = {}
        self.renamer.pending_predictions = self.pending_predictions

        # Execution bookkeeping.
        self.completions = []            # heap of (cycle, tiebreak, entry)
        self._completion_counter = 0
        self.store_entries = {}          # seq -> LsqEntry (stores in flight)
        self.entries_by_seq = {}         # seq -> RobEntry (in window)
        self.cycle = 0
        self._activity = 0

        # Scheduler acceleration (architecturally invisible).
        #
        # Lower bound over every IQ entry's select_gate; _issue skips the
        # scan entirely while the bound is in the future (see _issue).
        # It also feeds the event clock: _next_event_bound uses it as the
        # issue stage's earliest-possible-action cycle.
        self._iq_min_gate = 0
        # Event clock: idle stretches are jumped over in one step (see
        # _advance_clock).  REPRO_NO_EVENT_SKIP=1 caps every jump at one
        # cycle, turning the loop into the plain per-cycle reference the
        # identity property tests compare against.
        self._event_skip = os.environ.get(
            "REPRO_NO_EVENT_SKIP", "0") in ("", "0")
        # Wakeup CAM: physical name -> IQ entries blocked because that
        # producer has not issued yet (its completion cycle is unknown).
        # The producer's set_ready pops exactly these waiters, so blocked
        # entries are never rescanned in between.  Stale registrations
        # (squashed/replayed µops) merely trigger a harmless rescan.
        self._waiters = {}
        # name -> (readiness buffer, index) resolved once per physical
        # name, replacing the per-lookup INT/FP/flags range dispatch.
        # Physical names are dense small integers (flags names are the
        # topmost range), so both memos are flat lists: indexing them is
        # measurably cheaper than dict lookups in the issue loop.
        n_names = FLAGS_NAME_BASE + self.flags_prf.n_regs
        self._ready_slots = [None] * n_names
        # name -> 0 (not a PRF register) / 1 (INT) / 2 (FP), for the
        # Fig. 6 PRF read/write accounting; a name's class never changes.
        self._name_kind = [None] * n_names

        # Engine indirection (repro.pipeline.engine): the batch backend
        # swaps the frontend stages for span-batched variants working
        # directly off the trace columns; the defaults are the reference
        # per-µop implementations.
        self._fetch_impl = self._fetch
        self._decode_impl = self._decode
        self._rename_impl = self._rename_dispatch
        self._issue_impl = self._issue
        self._commit_impl = self._commit
        self.stage_profile = None
        self._stage_profile = None
        self._stage_clock = None
        # Batch-engine scheduler state; _iq_wakeups is None on the
        # reference engine (the shared wakeup sites check it).
        self._iq_wakeups = None
        self._iq_active = None
        self._iq_parked = None
        self._iq_park_heap = None
        self._iq_len = 0
        self._span_queues = False
        self._fetch_q_uops = 0
        self._decode_q_uops = 0
        self._fetch_chunk_end = None
        self._vp_next = None
        self._rename_gates = None
        self._pc_col = None
        self._seq_col = None
        # Dependence adjacency (batch engine): producer seq -> consumer
        # seqs CSR plus a per-µop bitmask of statically-covered source
        # positions; covered sources skip the wakeup CAM entirely — the
        # producer's writeback walks its consumer list instead.
        self._dep_adj_off = None
        self._dep_adj_consumers = None
        self._dep_covered = None

        # Attach last: the tracer may sample any structure built above.
        self.tracer.attach(self)

    def _use_span_queues(self):
        """Switch the frontend queues to ``[ready, start, end)`` index spans.

        Installed by the batch engine on columnar traces.  Observability
        runs (tracer enabled) keep the reference per-µop frontend: the
        per-µop tracer hooks are the point of those runs.  Requires the
        seq == trace-index invariant (flush truncates spans by seq).
        """
        trace = self.trace
        if self.tracer.enabled or self._flags_col is None:
            return
        key = ("batch", "seq_is_index")
        seq_is_index = trace.derived.get(key)
        if seq_is_index is None:
            seq_col = trace.columns["seq"]
            seq_is_index = (bytes(seq_col) ==
                            array("q", range(len(seq_col))).tobytes())
            trace.derived[key] = seq_is_index
        if not seq_is_index:
            return
        self._span_queues = True
        self._pc_col = trace.columns["pc"]
        self._seq_col = trace.columns["seq"]
        self._fetch_impl = self._fetch_spans
        self._decode_impl = self._decode_spans
        self._rename_impl = self._rename_spans
        self._issue_impl = self._issue_spans
        self._commit_impl = self._commit_spans
        self._iq_wakeups = []
        self._iq_active = []
        self._iq_parked = {}
        self._iq_park_heap = []
        self._iq_len = 0

    def _build_value_predictor(self, cfg):
        """The value predictor backing the configured flavor (or None)."""
        if cfg.vp_flavor is VPFlavor.NONE:
            return None
        algorithm = cfg.vp_algorithm
        if algorithm == "vtage":
            return Vtage(cfg.vtage_config(), history=self.history,
                         seed=cfg.seed + 7)
        if algorithm == "lvp":
            from repro.core.lvp import LastValuePredictor, LvpConfig

            return LastValuePredictor(
                LvpConfig(value_bits=cfg.vp_flavor.value_bits),
                seed=cfg.seed + 7)
        if algorithm == "stride":
            from repro.core.stride import StrideValuePredictor, StrideVpConfig

            return StrideValuePredictor(
                StrideVpConfig(value_bits=cfg.vp_flavor.value_bits),
                seed=cfg.seed + 7)
        if algorithm == "perceptron":
            from repro.core.perceptron import PerceptronValuePredictor

            if cfg.vp_flavor is not VPFlavor.MVP:
                raise ValueError("the perceptron predictor only makes sense "
                                 "for MVP (two candidate values)")
            return PerceptronValuePredictor(history=self.history)
        raise ValueError(f"unknown vp_algorithm {algorithm!r}")

    # ==================================================================== run
    def run(self, max_cycles=None, progress_window=20_000):
        """Simulate until the whole trace has retired."""
        # Late import: engine.py reaches back into pipeline internals.
        from repro.pipeline.engine import resolve_engine

        engine = resolve_engine(self.config.engine)
        engine.prepare(self)
        if self._stage_profile is not None:
            # After prepare: the engine may have swapped stage impls.
            self._install_stage_profilers()
        # The pipeline allocates heavily (ROB entries, undo tuples, heap
        # items) but never creates reference cycles, so the cyclic GC only
        # costs time here.  Pause it for the simulation.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return engine.run(self, max_cycles, progress_window)
        finally:
            if gc_was_enabled:
                gc.enable()

    def enable_stage_profile(self, clock):
        """Collect per-stage wall time during :meth:`run`.

        Purely observational (the wrappers only time the calls — counters
        are unchanged); read the accumulated seconds from
        ``stage_profile`` after the run.  Backs ``harness run
        --profile-stages``.

        ``clock`` is the wall-time source — the harness passes
        ``time.perf_counter``.  Injected rather than imported because
        the model itself must stay free of nondeterministic modules
        (the DET001 lint); the clock only ever times stage calls, it
        never feeds simulated state.
        """
        self.stage_profile = {name: 0.0 for name in (
            "fetch", "decode", "rename", "issue", "complete", "commit")}
        self._stage_profile = self.stage_profile
        self._stage_clock = clock

    def _install_stage_profilers(self):
        profile = self._stage_profile
        perf = self._stage_clock

        def timed(name, impl):
            def wrapper():
                start = perf()
                impl()
                profile[name] += perf() - start
            return wrapper

        self._commit_impl = timed("commit", self._commit_impl)
        self._complete = timed("complete", self._complete)
        self._issue_impl = timed("issue", self._issue_impl)
        self._rename_impl = timed("rename", self._rename_impl)
        self._decode_impl = timed("decode", self._decode_impl)
        self._fetch_impl = timed("fetch", self._fetch_impl)

    def _run(self, max_cycles, progress_window):
        target = len(self.trace)
        last_retire_cycle = 0
        stats = self.stats
        commit = self._commit_impl
        complete = self._complete
        issue = self._issue_impl
        rename_dispatch = self._rename_impl
        decode = self._decode_impl
        fetch = self._fetch_impl
        tracer = self.tracer
        trace_on = tracer.enabled
        # Stage guards: each mirrors its stage's side-effect-free early
        #-out, so a skipped call is exactly a call that would have
        # returned at the top.  ``rob.entries`` and ``completions`` never
        # change identity; the frontend queues and the IQ do (flushes
        # rebuild them), so those are re-read every cycle.
        rob_entries = self.rob.entries
        completions = self.completions
        done = UopState.DONE
        eliminated = UopState.ELIMINATED
        advance = self._advance_clock
        event_skip = self._event_skip
        while stats.retired_uops < target:
            cycle = self.cycle + 1
            self.cycle = cycle
            self._activity = 0
            retired_before = stats.retired_uops
            if rob_entries:
                head = rob_entries[0]
                state = head.state
                if state is eliminated or (state is done
                                           and head.complete_cycle < cycle):
                    commit()
            if completions and completions[0][0] <= cycle:
                complete()
            if self.iq and self._iq_min_gate <= cycle:
                issue()
            queue = self.decode_queue
            if queue and queue[0][0] <= cycle:
                rename_dispatch()
            queue = self.fetch_queue
            if queue and queue[0][0] <= cycle:
                decode()
            if self.waiting_branch_seq is None \
                    and cycle >= self.fetch_stall_until:
                fetch()
            if trace_on:
                tracer.cycle_tick(self.cycle)
            if stats.retired_uops != retired_before:
                last_retire_cycle = cycle
            elif cycle - last_retire_cycle > progress_window:
                # Watchdog on simulated-cycle distance, not iterations:
                # the event clock compresses long legitimate stalls into
                # few iterations, so iteration counting both misses real
                # deadlocks (few spins before a bogus far-future event)
                # and cannot distinguish a skipped stall from a hang.
                raise SimulationDeadlock(
                    self._deadlock_report(last_retire_cycle))
            if self._activity == 0 and event_skip:
                # No stage did work: jump straight to the next cycle at
                # which any stage can act (identical architectural
                # behaviour, much faster on memory-bound phases).
                advance()
            if max_cycles is not None and self.cycle > max_cycles:
                break
        self.stats.cycles = self.cycle
        self.stats.memory = self.memory.stats()
        if trace_on:
            tracer.finish(self.cycle)
        return SimulationResult(self.stats, self.config, len(self.trace))

    # Any candidate at or beyond the parked-entry sentinel means "no
    # scheduled event" (see _UNSCHEDULED): never jump to it.
    _NO_EVENT = 1 << 60

    def _advance_clock(self):
        """Jump the clock to just before the next possible event.

        Byte-identical to executing the skipped cycles one by one: during
        an eventless window no structure changes, so the only observable
        work a skipped cycle would have done is the rename stage's
        per-blocked-cycle stall accounting — and the *same* structural
        check keeps failing for the whole window, so its counter is
        batch-incremented by the window length instead.
        """
        cycle = self.cycle
        bound = self._next_event_bound(cycle)
        if bound <= cycle + 1:
            return
        counter = self._rename_stall_counter
        if counter is not None:
            # The decode head was renameable-but-blocked on every skipped
            # cycle; each would have counted one stall.
            stats = self.stats
            setattr(stats, counter,
                    getattr(stats, counter) + bound - cycle - 1)
        self.cycle = bound - 1  # the loop header increments

    def _next_event_bound(self, cycle):
        """The earliest cycle > *cycle* at which any stage might act.

        The bound may be conservative (too small merely costs an idle
        iteration) but never optimistic: every state change originates
        from one of the candidates below, and any event re-derives the
        bound on the following iteration.  Unpipelined-port busy windows
        need no candidate of their own: a port's ``busy_until`` equals
        its occupying µop's completion cycle, already in ``completions``.
        Side effect: records which rename stall counter (if any) fires on
        every skipped cycle, for _advance_clock's batch accounting.
        """
        self._rename_stall_counter = None
        imminent = cycle + 1
        bound = self._NO_EVENT
        completions = self.completions
        if completions:
            bound = completions[0][0]   # heap head is always > cycle here
        rob_entries = self.rob.entries
        if rob_entries:
            head = rob_entries[0]
            state = head.state
            if state is UopState.ELIMINATED:
                return imminent
            if state is UopState.DONE:
                ready = head.complete_cycle + 1
                if ready <= imminent:
                    return imminent
                if ready < bound:
                    bound = ready
        if self.iq:
            gate = self._iq_min_gate
            if gate <= imminent:
                return imminent
            if gate < bound:
                bound = gate
        span_queues = self._span_queues
        decode_queue = self.decode_queue
        if decode_queue:
            head = decode_queue[0]
            ready = head[0]
            if ready > cycle:
                if ready < bound:
                    bound = ready
            else:
                uop = self._uop_at(head[1]) if span_queues else head[1]
                counter = self._rename_block_probe(uop)
                if counter is None:
                    return imminent     # rename has work it can do
                # Structurally blocked: only a commit or issue event can
                # clear it, and those are already candidates above.
                self._rename_stall_counter = counter
        fetch_queue = self.fetch_queue
        if span_queues:
            decode_uops = self._decode_q_uops
            fetch_uops = self._fetch_q_uops
        else:
            decode_uops = len(decode_queue)
            fetch_uops = len(fetch_queue)
        if fetch_queue and decode_uops < self.decode_queue_cap:
            ready = fetch_queue[0][0]
            if ready <= imminent:
                return imminent
            if ready < bound:
                bound = ready
        if self.waiting_branch_seq is None \
                and self.fetch_index < len(self.trace) \
                and fetch_uops < self.config.fetch_queue:
            ready = self.fetch_stall_until
            if ready <= imminent:
                return imminent
            if ready < bound:
                bound = ready
        if bound >= self._NO_EVENT:
            return imminent  # nothing scheduled: deadlocked (watchdog sees it)
        return bound

    def _rename_block_probe(self, uop):
        """The stall counter a rename of *uop* would hit right now (or None).

        Must mirror _rename_dispatch's structural checks exactly, in
        order — it is the side-effect-free replica the event clock uses
        to account for skipped blocked cycles.
        """
        if len(self.rob.entries) >= self.rob.capacity:
            return "stall_rob_full"
        if uop.is_load and self.lsq.lq_full:
            return "stall_lq_full"
        if uop.is_store and self.lsq.sq_full:
            return "stall_sq_full"
        if len(self.iq) >= self.config.iq_entries:
            return "stall_iq_full"
        if not self.renamer.can_rename(uop):
            return "stall_no_phys_reg"
        return None

    def _deadlock_report(self, last_retire_cycle):
        head = self.rob.head()
        return (f"no commit for {self.cycle - last_retire_cycle} cycles "
                f"(last retire at cycle {last_retire_cycle}, "
                f"now {self.cycle}): "
                f"retired={self.stats.retired_uops}/{len(self.trace)} "
                f"head={head!r} state={head.state if head else None} "
                f"fetch_index={self.fetch_index} "
                f"waiting_branch={self.waiting_branch_seq} "
                f"iq={len(self.iq)} rob={len(self.rob)}")

    # ================================================================= commit
    def _commit(self):
        rob_entries = self.rob.entries
        if not rob_entries:
            return
        cycle = self.cycle
        done = UopState.DONE
        eliminated = UopState.ELIMINATED
        # Head pre-check before the hoists: on most cycles the head µop is
        # not yet retirable and the stage has nothing to do.
        head = rob_entries[0]
        state = head.state
        if state is done:
            if head.complete_cycle >= cycle:
                return
        elif state is not eliminated:
            return
        stats = self.stats
        entries_by_seq = self.entries_by_seq
        rat = self.rat
        vp_queue = self.vp_queue
        tracer = self.tracer
        trace_on = tracer.enabled
        for _ in range(self.config.commit_width):
            if not rob_entries:
                return
            entry = rob_entries[0]
            state = entry.state
            if state is done:
                if entry.complete_cycle >= cycle:
                    return
            elif state is not eliminated:
                return
            rob_entries.popleft()
            self._activity += 1
            entries_by_seq.pop(entry.seq, None)
            if trace_on:
                tracer.commit(entry, cycle)
            uop = entry.uop
            stats.retired_uops += 1
            if uop.is_last_uop:
                stats.retired_arch_insts += 1
            if uop.is_branch:
                stats.branches += 1
            if entry.elim_kind is not None:
                self._count_elimination(entry.elim_kind)
            if entry.move_width_blocked:
                stats.elim_move_width_blocked += 1
            if vp_queue is not None and uop.vp_elig:
                stats.vp_eligible += 1
                self._train_vp_at_commit(entry, uop)
            for arch_reg, _prev, new_name in entry.undo:
                rat.commit_and_drop(arch_reg, new_name)
            if uop.is_store:
                self._retire_store(uop, cycle)
            elif uop.is_load:
                self.lsq.remove_committed(uop.seq)

    def _commit_spans(self):
        """The batch engine's commit stage: retire the head run in one pass.

        Byte-identical accounting to :meth:`_commit` — the same entries
        retire in the same order with the same per-entry bookkeeping —
        but the µop classification reads the trace flags column (seq ==
        trace index in span mode) instead of dereferencing µop
        attributes, and the per-run counters (retired µops/insts,
        branches) are accumulated locally and batch-added once per call,
        the way the event clock already batches rename stalls.  Span
        mode implies the tracer is disabled, so the tracer hooks are
        dropped rather than guarded.
        """
        rob_entries = self.rob.entries
        if not rob_entries:
            return
        cycle = self.cycle
        done = UopState.DONE
        eliminated = UopState.ELIMINATED
        head = rob_entries[0]
        state = head.state
        if state is done:
            if head.complete_cycle >= cycle:
                return
        elif state is not eliminated:
            return
        stats = self.stats
        entries_pop = self.entries_by_seq.pop
        rat_commit = self.rat.commit_and_drop
        vp_queue = self.vp_queue
        flags_col = self._flags_col
        lsq_remove = self.lsq.remove_committed
        popleft = rob_entries.popleft
        retired = 0
        arch = 0
        branches = 0
        for _ in range(self.config.commit_width):
            if not rob_entries:
                break
            entry = rob_entries[0]
            state = entry.state
            if state is done:
                if entry.complete_cycle >= cycle:
                    break
            elif state is not eliminated:
                break
            popleft()
            seq = entry.seq
            entries_pop(seq, None)
            fl = flags_col[seq]
            retired += 1
            if fl & _F_IS_LAST_UOP:
                arch += 1
            if fl & _F_IS_BRANCH:
                branches += 1
            if entry.elim_kind is not None:
                self._count_elimination(entry.elim_kind)
            if entry.move_width_blocked:
                stats.elim_move_width_blocked += 1
            if vp_queue is not None and fl & _F_VP_ELIG:
                stats.vp_eligible += 1
                self._train_vp_at_commit(entry, entry.uop)
            for arch_reg, _prev, new_name in entry.undo:
                rat_commit(arch_reg, new_name)
            if fl & _F_IS_STORE:
                self._retire_store(entry.uop, cycle)
            elif fl & _F_IS_LOAD:
                lsq_remove(seq)
        if retired:
            self._activity += retired
            stats.retired_uops += retired
            stats.retired_arch_insts += arch
            stats.branches += branches

    # -- store-entry bookkeeping (shared by commit and squash) ------------------
    def _release_store_tracking(self, pc, seq):
        """Drop a store from the Store Sets LFST and the in-flight map.

        The single place both the retire and squash paths go through, so
        their bookkeeping cannot drift.
        """
        self.store_sets.store_done(pc, seq)
        self.store_entries.pop(seq, None)

    def _retire_store(self, uop, cycle):
        """Commit a store: write memory, then release its tracking."""
        self.memory.store(uop.addr, cycle, pc=uop.pc)
        self._release_store_tracking(uop.pc, uop.seq)
        self.lsq.remove_committed(uop.seq)

    def _squash_store(self, entry):
        """Squash an in-flight store (its LSQ entry dies with the squash)."""
        self._release_store_tracking(entry.uop.pc, entry.seq)

    def _count_elimination(self, kind):
        stats = self.stats
        if kind == "zero_idiom":
            stats.elim_zero_idiom += 1
        elif kind == "one_idiom":
            stats.elim_one_idiom += 1
        elif kind == "move":
            stats.elim_move += 1
        elif kind == "nine_bit_idiom":
            stats.elim_nine_bit_idiom += 1
        elif kind == "spsr":
            stats.elim_spsr += 1

    def _train_vp_at_commit(self, entry, uop):
        vp_entry = self.vp_queue.pop(uop.seq)
        if vp_entry is None:
            return
        if vp_entry.used:
            # A used-and-wrong prediction can never reach commit: it
            # flushes at validation.  So this one was correct.
            self.stats.vp_correct_used += 1
            if self.tracer.enabled:
                self.tracer.event(self.cycle, "vp_commit_correct",
                                  seq=uop.seq, pc=uop.pc,
                                  predicted=vp_entry.predicted)
        self.vtage.train(uop.pc, uop.result, vp_entry.info)

    # ================================================================ complete
    def _complete(self):
        cycle = self.cycle
        completions = self.completions
        if not completions or completions[0][0] > cycle:
            return
        tracer = self.tracer
        trace_on = tracer.enabled
        heappop = heapq.heappop
        stats = self.stats
        name_kind = self._name_kind
        vp_queue = self.vp_queue
        vp_get = vp_queue.get if vp_queue is not None else None
        issued = UopState.ISSUED
        done = UopState.DONE
        while completions and completions[0][0] <= cycle:
            _, _tiebreak, entry, token = heappop(completions)
            self._activity += 1
            if entry.state is not issued \
                    or entry.issue_token != token:
                continue  # squashed or replayed while in flight
            entry.state = done
            if trace_on:
                tracer.writeback(entry, cycle)
            uop = entry.uop
            # PRF write accounting (Fig. 6): one write per real dest; wide
            # GVP predictions were additionally written at rename.
            dest_name = entry.dest_name
            if dest_name is not None:
                kind = name_kind[dest_name]
                if kind is None:
                    kind = self._classify_name(dest_name)
                if uop.dst_is_fp:
                    if kind == 2:
                        stats.fp_prf_writes += 1
                elif kind == 1:
                    stats.int_prf_writes += 1
            # In-place value-prediction validation at the functional unit.
            if vp_get is not None:
                vp_entry = vp_get(uop.seq)
                if vp_entry is not None:
                    vp_entry.correct = vp_entry.predicted == uop.result
                    if vp_entry.used and not vp_entry.correct:
                        self._value_mispredict(entry, vp_entry)
                        continue
            if self.waiting_branch_seq == uop.seq:
                self._resume_fetch_after(entry.complete_cycle)

    def _resume_fetch_after(self, resolve_cycle):
        self.waiting_branch_seq = None
        self.fetch_stall_until = max(self.fetch_stall_until,
                                     resolve_cycle + self.config.redirect_penalty)

    # ----------------------------------------------------------------- flushes
    def _value_mispredict(self, entry, vp_entry):
        """§3.4: flush including the mispredicted instruction + silencing.

        Under ``vp_recovery == "replay"``, a misprediction whose value had
        *real storage* (a wide GVP prediction written to a physical
        register) is instead repaired in place and its consumers replayed
        (§2.2).  MVP/TVP inline predictions have nowhere to put the
        correct value, so they always take the flush path — the paper's
        central recovery asymmetry.
        """
        stats = self.stats
        stats.vp_incorrect_used += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(self.cycle, "vp_mispredict", seq=entry.seq,
                         pc=entry.uop.pc, predicted=vp_entry.predicted,
                         actual=entry.uop.result)
        # Train immediately so the refetched/replayed instance sees the
        # truth, then silence so it is not value predicted again.
        self.vtage.train(entry.uop.pc, entry.uop.result, vp_entry.info)
        self.vp_queue.pop(entry.seq)
        if self.config.vp_recovery == "replay" \
                and entry.dest_name is not None \
                and self.int_prf.owns(entry.dest_name) \
                and self._selective_replay(entry):
            self.vp_queue.silence(self.cycle)
            return
        stats.vp_flushes += 1
        if tracer.enabled:
            tracer.event(self.cycle, "vp_flush", seq=entry.seq,
                         pc=entry.uop.pc)
        self._flush_from(entry.seq, entry.complete_cycle,
                         reason="vp_mispredict")
        self.vp_queue.silence(self.cycle)

    def _selective_replay(self, offender):
        """Re-execute the offender's transitive consumers in place.

        Returns False (caller falls back to flush) when a tainted consumer
        was eliminated at rename — its *rename decision* depended on the
        wrong value and replay cannot re-rename.
        """
        correction_cycle = self.cycle + 2  # broadcast the corrected value
        tracer = self.tracer
        trace_on = tracer.enabled
        tainted_names = {offender.dest_name}
        to_replay = []
        for candidate in self.rob.entries:
            if candidate.seq <= offender.seq:
                continue
            if not any(name in tainted_names
                       for name in candidate.src_names):
                continue
            if candidate.state is UopState.ELIMINATED:
                return False  # wrong rename decision: must flush
            if candidate.dest_name is not None \
                    and not candidate.vp_used:
                tainted_names.add(candidate.dest_name)
            if candidate.flags_name is not None:
                tainted_names.add(candidate.flags_name)
            to_replay.append(candidate)
        # Correct the offender's register.
        self.int_prf.set_ready(offender.dest_name, correction_cycle)
        waiters = self._waiters.pop(offender.dest_name, None)
        if waiters:
            self._wake_waiters(waiters, correction_cycle)
        self.stats.int_prf_writes += 1   # the correction write
        offender.complete_cycle = max(offender.complete_cycle,
                                      correction_cycle)
        # Reset every tainted consumer back to the waiting state.
        lq_of = self.lsq.load_of
        for candidate in to_replay:
            if candidate.state is UopState.ISSUED:
                candidate.issue_token += 1  # cancel the in-flight event
            candidate.state = UopState.WAITING
            candidate.wakeup_known = False
            # Forget any parked/cached wakeup state: revert the scan key
            # to the dispatch floor so the scheduler reconsiders it, and
            # drop out of counter mode — pending counts taken at dispatch
            # are stale after a replay; the reference rescan protocol
            # re-derives readiness from the PRF.
            candidate.pending_count = -1
            candidate.select_gate = candidate.issue_ready_cycle
            if candidate.select_gate < self._iq_min_gate:
                self._iq_min_gate = candidate.select_gate
            candidate.complete_cycle = None
            if candidate.dest_name is not None and not candidate.vp_used:
                prf = self.fp_prf if candidate.uop.dst_is_fp else self.int_prf
                prf.set_ready(candidate.dest_name, self._UNSCHEDULED << 1)
            if candidate.flags_name is not None:
                self.flags_prf.set_ready(candidate.flags_name,
                                         self._UNSCHEDULED << 1)
            if candidate.uop.is_load:
                lq_entry = lq_of(candidate.seq)
                if lq_entry is not None:
                    lq_entry.executed_cycle = None
            if candidate.uop.is_store:
                store = self.store_entries.get(candidate.seq)
                if store is not None:
                    store.executed_cycle = None
                    store.data_ready_cycle = None
            if not candidate.in_iq:
                candidate.in_iq = True
                self.iq.append(candidate)
                self._iq_len += 1
                self.stats.iq_dispatched += 1   # replay re-dispatch
                if trace_on:
                    tracer.dispatch(candidate, self.cycle)
        if to_replay:
            self.iq.sort(key=_seq_of)           # keep oldest-first select
            if self._iq_wakeups is not None:
                # Replayed entries may sit in stale-gate park buckets:
                # hand them to the batch scheduler's wakeup list so they
                # rejoin the active scan immediately.
                self._iq_wakeups.extend(to_replay)
        self.stats.vp_replays += 1
        self.stats.replayed_uops += len(to_replay)
        if trace_on:
            tracer.event(self.cycle, "vp_replay", seq=offender.seq,
                         pc=offender.uop.pc, replayed=len(to_replay))
        return True

    def _memory_order_violation(self, store_entry, load_entry):
        stats = self.stats
        stats.store_set_violations += 1
        stats.memory_order_flushes += 1
        if self.tracer.enabled:
            self.tracer.event(self.cycle, "mem_order_flush",
                              store_seq=store_entry.seq,
                              load_seq=load_entry.seq,
                              store_pc=store_entry.rob_entry.uop.pc,
                              load_pc=load_entry.rob_entry.uop.pc)
        self.store_sets.train_violation(store_entry.rob_entry.uop.pc,
                                        load_entry.rob_entry.uop.pc)
        self._flush_from(load_entry.seq, self.cycle, reason="memory_order")

    def _flush_from(self, flush_seq, resolve_cycle, reason="flush"):
        """Squash every µop with seq >= flush_seq and refetch it."""
        tracer = self.tracer
        trace_on = tracer.enabled
        squashed = self.rob.squash_from(flush_seq, self.rat)
        for entry in squashed:
            self.entries_by_seq.pop(entry.seq, None)
            if entry.uop.is_store:
                self._squash_store(entry)
            # Resetting the state marks any in-flight completion stale.
            entry.state = UopState.WAITING
            entry.in_iq = False
            if trace_on:
                tracer.squash(entry.uop, self.cycle, reason)
        if trace_on:
            # µops still in the frontend queues die in the flush too.
            for _ready, uop in self.fetch_queue:
                if uop.seq >= flush_seq:
                    tracer.squash(uop, self.cycle, reason)
            for _ready, uop in self.decode_queue:
                if uop.seq >= flush_seq:
                    tracer.squash(uop, self.cycle, reason)
        self.iq = [e for e in self.iq if e.seq < flush_seq]
        if self._iq_wakeups is not None:
            self._iq_rebuild()
        self.lsq.squash_from(flush_seq)
        if self.vp_queue is not None:
            dropped = self.vp_queue.squash_younger(flush_seq)
            if dropped and hasattr(self.vtage, "abandon"):
                for vp_entry in dropped:
                    self.vtage.abandon(vp_entry.pc, vp_entry.info)
        if self._span_queues:
            # Spans cover [start, end) trace indices == seqs: truncate at
            # the flush point instead of filtering µop by µop.
            self.fetch_queue, self._fetch_q_uops = \
                _truncate_spans(self.fetch_queue, flush_seq)
            self.decode_queue, self._decode_q_uops = \
                _truncate_spans(self.decode_queue, flush_seq)
        else:
            self.fetch_queue = deque(
                item for item in self.fetch_queue if item[1].seq < flush_seq)
            self.decode_queue = deque(
                item for item in self.decode_queue if item[1].seq < flush_seq)
        self.fetch_index = min(self.fetch_index, flush_seq)
        if self.waiting_branch_seq is not None \
                and self.waiting_branch_seq >= flush_seq:
            self.waiting_branch_seq = None
        self.fetch_stall_until = max(self.fetch_stall_until,
                                     resolve_cycle + self.config.redirect_penalty)

    # =================================================================== issue
    def _issue(self):
        iq = self.iq
        if not iq:
            return
        cycle = self.cycle
        # ``_iq_min_gate`` is a lower bound on every IQ entry's gate: when
        # it is in the future, no entry is selectable and the whole scan
        # is skipped.  The bound is lowered at every gate-lowering site
        # (dispatch, wakeup-CAM pop, replay reset) and raised back to the
        # exact minimum by any completed scan that issues nothing — so a
        # stale-low bound costs one fruitless scan, never a missed issue.
        if self._iq_min_gate > cycle:
            return
        issue_budget = self.config.issue_width
        issued = 0
        fus_started = False
        next_min = self._UNSCHEDULED << 2
        sources_ready = self._sources_ready
        try_issue = self.fus.try_issue
        for entry in iq:
            # ``select_gate`` folds the dispatch floor, the cached wakeup
            # time and the parked-on-unissued-producer state into one
            # integer, so the common skip is a single comparison.
            gate = entry.select_gate
            if gate > cycle:
                if gate < next_min:
                    next_min = gate
                continue
            if entry.wakeup_known:
                if entry.wait_store_seq is not None \
                        and not sources_ready(entry, cycle):
                    if gate < next_min:
                        next_min = gate   # store pending: rescan each cycle
                    continue
            elif not sources_ready(entry, cycle):
                gate = entry.select_gate  # updated: wakeup time or parked
                if gate < next_min:
                    next_min = gate
                continue
            if not fus_started:
                # Port state is only reset on cycles with a candidate.
                fus_started = True
                self.fus.new_cycle(cycle)
            if not try_issue(entry.uop.cls, cycle):
                if gate < next_min:
                    next_min = gate       # port conflict: retry next cycle
                continue
            self._execute(entry, cycle)
            issued += 1
            if issued >= issue_budget:
                break
        if issued:
            # Compact in place (a memory-order flush inside _execute may
            # have replaced self.iq, so re-read it).
            iq = self.iq
            write = 0
            waiting = UopState.WAITING
            for entry in iq:
                if entry.state is waiting and entry.in_iq:
                    iq[write] = entry
                    write += 1
            del iq[write:]
        else:
            # Complete fruitless scan: every entry was visited, so
            # next_min is the exact minimum gate and the bound is tight.
            self._iq_min_gate = next_min

    _UNSCHEDULED = 1 << 60  # producers not yet issued report ~infinity

    def _issue_spans(self):
        """The batch engine's event-driven issue stage.

        Same selection semantics as :meth:`_issue`, but instead of
        scanning every IQ entry each productive cycle, entries whose
        ``select_gate`` is in the future are parked in per-cycle buckets
        (``_iq_parked`` + ``_iq_park_heap``) and entries parked on
        unissued producers leave the scan entirely until the wakeup CAM
        pops them back via ``_iq_wakeups``.  Only the *active* subset —
        entries that could be selected now — is walked, in age order, so
        memory-bound phases stop paying O(IQ) per cycle.
        """
        if not self.iq:
            return
        cycle = self.cycle
        if self._iq_min_gate > cycle:
            return
        active = self._iq_active
        heap = self._iq_park_heap
        parked = self._iq_parked
        wakeups = self._iq_wakeups
        waiting = UopState.WAITING
        dirty = False
        # Un-park buckets that have come due, and merge external wakeups.
        # The iq_active flag dedups entries reachable both ways (a stale
        # bucket registration plus a CAM wakeup); dead entries (issued or
        # squashed since parking) are dropped here, exactly the entries
        # the reference scan's compaction would already have removed.
        if heap and heap[0] <= cycle:
            dirty = True
            while heap and heap[0] <= cycle:
                for entry in parked.pop(heapq.heappop(heap)):
                    if not entry.iq_active and entry.in_iq \
                            and entry.state is waiting:
                        entry.iq_active = True
                        active.append(entry)
        if wakeups:
            dirty = True
            for entry in wakeups:
                if not entry.iq_active and entry.in_iq \
                        and entry.state is waiting:
                    entry.iq_active = True
                    active.append(entry)
            del wakeups[:]
        if dirty and len(active) > 1:
            active.sort(key=_seq_of)   # keep oldest-first selection
        if not active:
            # Nothing selectable; the park-heap head is a sound lower
            # bound over every parked entry (CAM-parked entries are
            # woken explicitly, the shared sites lower the bound then).
            self._iq_min_gate = heap[0] if heap else (self._UNSCHEDULED << 2)
            return
        issue_budget = self.config.issue_width
        issued = 0
        fus_started = False
        next_min = self._UNSCHEDULED << 2
        unscheduled = self._UNSCHEDULED
        sources_ready = self._sources_ready
        try_issue = self.fus.try_issue
        # The scan rebuilds the active list as it goes: entries that stay
        # selectable are appended to ``keep``; future-gated entries are
        # parked in their gate's bucket as they are visited.  A mid-scan
        # memory-order flush (inside _execute) rebuilds the scheduler
        # structures; the ``self._iq_active is active`` identity checks
        # make parking and the final install void on the stale snapshot,
        # while the visit semantics over it stay those of the reference.
        keep = []
        keep_append = keep.append
        pos = 0
        for pos, entry in enumerate(active):
            gate = entry.select_gate
            if gate > cycle:
                if gate < next_min:
                    next_min = gate
                if self._iq_active is active:
                    entry.iq_active = False
                    if gate < unscheduled:
                        bucket = parked.get(gate)
                        if bucket is None:
                            parked[gate] = [entry]
                            heapq.heappush(heap, gate)
                        else:
                            bucket.append(entry)
                    # CAM-parked (gate == _UNSCHEDULED): leave the scan
                    # with no bucket; the producer's wakeup re-adds it.
                continue
            if entry.wakeup_known:
                if entry.wait_store_seq is not None \
                        and not sources_ready(entry, cycle):
                    if gate < next_min:
                        next_min = gate   # store pending: rescan each cycle
                    keep_append(entry)
                    continue
            elif not sources_ready(entry, cycle):
                gate = entry.select_gate  # updated: wakeup time or parked
                if gate < next_min:
                    next_min = gate
                if gate > cycle:
                    if self._iq_active is active:
                        entry.iq_active = False
                        if gate < unscheduled:
                            bucket = parked.get(gate)
                            if bucket is None:
                                parked[gate] = [entry]
                                heapq.heappush(heap, gate)
                            else:
                                bucket.append(entry)
                else:
                    keep_append(entry)
                continue
            if not fus_started:
                # Port state is only reset on cycles with a candidate.
                fus_started = True
                self.fus.new_cycle(cycle)
            if not try_issue(entry.uop.cls, cycle):
                if gate < next_min:
                    next_min = gate       # port conflict: retry next cycle
                keep_append(entry)
                continue
            entry.iq_active = False
            if entry.in_iq:
                self._iq_len -= 1
            self._execute(entry, cycle)
            issued += 1
            if issued >= issue_budget:
                break
        if self._iq_active is active:
            if issued >= issue_budget:
                keep.extend(active[pos + 1:])   # unvisited suffix stays
            self._iq_active = keep
        elif issued:
            # A mid-scan flush rebuilt the active list while this scan
            # kept issuing from its stale snapshot (reference semantics);
            # filter the rebuilt list so those entries aren't re-issued.
            rebuilt = self._iq_active
            write = 0
            for entry in rebuilt:
                if entry.iq_active and entry.in_iq \
                        and entry.state is waiting:
                    rebuilt[write] = entry
                    write += 1
                else:
                    entry.iq_active = False
            del rebuilt[write:]
        if issued:
            # ``self.iq`` is compacted lazily: ``_iq_len`` tracks the
            # live population (the dispatch stall check reads it), so the
            # full filter only runs once the dead slack builds up.
            iq = self.iq   # re-read: a flush may have replaced it
            if len(iq) - self._iq_len >= 24:
                write = 0
                for entry in iq:
                    if entry.state is waiting and entry.in_iq:
                        iq[write] = entry
                        write += 1
                del iq[write:]
        else:
            # Complete fruitless scan over the active set; parked entries
            # are bounded below by the park-heap head.
            if heap and heap[0] < next_min:
                next_min = heap[0]
            self._iq_min_gate = next_min

    def _iq_rebuild(self):
        """Reset the batch scheduler's index after a flush rebuilt the IQ.

        The lazily-compacted ``self.iq`` may still hold dead entries
        (issued before the flush), so the rebuilt active list filters by
        liveness — which also refreshes the exact ``_iq_len``.
        """
        waiting = UopState.WAITING
        active = self._iq_active = [
            e for e in self.iq if e.in_iq and e.state is waiting]
        for entry in active:
            entry.iq_active = True
        self._iq_len = len(active)
        self._iq_parked.clear()
        del self._iq_park_heap[:]
        del self._iq_wakeups[:]

    def _wake_waiters(self, waiters, ready):
        """Producer writeback popped *waiters* from the wakeup CAM.

        Two protocols coexist, selected per entry by ``pending_count``:

        * **legacy** (``-1``, the reference engine and replay-invalidated
          entries): revert the scan key to the dispatch floor so the
          scheduler re-probes the entry's sources (the rescan converges
          to the same gate — no counters are touched on the way).
        * **counter** (``>= 0``, batch-engine entries registered at
          dispatch): decrement the outstanding-source count and fold the
          producer's completion cycle into the cached wakeup time; the
          last producer computes the exact select gate and parks the
          entry straight in its gate bucket — no rescan at all.
        """
        wakeups = self._iq_wakeups
        min_gate = self._iq_min_gate
        for waiter in waiters:
            n = waiter.pending_count
            if n < 0:
                gate = waiter.issue_ready_cycle
                waiter.select_gate = gate
                if gate < min_gate:
                    min_gate = gate
                if wakeups is not None:
                    wakeups.append(waiter)
            elif n:
                waiter.pending_count = n - 1
                if ready > waiter.wakeup_cycle:
                    waiter.wakeup_cycle = ready
                if n == 1:
                    waiter.wakeup_known = True
                    gate = waiter.wakeup_cycle
                    if waiter.issue_ready_cycle > gate:
                        gate = waiter.issue_ready_cycle
                    waiter.select_gate = gate
                    if gate < min_gate:
                        min_gate = gate
                    if not waiter.iq_active:
                        self._park(waiter, gate)
            # n == 0: already woken via another registration — nothing to do.
        self._iq_min_gate = min_gate

    def _park(self, entry, gate):
        """Park *entry* in the batch scheduler's bucket for *gate*."""
        parked = self._iq_parked
        bucket = parked.get(gate)
        if bucket is None:
            parked[gate] = [entry]
            heapq.heappush(self._iq_park_heap, gate)
        else:
            bucket.append(entry)

    def _sources_ready(self, entry, cycle):
        # Readiness times become known when producers *issue* (their
        # completion cycle is fixed then), so the max over sources can be
        # cached — this turns the IQ scan from O(sources) per entry per
        # cycle into O(1) for entries whose wakeup time is known.
        if not entry.wakeup_known:
            latest = 0
            slots = self._ready_slots
            unscheduled = self._UNSCHEDULED
            for name in entry.src_names:
                slot = slots[name]
                if slot is None:
                    slot = self._resolve_ready_slot(name)
                ready = slot[0][slot[1]]
                if ready >= unscheduled:
                    # Producer unissued: park this entry in the wakeup
                    # CAM and skip it until the producer schedules.
                    entry.select_gate = unscheduled
                    waiters = self._waiters.get(name)
                    if waiters is None:
                        self._waiters[name] = [entry]
                    else:
                        waiters.append(entry)
                    return False
                if ready > latest:
                    latest = ready
            entry.wakeup_cycle = latest
            entry.wakeup_known = True
            entry.select_gate = latest
        if entry.wakeup_cycle > cycle:
            return False
        if entry.wait_store_seq is not None:
            store = self.store_entries.get(entry.wait_store_seq)
            if store is not None and store.executed_cycle is None:
                return False
            entry.wait_store_seq = None
        return True

    _ALWAYS_READY = ((0,), 0)  # slot for value-encoding/hardwired names

    def _resolve_ready_slot(self, name):
        """Bind *name* to its readiness storage once (then memoized)."""
        if name >= FLAGS_NAME_BASE:
            prf = self.flags_prf
        elif name >= FP_NAME_BASE:
            prf = self.fp_prf
        else:
            prf = self.int_prf
        slot = prf.ready_slot(name) or self._ALWAYS_READY
        self._ready_slots[name] = slot
        return slot

    def _classify_name(self, name):
        """0: not a PRF register, 1: INT PRF, 2: FP PRF (memoized)."""
        if name >= FLAGS_NAME_BASE:
            kind = 0
        elif name >= FP_NAME_BASE:
            kind = 2 if self.fp_prf.owns(name) else 0
        else:
            kind = 1 if self.int_prf.owns(name) else 0
        self._name_kind[name] = kind
        return kind

    def _ready_of(self, name):
        slot = self._ready_slots[name]
        if slot is None:
            slot = self._resolve_ready_slot(name)
        return slot[0][slot[1]]

    def _execute(self, entry, cycle):
        uop = entry.uop
        stats = self.stats
        stats.iq_issued += 1
        self._activity += 1
        if self.tracer.enabled:
            self.tracer.issue(entry, cycle)
        entry.state = UopState.ISSUED
        entry.in_iq = False
        name_kind = self._name_kind
        for name in entry.src_names:
            kind = name_kind[name]
            if kind is None:
                kind = self._classify_name(name)
            if kind == 1:
                stats.int_prf_reads += 1
            elif kind == 2:
                stats.fp_prf_reads += 1
        if uop.is_load:
            complete = self._execute_load(entry, cycle)
        elif uop.is_store:
            complete = cycle + 1
            store = self.store_entries.get(uop.seq)
            if store is not None:
                store.executed_cycle = complete
                store.data_ready_cycle = complete
                self._check_order_violation(store)
        else:
            latency = self.fus.latency_of(uop.cls, uop.op)
            complete = cycle + latency
        entry.complete_cycle = complete
        # Schedule readiness now that the completion cycle is known
        # (consumers may issue back-to-back via the bypass network).
        waiters_map = self._waiters
        if entry.dest_name is not None and not entry.vp_used:
            prf = self.fp_prf if uop.dst_is_fp else self.int_prf
            prf.set_ready(entry.dest_name, complete)
            waiters = waiters_map.pop(entry.dest_name, None)
            if waiters:
                self._wake_waiters(waiters, complete)
        if entry.flags_name is not None:
            self.flags_prf.set_ready(entry.flags_name, complete)
            waiters = waiters_map.pop(entry.flags_name, None)
            if waiters:
                self._wake_waiters(waiters, complete)
        # Dependence-adjacency writeback (batch engine): walk this
        # producer's precomputed consumer list and decrement each live
        # counter-mode consumer's outstanding-source count; the last
        # producer parks the consumer at its exact wakeup gate.  The
        # list covers only statically-analyzable edges — everything
        # else went through the wakeup CAM above.
        adj_off = self._dep_adj_off
        if adj_off is not None:
            seq = entry.seq
            a0 = adj_off[seq]
            a1 = adj_off[seq + 1]
            if a0 != a1:
                consumers = self._dep_adj_consumers
                entries_get = self.entries_by_seq.get
                min_gate = self._iq_min_gate
                for k in range(a0, a1):
                    consumer = entries_get(consumers[k])
                    if consumer is None:
                        continue        # squashed (or not yet renamed)
                    n = consumer.pending_count
                    if n <= 0:
                        continue        # legacy mode or replay-invalidated
                    consumer.pending_count = n - 1
                    if complete > consumer.wakeup_cycle:
                        consumer.wakeup_cycle = complete
                    if n == 1:
                        consumer.wakeup_known = True
                        gate = consumer.wakeup_cycle
                        if consumer.issue_ready_cycle > gate:
                            gate = consumer.issue_ready_cycle
                        consumer.select_gate = gate
                        if gate < min_gate:
                            min_gate = gate
                        if not consumer.iq_active:
                            self._park(consumer, gate)
                self._iq_min_gate = min_gate
        self._completion_counter += 1
        entry.issue_token += 1
        heapq.heappush(self.completions,
                       (complete, self._completion_counter, entry,
                        entry.issue_token))

    def _execute_load(self, entry, cycle):
        uop = entry.uop
        load = self._lq_entry_of(uop.seq)
        cache_ready = self.memory.load(uop.addr, cycle, pc=uop.pc)
        complete = cache_ready
        store = self.lsq.youngest_older_store_conflict(load) if load else None
        if store is not None and store.executed_cycle is not None:
            if store.contains(load):
                forward = max(cycle, store.data_ready_cycle) + \
                    self.config.store_forward_latency
                self.stats.store_forwards += 1
                complete = min(complete, forward)
            else:
                # Partial overlap: wait for the store data, then replay.
                complete = max(complete, store.data_ready_cycle +
                               self.config.store_forward_latency + 2)
        if load is not None:
            load.executed_cycle = cycle
        return complete

    def _lq_entry_of(self, seq):
        return self.lsq.load_of(seq)

    def _check_order_violation(self, store):
        victims = self.lsq.violating_loads(store)
        if not victims:
            return
        oldest = min(victims, key=lambda load: load.seq)
        self._memory_order_violation(store, oldest)

    # ================================================================== rename
    def _rename_dispatch(self):
        decode_queue = self.decode_queue
        if not decode_queue:
            return
        cycle = self.cycle
        # Cheap early-outs before the hoists: most cycles either have
        # nothing decoded yet or the head µop is still in flight.
        if decode_queue[0][0] > cycle:
            return
        cfg = self.config
        stats = self.stats
        rob = self.rob
        rob_entries = rob.entries
        rob_capacity = rob.capacity
        lsq = self.lsq
        renamer = self.renamer
        iq = self.iq
        iq_entries = cfg.iq_entries
        entries_by_seq = self.entries_by_seq
        tracer = self.tracer
        trace_on = tracer.enabled
        dispatch_ready = cycle + cfg.rename_to_dispatch + 1
        for _ in range(cfg.rename_width):
            if not decode_queue:
                return
            ready_cycle, uop = decode_queue[0]
            if ready_cycle > cycle:
                return
            if len(rob_entries) >= rob_capacity:
                stats.stall_rob_full += 1
                return
            if uop.is_load and lsq.lq_full:
                stats.stall_lq_full += 1
                return
            if uop.is_store and lsq.sq_full:
                stats.stall_sq_full += 1
                return
            if len(iq) >= iq_entries:
                stats.stall_iq_full += 1
                return
            if not renamer.can_rename(uop):
                stats.stall_no_phys_reg += 1
                return
            decode_queue.popleft()
            self._activity += 1
            entry = RobEntry(uop.seq, uop)
            outcome = renamer.rename(entry, cycle)
            rob_entries.append(entry)   # capacity checked above (rob.push)
            entries_by_seq[uop.seq] = entry
            if trace_on:
                tracer.rename(entry, cycle)
            if outcome.eliminated:
                if trace_on:
                    tracer.event(cycle, "elim", seq=uop.seq, pc=uop.pc,
                                 elim_kind=entry.elim_kind,
                                 dest_name=entry.dest_name)
                if self.elim_audit is not None:
                    self.elim_audit.check(uop, entry.elim_kind)
                if outcome.resolved_branch_taken is not None:
                    stats.spsr_resolved_branches += 1
                    if trace_on:
                        tracer.event(cycle, "spsr_branch_resolved",
                                     seq=uop.seq, pc=uop.pc,
                                     taken=outcome.resolved_branch_taken)
                    if self.waiting_branch_seq == uop.seq:
                        self._resume_fetch_after(cycle)
                continue
            if entry.vp_used:
                stats.vp_predicted_used += 1
                if trace_on:
                    tracer.event(cycle, "vp_used", seq=uop.seq, pc=uop.pc,
                                 predicted=entry.vp_predicted,
                                 dest_name=entry.dest_name)
            if uop.cls is ExecClass.NOP:
                entry.state = UopState.DONE
                entry.complete_cycle = cycle
                if trace_on:
                    tracer.writeback(entry, cycle)
                continue
            entry.issue_ready_cycle = dispatch_ready
            entry.select_gate = dispatch_ready
            entry.in_iq = True
            iq.append(entry)
            stats.iq_dispatched += 1
            if trace_on:
                tracer.dispatch(entry, cycle)
            if dispatch_ready < self._iq_min_gate:
                self._iq_min_gate = dispatch_ready
            if uop.is_load:
                lq_entry = LsqEntry(uop.seq, uop.addr, uop.size, entry)
                lsq.add_load(lq_entry)
                dep = self.store_sets.load_dependence(uop.pc)
                if dep is not None and dep in self.store_entries:
                    entry.wait_store_seq = dep
            elif uop.is_store:
                sq_entry = LsqEntry(uop.seq, uop.addr, uop.size, entry)
                lsq.add_store(sq_entry)
                self.store_entries[uop.seq] = sq_entry
                self.store_sets.store_renamed(uop.pc, uop.seq)

    # ================================================================== decode
    def _decode(self):
        fetch_queue = self.fetch_queue
        if not fetch_queue:
            return
        cycle = self.cycle
        # Cheap early-out before the hoists: the head µop is usually
        # still covering its fetch-to-decode latency.
        if fetch_queue[0][0] > cycle:
            return
        decode_queue = self.decode_queue
        rename_ready = cycle + self.config.decode_to_rename
        cap = self.decode_queue_cap
        moved = 0
        width = self.config.decode_width
        tracer = self.tracer
        trace_on = tracer.enabled
        while fetch_queue and moved < width and len(decode_queue) < cap:
            ready_cycle, uop = fetch_queue[0]
            if ready_cycle > cycle:
                return
            fetch_queue.popleft()
            self._activity += 1
            decode_queue.append((rename_ready, uop))
            if trace_on:
                tracer.decode(uop, cycle)
            moved += 1

    # =================================================================== fetch
    def _fetch(self):
        cycle = self.cycle
        cfg = self.config
        if cycle < self.fetch_stall_until or self.waiting_branch_seq is not None:
            return
        budget = cfg.fetch_width
        trace = self.trace
        trace_len = len(trace)
        fetch_queue = self.fetch_queue
        queue_cap = cfg.fetch_queue
        decode_ready = cycle + cfg.fetch_to_decode
        stats = self.stats
        vtage = self.vtage
        pending_predictions = self.pending_predictions
        tracer = self.tracer
        trace_on = tracer.enabled
        line_col = self._line_col
        flags_col = self._flags_col
        views = self._trace_views
        while budget > 0 and self.fetch_index < trace_len \
                and len(fetch_queue) < queue_cap:
            index = self.fetch_index
            uop = views[index]
            if uop is None:
                uop = trace[index]
            if line_col is not None:
                line = line_col[index]
                flags = flags_col[index]
                vp_elig = flags & _F_VP_ELIG
                is_branch = flags & _F_IS_BRANCH
            else:
                line = uop.pc >> _LINE_SHIFT
                vp_elig = uop.vp_elig
                is_branch = uop.is_branch
            if line != self.current_fetch_line:
                self.current_fetch_line = line
                ready = self.memory.ifetch(uop.pc, cycle)
                if ready > cycle + cfg.memory.l1i_latency:
                    self.fetch_stall_until = ready
                    return
            fetch_queue.append((decode_ready, uop))
            self.fetch_index = index + 1
            stats.fetched_uops += 1
            self._activity += 1
            budget -= 1
            if trace_on:
                tracer.fetch(uop, cycle)
            if vtage is not None and vp_elig:
                prediction = vtage.predict(uop.pc)
                pending_predictions[uop.seq] = prediction
                if trace_on:
                    tracer.event(cycle, "vp_predict", seq=uop.seq,
                                 pc=uop.pc, hit=prediction.hit,
                                 confident=prediction.confident,
                                 predicted=prediction.value)
            if is_branch:
                if not self._fetch_branch(uop, cycle, index):
                    return

    def _fetch_branch(self, uop, cycle, index):
        """Returns False when fetch must stop after this branch."""
        cfg = self.config
        if uop.seq not in self.branch_seen:
            self.branch_seen[uop.seq] = True
            kinds = self._branch_kinds
            if kinds is not None:
                kind = kinds[index]
                if uop.is_cond_branch:
                    # TAGE itself is precomputed away; the global history
                    # the value predictor folds over is replayed verbatim
                    # at the same fetch point the live path pushes it.
                    self.history.push(uop.taken)
            else:
                kind = self._predict_branch(uop)
        else:
            kind = _KIND_TAKEN if uop.taken else _KIND_FALL
        if kind == _KIND_MISPREDICT:
            self.stats.branch_mispredicts += 1
            if self.tracer.enabled:
                self.tracer.event(cycle, "branch_mispredict", seq=uop.seq,
                                  pc=uop.pc, taken=uop.taken)
            self.waiting_branch_seq = uop.seq
            return False
        if kind == _KIND_MISTARGET:
            self.stats.btb_mistargets += 1
            if self.tracer.enabled:
                self.tracer.event(cycle, "btb_mistarget", seq=uop.seq,
                                  pc=uop.pc)
            self.fetch_stall_until = cycle + 1 + cfg.mistarget_penalty
            return False
        if kind == _KIND_TAKEN:
            self.fetch_stall_until = cycle + 1 + cfg.taken_branch_penalty
            return False
        return True

    def _predict_branch(self, uop):
        """First-encounter prediction + training of the frontend structures."""
        return _predict_and_train(uop.pc, uop.taken, uop.target_pc,
                                  uop.is_cond_branch, uop.is_call,
                                  uop.is_return, uop.is_indirect,
                                  self.tage, self.btb, self.ras,
                                  self.indirect)

    # ================================================== span-batched frontend
    #
    # Batch-engine variants of fetch/decode/rename (installed by
    # _use_span_queues).  The frontend queues hold ``[ready, start, end)``
    # trace-index spans instead of per-µop tuples: fetch enqueues whole
    # same-line chunks in one append, decode moves µop *counts* by span
    # arithmetic, and rename walks the head span against the flag columns
    # and the precomputed eligibility gates.  µops are only materialized
    # at rename (and for branches at fetch) — byte-identical to the
    # reference stages, just batched.

    def _uop_at(self, index):
        uop = self._trace_views[index]
        if uop is None:
            uop = self.trace[index]
        return uop

    def _fetch_spans(self):
        cycle = self.cycle
        cfg = self.config
        if cycle < self.fetch_stall_until \
                or self.waiting_branch_seq is not None:
            return
        trace_len = len(self.trace)
        index = self.fetch_index
        budget = cfg.fetch_width
        room = cfg.fetch_queue - self._fetch_q_uops
        fetch_queue = self.fetch_queue
        decode_ready = cycle + cfg.fetch_to_decode
        line_col = self._line_col
        pc_col = self._pc_col
        flags_col = self._flags_col
        chunk_end = self._fetch_chunk_end
        vtage = self.vtage
        vp_next = self._vp_next
        pending_predictions = self.pending_predictions
        fetched = 0
        while budget > 0 and room > 0 and index < trace_len:
            line = line_col[index]
            if line != self.current_fetch_line:
                # Same line-buffer protocol as the reference stage: the
                # line is installed even on a miss, so the retry after
                # the stall does not probe the I-cache again.
                self.current_fetch_line = line
                ready = self.memory.ifetch(pc_col[index], cycle)
                if ready > cycle + cfg.memory.l1i_latency:
                    self.fetch_stall_until = ready
                    break
            end = chunk_end[index]
            special = end == index
            if special:
                end = index + 1
            else:
                end = index + min(end - index, budget, room)
            tail = fetch_queue[-1] if fetch_queue else None
            if tail is not None and tail[2] == index \
                    and tail[0] == decode_ready:
                tail[2] = end
            else:
                fetch_queue.append([decode_ready, index, end])
            take = end - index
            fetched += take
            budget -= take
            room -= take
            start = index
            index = end
            if special:
                fl = flags_col[start]
                if vtage is not None and fl & _F_VP_ELIG:
                    # seq == start (checked in _use_span_queues).
                    prediction = vtage.predict(pc_col[start])
                    pending_predictions[start] = prediction
                if fl & _F_IS_BRANCH and not self._fetch_branch(
                        self._uop_at(start), cycle, start):
                    break
            elif vtage is not None:
                # Predict the chunk's VP-eligible µops in fetch order via
                # the skip-index; no branches inside a chunk, so the
                # predictor sees the same history the reference would.
                j = vp_next[start]
                while j < end:
                    pending_predictions[j] = vtage.predict(pc_col[j])
                    j = vp_next[j + 1]
        if fetched:
            self.fetch_index = index
            self._fetch_q_uops += fetched
            self.stats.fetched_uops += fetched
            self._activity += fetched

    def _decode_spans(self):
        fetch_queue = self.fetch_queue
        if not fetch_queue:
            return
        cycle = self.cycle
        if fetch_queue[0][0] > cycle:
            return
        decode_queue = self.decode_queue
        rename_ready = cycle + self.config.decode_to_rename
        budget = self.config.decode_width
        room = self.decode_queue_cap - self._decode_q_uops
        moved = 0
        while fetch_queue and budget > 0 and room > 0:
            head = fetch_queue[0]
            if head[0] > cycle:
                break
            start = head[1]
            end = start + min(head[2] - start, budget, room)
            if end == head[2]:
                fetch_queue.popleft()
            else:
                head[1] = end
            tail = decode_queue[-1] if decode_queue else None
            if tail is not None and tail[2] == start \
                    and tail[0] == rename_ready:
                tail[2] = end
            else:
                decode_queue.append([rename_ready, start, end])
            take = end - start
            moved += take
            budget -= take
            room -= take
        if moved:
            self._fetch_q_uops -= moved
            self._decode_q_uops += moved
            self._activity += moved

    def _rename_spans(self):
        decode_queue = self.decode_queue
        if not decode_queue:
            return
        cycle = self.cycle
        if decode_queue[0][0] > cycle:
            return
        cfg = self.config
        stats = self.stats
        rob = self.rob
        rob_entries = rob.entries
        rob_capacity = rob.capacity
        lsq = self.lsq
        renamer = self.renamer
        iq = self.iq
        iq_entries = cfg.iq_entries
        entries_by_seq = self.entries_by_seq
        flags_col = self._flags_col
        gates = self._rename_gates
        views = self._trace_views
        trace = self.trace
        dispatch_ready = cycle + cfg.rename_to_dispatch + 1
        nop = ExecClass.NOP
        dispatch_bucket = None
        slots = self._ready_slots
        resolve = self._resolve_ready_slot
        waiters_map = self._waiters
        unscheduled = self._UNSCHEDULED
        covered = self._dep_covered
        rat = renamer.rat
        spec = rat.spec
        rat_write = rat.write
        int_prf = renamer.int_prf
        fp_prf = renamer.fp_prf
        flags_prf = renamer.flags_prf
        lsq_loads = lsq.loads
        lsq_stores = lsq.stores
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        spec_get = spec.__getitem__
        # Per-µop bookkeeping accumulates in locals and is flushed once
        # after the loop (the early-outs below `break` instead of
        # returning): none of it is read mid-stage except _iq_len, which
        # the local mirrors.
        renamed = 0
        iq_len = self._iq_len
        iq_added = 0
        min_gate = self._iq_min_gate
        for _ in range(cfg.rename_width):
            if not decode_queue:
                break
            head = decode_queue[0]
            if head[0] > cycle:
                break
            index = head[1]
            fl = flags_col[index]
            if len(rob_entries) >= rob_capacity:
                stats.stall_rob_full += 1
                break
            if fl & _F_IS_LOAD and len(lsq_loads) >= lq_capacity:
                stats.stall_lq_full += 1
                break
            if fl & _F_IS_STORE and len(lsq_stores) >= sq_capacity:
                stats.stall_sq_full += 1
                break
            if iq_len >= iq_entries:
                stats.stall_iq_full += 1
                break
            uop = views[index]
            if uop is None:
                uop = trace[index]
            if not renamer.can_rename(uop):
                stats.stall_no_phys_reg += 1
                break
            if index + 1 == head[2]:
                decode_queue.popleft()
            else:
                head[1] = index + 1
            renamed += 1
            entry = RobEntry(index, uop)   # seq == index in span mode
            gate = gates[index]
            if gate == 0:
                # Inline plain rename: a zero gate is a static proof that
                # no decision path (DSR/SpSR/VP) can apply, so this is
                # Renamer.rename with every branch dead — same alloc /
                # RAT-write / undo-log order, minus the call overhead.
                entry.src_names = tuple(map(spec_get, uop.deps))
                dst = uop.dst
                if dst is not None:
                    prf = fp_prf if uop.dst_is_fp else int_prf
                    name = prf.alloc()
                    prf.set_width(name, uop.width)
                    entry.undo.append((dst, rat_write(dst, name), name))
                    entry.dest_name = name
                if uop.writes_flags:
                    name = flags_prf.alloc()
                    entry.undo.append((FLAGS, rat_write(FLAGS, name), name))
                    entry.flags_name = name
                rob_entries.append(entry)
                entries_by_seq[index] = entry
            elif gate == 4:
                # VP-only gate: the strength-reduction probe is statically
                # dead, so go straight to the predictor — the tail matches
                # Renamer.rename's post-reduction path exactly.
                entry.src_names = tuple(map(spec_get, uop.deps))
                if renamer._try_value_predict(entry, uop, cycle):
                    stats.vp_predicted_used += 1
                else:
                    dst = uop.dst
                    if dst is not None:
                        prf = fp_prf if uop.dst_is_fp else int_prf
                        name = prf.alloc()
                        prf.set_width(name, uop.width)
                        entry.undo.append((dst, rat_write(dst, name), name))
                        entry.dest_name = name
                if uop.writes_flags:
                    name = flags_prf.alloc()
                    entry.undo.append((FLAGS, rat_write(FLAGS, name), name))
                    entry.flags_name = name
                rob_entries.append(entry)
                entries_by_seq[index] = entry
            else:
                outcome = renamer.rename(entry, cycle, gate)
                rob_entries.append(entry)   # capacity checked above
                entries_by_seq[index] = entry
                if outcome.eliminated:
                    if self.elim_audit is not None:
                        self.elim_audit.check(uop, entry.elim_kind)
                    if outcome.resolved_branch_taken is not None:
                        stats.spsr_resolved_branches += 1
                        if self.waiting_branch_seq == index:
                            self._resume_fetch_after(cycle)
                    continue
                if entry.vp_used:
                    stats.vp_predicted_used += 1
            if uop.cls is nop:
                entry.state = UopState.DONE
                entry.complete_cycle = cycle
                continue
            entry.issue_ready_cycle = dispatch_ready
            entry.in_iq = True
            iq.append(entry)
            iq_len += 1
            iq_added += 1
            # Counter-based readiness: probe every source now — exactly
            # the probe the reference scan performs on first visit (the
            # probe touches no counters and wake-then-rescan converges
            # to the same gate, so moving it to dispatch is invisible).
            # Pending sources each contribute one outstanding count,
            # decremented at producer writeback: via the dependence
            # adjacency when the edge is statically covered, via the
            # wakeup CAM otherwise.  Entries with no pending source park
            # straight at their exact select gate and are never scanned
            # before it.
            latest = 0
            pending = 0
            cmask = covered[index] if covered is not None else 0
            pos = 0
            for name in entry.src_names:
                slot = slots[name]
                if slot is None:
                    slot = resolve(name)
                ready = slot[0][slot[1]]
                if ready >= unscheduled:
                    pending += 1
                    if not (cmask >> pos) & 1:
                        waiters = waiters_map.get(name)
                        if waiters is None:
                            waiters_map[name] = [entry]
                        else:
                            waiters.append(entry)
                elif ready > latest:
                    latest = ready
                pos += 1
            entry.wakeup_cycle = latest
            if pending:
                entry.pending_count = pending
                entry.select_gate = unscheduled
            else:
                entry.wakeup_known = True
                gate = dispatch_ready if dispatch_ready > latest else latest
                entry.select_gate = gate
                if gate < min_gate:
                    min_gate = gate
                if gate == dispatch_ready:
                    if dispatch_bucket is None:
                        parked = self._iq_parked
                        dispatch_bucket = parked.get(dispatch_ready)
                        if dispatch_bucket is None:
                            dispatch_bucket = parked[dispatch_ready] = []
                            heapq.heappush(self._iq_park_heap,
                                           dispatch_ready)
                    dispatch_bucket.append(entry)
                else:
                    self._park(entry, gate)
            if fl & _F_IS_LOAD:
                lq_entry = LsqEntry(index, uop.addr, uop.size, entry)
                lsq.add_load(lq_entry)
                dep = self.store_sets.load_dependence(uop.pc)
                if dep is not None and dep in self.store_entries:
                    entry.wait_store_seq = dep
            elif fl & _F_IS_STORE:
                sq_entry = LsqEntry(index, uop.addr, uop.size, entry)
                lsq.add_store(sq_entry)
                self.store_entries[index] = sq_entry
                self.store_sets.store_renamed(uop.pc, index)
        if renamed:
            self._decode_q_uops -= renamed
            self._activity += renamed
            self._iq_len += iq_added
            stats.iq_dispatched += iq_added
        if min_gate < self._iq_min_gate:
            self._iq_min_gate = min_gate


def _truncate_spans(queue, flush_seq):
    """Drop/trim spans at a flush point; returns (queue, surviving µops)."""
    kept = deque()
    uops = 0
    for span in queue:
        if span[1] >= flush_seq:
            continue
        if span[2] > flush_seq:
            span[2] = flush_seq
        kept.append(span)
        uops += span[2] - span[1]
    return kept, uops


def simulate(program_or_trace, config=None, max_instructions=50_000):
    """Convenience wrapper: emulate (if needed) then run the timing model.

    Accepts an assembled :class:`~repro.isa.program.Program` or a
    pre-computed µop trace list.
    """
    if isinstance(program_or_trace, list):
        trace = program_or_trace
    else:
        from repro.emulator.trace import trace_program

        trace, _ = trace_program(program_or_trace,
                                 max_instructions=max_instructions)
    model = CpuModel(trace, config)
    return model.run()
