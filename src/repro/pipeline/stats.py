"""Statistics collected by one simulation run.

Everything the paper's figures need lives here: IPC (in *architectural*
instructions per cycle, like the paper), the µop expansion ratio (Fig. 2),
VP coverage/accuracy (§6.1), the rename-elimination breakdown (Fig. 4) and
the activity proxies (Fig. 6: INT PRF reads/writes, IQ dispatched/issued).
"""

from dataclasses import dataclass, field


@dataclass
class PipelineStats:
    """Flat counter bag with derived metrics as properties."""

    cycles: int = 0
    retired_arch_insts: int = 0
    retired_uops: int = 0
    # Fetch / branches.
    fetched_uops: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    btb_mistargets: int = 0
    spsr_resolved_branches: int = 0
    # Rename eliminations (counted over retired µops, like the paper's
    # "fraction of dynamic instructions eliminated at rename").
    elim_zero_idiom: int = 0
    elim_one_idiom: int = 0
    elim_move: int = 0
    elim_move_width_blocked: int = 0   # the "non-ME move" bars of Fig. 4
    elim_nine_bit_idiom: int = 0
    elim_spsr: int = 0
    # Value prediction.
    vp_eligible: int = 0
    vp_predicted_used: int = 0
    vp_correct_used: int = 0
    vp_incorrect_used: int = 0
    vp_flushes: int = 0
    vp_replays: int = 0                # selective-replay recoveries (GVP)
    replayed_uops: int = 0             # consumers re-executed by replays
    vp_not_representable: int = 0      # confident but outside flavor range
    vp_phys_reg_predictions: int = 0   # GVP wide values needing a register
    # §3.6: value-predicted loads must carry acquire semantics under the
    # ARMv8 memory model (single-core here, so this is bookkeeping only).
    vp_loads_marked_acquire: int = 0
    # Memory ordering.
    store_set_violations: int = 0
    memory_order_flushes: int = 0
    store_forwards: int = 0
    # Activity proxies (Fig. 6).
    int_prf_reads: int = 0
    int_prf_writes: int = 0
    fp_prf_reads: int = 0
    fp_prf_writes: int = 0
    iq_dispatched: int = 0
    iq_issued: int = 0
    # Resource stall cycles (diagnostics).
    stall_rob_full: int = 0
    stall_iq_full: int = 0
    stall_lq_full: int = 0
    stall_sq_full: int = 0
    stall_no_phys_reg: int = 0
    # Memory system snapshot (filled at the end of the run).
    memory: dict = field(default_factory=dict)

    @classmethod
    def counter_names(cls):
        """The declared counter schema: every int field, in declaration
        order.  The determinism lint (DET004) rejects increments of any
        stats attribute not listed here."""
        return tuple(name for name, f in cls.__dataclass_fields__.items()
                     if f.type is int or f.type == "int")

    # -- derived -------------------------------------------------------------------
    @property
    def ipc(self):
        """Architectural instructions per cycle (the paper's IPC)."""
        return self.retired_arch_insts / self.cycles if self.cycles else 0.0

    @property
    def upc(self):
        """µops per cycle."""
        return self.retired_uops / self.cycles if self.cycles else 0.0

    @property
    def expansion_ratio(self):
        """µops per architectural instruction (Fig. 2 bars)."""
        if not self.retired_arch_insts:
            return 0.0
        return self.retired_uops / self.retired_arch_insts

    @property
    def vp_coverage(self):
        """#correct_used / #VP-eligible (the paper's coverage metric)."""
        if not self.vp_eligible:
            return 0.0
        return self.vp_correct_used / self.vp_eligible

    @property
    def vp_accuracy(self):
        """#correct_used / (#correct_used + #incorrect_used)."""
        used = self.vp_correct_used + self.vp_incorrect_used
        return self.vp_correct_used / used if used else 0.0

    @property
    def branch_mpki(self):
        """Branch mispredicts per kilo (architectural) instruction."""
        if not self.retired_arch_insts:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.retired_arch_insts

    def elimination_fractions(self):
        """Fig. 4: per-category eliminated fraction of retired µops."""
        total = max(self.retired_uops, 1)
        return {
            "zero_idiom": 100.0 * self.elim_zero_idiom / total,
            "one_idiom": 100.0 * self.elim_one_idiom / total,
            "move": 100.0 * self.elim_move / total,
            "nine_bit_idiom": 100.0 * self.elim_nine_bit_idiom / total,
            "spsr": 100.0 * self.elim_spsr / total,
            "non_me_move": 100.0 * self.elim_move_width_blocked / total,
        }

    def activity(self):
        """Fig. 6 raw activity counters."""
        return {
            "int_prf_reads": self.int_prf_reads,
            "int_prf_writes": self.int_prf_writes,
            "iq_dispatched": self.iq_dispatched,
            "iq_issued": self.iq_issued,
        }
