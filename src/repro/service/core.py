"""The job engine: specs, dedupe, event feeds, crash recovery.

:class:`JobManager` is the whole service minus the socket — the HTTP
layer (:mod:`repro.service.http`) and the in-process facade
(:func:`repro.api.submit` and friends) are both thin shims over it.

The amortization ladder one submission walks, cheapest rung first:

1. **in-flight dedupe** — an active job with the same content hash
   absorbs the submission (N concurrent clients, one execution);
2. **the report cache** — a finished result stored under the job key
   (which folds in the code version) completes the job instantly with
   zero simulations;
3. **execution** — ``api.sweep()``/``api.explore()`` on a worker
   thread, which itself resolves every point through the simulation
   cache and the sweep journal before simulating anything.

The journal path is a pure function of the job spec, so a service
killed mid-sweep and restarted resumes exactly where the fsync'd
journal ends and the merged result is byte-identical to an
uninterrupted run — the registry (:mod:`repro.service.jobs`) only
remembers *which* jobs to resubmit, never their data.
"""

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.envelope import canonical_json, request_fingerprint
from repro.harness.cache import (ReportCache, SimulationCache,
                                 code_version_hash)
from repro.harness.orchestrator import default_journal_path
from repro.observability.sweep import SweepEventLog
from repro.service.jobs import JobRegistry

__all__ = ["Job", "JobManager", "JobSpec", "ServiceError"]

_STATES = ("queued", "running", "done", "failed")


class ServiceError(ValueError):
    """A request the service rejects (HTTP 400): bad spec, bad names."""


class JobNotFound(KeyError):
    """No such job key (HTTP 404)."""


class JobFailed(RuntimeError):
    """The job ran and failed; ``str(exc)`` is the recorded error."""


@dataclass(frozen=True)
class JobSpec:
    """One content-hashed experiment request, validated at construction.

    Build through :meth:`sweep` / :meth:`explore` (or :meth:`from_dict`
    for wire payloads): they normalize the request — workloads resolve
    to concrete suite names, an explore budget of 0 becomes the space
    size — so two spellings of the same experiment hash identically and
    coalesce into one job.
    """

    kind: str                        # "sweep" | "explore"
    workloads: Tuple[str, ...]
    instructions: Optional[int] = None
    configs: Tuple[str, ...] = ()    # sweep only
    space: str = ""                  # explore only: a built-in space name
    strategy: str = ""
    seed: int = 1
    max_points: int = 0

    @classmethod
    def sweep(cls, workloads=None, configs=None, instructions=None):
        if configs is None:
            configs = ("baseline", "mvp", "tvp", "gvp")
        config_names = _normalize_names(configs, "configs")
        if not config_names:
            raise ServiceError("a sweep needs at least one config")
        from repro.harness.runner import ExperimentRunner

        for name in config_names:
            try:
                ExperimentRunner.config(name)
            except KeyError as exc:
                raise ServiceError(str(exc)) from None
        return cls(kind="sweep", workloads=_resolve_workloads(workloads),
                   configs=config_names,
                   instructions=_normalize_budget(instructions))

    @classmethod
    def explore(cls, space="smoke", strategy="grid", seed=1, max_points=0,
                workloads=None, instructions=None):
        from repro.dse.space import get_space, space_names
        from repro.dse.strategies import strategy_names

        space = str(space)
        if space not in space_names():
            raise ServiceError(f"unknown space {space!r} "
                               f"(choose from {space_names()})")
        strategy = str(strategy)
        if strategy not in strategy_names():
            raise ServiceError(f"unknown strategy {strategy!r} "
                               f"(choose from {strategy_names()})")
        size = get_space(space).size()
        max_points = int(max_points)
        max_points = size if max_points <= 0 else min(max_points, size)
        return cls(kind="explore", workloads=_resolve_workloads(workloads),
                   instructions=_normalize_budget(instructions),
                   space=space, strategy=strategy, seed=int(seed),
                   max_points=max_points)

    def fingerprint(self):
        """The request-identity hash; what submissions dedupe on.

        For explorations this matches
        :meth:`repro.dse.result.ExploreResult.fingerprint` exactly, so
        a job's stored payload carries the same fingerprint the spec
        hashed to.
        """
        if self.kind == "sweep":
            from repro.api import sweep_fingerprint

            return sweep_fingerprint(self.workloads, self.configs,
                                     self.instructions)
        from repro.dse.space import get_space

        return request_fingerprint(
            "explore", space=get_space(self.space).fingerprint(),
            strategy=self.strategy, seed=self.seed,
            max_points=self.max_points, workloads=list(self.workloads),
            instructions=self.instructions)

    def job_key(self):
        """The job identity: request fingerprint x simulator sources.

        Folding in the code version means an edited simulator never
        serves a stale cached result — the same request simply becomes
        a fresh job under a fresh key.
        """
        blob = f"{self.kind}:{self.fingerprint()}:{code_version_hash()}"
        return (self.kind + "-"
                + hashlib.sha256(blob.encode()).hexdigest()[:20])

    def journal_path(self, cache_dir):
        """Where this job's sweep journal lives — a pure function of the
        spec, so a restarted service resumes its predecessor's file."""
        if self.kind != "sweep":
            return None
        return default_journal_path(cache_dir, self.workloads,
                                    self.instructions,
                                    "service:" + ",".join(self.configs))

    def to_dict(self):
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        payload = {"kind": self.kind, "workloads": list(self.workloads),
                   "instructions": self.instructions}
        if self.kind == "sweep":
            payload["configs"] = list(self.configs)
        else:
            payload.update({"space": self.space, "strategy": self.strategy,
                            "seed": self.seed,
                            "max_points": self.max_points})
        return payload

    @classmethod
    def from_dict(cls, payload):
        if not isinstance(payload, dict):
            raise ServiceError("job spec must be a JSON object")
        kind = payload.get("kind", "sweep")
        if kind == "sweep":
            return cls.sweep(workloads=payload.get("workloads"),
                             configs=payload.get("configs"),
                             instructions=payload.get("instructions"))
        if kind == "explore":
            return cls.explore(space=payload.get("space", "smoke"),
                               strategy=payload.get("strategy", "grid"),
                               seed=payload.get("seed", 1),
                               max_points=payload.get("max_points", 0),
                               workloads=payload.get("workloads"),
                               instructions=payload.get("instructions"))
        raise ServiceError(f"unknown job kind {kind!r}")


def _normalize_names(names, what):
    if isinstance(names, str):
        names = [part.strip() for part in names.split(",") if part.strip()]
    try:
        return tuple(str(name) for name in names)
    except TypeError:
        raise ServiceError(f"{what} must be a list of names") from None


def _resolve_workloads(workloads):
    from repro.workloads import get_workload, suite

    if workloads is None:
        return tuple(w.name for w in suite())
    names = _normalize_names(workloads, "workloads")
    if not names:
        raise ServiceError("name at least one workload (or omit for "
                           "the whole suite)")
    for name in names:
        try:
            get_workload(name)
        except KeyError as exc:
            raise ServiceError(str(exc)) from None
    return names


def _normalize_budget(instructions):
    if instructions is None:
        return None
    instructions = int(instructions)
    if instructions < 1:
        raise ServiceError("instructions must be >= 1")
    return instructions


class Job:
    """One submitted experiment: state, event feed, result payload.

    All mutable state is guarded by ``cond`` (one lock per job);
    waiters — long-polling event readers, blocking ``result()`` calls —
    park on the same condition and wake on every append/transition.
    """

    def __init__(self, spec, key):
        self.spec = spec
        self.key = key
        self.cond = threading.Condition()
        self.state = "queued"
        self.events = []                 # [{"stamp", "kind", "data"}]
        self.result_payload = None       # enveloped dict once done
        self.fault_report = None         # sweep provenance, per execution
        self.error = None
        self.submissions = 1

    @property
    def done(self):
        return self.state in ("done", "failed")

    def receipt(self):
        """What a submission returns (the POST /v1/jobs body)."""
        with self.cond:
            return {"job": self.key, "kind": self.spec.kind,
                    "state": self.state,
                    "fingerprint": self.spec.fingerprint(),
                    "submissions": self.submissions}

    def status(self, journal=None):
        with self.cond:
            status = {"job": self.key, "kind": self.spec.kind,
                      "state": self.state,
                      "fingerprint": self.spec.fingerprint(),
                      "spec": self.spec.to_dict(),
                      "submissions": self.submissions,
                      "events": len(self.events),
                      "fault_report": self.fault_report,
                      "error": self.error}
            if journal is not None:
                status["journal"] = journal
            return status

    def append_event(self, stamp, kind, data):
        with self.cond:
            self.events.append({"stamp": stamp, "kind": kind,
                                "data": dict(data)})
            self.cond.notify_all()

    def transition(self, state, *, result=None, error=None):
        assert state in _STATES
        with self.cond:
            self.state = state
            if result is not None:
                self.result_payload = result
            if error is not None:
                self.error = error
            self.cond.notify_all()


class _JobEventFeed(SweepEventLog):
    """Bridges orchestrator/explorer events into one job's feed."""

    def __init__(self, job):
        super().__init__()
        self.job = job

    def event(self, cycle, kind, **payload):
        super().event(cycle, kind, **payload)
        self.job.append_event(cycle, kind, payload)


class JobManager:
    """The in-process service engine; see the module docstring.

    ``jobs`` is the orchestrator worker bound per executing job;
    ``max_active`` caps how many jobs execute concurrently (excess jobs
    queue on a semaphore).  ``resume=False`` disables both journal
    resume and registry recovery — for tests that need guaranteed-cold
    runs.
    """

    def __init__(self, cache_dir=None, jobs=None, resume=True,
                 max_active=1):
        registry = JobRegistry(cache_dir)
        self.cache_dir = registry.cache_dir
        self.registry = registry
        self.jobs_per_run = jobs
        self.resume = bool(resume)
        self._lock = threading.Lock()
        self._jobs = {}                  # key -> Job
        self._slots = threading.Semaphore(max(1, int(max_active)))
        self._threads = []
        # Provenance counters (the service's own, never in results).
        self.executions = 0              # sweeps/explorations actually run
        self.deduped = 0                 # submissions absorbed by a live job
        self.served_warm = 0             # completed straight from the cache

    # -- submission ------------------------------------------------------------------
    def submit(self, spec):
        """Submit one :class:`JobSpec`; returns its :class:`Job`.

        Walks the amortization ladder under the manager lock, so two
        racing identical submissions cannot both reach execution.
        """
        key = spec.job_key()
        with self._lock:
            job = self._jobs.get(key)
            if job is not None:
                with job.cond:
                    job.submissions += 1
                    restart = job.state == "failed"
                    if not restart:
                        if job.done:
                            self.served_warm += 1
                        else:
                            self.deduped += 1
                if not restart:
                    return job
                # A failed job is retried on resubmission: fall through
                # to a fresh execution under the same key.
            job = self._jobs.get(key)
            submissions = job.submissions if job is not None else 1
            job = Job(spec, key)
            job.submissions = submissions
            self._jobs[key] = job
            payload = self._load_cached(spec, key)
            if payload is not None:
                self.served_warm += 1
                job.append_event(0, "job_cached", {"job": key})
                job.transition("done", result=payload)
                self._persist(job)
                return job
            job.append_event(0, "job_queued", {"job": key,
                                               "kind": spec.kind})
            self._persist(job)
            thread = threading.Thread(target=self._execute, args=(job,),
                                      daemon=True)
            self._threads.append(thread)
            thread.start()
            return job

    def _load_cached(self, spec, key):
        if not self.resume:
            return None
        payload = ReportCache(self.cache_dir).load(key)
        if isinstance(payload, dict) \
                and str(payload.get("schema", "")).startswith(spec.kind):
            return payload
        return None

    def _persist(self, job):
        self.registry.save({
            "key": job.key, "kind": job.spec.kind, "state": job.state,
            "fingerprint": job.spec.fingerprint(),
            "code_version": code_version_hash(),
            "spec": job.spec.to_dict(), "error": job.error,
            "submissions": job.submissions,
        })

    # -- execution -------------------------------------------------------------------
    def _execute(self, job):
        with self._slots:
            job.transition("running")
            self._persist(job)
            job.append_event(0, "job_started", {"job": job.key})
            self.executions += 1
            feed = _JobEventFeed(job)
            try:
                payload = self._run(job.spec, feed, job)
            except Exception as exc:       # recorded, surfaced via status
                job.append_event(0, "job_failed",
                                 {"job": job.key, "error": str(exc)})
                job.transition("failed", error=f"{type(exc).__name__}: "
                                               f"{exc}")
                self._persist(job)
                return
            ReportCache(self.cache_dir).store(job.key, payload)
            job.append_event(0, "job_done", {"job": job.key})
            job.transition("done", result=payload)
            self._persist(job)

    def _run(self, spec, feed, job):
        """Execute one spec through the public API; returns the
        enveloped payload dict."""
        from repro import api

        cache = SimulationCache(self.cache_dir)
        if spec.kind == "sweep":
            result = api.sweep(
                list(spec.workloads), spec.configs,
                instructions=spec.instructions, jobs=self.jobs_per_run,
                cache=cache, journal=spec.journal_path(self.cache_dir),
                resume=self.resume, tracer=feed)
            with job.cond:
                job.fault_report = result.fault_report
            return result.to_dict()
        result = api.explore(
            space=spec.space, strategy=spec.strategy,
            workloads=list(spec.workloads), instructions=spec.instructions,
            seed=spec.seed, max_points=spec.max_points,
            jobs=self.jobs_per_run or 1, cache=cache,
            journal=True, resume=self.resume, tracer=feed)
        return result.to_dict()

    # -- recovery --------------------------------------------------------------------
    def recover(self):
        """Resubmit every job a dead service left mid-flight.

        Returns the resubmitted :class:`Job` objects.  Specs re-hash
        under the *current* code version — if the sources changed since
        the crash the old registry record is dropped (its journal, keyed
        by spec not code, still accelerates the fresh run).
        """
        if not self.resume:
            return []
        recovered = []
        for record in self.registry.unfinished():
            try:
                spec = JobSpec.from_dict(record.get("spec"))
            except ServiceError:
                self.registry.delete(record["key"])
                continue
            job = self.submit(spec)
            if job.key != record["key"]:
                self.registry.delete(record["key"])
            recovered.append(job)
        return recovered

    # -- the read side ---------------------------------------------------------------
    def _job(self, key):
        with self._lock:
            job = self._jobs.get(key)
        if job is None:
            raise JobNotFound(key)
        return job

    def status(self, key):
        job = self._job(key)
        return job.status(journal=job.spec.journal_path(self.cache_dir))

    def list_jobs(self):
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.key)
        return [{"job": job.key, "kind": job.spec.kind, "state": job.state,
                 "submissions": job.submissions} for job in jobs]

    def result(self, key, timeout=None):
        """The finished job's payload dict; None while still running.

        Blocks up to *timeout* seconds (None = forever) for completion;
        raises :class:`JobFailed` for a failed job.
        """
        job = self._job(key)
        with job.cond:
            job.cond.wait_for(lambda: job.done, timeout)
            if job.state == "failed":
                raise JobFailed(job.error or "job failed")
            return job.result_payload

    def result_bytes(self, key, timeout=None):
        """The canonical-JSON bytes of the result (the HTTP body).

        This is the byte-identity contract: these bytes equal
        ``canonical_json(api.sweep(...).to_dict()).encode()`` for the
        same matrix, whether the job executed, resumed or came warm
        from the cache.
        """
        payload = self.result(key, timeout=timeout)
        if payload is None:
            return None
        return canonical_json(payload).encode()

    def events_after(self, key, after=0, timeout=None):
        """``(events, next_index, done)`` — one long-poll turn.

        Returns immediately when events beyond *after* exist (or the job
        is finished); otherwise waits up to *timeout* seconds for the
        next append.
        """
        job = self._job(key)
        after = max(0, int(after))
        with job.cond:
            job.cond.wait_for(
                lambda: len(job.events) > after or job.done, timeout)
            events = list(job.events[after:])
            return events, after + len(events), job.done

    def counters(self):
        """The service-level provenance counters (for /healthz)."""
        with self._lock:
            active = sum(1 for job in self._jobs.values() if not job.done)
        return {"executions": self.executions, "deduped": self.deduped,
                "served_warm": self.served_warm, "active": active}
