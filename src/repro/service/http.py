"""The stdlib HTTP surface over :class:`~repro.service.core.JobManager`.

Routes (all JSON)::

    POST /v1/jobs                     submit a JobSpec payload -> receipt
    GET  /v1/jobs                     list known jobs
    GET  /v1/jobs/<key>               status (state, fault report, ...)
    GET  /v1/jobs/<key>/result        canonical result bytes
                                      (?timeout=SECONDS to block; 202
                                      while still running)
    GET  /v1/jobs/<key>/events        long-poll event feed
                                      (?after=N&timeout=SECONDS)
    GET  /v1/jobs/<key>/stream        the whole feed as streamed JSONL,
                                      closing when the job finishes
    GET  /healthz                     liveness + dedupe counters

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, which is exactly right for a long-poll API whose handlers
spend their time parked on a condition variable.  The result body is
produced by :func:`repro.envelope.canonical_json`, so what a client
receives is byte-identical to ``api.sweep()`` serialized directly.
"""

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.service.core import JobFailed, JobNotFound, JobSpec, ServiceError

__all__ = ["ServiceHandler", "make_server", "serve"]

#: Cap on blocking long-poll turns, so an abandoned connection cannot
#: park a handler thread forever.
MAX_POLL_SECONDS = 60.0


class ServiceHandler(BaseHTTPRequestHandler):
    """One request; the manager lives on the server object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    # -- plumbing --------------------------------------------------------------------
    @property
    def manager(self):
        return self.server.manager

    def log_message(self, format, *args):   # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status, payload):
        self._send_bytes(status, json.dumps(payload).encode(),
                         "application/json")

    def _send_bytes(self, status, body, content_type):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _query(self):
        parts = urlsplit(self.path)
        return parts.path.rstrip("/"), parse_qs(parts.query)

    @staticmethod
    def _timeout(query, default=0.0):
        try:
            timeout = float(query.get("timeout", [default])[0])
        except (TypeError, ValueError):
            timeout = default
        return max(0.0, min(timeout, MAX_POLL_SECONDS))

    # -- verbs -----------------------------------------------------------------------
    def do_POST(self):
        path, _query = self._query()
        if path != "/v1/jobs":
            self._send_json(404, {"error": f"no such route {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            spec = JobSpec.from_dict(payload)
        except (ValueError, ServiceError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(200, self.manager.submit(spec).receipt())

    def do_GET(self):
        path, query = self._query()
        try:
            if path == "/healthz":
                self._send_json(200, {"ok": True,
                                      **self.manager.counters()})
            elif path == "/v1/jobs":
                self._send_json(200, {"jobs": self.manager.list_jobs()})
            elif path.startswith("/v1/jobs/"):
                self._job_route(path[len("/v1/jobs/"):], query)
            else:
                self._send_json(404, {"error": f"no such route {path!r}"})
        except JobNotFound as exc:
            self._send_json(404, {"error": f"no such job {exc.args[0]!r}"})

    def _job_route(self, rest, query):
        key, _, verb = rest.partition("/")
        if verb == "":
            self._send_json(200, self.manager.status(key))
        elif verb == "result":
            self._result(key, query)
        elif verb == "events":
            events, nxt, done = self.manager.events_after(
                key, after=int(query.get("after", [0])[0]),
                timeout=self._timeout(query))
            self._send_json(200, {"events": events, "next": nxt,
                                  "done": done})
        elif verb == "stream":
            self._stream(key)
        else:
            self._send_json(404, {"error": f"no such job verb {verb!r}"})

    def _result(self, key, query):
        try:
            body = self.manager.result_bytes(
                key, timeout=self._timeout(query))
        except JobFailed as exc:
            self._send_json(500, {"error": str(exc),
                                  "state": "failed"})
            return
        if body is None:
            self._send_json(202, self.manager.status(key))
            return
        self._send_bytes(200, body, "application/json")

    def _stream(self, key):
        """The whole event feed as JSONL, one chunk per long-poll turn."""
        self.manager.status(key)          # 404 before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        after = 0
        done = False
        try:
            while not done:
                events, after, done = self.manager.events_after(
                    key, after=after, timeout=MAX_POLL_SECONDS)
                for event in events:
                    self.wfile.write(json.dumps(event).encode() + b"\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass                          # client hung up mid-stream
        self.close_connection = True


def make_server(manager, host="127.0.0.1", port=0, verbose=False):
    """A bound (not yet serving) server; ``port=0`` picks a free port."""
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.daemon_threads = True
    server.manager = manager
    server.verbose = verbose
    return server


def serve(manager, host="127.0.0.1", port=0, verbose=False, banner=print):
    """Recover unfinished jobs, announce the URL, serve forever."""
    recovered = manager.recover()
    server = make_server(manager, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    banner(f"serving on http://{bound_host}:{bound_port} "
           f"(cache {manager.cache_dir}, {len(recovered)} jobs recovered)",
           flush=True)
    try:
        server.serve_forever()
    finally:
        server.server_close()
