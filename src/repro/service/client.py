"""A urllib client for the job service (``harness submit``/``poll``).

Thin by design: every method is one HTTP round-trip, payloads are the
wire dicts, and :meth:`ServiceClient.wait` blocks *server-side* (the
``?timeout=`` long-poll) rather than sleeping client-side, so a result
arrives the moment the job finishes.
"""

import json
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceHTTPError"]


class ServiceHTTPError(RuntimeError):
    """A non-2xx response; carries the status and decoded error body."""

    def __init__(self, status, payload):
        self.status = status
        self.payload = payload
        message = payload.get("error", payload) \
            if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to one ``harness serve`` instance at *base_url*."""

    def __init__(self, base_url):
        self.base_url = base_url.rstrip("/")

    # -- plumbing --------------------------------------------------------------------
    def _request(self, path, body=None, timeout=None):
        """One round-trip; returns ``(status, raw_bytes)``."""
        request = urllib.request.Request(
            self.base_url + path,
            data=None if body is None else json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
            method="POST" if body is not None else "GET")
        try:
            with urllib.request.urlopen(request, timeout=timeout) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def _json(self, path, body=None, timeout=None, ok=(200,)):
        status, raw = self._request(path, body=body, timeout=timeout)
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = {"error": raw.decode(errors="replace")}
        if status not in ok:
            raise ServiceHTTPError(status, payload)
        return payload

    @staticmethod
    def _poll_args(after=None, timeout=None):
        parts = []
        if after is not None:
            parts.append(f"after={int(after)}")
        if timeout is not None:
            parts.append(f"timeout={float(timeout)}")
        return "?" + "&".join(parts) if parts else ""

    # -- the four verbs --------------------------------------------------------------
    def submit(self, spec_payload):
        """POST a job-spec dict; returns the submission receipt."""
        return self._json("/v1/jobs", body=spec_payload)

    def status(self, key):
        return self._json(f"/v1/jobs/{key}")

    def result_bytes(self, key, timeout=None):
        """The canonical result bytes, or None while still running.

        *timeout* blocks server-side; the socket allows 10 extra
        seconds so the HTTP deadline never fires first.
        """
        socket_timeout = None if timeout is None else float(timeout) + 10.0
        status, raw = self._request(
            f"/v1/jobs/{key}/result" + self._poll_args(timeout=timeout),
            timeout=socket_timeout)
        if status == 200:
            return raw
        if status == 202:
            return None
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = {"error": raw.decode(errors="replace")}
        raise ServiceHTTPError(status, payload)

    def result(self, key, timeout=None):
        """The result payload dict, or None while still running."""
        raw = self.result_bytes(key, timeout=timeout)
        return None if raw is None else json.loads(raw)

    def events(self, key, after=0, timeout=None):
        """One long-poll turn: ``(events, next_index, done)``."""
        socket_timeout = None if timeout is None else float(timeout) + 10.0
        payload = self._json(
            f"/v1/jobs/{key}/events" + self._poll_args(after, timeout),
            timeout=socket_timeout)
        return payload["events"], payload["next"], payload["done"]

    def wait(self, key, poll=30.0):
        """Block until the job finishes; returns the result bytes.

        Loops server-side long-polls of *poll* seconds each, so there is
        no client-side sleeping and no busy-wait.
        """
        while True:
            raw = self.result_bytes(key, timeout=poll)
            if raw is not None:
                return raw

    def jobs(self):
        return self._json("/v1/jobs")["jobs"]

    def healthz(self):
        return self._json("/healthz")
