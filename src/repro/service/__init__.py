"""Sweep-as-a-service: an async job API over the orchestrator.

The batch backend (work-stealing orchestrator, durable journals,
content-addressed simulation/trace/report caches) gets a serving layer:

* :class:`~repro.service.core.JobSpec` — a content-hashed experiment
  request (a sweep matrix or a DSE exploration), validated eagerly.
* :class:`~repro.service.core.JobManager` — the in-process engine:
  dedupes identical concurrent submissions onto one execution, serves
  warm requests straight from the report cache with zero simulations,
  bridges orchestrator/explorer events into per-job feeds, and records
  every job durably under ``<cache-dir>/jobs/`` so a killed service
  resumes its in-flight work from the sweep journal on restart.
* :mod:`~repro.service.http` — the stdlib HTTP surface
  (``harness serve``): submit, status, long-poll events, streamed
  progress, and result bytes served in canonical JSON.
* :class:`~repro.service.client.ServiceClient` — the urllib client the
  ``harness submit``/``harness poll`` subcommands wrap.

The same four verbs are mirrored in-process by :func:`repro.api.submit`
/ ``status`` / ``result`` / ``events``, so notebooks get the dedupe and
caching without a socket.
"""

from repro.service.core import (Job, JobManager, JobSpec,  # noqa: F401
                                ServiceError)
from repro.service.jobs import JOB_SCHEMA, JobRegistry     # noqa: F401

__all__ = ["JOB_SCHEMA", "Job", "JobManager", "JobRegistry", "JobSpec",
           "ServiceError"]
