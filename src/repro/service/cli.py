"""``harness serve`` / ``submit`` / ``poll`` — the service CLI.

``serve`` runs the job service in the foreground (recovering any jobs a
previous instance left mid-flight); ``submit`` and ``poll`` are the
client side, built on :class:`~repro.service.client.ServiceClient`::

    harness serve --port 8787 &
    harness submit --url http://127.0.0.1:8787 \\
        --workloads hash_loop,permute --configs baseline,tvp \\
        --instructions 20000 --wait --save sweep.json
    harness poll <job-key> --url http://127.0.0.1:8787 --events

``submit --wait`` blocks on server-side long-polls (no client
busy-wait) and ``--save`` writes the service's canonical result bytes
verbatim — byte-identical to ``api.sweep()`` serialized directly.
"""

import argparse
import json
import sys

__all__ = ["main", "poll_main", "serve_main", "submit_main"]

DEFAULT_URL = "http://127.0.0.1:8787"


def build_serve_parser():
    parser = argparse.ArgumentParser(
        prog="repro-harness serve",
        description="Run the async sweep/exploration job service.")
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="listen port (0 picks a free one; "
                             "default: %(default)s)")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="cache + job-registry location (default: "
                             ".repro-cache, or $REPRO_CACHE_DIR)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="orchestrator workers per executing job "
                             "(default: all cores)")
    parser.add_argument("--max-active", type=int, default=1, metavar="N",
                        help="jobs executing concurrently; the rest "
                             "queue (default: %(default)s)")
    parser.add_argument("--resume", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="recover registry jobs and resume journals "
                             "on startup (--no-resume starts cold)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")
    return parser


def serve_main(argv):
    from repro.service.core import JobManager
    from repro.service.http import serve

    args = build_serve_parser().parse_args(argv)
    manager = JobManager(cache_dir=args.cache_dir, jobs=args.jobs,
                         resume=args.resume, max_active=args.max_active)
    try:
        serve(manager, host=args.host, port=args.port,
              verbose=args.verbose)
    except KeyboardInterrupt:
        pass
    return 0


def _client_flags():
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--url", type=str, default=DEFAULT_URL,
                        help="service base URL (default: %(default)s)")
    common.add_argument("--save", type=str, default=None, metavar="FILE",
                        help="write the result's canonical JSON bytes "
                             "verbatim")
    common.add_argument("--poll", type=float, default=30.0, metavar="SEC",
                        help="long-poll turn length while waiting "
                             "(default: %(default)s)")
    return common


def build_submit_parser():
    parser = argparse.ArgumentParser(
        prog="repro-harness submit",
        description="Submit an experiment matrix to a running service.",
        parents=[_client_flags()])
    parser.add_argument("--kind", type=str, default="sweep",
                        choices=("sweep", "explore"))
    parser.add_argument("--workloads", type=str, default=None,
                        help="comma-separated workload names "
                             "(default: the whole suite)")
    parser.add_argument("--configs", type=str, default=None,
                        help="comma-separated named configs (sweep only; "
                             "default: baseline,mvp,tvp,gvp)")
    parser.add_argument("--instructions", type=int, default=None)
    parser.add_argument("--space", type=str, default="smoke",
                        help="parameter space (explore only)")
    parser.add_argument("--strategy", type=str, default="grid")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--max-points", type=int, default=0)
    parser.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print a "
                             "one-line result summary")
    return parser


def _spec_payload(args):
    payload = {"kind": args.kind, "instructions": args.instructions}
    if args.workloads:
        payload["workloads"] = [name.strip()
                                for name in args.workloads.split(",")
                                if name.strip()]
    if args.kind == "sweep":
        if args.configs:
            payload["configs"] = [name.strip()
                                  for name in args.configs.split(",")
                                  if name.strip()]
    else:
        payload.update({"space": args.space, "strategy": args.strategy,
                        "seed": args.seed, "max_points": args.max_points})
    return payload


def _summarize(payload):
    schema = payload.get("schema", "?")
    if schema.startswith("sweep"):
        return (f"sweep {payload['fingerprint']}: "
                f"{len(payload['workloads'])} workloads x "
                f"{len(payload['configs'])} configs")
    if schema.startswith("explore"):
        return (f"explore {payload['fingerprint']}: "
                f"{len(payload['points'])} points, "
                f"{len(payload['frontier'])} on the frontier")
    return f"{schema} result"


def _finish(client, key, args):
    """Shared --wait/--save tail of submit and poll."""
    raw = client.wait(key, poll=args.poll)
    if args.save:
        with open(args.save, "wb") as handle:
            handle.write(raw)
        print(f"[result saved to {args.save}]")
    print(f"[{_summarize(json.loads(raw))}]")


def submit_main(argv):
    from repro.service.client import ServiceClient, ServiceHTTPError

    parser = build_submit_parser()
    args = parser.parse_args(argv)
    client = ServiceClient(args.url)
    try:
        receipt = client.submit(_spec_payload(args))
        print(json.dumps(receipt, sort_keys=True))
        if args.wait or args.save:
            _finish(client, receipt["job"], args)
    except ServiceHTTPError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    return 0


def build_poll_parser():
    parser = argparse.ArgumentParser(
        prog="repro-harness poll",
        description="Check on (or wait for) a submitted job.",
        parents=[_client_flags()])
    parser.add_argument("job", help="the job key from `harness submit`")
    parser.add_argument("--events", action="store_true",
                        help="follow the job's event feed until it "
                             "finishes (one JSON line per event)")
    parser.add_argument("--wait", action="store_true",
                        help="block until the job finishes")
    return parser


def poll_main(argv):
    from repro.service.client import ServiceClient, ServiceHTTPError

    parser = build_poll_parser()
    args = parser.parse_args(argv)
    client = ServiceClient(args.url)
    try:
        if args.events:
            after, done = 0, False
            while not done:
                events, after, done = client.events(args.job, after=after,
                                                    timeout=args.poll)
                for event in events:
                    print(json.dumps(event, sort_keys=True))
        else:
            print(json.dumps(client.status(args.job), indent=2,
                             sort_keys=True))
        if args.wait or args.save:
            _finish(client, args.job, args)
    except ServiceHTTPError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        return submit_main(argv[1:])
    if argv and argv[0] == "poll":
        return poll_main(argv[1:])
    print("usage: repro-harness {serve|submit|poll} ...", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
