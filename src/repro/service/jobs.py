"""The durable job registry under ``<cache-dir>/jobs/``.

One small JSON document per job, named by the job key, written
atomically (tmp + rename) on every state transition.  The registry is
what makes the service crash-safe: a restarted service lists the records
left in ``queued``/``running`` state by its predecessor and resubmits
them, and the sweep journal (named deterministically from the job spec)
takes it from there — every already-completed point replays, so the
merged result is byte-identical to an uninterrupted run.

Records carry **no timestamps**: the registry must stay deterministic
enough to diff across runs, and nothing in recovery needs wall-clock
ordering (journals, not registries, carry the completed work).
"""

import json
import os
import tempfile

__all__ = ["JOB_SCHEMA", "JobRegistry"]

JOB_SCHEMA = "job/1"


class JobRegistry:
    """Atomic per-job state records in ``<cache-dir>/jobs/``."""

    def __init__(self, cache_dir=None):
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
        self.cache_dir = str(cache_dir)
        self.directory = os.path.join(self.cache_dir, "jobs")

    def _path_of(self, key):
        return os.path.join(self.directory, f"{key}.json")

    def save(self, record):
        """Atomically persist one job record (no-op on write failure)."""
        record = dict(record)
        record["schema"] = JOB_SCHEMA
        tmp_path = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle, tmp_path = tempfile.mkstemp(dir=self.directory,
                                                suffix=".tmp")
            with os.fdopen(handle, "w") as tmp:
                json.dump(record, tmp, sort_keys=True)
            os.replace(tmp_path, self._path_of(record["key"]))
        except OSError:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass

    def load(self, key):
        """The record for *key*, or None (missing or unreadable)."""
        try:
            with open(self._path_of(key)) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) \
                or record.get("schema") != JOB_SCHEMA:
            return None
        return record

    def delete(self, key):
        try:
            os.unlink(self._path_of(key))
        except OSError:
            pass

    def records(self):
        """Every valid record, sorted by key for determinism."""
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        out = []
        for name in names:
            if not name.endswith(".json"):
                continue
            record = self.load(name[:-len(".json")])
            if record is not None:
                out.append(record)
        return out

    def unfinished(self):
        """Records a dead service left mid-flight (queued or running)."""
        return [record for record in self.records()
                if record.get("state") in ("queued", "running")]
