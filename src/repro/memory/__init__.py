"""Memory-system substrate: caches, MSHRs, TLBs, prefetchers, DRAM."""

from repro.memory.cache import Cache, MainMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetch import AmpmPrefetcher, StridePrefetcher
from repro.memory.tlb import Tlb, TlbHierarchy

__all__ = [
    "AmpmPrefetcher",
    "Cache",
    "MainMemory",
    "MemoryHierarchy",
    "StridePrefetcher",
    "Tlb",
    "TlbHierarchy",
]
