"""Hardware prefetchers: L1D stride (Fu et al.) and L2 AMPM (Ishii et al.).

The paper's Table 2 attaches a degree-4 stride prefetcher to the L1D and an
Access Map Pattern Matching prefetcher to the L2.  §3.4.1 and §6.2 of the
paper specifically blame the *untuned gem5 stride prefetcher* for the
occasional slowdowns SpSR/TVP exhibit — so the interaction between rename
optimizations and prefetch timing is part of what we must model, and the
prefetcher-ablation benchmark toggles these off.
"""


class StridePrefetcher:
    """Per-PC stride detector with a confidence threshold, degree N."""

    def __init__(self, table_size=256, degree=4, confidence_threshold=2):
        self.table_size = table_size
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self._table = {}  # pc -> [last_addr, stride, confidence]
        self.stat_trainings = 0
        self.stat_prefetches = 0

    def observe(self, cache, pc, addr, cycle, hit):
        """Train on a demand access and possibly issue prefetches."""
        if pc is None:
            return
        self.stat_trainings += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = [addr, 0, 0]
            return
        stride = addr - entry[0]
        if stride != 0 and stride == entry[1]:
            entry[2] = min(entry[2] + 1, 3)
        else:
            entry[2] = max(entry[2] - 1, 0)
            if entry[2] == 0:
                entry[1] = stride
        entry[0] = addr
        if entry[2] >= self.confidence_threshold and entry[1] != 0:
            for distance in range(1, self.degree + 1):
                target = addr + entry[1] * distance
                if target > 0:
                    self.stat_prefetches += 1
                    cache.prefetch_line(target, cycle)


class AmpmPrefetcher:
    """Access Map Pattern Matching over 4KB zones (simplified).

    Keeps an access bitmap per hot zone; when lines ``l-d`` and ``l-2d``
    have both been touched, ``l+d`` is a pattern-match candidate.
    """

    def __init__(self, zones=64, zone_bytes=4096, line_size=64, degree=2):
        self.zones = zones
        self.zone_bytes = zone_bytes
        self.line_size = line_size
        self.lines_per_zone = zone_bytes // line_size
        self.degree = degree
        self._maps = {}  # zone_base -> set of line offsets
        self.stat_prefetches = 0

    def observe(self, cache, pc, addr, cycle, hit):
        zone = addr - (addr % self.zone_bytes)
        offset = (addr % self.zone_bytes) // self.line_size
        amap = self._maps.get(zone)
        if amap is None:
            if len(self._maps) >= self.zones:
                self._maps.pop(next(iter(self._maps)))
            amap = set()
            self._maps[zone] = amap
        amap.add(offset)
        issued = 0
        for distance in range(1, self.lines_per_zone):
            if issued >= self.degree:
                break
            candidate = offset + distance
            if candidate >= self.lines_per_zone:
                break
            if candidate in amap:
                continue
            if (candidate - distance) in amap and (candidate - 2 * distance) in amap:
                self.stat_prefetches += 1
                cache.prefetch_line(zone + candidate * self.line_size, cycle)
                issued += 1
