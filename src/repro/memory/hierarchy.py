"""The full Table 2 memory system wired together.

128KB 8-way L1D (4c) and L1I (1c), 1MB 8-way L2 (12c), 8MB 16-way L3 (37c),
DRAM behind that; degree-4 stride prefetcher on the L1D and AMPM on the L2;
TLBs per :mod:`repro.memory.tlb`.
"""

from repro.memory.cache import Cache, MainMemory
from repro.memory.prefetch import AmpmPrefetcher, StridePrefetcher
from repro.memory.tlb import TlbHierarchy


class MemoryHierarchy:
    """Facade the pipeline talks to: ``load``/``store``/``ifetch``."""

    def __init__(self, config=None):
        from repro.pipeline.config import MemoryConfig

        cfg = config or MemoryConfig()
        self.config = cfg
        self.dram = MainMemory(latency=cfg.dram_latency)
        self.l3 = Cache("L3", cfg.l3_size, cfg.l3_ways, cfg.line_size,
                        latency=cfg.l3_latency, mshrs=cfg.l3_mshrs,
                        parent=self.dram)
        l2_prefetcher = AmpmPrefetcher(degree=cfg.ampm_degree) \
            if cfg.enable_ampm_prefetcher else None
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_ways, cfg.line_size,
                        latency=cfg.l2_latency, mshrs=cfg.l2_mshrs,
                        parent=self.l3, prefetcher=l2_prefetcher)
        l1d_prefetcher = StridePrefetcher(degree=cfg.stride_degree) \
            if cfg.enable_stride_prefetcher else None
        self.l1d = Cache("L1D", cfg.l1d_size, cfg.l1d_ways, cfg.line_size,
                         latency=cfg.l1d_latency, mshrs=cfg.l1d_mshrs,
                         parent=self.l2, prefetcher=l1d_prefetcher)
        self.l1i = Cache("L1I", cfg.l1i_size, cfg.l1i_ways, cfg.line_size,
                         latency=cfg.l1i_latency, mshrs=cfg.l1i_mshrs,
                         parent=self.l2)
        self.tlbs = TlbHierarchy(walk_penalty=cfg.tlb_walk_penalty)

    def load(self, addr, cycle, pc=None):
        """Data load: returns the data-ready cycle."""
        penalty = self.tlbs.translate_data(addr)
        return self.l1d.access(addr, cycle + penalty, is_write=False, pc=pc)

    def store(self, addr, cycle, pc=None):
        """Data store: returns the completion cycle (write-allocate)."""
        penalty = self.tlbs.translate_data(addr)
        return self.l1d.access(addr, cycle + penalty, is_write=True, pc=pc)

    def ifetch(self, addr, cycle):
        """Instruction fetch of the line containing *addr*."""
        penalty = self.tlbs.translate_inst(addr)
        return self.l1i.access(addr, cycle + penalty, is_write=False)

    def stats(self):
        """Flat dict of the interesting counters."""
        out = {}
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            out[f"{cache.name}.hits"] = cache.stat_hits
            out[f"{cache.name}.misses"] = cache.stat_misses
            out[f"{cache.name}.prefetches"] = cache.stat_prefetch_issued
        out["dram.accesses"] = self.dram.stat_accesses
        out["tlb.walks"] = self.tlbs.stat_walks
        return out
