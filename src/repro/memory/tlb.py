"""TLB hierarchy per Table 2: two 256-entry L1 TLBs (0-cycle, folded into
the L1 load-to-use) backed by a 3072-entry 12-way L2 TLB (4 cycles), with a
fixed page-walk penalty beyond that."""

PAGE_BITS = 12


class Tlb:
    """Set-associative TLB with LRU replacement."""

    def __init__(self, entries, ways, latency=0):
        if entries % ways:
            raise ValueError("entries must divide into ways")
        self.sets = entries // ways
        self.ways = ways
        self.latency = latency
        self._sets = [[] for _ in range(self.sets)]
        self.stat_hits = 0
        self.stat_misses = 0

    def lookup(self, vpn):
        ways = self._sets[vpn % self.sets]
        if ways and ways[0] == vpn:   # already MRU: skip the reorder
            self.stat_hits += 1
            return True
        if vpn in ways:
            ways.remove(vpn)
            ways.insert(0, vpn)
            self.stat_hits += 1
            return True
        self.stat_misses += 1
        return False

    def install(self, vpn):
        ways = self._sets[vpn % self.sets]
        if vpn in ways:
            return
        ways.insert(0, vpn)
        if len(ways) > self.ways:
            ways.pop()


class TlbHierarchy:
    """L1 I/D TLBs + shared L2 TLB + fixed walk penalty."""

    def __init__(self, l1_entries=256, l1_ways=1, l2_entries=3072, l2_ways=12,
                 l2_latency=4, walk_penalty=40):
        self.itlb = Tlb(l1_entries, l1_ways, latency=0)
        self.dtlb = Tlb(l1_entries, l1_ways, latency=0)
        self.l2 = Tlb(l2_entries, l2_ways, latency=l2_latency)
        self.walk_penalty = walk_penalty
        self.stat_walks = 0

    def _translate(self, l1, addr):
        """Extra cycles the translation adds on top of the cache access."""
        vpn = addr >> PAGE_BITS
        if l1.lookup(vpn):
            return 0
        if self.l2.lookup(vpn):
            l1.install(vpn)
            return self.l2.latency
        self.stat_walks += 1
        self.l2.install(vpn)
        l1.install(vpn)
        return self.l2.latency + self.walk_penalty

    def translate_data(self, addr):
        return self._translate(self.dtlb, addr)

    def translate_inst(self, addr):
        return self._translate(self.itlb, addr)
